package aimt

import (
	"fmt"
	"testing"

	"aimt/internal/analysis"
	"aimt/internal/metrics"
	"aimt/internal/nn"
	"aimt/internal/power"
	"aimt/internal/workload"
)

// One benchmark per table and figure of the paper's evaluation. Each
// reports the figure's headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the paper's numbers
// alongside the harness's own cost:
//
//	speedup           makespan(FIFO) / makespan(policy)
//	pe-util, mem-util busy fractions
//	MiB               SRAM demand
//	mW                static power
//
// The shape assertions live in experiments_test.go; benches measure.

// BenchmarkTable2_Workloads compiles the full model zoo — the cost of
// building every sub-layer scheduling table of Table II.
func BenchmarkTable2_Workloads(b *testing.B) {
	cfg := PaperConfig()
	var subLayers int
	for i := 0; i < b.N; i++ {
		subLayers = 0
		for _, net := range nn.Zoo() {
			cn, err := Compile(net, cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			subLayers += cn.Stats().SubLayers
		}
	}
	b.ReportMetric(float64(subLayers), "sublayers")
}

// BenchmarkFig5_VGG16LatencyRatio regenerates Fig 5 and reports the
// FC tail's memory fraction.
func BenchmarkFig5_VGG16LatencyRatio(b *testing.B) {
	cfg := PaperConfig()
	var rows []LayerRatio
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Fig5Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	fc6 := rows[13]
	b.ReportMetric(1-fc6.ComputeFraction(), "fc6-mem-frac")
}

// BenchmarkFig7_RRUtilization simulates every co-location mix under
// round-robin and reports the mean utilizations Fig 7 plots.
func BenchmarkFig7_RRUtilization(b *testing.B) {
	cfg := PaperConfig()
	var rows []MixOutcome
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Fig7Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var pe, mem float64
	for _, r := range rows {
		pe += r.PEUtil
		mem += r.MemUtil
	}
	b.ReportMetric(pe/float64(len(rows)), "pe-util")
	b.ReportMetric(mem/float64(len(rows)), "mem-util")
}

// BenchmarkFig8_BaselineSpeedup reports the geomean speedup of each
// baseline policy over FIFO.
func BenchmarkFig8_BaselineSpeedup(b *testing.B) {
	cfg := PaperConfig()
	var rows []MixOutcome
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Fig8Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportGeomeans(b, rows)
}

// BenchmarkFig10_PrefetchSRAM reports the largest per-layer prefetch
// buffer demand across the zoo, in MiB.
func BenchmarkFig10_PrefetchSRAM(b *testing.B) {
	cfg := PaperConfig()
	var data map[string][]analysis.PrefetchDemand
	for i := 0; i < b.N; i++ {
		var err error
		data, err = Fig10Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var max Bytes
	for _, d := range data {
		if m := analysis.MaxDemand(d); m > max {
			max = m
		}
	}
	b.ReportMetric(float64(max)/float64(MiB), "MiB")
}

// BenchmarkFig14_AIMTSpeedup reports the geomean speedup of each
// AI-MT mechanism set over FIFO at batch 1 — the paper's headline
// ablation.
func BenchmarkFig14_AIMTSpeedup(b *testing.B) {
	cfg := PaperConfig()
	var rows []MixOutcome
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Fig14Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportGeomeans(b, rows)
}

func reportGeomeans(b *testing.B, rows []MixOutcome) {
	bySched := map[string][]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := bySched[r.Scheduler]; !ok {
			order = append(order, r.Scheduler)
		}
		bySched[r.Scheduler] = append(bySched[r.Scheduler], r.Speedup)
	}
	for _, s := range order {
		b.ReportMetric(metrics.GeoMean(bySched[s]), s+"-speedup")
	}
}

// BenchmarkFig15_BatchSensitivity sweeps batch size per sub-benchmark
// and reports the full design's speedup over FIFO.
func BenchmarkFig15_BatchSensitivity(b *testing.B) {
	cfg := PaperConfig()
	for _, batch := range Fig15Batches {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var pts []BatchPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = Fig15Data(cfg, []int{batch})
				if err != nil {
					b.Fatal(err)
				}
			}
			var mg, all []float64
			for _, p := range pts {
				mg = append(mg, p.MergeSpeedup)
				all = append(all, p.AllSpeedup)
			}
			b.ReportMetric(metrics.GeoMean(mg), "merge-speedup")
			b.ReportMetric(metrics.GeoMean(all), "all-speedup")
		})
	}
}

// BenchmarkFig16_SRAMSensitivity sweeps the weight-SRAM capacity per
// sub-benchmark and reports each policy's speedup over FIFO.
func BenchmarkFig16_SRAMSensitivity(b *testing.B) {
	cfg := PaperConfig()
	for _, sz := range Fig16Sizes {
		b.Run(fmt.Sprintf("sram=%dKiB", sz/KiB), func(b *testing.B) {
			var pts []SRAMPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = Fig16Data(cfg, []Bytes{sz})
				if err != nil {
					b.Fatal(err)
				}
			}
			for k, v := range pts[0].Speedups {
				b.ReportMetric(v, k+"-speedup")
			}
		})
	}
}

// BenchmarkTable3_PowerArea evaluates the CACTI-calibrated SRAM model
// and reports the AI-MT structure overhead fraction.
func BenchmarkTable3_PowerArea(b *testing.B) {
	cfg := PaperConfig()
	var rows []power.Row
	for i := 0; i < b.N; i++ {
		rows = Table3Rows(cfg, 5)
	}
	b.ReportMetric(power.OverheadFraction(rows), "overhead-frac")
	b.ReportMetric(rows[2].PowerMW, "sched-tables-mW")
}

// --- Ablations of the design choices DESIGN.md calls out. ---

// BenchmarkAblationSplit contrasts the full design with CB split
// disabled on the capacity-pressure scenario where splits fire
// (batch 8, 1 MB weight SRAM).
func BenchmarkAblationSplit(b *testing.B) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[0], 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    Mechanisms
	}{
		{"with-split", AllMechanisms()},
		{"no-split", Mechanisms{Merge: true, Evict: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Run(cfg, mix.Nets, NewAIMT(cfg, tc.m), RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Makespan), "makespan-cycles")
			b.ReportMetric(float64(res.Splits), "splits")
		})
	}
}

// BenchmarkAblationAVLAccounting contrasts the paper's decaying AVL_CB
// counter against exact coverage measurement for the merge-only
// configuration (see core.AIMT's avlMode).
func BenchmarkAblationAVLAccounting(b *testing.B) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	base, err := Run(cfg, mix.Nets, NewFIFO(), RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		exact bool
	}{
		{"decaying-counter", false},
		{"exact-coverage", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				s := NewAIMT(cfg, PrefetchMerge()).SetExactAVL(tc.exact)
				var err error
				res, err = Run(cfg, mix.Nets, s, RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(metrics.Speedup(base, res), "speedup")
		})
	}
}

// BenchmarkAblationMergeThreshold sweeps the AVL_CB threshold.
func BenchmarkAblationMergeThreshold(b *testing.B) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	base, err := Run(cfg, mix.Nets, NewFIFO(), RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	fcMB := Cycles(cfg.ReadCyclesPerArray()) * Cycles(cfg.NumArrays)
	for _, mult := range []Cycles{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threshold=%dxFCMB", mult), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				s := NewAIMT(cfg, PrefetchMerge()).SetMergeThreshold(mult * fcMB)
				var err error
				res, err = Run(cfg, mix.Nets, s, RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(metrics.Speedup(base, res), "speedup")
		})
	}
}

// BenchmarkAblationReplication sweeps the workload-balancing cap,
// showing how co-location balance drives the attainable overlap.
func BenchmarkAblationReplication(b *testing.B) {
	cfg := PaperConfig()
	for _, rep := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("max-rep=%d", rep), func(b *testing.B) {
			mix, err := workload.Build(cfg, PaperMixes()[0], workload.BuildOptions{Batch: 1, MaxReplication: rep})
			if err != nil {
				b.Fatal(err)
			}
			base, err := Run(cfg, mix.Nets, NewFIFO(), RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			var res *Result
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg, mix.Nets, NewAIMT(cfg, AllMechanisms()), RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(metrics.Speedup(base, res), "speedup")
		})
	}
}

// BenchmarkAblationSchedulerLatency contrasts the paper's hardware
// scheduler with software implementations of increasing per-decision
// latency (§IV-D): coarse-grain sub-layers hide modest software
// latency, but a slow scheduler erodes the multi-tenancy win.
func BenchmarkAblationSchedulerLatency(b *testing.B) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	base, err := Run(cfg, mix.Nets, NewFIFO(), RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, lat := range []Cycles{0, 100, 500, 2000} {
		b.Run(fmt.Sprintf("latency=%d", lat), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Run(cfg, mix.Nets, NewAIMT(cfg, AllMechanisms()),
					RunOptions{SchedulerLatency: lat})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(metrics.Speedup(base, res), "speedup")
		})
	}
}

// BenchmarkAblationHardwareScale contrasts the paper's scaled-up core
// (16 arrays, 8-bit, 450 GB/s) with the unscaled TPUv2-like baseline
// it derives from (§II-B): AI-MT's relative win depends on the
// compute/bandwidth balance of the machine underneath.
func BenchmarkAblationHardwareScale(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"paper-16x8bit-450GBs", PaperConfig()},
		{"tpuv2-2x16bit-300GBs", TPUv2Config()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			mix, err := BuildMix(tc.cfg, PaperMixes()[0], 1)
			if err != nil {
				b.Fatal(err)
			}
			base, err := Run(tc.cfg, mix.Nets, NewFIFO(), RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			var res *Result
			for i := 0; i < b.N; i++ {
				res, err = Run(tc.cfg, mix.Nets, NewAIMT(tc.cfg, AllMechanisms()), RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(metrics.Speedup(base, res), "speedup")
			b.ReportMetric(res.PEUtilization(), "pe-util")
		})
	}
}

// BenchmarkExtensionMultiTenancy compares AI-MT against the PREMA
// time-multiplexing scheduler (§VII-C related work) on the standard
// multi-program metrics: STP (system throughput, higher is better)
// and ANTT (average normalized turnaround, lower is better). AI-MT's
// simultaneous execution should win STP; PREMA's strict priority can
// win per-tenant turnaround for the favored network.
func BenchmarkExtensionMultiTenancy(b *testing.B) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	alone := make([]Cycles, len(mix.Nets))
	for i, cn := range mix.Nets {
		res, err := Run(cfg, []*Compiled{cn}, NewFIFO(), RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		alone[i] = res.Makespan
	}
	for _, tc := range []struct {
		name string
		mk   func() Scheduler
	}{
		{"FIFO", func() Scheduler { return NewFIFO() }},
		{"PREMA", func() Scheduler { return NewPREMA(nil) }},
		{"AI-MT", func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Run(cfg, mix.Nets, tc.mk(), RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(metrics.STP(alone, res), "STP")
			b.ReportMetric(metrics.ANTT(alone, res), "ANTT")
		})
	}
}

// BenchmarkExtensionTenantPriority measures what a latency-sensitive
// tenant gains from weighted AI-MT scheduling versus uniform sharing
// and versus PREMA's preemptive priority: the favored network's
// completion time and the workload makespan.
func BenchmarkExtensionTenantPriority(b *testing.B) {
	cfg := PaperConfig()
	// Favor the first GNMT instance (net 1): a tenant off the
	// compute-bound critical path, where priority can actually move
	// its completion time.
	mix, err := BuildMix(cfg, PaperMixes()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, len(mix.Nets))
	for i := range weights {
		weights[i] = 1
	}
	weights[1] = 8
	for _, tc := range []struct {
		name string
		mk   func() Scheduler
	}{
		{"AI-MT-uniform", func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }},
		{"AI-MT-weighted", func() Scheduler { return NewAIMT(cfg, AllMechanisms()).SetPriorities(weights) }},
		{"PREMA-weighted", func() Scheduler { return NewPREMA(weights) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Run(cfg, mix.Nets, tc.mk(), RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.NetFinish[1]), "tenant-finish")
			b.ReportMetric(float64(res.Makespan), "makespan")
		})
	}
}

// BenchmarkSweepWorkers measures sweep-engine scaling: the Fig 14
// mix × mechanism cross-product at increasing worker counts. The
// aggregated results are identical at every width (see
// TestSweepParallelismDeterminism); only wall clock changes.
func BenchmarkSweepWorkers(b *testing.B) {
	cfg := PaperConfig()
	defer SetSweepParallelism(0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			SetSweepParallelism(workers)
			for i := 0; i < b.N; i++ {
				if _, err := Fig14Data(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw engine speed: simulated
// blocks per second on the heaviest single mix.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[3], 4)
	if err != nil {
		b.Fatal(err)
	}
	var blocks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, mix.Nets, NewAIMT(cfg, AllMechanisms()), RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		blocks = res.MBCount + res.CBCount
	}
	b.ReportMetric(float64(blocks), "blocks/op")
}

// BenchmarkServeStream measures serving-path engine speed: a
// 10k-request open-loop stream near saturation under the full AI-MT
// stack — the workload whose event count makes candidate-scan cost the
// binding constraint (see the frontier tracking in internal/sim).
func BenchmarkServeStream(b *testing.B) {
	cfg := PaperConfig()
	stream, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: 10_000,
		Seed:     7,
	})
	if err != nil {
		b.Fatal(err)
	}
	var blocks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, stream.Nets, NewAIMT(cfg, AllMechanisms()),
			RunOptions{Arrivals: stream.Arrivals})
		if err != nil {
			b.Fatal(err)
		}
		blocks = res.MBCount + res.CBCount
	}
	b.ReportMetric(float64(blocks), "blocks/op")
}

// BenchmarkServeStreamTraced measures the same serving run with
// request tracing on: the collector taps every occupancy event, and
// each run pays span building plus store aggregation — the full cost
// of explaining every request's latency.
func BenchmarkServeStreamTraced(b *testing.B) {
	cfg := PaperConfig()
	stream, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: 10_000,
		Seed:     7,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := NewRequestTraceStore(RequestTraceOptions{SampleEvery: 16})
	var spans int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewRequestTraceCollector(len(stream.Nets))
		res, err := Run(cfg, stream.Nets, NewAIMT(cfg, AllMechanisms()),
			RunOptions{Arrivals: stream.Arrivals, Tracer: col})
		if err != nil {
			b.Fatal(err)
		}
		sp := BuildRequestSpans(stream, res, "bench", col)
		st.AddRun(sp)
		spans = len(sp)
	}
	b.ReportMetric(float64(spans), "spans/op")
}

// BenchmarkCompile measures sub-layer table generation for the
// largest network.
func BenchmarkCompile(b *testing.B) {
	cfg := PaperConfig()
	net := nn.ResNet50()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(net, cfg, 8); err != nil {
			b.Fatal(err)
		}
	}
}
