package aimt

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"aimt/internal/analysis"
	"aimt/internal/arch"
	"aimt/internal/metrics"
	"aimt/internal/nn"
	"aimt/internal/power"
	"aimt/internal/serve"
	"aimt/internal/sweep"
	"aimt/internal/workload"
)

// sweepParallelism caps the worker pool the experiment drivers hand to
// the sweep engine; 0 means GOMAXPROCS. cmd/aimt-bench's -parallel
// flag lands here.
var sweepParallelism atomic.Int64

// SetSweepParallelism caps the worker pool used by the experiment
// drivers' simulation sweeps. n == 1 forces serial execution; n <= 0
// restores the GOMAXPROCS default. Results are identical at every
// setting — the sweep engine aggregates in job order, not completion
// order.
func SetSweepParallelism(n int) {
	if n < 0 {
		n = 0
	}
	sweepParallelism.Store(int64(n))
}

// SweepParallelism reports the current driver worker cap (0 =
// GOMAXPROCS).
func SweepParallelism() int { return int(sweepParallelism.Load()) }

// runSweep fans the jobs over the configured worker pool and fails on
// the first job error.
func runSweep(jobs []sweep.Job) ([]sweep.Outcome, error) {
	outs := sweep.Run(jobs, sweep.Options{Workers: SweepParallelism()})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}
	return outs, nil
}

// This file contains the drivers that regenerate every table and
// figure of the paper's evaluation (§V). Each FigNData/TableNRows
// function returns structured results; the matching PrintFigN/
// PrintTableN renders them as the rows/series the paper reports.
// cmd/aimt-bench and bench_test.go are thin wrappers over these.

// LayerRatio re-exports analysis.LayerRatio for Fig 5 consumers.
type LayerRatio = analysis.LayerRatio

// Fig5Data returns VGG16's per-layer computation vs memory-prefetch
// latency split (paper Fig 5).
func Fig5Data(cfg Config) ([]LayerRatio, error) {
	cn, err := Compile(VGG16(), cfg, 1)
	if err != nil {
		return nil, err
	}
	return analysis.LatencyRatios(cn), nil
}

// PrintFig5 renders Fig 5.
func PrintFig5(w io.Writer, cfg Config) error {
	rows, err := Fig5Data(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("layer", "compute%", "memory%", "CB cycles", "MB cycles")
	for _, r := range rows {
		t.AddRow(r.Name, metrics.Pct(r.ComputeFraction()), metrics.Pct(1-r.ComputeFraction()),
			fmt.Sprint(r.ComputeCycles), fmt.Sprint(r.MemoryCycles))
	}
	_, err = fmt.Fprintf(w, "Fig 5: computation vs memory-prefetch latency per VGG16 layer\n%s", t)
	return err
}

// MixOutcome is one co-location mix's result under one scheduler.
type MixOutcome struct {
	// Mix is the annotated mix name (with replication factor).
	Mix string
	// Scheduler is the policy name.
	Scheduler string
	// Speedup is the makespan ratio over the FIFO baseline.
	Speedup float64
	// MemUtil and PEUtil are whole-run busy fractions.
	MemUtil, PEUtil float64
	// Splits counts compute-block halts.
	Splits int
}

// runMixes simulates every paper mix at the given batch under the
// schedulers produced by mk (called fresh per run — schedulers carry
// state) and returns outcomes keyed in input order. The runs — one
// FIFO baseline plus one per name, per mix — fan out over the sweep
// engine's worker pool (see SetSweepParallelism).
func runMixes(cfg Config, batch int, names []string, mk func(name string, mix *workload.Mix) Scheduler) ([]MixOutcome, error) {
	var jobs []sweep.Job
	for _, spec := range PaperMixes() {
		mix, err := BuildMix(cfg, spec, batch)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, sweep.Job{Mix: mix.Name, Cfg: cfg, Nets: mix.Nets,
			New: func() Scheduler { return NewFIFO() }})
		for _, name := range names {
			jobs = append(jobs, sweep.Job{Mix: mix.Name, Cfg: cfg, Nets: mix.Nets,
				New: func() Scheduler { return mk(name, mix) }})
		}
	}
	outs, err := runSweep(jobs)
	if err != nil {
		return nil, err
	}
	stride := 1 + len(names)
	var out []MixOutcome
	for i := 0; i < len(outs); i += stride {
		base := outs[i].Res
		for _, o := range outs[i+1 : i+stride] {
			out = append(out, MixOutcome{
				Mix:       o.Mix,
				Scheduler: o.Scheduler,
				Speedup:   metrics.Speedup(base, o.Res),
				MemUtil:   o.Res.MemUtilization(),
				PEUtil:    o.Res.PEUtilization(),
				Splits:    o.Res.Splits,
			})
		}
	}
	return out, nil
}

// Fig7Data returns compute and memory-bandwidth utilization under the
// round-robin scheduler for every paper mix (paper Fig 7).
func Fig7Data(cfg Config) ([]MixOutcome, error) {
	return runMixes(cfg, 1, []string{"RR"}, func(string, *workload.Mix) Scheduler { return NewRR() })
}

// PrintFig7 renders Fig 7.
func PrintFig7(w io.Writer, cfg Config) error {
	rows, err := Fig7Data(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("mix", "compute util", "memory BW util")
	for _, r := range rows {
		t.AddRow(r.Mix, metrics.Pct(r.PEUtil), metrics.Pct(r.MemUtil))
	}
	_, err = fmt.Fprintf(w, "Fig 7: utilization under sub-layer round-robin scheduling\n%s", t)
	return err
}

// Fig8Data returns RR, Greedy and SJF speedups over sub-layer FIFO for
// every paper mix (paper Fig 8).
func Fig8Data(cfg Config) ([]MixOutcome, error) {
	return runMixes(cfg, 1, []string{"RR", "Greedy", "SJF"}, func(name string, _ *workload.Mix) Scheduler {
		switch name {
		case "RR":
			return NewRR()
		case "Greedy":
			return NewGreedy()
		default:
			return NewSJF()
		}
	})
}

// PrintFig8 renders Fig 8.
func PrintFig8(w io.Writer, cfg Config) error {
	rows, err := Fig8Data(cfg)
	if err != nil {
		return err
	}
	return printSpeedupTable(w, "Fig 8: baseline scheduling mechanisms, speedup over FIFO", rows)
}

// Fig14Data returns the AI-MT ablation — prefetching, +merging,
// +eviction — as speedup over FIFO per mix at batch 1 (paper Fig 14).
func Fig14Data(cfg Config) ([]MixOutcome, error) {
	return runMixes(cfg, 1, []string{"PF", "Merge", "All"}, func(name string, _ *workload.Mix) Scheduler {
		switch name {
		case "PF":
			return NewAIMT(cfg, PrefetchOnly())
		case "Merge":
			return NewAIMT(cfg, PrefetchMerge())
		default:
			return NewAIMT(cfg, AllMechanisms())
		}
	})
}

// PrintFig14 renders Fig 14.
func PrintFig14(w io.Writer, cfg Config) error {
	rows, err := Fig14Data(cfg)
	if err != nil {
		return err
	}
	return printSpeedupTable(w, "Fig 14: AI-MT speedup over network-serial execution (batch 1)", rows)
}

func printSpeedupTable(w io.Writer, title string, rows []MixOutcome) error {
	scheds := orderedSchedulers(rows)
	byMix := map[string]map[string]float64{}
	var mixes []string
	for _, r := range rows {
		if byMix[r.Mix] == nil {
			byMix[r.Mix] = map[string]float64{}
			mixes = append(mixes, r.Mix)
		}
		byMix[r.Mix][r.Scheduler] = r.Speedup
	}
	t := metrics.NewTable(append([]string{"mix"}, scheds...)...)
	for _, m := range mixes {
		cells := []string{m}
		for _, s := range scheds {
			cells = append(cells, metrics.F(byMix[m][s]))
		}
		t.AddRow(cells...)
	}
	geo := []string{"geomean"}
	for _, s := range scheds {
		var vals []float64
		for _, m := range mixes {
			vals = append(vals, byMix[m][s])
		}
		geo = append(geo, metrics.F(metrics.GeoMean(vals)))
	}
	t.AddRow(geo...)
	_, err := fmt.Fprintf(w, "%s\n%s", title, t)
	return err
}

func orderedSchedulers(rows []MixOutcome) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Scheduler] {
			seen[r.Scheduler] = true
			out = append(out, r.Scheduler)
		}
	}
	return out
}

// BatchPoint is one point of the Fig 15 batch-size sensitivity study.
type BatchPoint struct {
	// Mix is the annotated mix name.
	Mix string
	// Batch is the batch size.
	Batch int
	// MergeSpeedup and AllSpeedup are PF+Merge and full AI-MT speedups
	// over FIFO at this batch.
	MergeSpeedup, AllSpeedup float64
	// Splits counts halts in the full-AI-MT run.
	Splits int
}

// Fig15Batches are the batch sizes swept by Fig 15.
var Fig15Batches = []int{1, 2, 4, 8, 16, 32}

// Fig15Data sweeps batch size for the CNN+GNMT mixes, comparing
// prefetch+merge against the full design with early MB eviction
// (paper Fig 15). The input/output SRAM is assumed large enough for
// the features (paper §V-C), which the simulator models by not
// constraining feature residency.
func Fig15Data(cfg Config, batches []int) ([]BatchPoint, error) {
	if len(batches) == 0 {
		batches = Fig15Batches
	}
	var jobs []sweep.Job
	for _, spec := range workload.GNMTMixes() {
		for _, b := range batches {
			mix, err := BuildMix(cfg, spec, b)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s@batch%d", spec.Name, b)
			jobs = append(jobs,
				sweep.Job{Mix: label, Cfg: cfg, Nets: mix.Nets,
					New: func() Scheduler { return NewFIFO() }},
				sweep.Job{Mix: label, Cfg: cfg, Nets: mix.Nets,
					New: func() Scheduler { return NewAIMT(cfg, PrefetchMerge()) }},
				sweep.Job{Mix: label, Cfg: cfg, Nets: mix.Nets,
					New: func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }})
		}
	}
	outs, err := runSweep(jobs)
	if err != nil {
		return nil, err
	}
	var out []BatchPoint
	i := 0
	for _, spec := range workload.GNMTMixes() {
		for _, b := range batches {
			base, mg, all := outs[i].Res, outs[i+1].Res, outs[i+2].Res
			i += 3
			out = append(out, BatchPoint{
				Mix:          spec.Name,
				Batch:        b,
				MergeSpeedup: metrics.Speedup(base, mg),
				AllSpeedup:   metrics.Speedup(base, all),
				Splits:       all.Splits,
			})
		}
	}
	return out, nil
}

// PrintFig15 renders Fig 15.
func PrintFig15(w io.Writer, cfg Config) error {
	pts, err := Fig15Data(cfg, nil)
	if err != nil {
		return err
	}
	t := metrics.NewTable("mix", "batch", "PF+Merge", "AI-MT (All)", "splits")
	for _, p := range pts {
		t.AddRow(p.Mix, fmt.Sprint(p.Batch), metrics.F(p.MergeSpeedup), metrics.F(p.AllSpeedup), fmt.Sprint(p.Splits))
	}
	_, err = fmt.Fprintf(w, "Fig 15: batch-size sensitivity, speedup over FIFO\n%s", t)
	return err
}

// SRAMPoint is one point of the Fig 16 SRAM-capacity sensitivity study.
type SRAMPoint struct {
	// SRAM is the weight-buffer capacity.
	SRAM Bytes
	// Speedups keys scheduler name to speedup over FIFO at this size.
	Speedups map[string]float64
}

// Fig16Sizes are the weight-SRAM capacities swept by Fig 16.
var Fig16Sizes = []Bytes{256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 16 * MiB, 64 * MiB, 256 * MiB, 1 * GiB, 4 * GiB}

// Fig16Data sweeps the weight-SRAM capacity for the combined
// CNNs+GNMT mix executed iteratively (the continuous-arrival cloud
// scenario), comparing the naive compute-first order and the greedy
// mechanism — both with capacity-bounded prefetching — against full
// AI-MT (paper Fig 16). Speedups are over FIFO at the same capacity.
func Fig16Data(cfg Config, sizes []Bytes) ([]SRAMPoint, error) {
	if len(sizes) == 0 {
		sizes = Fig16Sizes
	}
	spec := PaperMixes()[3] // RN34+RN50+MN+GNMT
	var jobs []sweep.Job
	for _, sz := range sizes {
		c := cfg
		c.WeightSRAM = sz
		if err := c.Validate(); err != nil {
			return nil, err
		}
		mix, err := workload.Build(c, spec, workload.BuildOptions{Batch: 8, Iterations: 2})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%s@%s", mix.Name, arch.FormatBytes(sz))
		jobs = append(jobs,
			sweep.Job{Mix: label, Cfg: c, Nets: mix.Nets,
				New: func() Scheduler { return NewFIFO() }},
			sweep.Job{Mix: label, Scheduler: "ComputeFirst+PF", Cfg: c, Nets: mix.Nets,
				New: func() Scheduler { return NewComputeFirst(mix.MemHeavy) }},
			sweep.Job{Mix: label, Scheduler: "Greedy+PF", Cfg: c, Nets: mix.Nets,
				New: func() Scheduler { return NewGreedyPrefetch() }},
			sweep.Job{Mix: label, Scheduler: "AI-MT", Cfg: c, Nets: mix.Nets,
				New: func() Scheduler { return NewAIMT(c, AllMechanisms()) }})
	}
	outs, err := runSweep(jobs)
	if err != nil {
		return nil, err
	}
	var out []SRAMPoint
	for i, sz := range sizes {
		o := outs[i*4 : i*4+4]
		pt := SRAMPoint{SRAM: sz, Speedups: map[string]float64{}}
		for _, r := range o[1:] {
			pt.Speedups[r.Scheduler] = metrics.Speedup(o[0].Res, r.Res)
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintFig16 renders Fig 16.
func PrintFig16(w io.Writer, cfg Config) error {
	pts, err := Fig16Data(cfg, nil)
	if err != nil {
		return err
	}
	t := metrics.NewTable("weight SRAM", "ComputeFirst+PF", "Greedy+PF", "AI-MT")
	for _, p := range pts {
		t.AddRow(arch.FormatBytes(p.SRAM),
			metrics.F(p.Speedups["ComputeFirst+PF"]),
			metrics.F(p.Speedups["Greedy+PF"]),
			metrics.F(p.Speedups["AI-MT"]))
	}
	_, err = fmt.Fprintf(w, "Fig 16: SRAM-capacity sensitivity, speedup over FIFO (batch 8, iterated)\n%s", t)
	return err
}

// Fig10Data returns, per network, the per-layer prefetch SRAM demand
// estimate (paper Fig 10).
func Fig10Data(cfg Config) (map[string][]analysis.PrefetchDemand, error) {
	out := map[string][]analysis.PrefetchDemand{}
	for name, net := range nn.Zoo() {
		cn, err := Compile(net, cfg, 1)
		if err != nil {
			return nil, err
		}
		out[name] = analysis.PrefetchDemands(cn, cfg)
	}
	return out, nil
}

// PrintFig10 renders Fig 10 (per-network maxima plus the largest
// individual layers).
func PrintFig10(w io.Writer, cfg Config) error {
	data, err := Fig10Data(cfg)
	if err != nil {
		return err
	}
	var names []string
	for n := range data {
		names = append(names, n)
	}
	sort.Strings(names)
	t := metrics.NewTable("network", "max prefetch SRAM demand", "layer at max")
	for _, n := range names {
		d := data[n]
		maxI := 0
		for i := range d {
			if d[i].Bytes > d[maxI].Bytes {
				maxI = i
			}
		}
		t.AddRow(n, arch.FormatBytes(d[maxI].Bytes), d[maxI].Name)
	}
	_, err = fmt.Fprintf(w, "Fig 10: required prefetch SRAM buffer size (batch 1)\n%s", t)
	return err
}

// ServingPoint is one scheduler's result on the open-loop serving
// stream (extension experiment; the paper's introduction motivates
// multi-tenancy with exactly this cloud scenario).
type ServingPoint struct {
	// Scheduler is the policy name.
	Scheduler string
	// Makespan is the cycle the last request completed.
	Makespan Cycles
	// P50 and P99 are request-latency percentiles (finish - arrival),
	// estimated by the streaming histogram (<=1/64 relative error).
	P50, P99 Cycles
	// PEUtil is the PE busy fraction over the run.
	PEUtil float64
}

// ServingData runs a reproducible open-loop request stream (mixed
// CNN/RNN requests, exponential inter-arrival) under FIFO, PREMA and
// AI-MT, reporting tail latency and throughput. Latencies stream into
// a bounded-memory histogram rather than a per-request slice.
func ServingData(cfg Config) ([]ServingPoint, error) {
	stream, err := workload.OpenLoop(cfg,
		[]string{"RN34", "RN50", "MN", "GNMT"},
		workload.StreamOptions{Requests: 24, MeanGap: 50_000, Seed: 7})
	if err != nil {
		return nil, err
	}
	runs := []struct {
		name string
		mk   func() Scheduler
	}{
		{"FIFO", func() Scheduler { return NewFIFO() }},
		{"PREMA", func() Scheduler { return NewPREMA(nil) }},
		{"AI-MT", func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }},
	}
	var jobs []sweep.Job
	for _, r := range runs {
		jobs = append(jobs, sweep.Job{Mix: "serving", Scheduler: r.name, Cfg: cfg,
			Nets: stream.Nets, New: r.mk, Opts: RunOptions{Arrivals: stream.Arrivals}})
	}
	outs, err := runSweep(jobs)
	if err != nil {
		return nil, err
	}
	var out []ServingPoint
	for _, o := range outs {
		var h metrics.Histogram
		for _, lat := range metrics.Latencies(o.Res) {
			h.Record(lat)
		}
		out = append(out, ServingPoint{
			Scheduler: o.Scheduler,
			Makespan:  o.Res.Makespan,
			P50:       h.Quantile(50),
			P99:       h.Quantile(99),
			PEUtil:    o.Res.PEUtilization(),
		})
	}
	return out, nil
}

// PrintServing renders the open-loop serving comparison.
func PrintServing(w io.Writer, cfg Config) error {
	pts, err := ServingData(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("scheduler", "makespan", "p50 latency", "p99 latency", "PE util")
	for _, p := range pts {
		t.AddRow(p.Scheduler, fmt.Sprint(p.Makespan), fmt.Sprint(p.P50), fmt.Sprint(p.P99), metrics.Pct(p.PEUtil))
	}
	_, err = fmt.Fprintf(w, "Serving (extension): open-loop mixed request stream, 24 requests\n%s", t)
	return err
}

// LoadCurveData sweeps offered load over the default mixed CNN/RNN
// serving stream (Poisson arrivals, per-request deadlines) under
// FIFO, PREMA, AI-MT and EDF, from light traffic to past saturation.
// The request count is kept modest so the experiment regenerates
// quickly; see cmd/aimt-serve for production-scale sweeps.
func LoadCurveData(cfg Config) ([]ServeCurvePoint, error) {
	return ServeLoadCurve(cfg, DefaultServingClasses(), ServeStandardSchedulers(),
		ServeCurveOptions{
			Stream:  ServeStreamOptions{Requests: 300, Seed: 7},
			Workers: SweepParallelism(),
		})
}

// PrintLoadCurve renders the serving load sweep.
func PrintLoadCurve(w io.Writer, cfg Config) error {
	points, err := LoadCurveData(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Load curve (extension): mixed CNN/RNN serving, 300 requests per point\n"); err != nil {
		return err
	}
	return serve.PrintCurve(w, points)
}

// ClusterScaleChips are the chip counts swept by the clusterscale
// experiment.
var ClusterScaleChips = []int{1, 2, 4, 8}

// ClusterScaleLoad is the clusterscale experiment's fixed offered load
// in single-chip capacities: 2.5 means the stream demands two and a
// half chips' worth of service, so 1- and 2-chip clusters saturate
// while 4 and 8 chips have headroom.
const ClusterScaleLoad = 2.5

// ClusterScalePoint is one (policy, chip count) cell of the
// clusterscale experiment.
type ClusterScalePoint struct {
	// Policy is the routing policy name.
	Policy string
	// Chips is the cluster size.
	Chips int
	// Agg is the aggregate report over every request.
	Agg *ServeReport
	// Imbalance is the PE-load imbalance across chips.
	Imbalance float64
}

// ClusterScaleData holds offered load fixed at ClusterScaleLoad
// single-chip capacities and sweeps the cluster size under every
// routing policy (AI-MT on every chip): aggregate throughput must grow
// with the chip count while tail latency and SLA misses collapse once
// the cluster absorbs the load. The same request sequence (same seed)
// is routed at every cell, so cells differ only in cluster shape and
// policy.
func ClusterScaleData(cfg Config) ([]ClusterScalePoint, error) {
	classes := DefaultServingClasses()
	probe, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 1, MeanGap: 1, Seed: 7})
	if err != nil {
		return nil, err
	}
	gap := Cycles(probe.MeanService / ClusterScaleLoad)
	if gap < 1 {
		gap = 1
	}
	stream, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 320, MeanGap: gap, Seed: 7})
	if err != nil {
		return nil, err
	}
	spec := SchedulerSpec{Name: "AI-MT", New: func(c Config, _ *ServeStream) Scheduler { return NewAIMT(c, AllMechanisms()) }}
	var out []ClusterScalePoint
	for _, pol := range ClusterPolicies() {
		for _, chips := range ClusterScaleChips {
			res, err := ClusterServe(cfg, stream, spec, pol.New(), ClusterOptions{
				Chips:   chips,
				Workers: SweepParallelism(),
			})
			if err != nil {
				return nil, fmt.Errorf("clusterscale %s x%d: %w", pol.Name, chips, err)
			}
			out = append(out, ClusterScalePoint{
				Policy:    pol.Name,
				Chips:     chips,
				Agg:       res.Agg,
				Imbalance: res.Imbalance,
			})
		}
	}
	return out, nil
}

// PrintClusterScale renders the clusterscale experiment: one table per
// routing policy, chip count ascending.
func PrintClusterScale(w io.Writer, cfg Config) error {
	pts, err := ClusterScaleData(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Cluster scaling (extension): %d requests at %.1f single-chip loads, AI-MT per chip\n",
		320, ClusterScaleLoad); err != nil {
		return err
	}
	var cur string
	var t *metrics.Table
	flush := func() error {
		if t == nil {
			return nil
		}
		_, err := fmt.Fprintf(w, "policy %s\n%s\n", cur, t)
		return err
	}
	for _, p := range pts {
		if p.Policy != cur {
			if err := flush(); err != nil {
				return err
			}
			cur = p.Policy
			t = metrics.NewTable("chips", "p50", "p99", "p99.9", "miss rate", "req/Mcyc", "PE util", "imbalance")
		}
		t.AddRow(fmt.Sprint(p.Chips),
			fmt.Sprint(p.Agg.P50), fmt.Sprint(p.Agg.P99), fmt.Sprint(p.Agg.P999),
			metrics.Pct(p.Agg.MissRate), metrics.F(p.Agg.Throughput),
			metrics.Pct(p.Agg.PEUtil), metrics.F(p.Imbalance))
	}
	return flush()
}

// OverloadLoads are the offered loads swept by the overloadcurve
// experiment, in full-cluster capacities: 5.0 demands five times what
// the whole cluster can serve.
var OverloadLoads = []float64{0.8, 2.0, 3.5, 5.0}

// OverloadChips is the overloadcurve cluster size ceiling the
// autoscaler may grow into.
const OverloadChips = 2

// OverloadClasses returns the two-band serving mix of the overload
// experiments: the CNN class is the premium band (priority 1, never
// shed by admission control) and the RNN class is the batch band
// (priority 0, sheddable). Weights keep premium a minority of the
// offered work so that even at 5x saturation its demand fits within
// the cluster once batch is shed.
func OverloadClasses() []ServeClass {
	classes := DefaultServingClasses()
	classes[0].Priority = 1
	classes[0].Weight = 1
	classes[1].Priority = 0
	classes[1].Weight = 4
	return classes
}

// OverloadPoint is one load point of the overloadcurve experiment.
type OverloadPoint struct {
	// Load is the offered load in full-cluster capacities.
	Load float64
	// Res is the controlled cluster serving outcome at this load.
	Res *ClusterResult
}

// OverloadCurveData sweeps offered load from comfortable to 5x
// saturation through the full control plane — priority preemption on
// every chip, SLO-aware admission at the front door, elastic
// autoscaling between 1 and OverloadChips chips — and returns one
// point per load. Graceful degradation means the premium band's SLA
// miss rate stays flat across the sweep while the batch band is shed
// in growing, predictable proportion.
func OverloadCurveData(cfg Config) ([]OverloadPoint, error) {
	classes := OverloadClasses()
	probe, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 1, MeanGap: 1, Seed: 7})
	if err != nil {
		return nil, err
	}
	pol, err := ClusterPolicyByName("least-work")
	if err != nil {
		return nil, err
	}
	var out []OverloadPoint
	for _, load := range OverloadLoads {
		gap := Cycles(probe.MeanService / (load * float64(OverloadChips)))
		if gap < 1 {
			gap = 1
		}
		stream, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 300, MeanGap: gap, Seed: 7})
		if err != nil {
			return nil, err
		}
		res, err := ClusterServe(cfg, stream, ServePreemptiveAIMT(), pol.New(), ClusterOptions{
			Chips:   OverloadChips,
			Workers: SweepParallelism(),
			Control: ClusterControl{Admission: true, Autoscale: true},
		})
		if err != nil {
			return nil, fmt.Errorf("overloadcurve load %.1f: %w", load, err)
		}
		out = append(out, OverloadPoint{Load: load, Res: res})
	}
	return out, nil
}

// PrintOverloadCurve renders the overloadcurve experiment: one
// per-class degradation table per load point, plus the control-plane
// event counts.
func PrintOverloadCurve(w io.Writer, cfg Config) error {
	pts, err := OverloadCurveData(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Overload degradation (extension): admission + priorities + autoscale, %d requests per point, up to %d chips\n",
		300, OverloadChips); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "load %.1fx: shed %d of %d, scale-ups %d, scale-downs %d, active chips %d\n",
			p.Load, p.Res.Agg.Shed, p.Res.Agg.Requests, p.Res.ScaleUps, p.Res.ScaleDowns, p.Res.ActiveChips); err != nil {
			return err
		}
		t := metrics.NewTable("class", "prio", "offered", "shed", "served", "miss rate", "p99")
		for i, cs := range p.Res.Agg.PerClass {
			t.AddRow(cs.Class, fmt.Sprint(OverloadClasses()[i].Priority),
				fmt.Sprint(cs.Requests), fmt.Sprint(cs.Shed),
				fmt.Sprint(cs.Requests-cs.Shed),
				metrics.Pct(cs.MissRate), fmt.Sprint(cs.P99))
		}
		if _, err := fmt.Fprintf(w, "%s\n", t); err != nil {
			return err
		}
	}
	return nil
}

// TransformerMixData sweeps offered load over a mixed transformer/CNN
// serving stream — each transformer request is one prefill burst plus
// eight chained decode iterations with per-token deadlines — under
// FIFO, PREMA, AI-MT and EDF. The phased points exercise the MB/CB
// co-execution opportunity the paper targets: prefill entries are
// compute-bound while decode entries are memory-bound, so schedulers
// that overlap the two phases across requests win on both tail
// latency and tokens per megacycle.
func TransformerMixData(cfg Config) ([]ServeCurvePoint, error) {
	return ServeLoadCurve(cfg, TransformerServingClasses(), ServeStandardSchedulers(),
		ServeCurveOptions{
			Stream:  ServeStreamOptions{Requests: 120, Seed: 7},
			Workers: SweepParallelism(),
		})
}

// PrintTransformerMix renders the transformer/CNN mix load sweep with
// the per-phase latency and token-throughput columns.
func PrintTransformerMix(w io.Writer, cfg Config) error {
	points, err := TransformerMixData(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Transformer mix (extension): chat (prefill + 8 decode tokens) vs CNN, 120 requests per point\n"); err != nil {
		return err
	}
	return serve.PrintCurve(w, points)
}

// DecodeBatchSizes are the decode batch sizes swept by the decodebatch
// experiment.
var DecodeBatchSizes = []int{1, 4, 16}

// DecodeBatchLoad is the decodebatch experiment's fixed offered load in
// single-chip capacities.
const DecodeBatchLoad = 0.7

// DecodeBatchPoint is one batch-size point of the decodebatch
// experiment.
type DecodeBatchPoint struct {
	// Batch is the per-request batch size (concurrent sequences whose
	// decode steps share one weight fetch).
	Batch int
	// Rep is the AI-MT serving report at this batch size.
	Rep *ServeReport
}

// DecodeBatchCurveData holds offered load fixed at DecodeBatchLoad and
// sweeps the decode batch size under AI-MT: batching amortizes each
// decode iteration's KV-cache and weight traffic over more tokens, so
// tokens per megacycle must rise with the batch size while the
// per-token deadline ladder keeps latency honest.
func DecodeBatchCurveData(cfg Config) ([]DecodeBatchPoint, error) {
	var out []DecodeBatchPoint
	for _, batch := range DecodeBatchSizes {
		classes := []ServeClass{TransformerChatServeClass(8, batch)}
		probe, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 1, MeanGap: 1, Seed: 7})
		if err != nil {
			return nil, err
		}
		gap := Cycles(probe.MeanService / DecodeBatchLoad)
		if gap < 1 {
			gap = 1
		}
		stream, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 96, MeanGap: gap, Seed: 7})
		if err != nil {
			return nil, err
		}
		rep, err := ServeRun(cfg, stream, NewAIMT(cfg, AllMechanisms()), RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("decodebatch batch %d: %w", batch, err)
		}
		rep.Scheduler = "AI-MT"
		out = append(out, DecodeBatchPoint{Batch: batch, Rep: rep})
	}
	return out, nil
}

// PrintDecodeBatch renders the decode-batching curve: tokens per
// megacycle (and per second per chip at the configured frequency)
// against batch size, with the per-phase tails.
func PrintDecodeBatch(w io.Writer, cfg Config) error {
	pts, err := DecodeBatchCurveData(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Decode batching (extension): chat class, 8 decode tokens/request, AI-MT, load %.1f, 96 requests\n",
		DecodeBatchLoad); err != nil {
		return err
	}
	t := metrics.NewTable("batch", "tok/Mcyc", "tok/s/chip", "prefill p99", "decode p99", "decode miss", "PE util")
	for _, p := range pts {
		pre, dec := p.Rep.PerPhase[0], p.Rep.PerPhase[1]
		tokPerSec := p.Rep.TokensPerMcycle * float64(cfg.FreqHz) / 1e6
		t.AddRow(fmt.Sprint(p.Batch),
			metrics.F(p.Rep.TokensPerMcycle), metrics.F(tokPerSec),
			fmt.Sprint(pre.P99), fmt.Sprint(dec.P99),
			metrics.Pct(dec.MissRate), metrics.Pct(p.Rep.PEUtil))
	}
	_, err = fmt.Fprintf(w, "%s", t)
	return err
}

// LookaheadHorizons are the speculation horizons swept by the
// lookahead experiment, in cycles.
var LookaheadHorizons = []Cycles{1024, 4096, 16384}

// LookaheadBatches are the batch sizes swept by the lookahead
// experiment.
var LookaheadBatches = []int{1, 4}

// LookaheadPoint is one (mix, batch, horizon) cell of the lookahead
// experiment.
type LookaheadPoint struct {
	// Mix is the mix name annotated with the batch size.
	Mix string
	// Batch is the per-network batch size.
	Batch int
	// Horizon is the speculation depth in cycles.
	Horizon Cycles
	// AIMTMakespan and LookaheadMakespan are the exact completion
	// cycles under plain AI-MT and under Lookahead(AI-MT).
	AIMTMakespan, LookaheadMakespan Cycles
	// Speedup is AIMTMakespan / LookaheadMakespan.
	Speedup float64
}

// lookaheadMixSpecs returns the contended paper mixes — several
// compute-intensive networks racing one memory-intensive network for
// block SRAM. These are the mixes where AI-MT's static issue
// heuristics face genuinely ambiguous fetch decisions, so forward
// simulation has room to improve on them; in the two-network mixes the
// contested decisions are rare and short horizons can even mislead.
func lookaheadMixSpecs() []workload.Spec {
	var out []workload.Spec
	for _, s := range PaperMixes() {
		if len(s.Compute) > 1 {
			out = append(out, s)
		}
	}
	return out
}

// LookaheadData runs the contended paper mixes under plain AI-MT and
// under Lookahead(AI-MT) at every horizon, returning the exact
// makespans. Lookahead commits a speculative decision only when the
// forward simulation shows a strict progress win and otherwise defers
// to the inner policy, so on these mixes its makespan is never worse
// than AI-MT's and strictly better where speculation pays.
func LookaheadData(cfg Config) ([]LookaheadPoint, error) {
	var jobs []sweep.Job
	for _, batch := range LookaheadBatches {
		for _, spec := range lookaheadMixSpecs() {
			mix, err := BuildMix(cfg, spec, batch)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s@batch%d", mix.Name, batch)
			jobs = append(jobs, sweep.Job{Mix: label, Cfg: cfg, Nets: mix.Nets,
				New: func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }})
			for _, h := range LookaheadHorizons {
				jobs = append(jobs, sweep.Job{Mix: label, Cfg: cfg, Nets: mix.Nets,
					New: func() Scheduler { return NewLookahead(NewAIMT(cfg, AllMechanisms()), h) }})
			}
		}
	}
	outs, err := runSweep(jobs)
	if err != nil {
		return nil, err
	}
	stride := 1 + len(LookaheadHorizons)
	var out []LookaheadPoint
	i := 0
	for _, batch := range LookaheadBatches {
		for range lookaheadMixSpecs() {
			base := outs[i].Res
			for j, h := range LookaheadHorizons {
				o := outs[i+1+j]
				out = append(out, LookaheadPoint{
					Mix:               o.Mix,
					Batch:             batch,
					Horizon:           h,
					AIMTMakespan:      base.Makespan,
					LookaheadMakespan: o.Res.Makespan,
					Speedup:           metrics.Speedup(base, o.Res),
				})
			}
			i += stride
		}
	}
	return out, nil
}

// PrintLookahead renders the lookahead experiment: exact makespans so
// the never-worse property is visible cycle by cycle.
func PrintLookahead(w io.Writer, cfg Config) error {
	pts, err := LookaheadData(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Speculative lookahead (extension): forward-simulated contested fetches vs AI-MT, contended mixes\n"); err != nil {
		return err
	}
	t := metrics.NewTable("mix", "horizon", "AI-MT makespan", "Lookahead makespan", "speedup")
	for _, p := range pts {
		t.AddRow(p.Mix, fmt.Sprint(p.Horizon),
			fmt.Sprint(p.AIMTMakespan), fmt.Sprint(p.LookaheadMakespan),
			metrics.F(p.Speedup))
	}
	_, err = fmt.Fprintf(w, "%s", t)
	return err
}

// SpatialData returns, per zoo network, the mean spatial MAC
// utilization of the weight-stationary mapping — the §VI-B headroom a
// spatial co-execution extension could reclaim.
func SpatialData(cfg Config) (map[string]float64, error) {
	out := map[string]float64{}
	for name, net := range nn.Zoo() {
		out[name] = analysis.MeanSpatialUtil(analysis.SpatialUtilization(net, cfg))
	}
	return out, nil
}

// PrintSpatial renders the spatial-utilization analysis.
func PrintSpatial(w io.Writer, cfg Config) error {
	data, err := SpatialData(cfg)
	if err != nil {
		return err
	}
	var names []string
	for n := range data {
		names = append(names, n)
	}
	sort.Strings(names)
	t := metrics.NewTable("network", "mean spatial MAC utilization")
	for _, n := range names {
		t.AddRow(n, metrics.Pct(data[n]))
	}
	_, err = fmt.Fprintf(w, "Spatial utilization (extension, paper SVI-B headroom)\n%s", t)
	return err
}

// PrintTable1 renders the hardware parameters (paper Table I).
func PrintTable1(w io.Writer, cfg Config) error {
	t := metrics.NewTable("parameter", "value")
	t.AddRow("Processing Element Dimension", fmt.Sprintf("%dx%d", cfg.PEDim, cfg.PEDim))
	t.AddRow("# Processing Element Array", fmt.Sprint(cfg.NumArrays))
	t.AddRow("Frequency", fmt.Sprintf("%.0f GHz", float64(cfg.FreqHz)/1e9))
	t.AddRow("Memory Bandwidth", fmt.Sprintf("%.0f GB/s", float64(cfg.MemBandwidth)/1e9))
	t.AddRow("On-Chip SRAM Size (Input/Output)", arch.FormatBytes(cfg.IOSRAM))
	t.AddRow("On-Chip SRAM Size (Weight)", arch.FormatBytes(cfg.WeightSRAM))
	_, err := fmt.Fprintf(w, "Table I: hardware and architecture parameters\n%s", t)
	return err
}

// Table2Row is one workload row of the paper's Table II.
type Table2Row struct {
	// Name is the network's short name.
	Name string
	// FC and Conv are the weight-layer counts (depthwise convolutions
	// count as CONV, as in the paper).
	FC, Conv int
	// Weights is the total weight-element count.
	Weights int64
}

// Table2Rows returns the workload configurations (paper Table II).
func Table2Rows() []Table2Row {
	var rows []Table2Row
	for _, name := range []string{"RN34", "RN50", "VGG16", "MN", "GNMT"} {
		net, err := nn.ByName(name)
		if err != nil {
			panic(err) // zoo names are static
		}
		c := net.CountByType()
		rows = append(rows, Table2Row{
			Name:    net.Name,
			FC:      c[nn.FC],
			Conv:    c[nn.Conv] + c[nn.DWConv],
			Weights: net.TotalWeights(),
		})
	}
	return rows
}

// PrintTable2 renders Table II.
func PrintTable2(w io.Writer) error {
	t := metrics.NewTable("name", "FC layers", "CONV layers", "weights", "batch")
	for _, r := range Table2Rows() {
		t.AddRow(r.Name, fmt.Sprint(r.FC), fmt.Sprint(r.Conv), fmt.Sprint(r.Weights), "1-32")
	}
	_, err := fmt.Fprintf(w, "Table II: neural network workloads\n%s", t)
	return err
}

// Table3Rows returns the power/area estimates for the on-chip memory
// blocks (paper Table III) assuming the given number of co-resident
// networks (the paper uses five).
func Table3Rows(cfg Config, networks int) []power.Row {
	return power.Table3(cfg, networks)
}

// PrintTable3 renders Table III.
func PrintTable3(w io.Writer, cfg Config) error {
	rows := Table3Rows(cfg, 5)
	if _, err := fmt.Fprintln(w, "Table III: power and area of on-chip memory blocks (CACTI-calibrated)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "AI-MT structure power overhead: %s of on-chip memory total\n",
		metrics.Pct(power.OverheadFraction(rows)))
	return err
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the short handle, e.g. "fig14".
	ID string
	// Title describes the experiment.
	Title string
	// Run regenerates the experiment, writing its rows to w.
	Run func(w io.Writer, cfg Config) error
}

// Experiments returns every regenerable table and figure, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Hardware and architecture parameters", Run: func(w io.Writer, cfg Config) error { return PrintTable1(w, cfg) }},
		{ID: "table2", Title: "Neural network workloads", Run: func(w io.Writer, _ Config) error { return PrintTable2(w) }},
		{ID: "fig5", Title: "VGG16 compute vs memory latency per layer", Run: PrintFig5},
		{ID: "fig7", Title: "Utilization under round-robin scheduling", Run: PrintFig7},
		{ID: "fig8", Title: "Baseline scheduling speedups", Run: PrintFig8},
		{ID: "fig10", Title: "Required prefetch SRAM per layer", Run: PrintFig10},
		{ID: "fig14", Title: "AI-MT speedup ablation", Run: PrintFig14},
		{ID: "fig15", Title: "Batch-size sensitivity", Run: PrintFig15},
		{ID: "fig16", Title: "SRAM-capacity sensitivity", Run: PrintFig16},
		{ID: "table3", Title: "Power and area overheads", Run: PrintTable3},
		{ID: "serving", Title: "Open-loop serving latency (extension)", Run: PrintServing},
		{ID: "loadcurve", Title: "Serving load sweep with SLA tracking (extension)", Run: PrintLoadCurve},
		{ID: "clusterscale", Title: "Cluster scaling: throughput and tail latency vs chip count (extension)", Run: PrintClusterScale},
		{ID: "overloadcurve", Title: "Overload degradation: admission, priorities and autoscaling under saturation (extension)", Run: PrintOverloadCurve},
		{ID: "transformermix", Title: "Transformer/CNN mix: phase-aware serving load sweep (extension)", Run: PrintTransformerMix},
		{ID: "decodebatch", Title: "Decode batching: tokens per megacycle vs batch size (extension)", Run: PrintDecodeBatch},
		{ID: "lookahead", Title: "Speculative lookahead: forward-simulated contested fetches vs AI-MT (extension)", Run: PrintLookahead},
		{ID: "spatial", Title: "Spatial PE utilization headroom (extension)", Run: PrintSpatial},
	}
}

// IdealBound returns max(total CB, total MB) cycles for a set of
// compiled networks — the makespan lower bound any schedule must obey,
// used in reports and tests.
func IdealBound(nets []*Compiled) Cycles {
	var cb, mb Cycles
	for _, cn := range nets {
		s := cn.Stats()
		cb += s.CBCycles
		mb += s.MBCycles
	}
	if mb > cb {
		return mb
	}
	return cb
}
