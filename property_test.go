package aimt

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Property tests: over seeded random small networks and mixes, every
// scheduling policy must (a) satisfy the machine-model invariants and
// (b) execute the identical multiset of memory and compute blocks with
// the same total work — policies reorder work, they never change it.

// blockTrace records the multiset of completed blocks per engine.
type blockTrace struct {
	mbs, cbs []string
}

func (bt *blockTrace) Event(engine, name string, net, layer, iter int, start, end Cycles) {
	key := fmt.Sprintf("%d/%d/%d", net, layer, iter)
	switch {
	case engine == "mem":
		bt.mbs = append(bt.mbs, key)
	case engine == "pe" && !strings.HasPrefix(name, "CB(split)"):
		bt.cbs = append(bt.cbs, key)
	}
}

func (bt *blockTrace) sorted() (mbs, cbs []string) {
	mbs = append([]string(nil), bt.mbs...)
	cbs = append([]string(nil), bt.cbs...)
	sort.Strings(mbs)
	sort.Strings(cbs)
	return mbs, cbs
}

// randomNetwork grows a small conv/FC chain from the seeded source.
func randomNetwork(r *rand.Rand, name string) (*Network, error) {
	b := NewNetwork(name, 1+r.Intn(3), 8, 8)
	for i := 0; i < r.Intn(3); i++ {
		b.Conv(fmt.Sprintf("c%d", i), 2+r.Intn(8), 3, 1, 1)
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		b.FC(fmt.Sprintf("f%d", i), 2+r.Intn(30))
	}
	return b.Build()
}

// allPolicies returns a fresh instance of every scheduling policy,
// keyed by label.
func allPolicies(cfg Config, nets int) []struct {
	name string
	mk   func() Scheduler
} {
	return []struct {
		name string
		mk   func() Scheduler
	}{
		{"FIFO", func() Scheduler { return NewFIFO() }},
		{"SerialFIFO", func() Scheduler { return NewSerialFIFO() }},
		{"RR", func() Scheduler { return NewRR() }},
		{"Greedy", func() Scheduler { return NewGreedy() }},
		{"Greedy+PF", func() Scheduler { return NewGreedyPrefetch() }},
		{"SJF", func() Scheduler { return NewSJF() }},
		{"ComputeFirst", func() Scheduler { return NewComputeFirst(make([]bool, nets)) }},
		{"PREMA", func() Scheduler { return NewPREMA(nil) }},
		{"AI-MT(PF)", func() Scheduler { return NewAIMT(cfg, PrefetchOnly()) }},
		{"AI-MT(PF+Merge)", func() Scheduler { return NewAIMT(cfg, PrefetchMerge()) }},
		{"AI-MT(All)", func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }},
		{"EDF", func() Scheduler { return NewEDF(propertyDeadlines(nets)) }},
		{"AI-MT+EDF", func() Scheduler {
			return NewAIMT(cfg, AllMechanisms()).SetDeadlines(propertyDeadlines(nets))
		}},
	}
}

// propertyDeadlines fabricates distinct per-network deadlines (latest
// first, so deadline order inverts instance order) to exercise the
// deadline-aware policies' reordering.
func propertyDeadlines(nets int) []Cycles {
	dl := make([]Cycles, nets)
	for i := range dl {
		dl[i] = Cycles(nets-i) * 100_000
	}
	return dl
}

func TestPropertyPoliciesAgreeOnWork(t *testing.T) {
	cfg := scenarioConfig(t, 256)
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			var nets []*Compiled
			for i := 0; i < 1+r.Intn(3); i++ {
				net, err := randomNetwork(r, fmt.Sprintf("s%dn%d", seed, i))
				if err != nil {
					t.Fatal(err)
				}
				cn, err := Compile(net, cfg, 1+r.Intn(2))
				if err != nil {
					t.Fatal(err)
				}
				nets = append(nets, cn)
			}

			type agreed struct {
				mbs, cbs         []string
				memBusy, cbWork  Cycles
				mbCount, cbCount int
			}
			var want *agreed
			var wantName string
			ideal := IdealBound(nets)
			for _, p := range allPolicies(cfg, len(nets)) {
				var tr blockTrace
				res, err := Run(cfg, nets, p.mk(), RunOptions{CheckInvariants: true, Tracer: &tr})
				if err != nil {
					t.Fatalf("%s: %v", p.name, err)
				}
				mbs, cbs := tr.sorted()
				got := &agreed{
					mbs: mbs, cbs: cbs,
					memBusy: res.MemBusy,
					cbWork:  res.PEBusy - Cycles(res.Splits)*cfg.FillLatency,
					mbCount: res.MBCount, cbCount: res.CBCount,
				}
				if res.Makespan < ideal {
					t.Errorf("%s: makespan %d below the ideal bound %d", p.name, res.Makespan, ideal)
				}
				if len(got.mbs) != got.mbCount || len(got.cbs) != got.cbCount {
					t.Errorf("%s: traced %d MBs / %d CBs, result counts %d / %d",
						p.name, len(got.mbs), len(got.cbs), got.mbCount, got.cbCount)
				}
				if want == nil {
					want, wantName = got, p.name
					continue
				}
				if !slicesEqual(got.mbs, want.mbs) {
					t.Errorf("%s and %s executed different MB multisets", p.name, wantName)
				}
				if !slicesEqual(got.cbs, want.cbs) {
					t.Errorf("%s and %s executed different CB multisets", p.name, wantName)
				}
				if got.memBusy != want.memBusy {
					t.Errorf("%s memory work %d != %s's %d", p.name, got.memBusy, wantName, want.memBusy)
				}
				if got.cbWork != want.cbWork {
					t.Errorf("%s compute work %d (net of refills) != %s's %d", p.name, got.cbWork, wantName, want.cbWork)
				}
			}
		})
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
