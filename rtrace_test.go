package aimt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aimt/internal/trace"
)

// assertSpanReconciles checks the attribution invariant on one span:
// every entry's segments partition [Arrive, Finish) exactly, the
// entry intervals tile the same window contiguously, and the
// request-level totals sum exactly to the end-to-end latency.
func assertSpanReconciles(t *testing.T, sp RequestSpan) {
	t.Helper()
	if sp.Shed {
		if len(sp.Entries) != 0 || sp.Latency != 0 || sp.Chip != -1 {
			t.Errorf("req %d: shed span carries entries=%d latency=%d chip=%d", sp.Req, len(sp.Entries), sp.Latency, sp.Chip)
		}
		return
	}
	if sp.Latency != sp.Finish-sp.Arrive {
		t.Errorf("req %d: latency %d != finish-arrive %d", sp.Req, sp.Latency, sp.Finish-sp.Arrive)
	}
	var reqSum Cycles
	for _, s := range sp.Totals {
		reqSum += s.Cycles
	}
	if reqSum != sp.Latency {
		t.Errorf("req %d: segment totals sum to %d, latency is %d", sp.Req, reqSum, sp.Latency)
	}
	for _, e := range sp.Entries {
		var entrySum Cycles
		for _, s := range e.Segments {
			entrySum += s.Cycles
		}
		if want := e.Finish - e.Arrive; entrySum != want {
			t.Errorf("req %d entry %d: segments sum to %d, window is %d", sp.Req, e.Entry, entrySum, want)
		}
		at := e.Arrive
		for _, iv := range e.Intervals {
			if iv.Start != at {
				t.Errorf("req %d entry %d: interval gap at %d (next starts %d)", sp.Req, e.Entry, at, iv.Start)
			}
			if iv.End <= iv.Start {
				t.Errorf("req %d entry %d: empty interval [%d,%d)", sp.Req, e.Entry, iv.Start, iv.End)
			}
			at = iv.End
		}
		if at != e.Finish {
			t.Errorf("req %d entry %d: intervals end at %d, window ends %d", sp.Req, e.Entry, at, e.Finish)
		}
	}
	// Chained entries telescope: the first entry starts at the request
	// arrival and each successor starts where its predecessor ended.
	if len(sp.Entries) > 0 {
		if sp.Entries[0].Arrive != sp.Arrive {
			t.Errorf("req %d: head entry arrives %d, request arrives %d", sp.Req, sp.Entries[0].Arrive, sp.Arrive)
		}
		for i := 1; i < len(sp.Entries); i++ {
			if sp.Entries[i].Arrive != sp.Entries[i-1].Finish {
				t.Errorf("req %d: entry %d arrives %d, predecessor finished %d",
					sp.Req, i, sp.Entries[i].Arrive, sp.Entries[i-1].Finish)
			}
		}
		if sp.Entries[len(sp.Entries)-1].Finish != sp.Finish {
			t.Errorf("req %d: last entry finishes %d, request finishes %d",
				sp.Req, sp.Entries[len(sp.Entries)-1].Finish, sp.Finish)
		}
	}
}

// TestRequestSpansReconcile drives the single-chip serving path under
// every standard scheduler and both stream mixes, and checks that the
// attributed spans account for every cycle: per-entry segments sum
// exactly to the entry window, intervals tile it contiguously, and
// request totals sum exactly to end-to-end latency — the "no
// unexplained cycles" contract of the tracer.
func TestRequestSpansReconcile(t *testing.T) {
	cfg := PaperConfig()
	mixes := []struct {
		name    string
		classes []ServeClass
	}{
		{"cnn-rnn", DefaultServingClasses()},
		{"transformer", TransformerServingClasses()},
	}
	for _, mix := range mixes {
		s, err := NewServeStream(cfg, mix.classes, ServeStreamOptions{Requests: 120, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range ServeStandardSchedulers() {
			spec := spec
			t.Run(mix.name+"/"+spec.Name, func(t *testing.T) {
				col := NewRequestTraceCollector(len(s.Nets))
				res, err := Run(cfg, s.Nets, spec.New(cfg, s), RunOptions{
					Arrivals:   s.Arrivals,
					ChainAfter: s.ChainAfter,
					Tracer:     col,
				})
				if err != nil {
					t.Fatal(err)
				}
				spans := BuildRequestSpans(s, res, spec.Name, col)
				if len(spans) != s.Requests {
					t.Fatalf("%d spans for %d requests", len(spans), s.Requests)
				}
				entries := 0
				for _, sp := range spans {
					assertSpanReconciles(t, sp)
					entries += len(sp.Entries)
				}
				if entries != len(s.Nets) {
					t.Errorf("spans cover %d entries, stream has %d", entries, len(s.Nets))
				}
			})
		}
	}
}

// TestClusterSpansReconcile repeats the reconciliation check on the
// cluster path — routing policies, admission control and preemptive
// scheduling included — where spans additionally carry the chip
// choice, the dispatcher's ETA prediction, and shed verdicts.
func TestClusterSpansReconcile(t *testing.T) {
	cfg := PaperConfig()
	classes := DefaultServingClasses()
	classes[0].Priority = 1
	s, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 150, MeanGap: 400, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, polName := range []string{"least-work", "deadline"} {
		for _, ctl := range []ClusterControl{{}, {Admission: true}} {
			name := polName
			if ctl.Admission {
				name += "/admission"
			}
			ctl := ctl
			t.Run(name, func(t *testing.T) {
				pol, err := ClusterPolicyByName(polName)
				if err != nil {
					t.Fatal(err)
				}
				st := NewRequestTraceStore(RequestTraceOptions{SampleEvery: 1})
				res, err := ClusterServe(cfg, s, ServePreemptiveAIMT(), pol.New(), ClusterOptions{
					Chips:   2,
					Control: ctl,
					Trace:   st,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Spans) != s.Requests {
					t.Fatalf("%d spans for %d requests", len(res.Spans), s.Requests)
				}
				shed := 0
				for _, sp := range res.Spans {
					assertSpanReconciles(t, sp)
					if sp.Shed {
						shed++
						continue
					}
					if sp.Chip < 0 || sp.Chip >= 2 {
						t.Errorf("req %d on invalid chip %d", sp.Req, sp.Chip)
					}
					if sp.ETA == 0 {
						t.Errorf("req %d: no dispatcher ETA recorded", sp.Req)
					}
				}
				if shed != res.ShedCount {
					t.Errorf("spans mark %d shed, result says %d", shed, res.ShedCount)
				}
				total, storeShed, _ := st.Totals()
				if total+storeShed != s.Requests {
					t.Errorf("store holds %d+%d spans, want %d", total, storeShed, s.Requests)
				}
			})
		}
	}
}

// requestTraceGoldenPath holds the merged Perfetto export golden. The
// name deliberately avoids the bare .golden suffix, which
// TestGoldenFilesComplete reserves for experiment outputs.
const requestTraceGoldenPath = "testdata/requesttrace.golden.json"

// traceGoldenRun is the fixed-seed scenario shared by the golden and
// the surface-agreement test: small enough to run in milliseconds,
// overloaded enough to produce misses and interesting attribution.
func traceGoldenRun(t *testing.T) *ClusterTraceRun {
	t.Helper()
	var spec SchedulerSpec
	for _, s := range ServeStandardSchedulers() {
		if s.Name == "AI-MT" {
			spec = s
		}
	}
	tr, err := ClusterTraceRequests(PaperConfig(), DefaultServingClasses(), spec, 60, 2, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenRequestTrace pins the merged Perfetto/Chrome export —
// engine occupancy tracks overlaid with tail-exemplar request tracks
// — byte-for-byte at a fixed seed. Regenerate after an intentional
// change with:
//
//	go test -run TestGoldenRequestTrace -update
func TestGoldenRequestTrace(t *testing.T) {
	tr := traceGoldenRun(t)
	var buf bytes.Buffer
	if err := trace.WriteChromeTracks(&buf, tr.Tracks); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(requestTraceGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(requestTraceGoldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(requestTraceGoldenPath)
	if err != nil {
		t.Fatalf("no golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("merged trace export drifted from %s (use -update if intentional); got %d bytes, want %d",
			requestTraceGoldenPath, buf.Len(), len(want))
	}
}

// TestRequestTraceSurfacesAgree checks that the three views of one
// run — the in-process store, the /requests JSON endpoint, and the
// merged Perfetto export — agree on the worst request.
func TestRequestTraceSurfacesAgree(t *testing.T) {
	tr := traceGoldenRun(t)
	worst, ok := tr.Store.Worst()
	if !ok {
		t.Fatal("no exemplars retained")
	}
	assertSpanReconciles(t, worst)

	mux := http.NewServeMux()
	AttachRequestTraces(mux, tr.Store)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Requests  int `json:"requests"`
		Exemplars []struct {
			Req     int `json:"req"`
			Latency int `json:"latency"`
		} `json:"exemplars"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Exemplars) == 0 {
		t.Fatal("/requests serves no exemplars")
	}
	if got := body.Exemplars[0]; got.Req != worst.Req || Cycles(got.Latency) != worst.Latency {
		t.Errorf("/requests worst exemplar req %d latency %d, store says req %d latency %d",
			got.Req, got.Latency, worst.Req, worst.Latency)
	}
	total, _, _ := tr.Store.Totals()
	if body.Requests != total {
		t.Errorf("/requests reports %d requests, store says %d", body.Requests, total)
	}

	found := false
	for _, tk := range tr.Tracks {
		if tk.Process == "requests" && strings.Contains(tk.Thread, fmt.Sprintf("req %d ", worst.Req)) {
			found = true
			var sum Cycles
			for _, ev := range tk.Events {
				sum += ev.End - ev.Start
			}
			if sum != worst.Latency {
				t.Errorf("worst request's track slices sum to %d, latency is %d", sum, worst.Latency)
			}
		}
	}
	if !found {
		t.Errorf("worst request %d has no track in the merged export", worst.Req)
	}
}
