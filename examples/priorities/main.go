// Tenant priorities: a latency-sensitive service shares the
// accelerator with batch workloads. Two ways to favor it:
//
//   - PREMA-style preemptive time-multiplexing (related work the paper
//     contrasts in §VII-C): the favored tenant owns the machine, so it
//     finishes fast — but total throughput suffers because compute and
//     memory never overlap across tenants.
//   - Weighted AI-MT scheduling (this repository's extension): the
//     favored tenant's blocks are scanned first, but blocks from all
//     tenants still co-execute — priority nearly for free.
//
// The example favors one GNMT translation request co-located with a
// ResNet-34 vision stream and prints both policies' trade-offs.
package main

import (
	"fmt"
	"log"

	"aimt"
)

func main() {
	cfg := aimt.PaperConfig()
	mix, err := aimt.BuildMix(cfg, aimt.PaperMixes()[0], 1) // RN34 + GNMT
	if err != nil {
		log.Fatal(err)
	}
	favored := 1 // the first GNMT instance
	weights := make([]float64, len(mix.Nets))
	for i := range weights {
		weights[i] = 1
	}
	weights[favored] = 8

	type policy struct {
		name string
		s    aimt.Scheduler
	}
	policies := []policy{
		{"AI-MT uniform", aimt.NewAIMT(cfg, aimt.AllMechanisms())},
		{"AI-MT weighted", aimt.NewAIMT(cfg, aimt.AllMechanisms()).SetPriorities(weights)},
		{"PREMA weighted", aimt.NewPREMA(weights)},
	}

	fmt.Printf("favoring tenant %d (%s) in mix %s\n\n", favored, mix.Nets[favored].Name, mix.Name)
	fmt.Printf("%-16s %16s %12s %9s\n", "policy", "tenant latency", "makespan", "PE util")
	for _, p := range policies {
		res, err := aimt.Run(cfg, mix.Nets, p.s, aimt.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %16d %12d %8.1f%%\n",
			p.name, res.NetFinish[favored], res.Makespan, 100*res.PEUtilization())
	}
	fmt.Println("\nWeighted AI-MT cuts the favored tenant's latency at zero")
	fmt.Println("makespan cost; PREMA cuts it slightly further but pays for it")
	fmt.Println("with a much longer makespan (no cross-tenant overlap).")
}
