// Custom networks: bring your own model. The builder API constructs a
// network layer by layer with shape inference; Compile lowers it to
// the accelerator's sub-layer scheduling table, which this example
// inspects before co-locating the model with GNMT under AI-MT.
//
// The model here is a small edge-style detector backbone: a conv stem,
// a few residual stages, and a large embedding FC head — deliberately
// mixing compute- and memory-intensive layers.
package main

import (
	"fmt"
	"log"

	"aimt"
)

func main() {
	cfg := aimt.PaperConfig()

	b := aimt.NewNetwork("edge-detector", 3, 320, 320)
	b.Conv("stem", 32, 3, 2, 1)
	b.Conv("stage1a", 64, 3, 2, 1)
	entry := b.Mark()
	b.Conv("stage1b", 64, 3, 1, 1)
	mid := b.Conv("stage1c", 64, 3, 1, 1)
	b.Add(entry) // residual join consumed by the next layer
	_ = mid
	b.Conv("stage2a", 128, 3, 2, 1)
	b.Conv("stage2b", 128, 3, 1, 1)
	b.Pool("pool", 2, 2, 0)
	b.Conv("head", 256, 3, 1, 1)
	b.GlobalPool("gap")
	b.FC("embed", 8192) // large memory-intensive embedding head
	b.FC("classes", 1000)
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cn, err := aimt.Compile(net, cfg, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sub-layer scheduling table for %s (batch %d):\n\n", cn.Name, cn.Batch)
	fmt.Printf("%-10s %-7s %6s %9s %9s %10s %6s\n",
		"layer", "type", "iters", "MB cyc", "CB cyc", "weights", "class")
	for _, l := range cn.Layers {
		class := "compute"
		if l.MemoryIntensive() {
			class = "memory"
		}
		fmt.Printf("%-10s %-7s %6d %9d %9d %10d %6s\n",
			l.Name, l.Type, l.Iters, l.MBCycles, l.CBCycles, l.TotalWeightBytes(), class)
	}
	st := cn.Stats()
	fmt.Printf("\ntotals: %d sub-layers, %d MB cycles, %d CB cycles, %d weight bytes\n\n",
		st.SubLayers, st.MBCycles, st.CBCycles, st.WeightBytes)

	// Co-locate three detector streams with one GNMT instance —
	// roughly balancing the detector's compute against GNMT's memory
	// traffic — and compare policies.
	gnmt, err := aimt.Compile(aimt.GNMT(), cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	nets := []*aimt.Compiled{cn, cn, cn, gnmt}
	fifo, err := aimt.Run(cfg, nets, aimt.NewFIFO(), aimt.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	multi, err := aimt.Run(cfg, nets, aimt.NewAIMT(cfg, aimt.AllMechanisms()), aimt.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3x edge-detector + GNMT: FIFO %d cycles, AI-MT %d cycles (%.2fx)\n",
		fifo.Makespan, multi.Makespan, float64(fifo.Makespan)/float64(multi.Makespan))
}
