// Cloud serving: the multi-tenant scenario from the paper's
// introduction. A cloud provider co-locates heterogeneous inference
// services — vision CNNs and a translation RNN — on one accelerator
// and wants both high utilization and acceptable per-tenant latency.
//
// The example builds the paper's balanced co-location mixes, runs each
// under every scheduling policy, and reports throughput (makespan
// speedup over serial execution) alongside the fairness cost: how much
// the first tenant's own completion time degrades when sharing.
package main

import (
	"fmt"
	"log"

	"aimt"
)

func main() {
	cfg := aimt.PaperConfig()

	type policy struct {
		name string
		mk   func(mix *aimt.Mix) aimt.Scheduler
	}
	policies := []policy{
		{"FIFO", func(*aimt.Mix) aimt.Scheduler { return aimt.NewFIFO() }},
		{"RR", func(*aimt.Mix) aimt.Scheduler { return aimt.NewRR() }},
		{"Greedy", func(*aimt.Mix) aimt.Scheduler { return aimt.NewGreedy() }},
		{"AI-MT", func(*aimt.Mix) aimt.Scheduler { return aimt.NewAIMT(cfg, aimt.AllMechanisms()) }},
	}

	fmt.Printf("multi-tenant serving on %s\n\n", cfg)
	fmt.Printf("%-22s %-8s %10s %8s %8s %14s\n",
		"mix", "policy", "makespan", "speedup", "PE util", "tenant0 finish")

	for _, spec := range aimt.PaperMixes() {
		mix, err := aimt.BuildMix(cfg, spec, 1)
		if err != nil {
			log.Fatal(err)
		}
		var base aimt.Cycles
		for _, p := range policies {
			res, err := aimt.Run(cfg, mix.Nets, p.mk(mix), aimt.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if p.name == "FIFO" {
				base = res.Makespan
			}
			fmt.Printf("%-22s %-8s %10d %7.2fx %7.1f%% %14d\n",
				mix.Name, p.name, res.Makespan,
				float64(base)/float64(res.Makespan),
				100*res.PEUtilization(), res.NetFinish[0])
		}
		fmt.Println()
	}
}
