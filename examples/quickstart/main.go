// Quickstart: compile two networks from the model zoo, co-locate them
// on the simulated accelerator, and compare the AI-MT scheduler
// against the network-serial baseline.
package main

import (
	"fmt"
	"log"

	"aimt"
)

func main() {
	// Table I hardware: 16x 128x128 PE arrays, 450 GB/s HBM, 1 MB
	// weight SRAM.
	cfg := aimt.PaperConfig()

	// Lower a compute-intensive CNN and a memory-intensive RNN onto
	// the accelerator at batch 1.
	rn50, err := aimt.Compile(aimt.ResNet50(), cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	gnmt, err := aimt.Compile(aimt.GNMT(), cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	nets := []*aimt.Compiled{rn50, gnmt}

	// Run the same co-located workload under both policies.
	baseline, err := aimt.Run(cfg, nets, aimt.NewFIFO(), aimt.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	multi, err := aimt.Run(cfg, nets, aimt.NewAIMT(cfg, aimt.AllMechanisms()), aimt.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: ResNet50 + GNMT, batch 1 on %s\n\n", cfg)
	for _, r := range []*aimt.Result{baseline, multi} {
		fmt.Printf("%-12s makespan %8d cycles   PE %5.1f%%   memory %5.1f%%\n",
			r.Scheduler, r.Makespan, 100*r.PEUtilization(), 100*r.MemUtilization())
	}
	fmt.Printf("\nAI-MT speedup over network-serial execution: %.2fx\n",
		float64(baseline.Makespan)/float64(multi.Makespan))
}
