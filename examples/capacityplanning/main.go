// Capacity planning: how much on-chip weight SRAM does a multi-tenant
// accelerator actually need? The paper's key scalability claim
// (§V-D, Fig 16) is that AI-MT's eviction-aware scheduling reaches
// near-ideal performance with a 1 MB buffer, while simpler
// prefetch-everything policies need orders of magnitude more.
//
// This example sweeps the buffer size for a heavy mixed workload and
// prints the speedup each policy achieves at each size, plus the SRAM
// power cost from the CACTI-calibrated model — the data a deployment
// would use to pick the cheapest adequate configuration.
package main

import (
	"fmt"
	"log"

	"aimt"
	"aimt/internal/power"
	"aimt/internal/workload"
)

func main() {
	base := aimt.PaperConfig()
	spec := aimt.PaperMixes()[3] // RN34 + RN50 + MobileNet + GNMT

	sizes := []aimt.Bytes{
		256 * aimt.KiB, 512 * aimt.KiB, 1 * aimt.MiB, 2 * aimt.MiB,
		4 * aimt.MiB, 16 * aimt.MiB, 64 * aimt.MiB, 256 * aimt.MiB,
	}

	fmt.Printf("weight-SRAM capacity planning for mix %s (batch 8, iterated)\n\n", spec.Name)
	fmt.Printf("%10s %16s %12s %12s %12s\n", "SRAM", "static power", "Greedy+PF", "AI-MT", "vs ideal")

	for _, sz := range sizes {
		cfg := base
		cfg.WeightSRAM = sz
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		mix, err := workload.Build(cfg, spec, workload.BuildOptions{Batch: 8, Iterations: 2})
		if err != nil {
			log.Fatal(err)
		}
		fifo, err := aimt.Run(cfg, mix.Nets, aimt.NewFIFO(), aimt.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		greedy, err := aimt.Run(cfg, mix.Nets, aimt.NewGreedyPrefetch(), aimt.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		all, err := aimt.Run(cfg, mix.Nets, aimt.NewAIMT(cfg, aimt.AllMechanisms()), aimt.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ideal := aimt.IdealBound(mix.Nets)
		fmt.Printf("%10s %13.1f mW %11.2fx %11.2fx %11.2fx\n",
			fmtBytes(sz), power.SRAMPowerMW(sz),
			float64(fifo.Makespan)/float64(greedy.Makespan),
			float64(fifo.Makespan)/float64(all.Makespan),
			float64(all.Makespan)/float64(ideal))
	}
	fmt.Println("\n(vs ideal: AI-MT makespan over the max(total-compute, total-memory) lower bound)")
}

func fmtBytes(b aimt.Bytes) string {
	switch {
	case b >= aimt.MiB:
		return fmt.Sprintf("%d MiB", b/aimt.MiB)
	default:
		return fmt.Sprintf("%d KiB", b/aimt.KiB)
	}
}
