package aimt

import (
	"testing"

	"aimt/internal/workload"
)

// Whole-stack integration tests: compile real zoo networks, build
// balanced mixes, and simulate under every policy, asserting the
// cross-cutting invariants and the behaviours the per-package suites
// cannot see.

func allSchedulers(cfg Config, mix *workload.Mix) []Scheduler {
	return []Scheduler{
		NewFIFO(), NewRR(), NewGreedy(), NewSJF(),
		NewGreedyPrefetch(), NewComputeFirst(mix.MemHeavy),
		NewAIMT(cfg, PrefetchOnly()),
		NewAIMT(cfg, PrefetchMerge()),
		NewAIMT(cfg, AllMechanisms()),
	}
}

// TestEveryPolicyOnEveryMix runs the full policy matrix over the
// paper's eight mixes with SRAM invariant checking enabled.
func TestEveryPolicyOnEveryMix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	cfg := PaperConfig()
	for _, spec := range PaperMixes() {
		mix, err := BuildMix(cfg, spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		ideal := IdealBound(mix.Nets)
		var blocks int
		for _, cn := range mix.Nets {
			blocks += cn.Stats().SubLayers
		}
		for _, s := range allSchedulers(cfg, mix) {
			res, err := Run(cfg, mix.Nets, s, RunOptions{CheckInvariants: true})
			if err != nil {
				t.Errorf("%s under %s: %v", mix.Name, s.Name(), err)
				continue
			}
			if res.Makespan < ideal {
				t.Errorf("%s under %s: makespan %d below ideal bound %d",
					mix.Name, s.Name(), res.Makespan, ideal)
			}
			if res.MBCount != blocks || res.CBCount != blocks {
				t.Errorf("%s under %s: %d MBs / %d CBs, want %d each",
					mix.Name, s.Name(), res.MBCount, res.CBCount, blocks)
			}
			if peak := res.SRAMPeakBytes(); peak > cfg.WeightSRAM {
				t.Errorf("%s under %s: SRAM peak %d exceeds capacity %d",
					mix.Name, s.Name(), peak, cfg.WeightSRAM)
			}
			for i, fin := range res.NetFinish {
				if fin <= 0 || fin > res.Makespan {
					t.Errorf("%s under %s: net %d finish %d out of range",
						mix.Name, s.Name(), i, fin)
				}
			}
		}
	}
}

// TestDeterminism verifies that repeated runs of the same workload
// under the same policy produce identical results — the engine and
// all schedulers must be deterministic.
func TestDeterminism(t *testing.T) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewRR() },
		func() Scheduler { return NewAIMT(cfg, AllMechanisms()) },
	} {
		a, err := Run(cfg, mix.Nets, mk(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg, mix.Nets, mk(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan != b.Makespan || a.Splits != b.Splits || a.MBCount != b.MBCount {
			t.Errorf("%s nondeterministic: %d/%d vs %d/%d", a.Scheduler,
				a.Makespan, a.Splits, b.Makespan, b.Splits)
		}
	}
}

// TestMemoryBoundMixAdaptation: on a memory-bound mix (MN+GNMT), the
// full design must not fall behind merge-only — adaptive eviction
// keeps the channel saturated (DESIGN.md §5).
func TestMemoryBoundMixAdaptation(t *testing.T) {
	cfg := PaperConfig()
	mix, err := BuildMix(cfg, PaperMixes()[2], 1) // MN+GNMT
	if err != nil {
		t.Fatal(err)
	}
	mg, err := Run(cfg, mix.Nets, NewAIMT(cfg, PrefetchMerge()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(cfg, mix.Nets, NewAIMT(cfg, AllMechanisms()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Makespan > mg.Makespan {
		t.Errorf("All (%d) behind Merge (%d) on memory-bound mix", all.Makespan, mg.Makespan)
	}
}

// TestHostBoundWorkload: when PCIe transfers dominate (large inputs,
// small networks), AI-MT must stay within a modest factor of the
// serial baseline — prefetch must not hoard SRAM for input-blocked
// networks.
func TestHostBoundWorkload(t *testing.T) {
	cfg := PaperConfig()
	b := NewNetwork("tiny-vision", 3, 320, 320)
	b.Conv("stem", 32, 3, 2, 1)
	b.Conv("body", 64, 3, 2, 1)
	b.GlobalPool("gap")
	b.FC("head", 1000)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Compile(net, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	gnmt, err := Compile(GNMT(), cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	nets := []*Compiled{cn, cn, cn, gnmt}
	fifo, err := Run(cfg, nets, NewFIFO(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(cfg, nets, NewAIMT(cfg, AllMechanisms()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(all.Makespan) > 1.15*float64(fifo.Makespan) {
		t.Errorf("AI-MT %d vs FIFO %d on host-bound workload (>15%% regression)",
			all.Makespan, fifo.Makespan)
	}
}

// TestBatchSweepCompletes drives batches 1-32 across the GNMT mixes
// under the full design with invariant checks.
func TestBatchSweepCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	cfg := PaperConfig()
	for _, batch := range []int{1, 4, 16, 32} {
		for _, spec := range PaperMixes()[:4] {
			mix, err := BuildMix(cfg, spec, batch)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(cfg, mix.Nets, NewAIMT(cfg, AllMechanisms()), RunOptions{CheckInvariants: true}); err != nil {
				t.Errorf("%s batch %d: %v", spec.Name, batch, err)
			}
		}
	}
}

// TestTinySRAMCompletes pushes the weight buffer to its minimum (one
// FC memory block) under every policy that can run there.
func TestTinySRAMCompletes(t *testing.T) {
	cfg := PaperConfig()
	cfg.WeightSRAM = 256 * KiB // exactly one FC MB
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mix, err := BuildMix(cfg, PaperMixes()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allSchedulers(cfg, mix) {
		res, err := Run(cfg, mix.Nets, s, RunOptions{CheckInvariants: true})
		if err != nil {
			t.Errorf("%s at 256 KiB: %v", s.Name(), err)
			continue
		}
		if res.SRAMPeakBytes() > cfg.WeightSRAM {
			t.Errorf("%s: peak %d over capacity", s.Name(), res.SRAMPeakBytes())
		}
	}
}

// TestIteratedMixInvariants runs the Fig 16 iterated continuous-
// arrival workload (16 network instances) at batch 8 under full AI-MT
// with SRAM invariant checking — the heaviest single scenario in the
// suite.
func TestIteratedMixInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy scenario")
	}
	cfg := PaperConfig()
	mix, err := workload.Build(cfg, PaperMixes()[3], workload.BuildOptions{Batch: 8, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, mix.Nets, NewAIMT(cfg, AllMechanisms()), RunOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < IdealBound(mix.Nets) {
		t.Errorf("makespan %d below bound %d", res.Makespan, IdealBound(mix.Nets))
	}
	var blocks int
	for _, cn := range mix.Nets {
		blocks += cn.Stats().SubLayers
	}
	if res.CBCount != blocks {
		t.Errorf("executed %d CBs, want %d", res.CBCount, blocks)
	}
}

// TestArrivalStreamUnderAIMT runs an open-loop stream end to end: no
// request may start before it arrives, and every request completes.
func TestArrivalStreamUnderAIMT(t *testing.T) {
	cfg := PaperConfig()
	stream, err := workload.OpenLoop(cfg, []string{"MN", "GNMT"},
		workload.StreamOptions{Requests: 8, MeanGap: 30_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, stream.Nets, NewAIMT(cfg, AllMechanisms()),
		RunOptions{Arrivals: stream.Arrivals, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream.Nets {
		if res.NetFinish[i] < stream.Arrivals[i] {
			t.Errorf("request %d finished at %d before arriving at %d",
				i, res.NetFinish[i], stream.Arrivals[i])
		}
		if res.NetArrive[i] != stream.Arrivals[i] {
			t.Errorf("request %d arrival recorded as %d, want %d",
				i, res.NetArrive[i], stream.Arrivals[i])
		}
	}
}

// TestNoHostLink runs with the PCIe stage disabled (infinite
// bandwidth): networks finish exactly when their last CB does.
func TestNoHostLink(t *testing.T) {
	cfg := PaperConfig()
	cfg.HostBandwidth = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rn34, err := Compile(ResNet34(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, []*Compiled{rn34}, NewFIFO(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostBusy != 0 {
		t.Errorf("host busy %d with link disabled", res.HostBusy)
	}
	if res.NetFinish[0] != res.Makespan {
		t.Errorf("finish %d != makespan %d without output transfer", res.NetFinish[0], res.Makespan)
	}
}
