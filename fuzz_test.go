package aimt

import (
	"fmt"
	"testing"
)

// Native fuzz targets. `go test` always replays the seed corpus under
// testdata/fuzz/; `go test -fuzz FuzzCompile` (or FuzzStream) explores
// from there. Both targets accept arbitrary inputs: invalid shapes
// must surface as builder/compiler errors, never panics, and every
// accepted input must produce a consistent compile or an
// invariant-clean simulation.

// fuzzNetwork decodes a byte string into a layer chain: each byte
// appends one layer, its value selecting the type and size. Decoding
// is total — any byte sequence yields a construction attempt.
func fuzzNetwork(name string, inC, inH, inW uint8, spec []byte) (*Network, error) {
	b := NewNetwork(name, int(inC%8)+1, int(inH%32)+1, int(inW%32)+1)
	if len(spec) > 16 {
		spec = spec[:16]
	}
	for i, op := range spec {
		switch op % 5 {
		case 0:
			b.Conv(fmt.Sprintf("c%d", i), int(op/5)%8+1, 3, 1, 1)
		case 1:
			b.DWConv(fmt.Sprintf("d%d", i), 3, 1, 1)
		case 2:
			b.Pool(fmt.Sprintf("p%d", i), 2, 2, 0)
		case 3:
			b.FC(fmt.Sprintf("f%d", i), int(op/5)%32+1)
		case 4:
			b.GlobalPool(fmt.Sprintf("g%d", i))
		}
	}
	return b.Build()
}

// FuzzCompile drives random layer shapes through the network builder
// and the compiler: any input either errors cleanly or compiles to a
// valid table with positive iteration counts and non-negative block
// cycles.
func FuzzCompile(f *testing.F) {
	f.Add(uint8(3), uint8(32), uint8(32), uint8(1), []byte{0, 2, 3})
	f.Add(uint8(1), uint8(1), uint8(1), uint8(2), []byte{3, 3})
	f.Add(uint8(4), uint8(16), uint8(16), uint8(1), []byte{1, 4, 18})
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, inC, inH, inW, batch uint8, spec []byte) {
		net, err := fuzzNetwork("fuzz", inC, inH, inW, spec)
		if err != nil {
			return // invalid shape rejected by the builder: fine
		}
		cfg := Config{
			PEDim:        4,
			NumArrays:    4,
			FreqHz:       1_000_000_000,
			MemBandwidth: 1_000_000_000,
			WeightSRAM:   64 * 16,
			IOSRAM:       1 << 20,
			WeightBytes:  1,
			FillLatency:  2,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fixed config invalid: %v", err)
		}
		cn, err := Compile(net, cfg, int(batch%4)+1)
		if err != nil {
			return // compiler rejection: fine
		}
		if err := cn.Validate(); err != nil {
			t.Fatalf("compiled table fails its own validation: %v", err)
		}
		for _, l := range cn.Layers {
			if l.Iters <= 0 {
				t.Fatalf("layer %s: non-positive Iters %d", l.Name, l.Iters)
			}
			if l.MBCycles < 0 || l.CBCycles < 0 {
				t.Fatalf("layer %s: negative block cycles mb=%d cb=%d", l.Name, l.MBCycles, l.CBCycles)
			}
			if l.MBBlocks < 0 || l.MBBytes < 0 {
				t.Fatalf("layer %s: negative footprint blocks=%d bytes=%d", l.Name, l.MBBlocks, l.MBBytes)
			}
		}
		s := cn.Stats()
		if s.SubLayers <= 0 || s.MBCycles < 0 || s.CBCycles < 0 || s.WeightBytes < 0 {
			t.Fatalf("negative or empty stats: %+v", s)
		}
	})
}

// FuzzTransformerCompile drives random attention shapes — block,
// hidden, head, FFN, sequence and context counts, including the
// degenerate 0/1 cases — through the transformer builder and the
// compiler: any input either errors cleanly or compiles to a valid
// sub-layer table whose attention layers carry positive iteration
// counts and KV-cache-sized footprints.
func FuzzTransformerCompile(f *testing.F) {
	f.Add(uint8(2), uint8(64), uint8(4), uint8(128), uint8(16), uint8(16), uint8(128), uint8(1))
	f.Add(uint8(1), uint8(8), uint8(1), uint8(8), uint8(1), uint8(1), uint8(0), uint8(2))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(1), uint8(12), uint8(3), uint8(24), uint8(1), uint8(200), uint8(32), uint8(3))
	f.Add(uint8(3), uint8(96), uint8(12), uint8(255), uint8(32), uint8(32), uint8(255), uint8(0))
	f.Fuzz(func(t *testing.T, blocks, hidden, heads, ffn, seq, ctx, vocab, batch uint8) {
		cfg := Config{
			PEDim:        4,
			NumArrays:    4,
			FreqHz:       1_000_000_000,
			MemBandwidth: 1_000_000_000,
			WeightSRAM:   64 * 16,
			IOSRAM:       1 << 20,
			WeightBytes:  1,
			FillLatency:  2,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fixed config invalid: %v", err)
		}
		check := func(net *Network) {
			cn, err := Compile(net, cfg, int(batch%4)+1)
			if err != nil {
				return // compiler rejection: fine
			}
			if err := cn.Validate(); err != nil {
				t.Fatalf("%s: compiled table fails its own validation: %v", net.Name, err)
			}
			for _, l := range cn.Layers {
				if l.Iters <= 0 {
					t.Fatalf("%s layer %s: non-positive Iters %d", net.Name, l.Name, l.Iters)
				}
				if l.MBCycles < 0 || l.CBCycles < 0 || l.MBBlocks < 0 || l.MBBytes < 0 {
					t.Fatalf("%s layer %s: negative cycles or footprint: %+v", net.Name, l.Name, l)
				}
			}
		}

		// Whole-stack path: raw values through the transformer config;
		// invalid shapes (zero dims, Hidden not divisible by Heads,
		// Context < SeqLen) must error, never panic.
		net, err := Transformer(TransformerConfig{
			Name:    "fuzz-tf",
			Blocks:  int(blocks % 4),
			Hidden:  int(hidden),
			Heads:   int(heads % 16),
			FFN:     int(ffn),
			OutProj: int(vocab),
			SeqLen:  int(seq),
			Context: int(ctx),
		})
		if err == nil {
			check(net)
		}

		// Bare-layer path: a single attention layer with unvalidated
		// shape fields exercises the nn validator directly.
		b := NewNetwork("fuzz-attn", int(hidden%64)+1, 1, 1)
		b.Attn("a0", int(hidden%64)+1, int(heads), int(ctx), int(seq))
		if net, err := b.Build(); err == nil {
			check(net)
		}
	})
}

// FuzzStream drives random arrival streams through every scheduler
// with the machine-model invariant checker on: arbitrary request
// sequences, gaps, and deadlines must keep the invariants green and
// finish every network after its arrival.
func FuzzStream(f *testing.F) {
	f.Add([]byte{0, 1, 2}, uint8(0))
	f.Add([]byte{5, 5, 5, 5}, uint8(7))
	f.Add([]byte{255, 0, 128, 64, 32}, uint8(11))
	f.Add([]byte{9}, uint8(12))
	f.Fuzz(func(t *testing.T, picks []byte, schedPick uint8) {
		if len(picks) == 0 {
			return
		}
		if len(picks) > 10 {
			picks = picks[:10]
		}
		cfg := scenarioConfig(t, 8)
		protos := []*Compiled{
			block("comp", cfg, 2, 9, 3, 1),
			block("mem", cfg, 9, 2, 3, 2),
			block("mix", cfg, 5, 5, 2, 1),
		}
		var nets []*Compiled
		var arrivals, deadlines []Cycles
		var at Cycles
		for _, b := range picks {
			nets = append(nets, protos[int(b)%len(protos)])
			at += Cycles(b) * 7
			arrivals = append(arrivals, at)
			deadlines = append(deadlines, at+Cycles(b%5)*100+1)
		}
		policies := allPolicies(cfg, len(nets))
		policies = append(policies,
			struct {
				name string
				mk   func() Scheduler
			}{"EDF(fuzz)", func() Scheduler { return NewEDF(deadlines) }})
		p := policies[int(schedPick)%len(policies)]
		res, err := Run(cfg, nets, p.mk(), RunOptions{
			CheckInvariants: true,
			Arrivals:        arrivals,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		for i, fin := range res.NetFinish {
			if fin <= arrivals[i] {
				t.Fatalf("%s: net %d finished at %d, arrival %d", p.name, i, fin, arrivals[i])
			}
		}
		if res.MBCount <= 0 || res.CBCount <= 0 {
			t.Fatalf("%s: empty execution: %d MBs %d CBs", p.name, res.MBCount, res.CBCount)
		}
	})
}

// FuzzAdmission drives random overload scenarios — arbitrary arrival
// patterns, priority mixes, cluster sizes and SLO slacks — through the
// full control plane (admission, preemptive priorities, autoscaling)
// with the machine-model invariant checker on, and asserts the
// admission conservation laws: every request is either routed or shed,
// shed requests only come from the lowest priority band and never
// appear in any chip's completions, and admitted + shed == offered.
func FuzzAdmission(f *testing.F) {
	f.Add([]byte{3, 1, 9}, uint8(1), uint8(1), uint8(4))
	f.Add([]byte{0}, uint8(0), uint8(0), uint8(0))
	f.Add([]byte{200, 50, 7, 7, 1}, uint8(2), uint8(2), uint8(11))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, uint8(3), uint8(1), uint8(255))
	f.Fuzz(func(t *testing.T, picks []byte, chipsPick, prioPick, sloPick uint8) {
		if len(picks) == 0 {
			return
		}
		cfg := scenarioConfig(t, 8)
		pick := func(i int) byte { return picks[i%len(picks)] }
		an := NewNetwork("adm-hi", 1, 4, 4)
		an.FC("f1", int(pick(0)%16)+1)
		bn := NewNetwork("adm-lo", 2, 4, 4)
		bn.FC("c1", int(pick(1)%32)+1)
		bn.FC("c2", 4)
		anet, err := an.Build()
		if err != nil {
			return
		}
		bnet, err := bn.Build()
		if err != nil {
			return
		}
		classes := []ServeClass{
			{Name: "hi", Net: anet, Weight: float64(pick(2)%3) + 1,
				Slack: float64(sloPick%6) + 1, Priority: int(prioPick % 3)},
			{Name: "lo", Net: bnet, Weight: float64(pick(3)%4) + 1,
				Slack: float64(sloPick%9) + 1},
		}
		var seed int64
		for _, b := range picks {
			seed = seed*31 + int64(b)
		}
		process := ServePoisson
		if pick(4)%2 == 1 {
			process = ServeBursty
		}
		stream, err := NewServeStream(cfg, classes, ServeStreamOptions{
			Requests: int(pick(5)%48) + 8,
			MeanGap:  Cycles(pick(6)%200) + 1,
			Process:  process,
			Seed:     seed,
		})
		if err != nil {
			return
		}
		chips := int(chipsPick%4) + 1
		pols := ClusterPolicies()
		pol := pols[int(pick(7))%len(pols)]
		res, err := ClusterServe(cfg, stream, ServePreemptiveAIMT(), pol.New(), ClusterOptions{
			Chips:           chips,
			CheckInvariants: true,
			Control: ClusterControl{
				Admission: true,
				Autoscale: pick(8)%2 == 1,
				MinChips:  int(pick(9)) % (chips + 1),
				Patience:  int(pick(10) % 16),
			},
		})
		if err != nil {
			t.Fatalf("%s x%d: %v", pol.Name, chips, err)
		}
		offered := len(stream.Nets)
		minPrio := stream.ClassPriority[0]
		for _, p := range stream.ClassPriority[1:] {
			if p < minPrio {
				minPrio = p
			}
		}
		perChip := make([]int, chips)
		shed := 0
		for i, c := range res.Assignment {
			if res.Shed[i] != (c == -1) {
				t.Fatalf("request %d: shed=%v but chip %d", i, res.Shed[i], c)
			}
			if res.Shed[i] {
				shed++
				if p := stream.ClassPriority[stream.ClassOf[i]]; p != minPrio {
					t.Fatalf("request %d of priority %d shed; lowest band is %d", i, p, minPrio)
				}
				continue
			}
			if c < 0 || c >= chips {
				t.Fatalf("request %d on invalid chip %d of %d", i, c, chips)
			}
			perChip[c]++
		}
		if shed != res.ShedCount {
			t.Fatalf("shed mask counts %d, result says %d", shed, res.ShedCount)
		}
		admitted := 0
		for c, cr := range res.ChipResults {
			n := 0
			if cr != nil {
				n = len(cr.NetFinish)
			}
			if n != perChip[c] {
				t.Fatalf("chip %d completed %d, routed %d", c, n, perChip[c])
			}
			admitted += n
		}
		if admitted+res.ShedCount != offered {
			t.Fatalf("admitted %d + shed %d != offered %d", admitted, res.ShedCount, offered)
		}
		if got := int(res.Agg.Latency.Count()) + res.Agg.Shed; got != offered {
			t.Fatalf("report served %d + shed %d != offered %d", res.Agg.Latency.Count(), res.Agg.Shed, offered)
		}
	})
}
