package aimt

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSweepParallelismDeterminism is the sweep engine's contract at
// the experiment level: a serial run and a -parallel 8 run of the same
// driver produce byte-identical aggregated output. Run under
// `go test -race` (the Makefile check target does) this also proves
// the fan-out is data-race free.
func TestSweepParallelismDeterminism(t *testing.T) {
	cfg := PaperConfig()
	defer SetSweepParallelism(0)

	SetSweepParallelism(1)
	serialRows, err := Fig8Data(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var serialOut bytes.Buffer
	if err := PrintFig8(&serialOut, cfg); err != nil {
		t.Fatal(err)
	}

	SetSweepParallelism(8)
	parallelRows, err := Fig8Data(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var parallelOut bytes.Buffer
	if err := PrintFig8(&parallelOut, cfg); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("Fig8Data rows differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialRows, parallelRows)
	}
	if !bytes.Equal(serialOut.Bytes(), parallelOut.Bytes()) {
		t.Errorf("PrintFig8 output not byte-identical:\n--- serial\n%s--- parallel\n%s",
			serialOut.String(), parallelOut.String())
	}
}

// TestServingDeterminism covers the arrival-driven path (shared
// Arrivals slice across concurrent jobs) the same way.
func TestServingDeterminism(t *testing.T) {
	cfg := PaperConfig()
	defer SetSweepParallelism(0)
	SetSweepParallelism(1)
	serial, err := ServingData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetSweepParallelism(8)
	parallel, err := ServingData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serving points differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
