// Package sched implements the baseline scheduling policies the paper
// compares against (§III-B, Fig 6, Fig 8, Fig 16): FIFO (network-
// serial), round-robin, greedy size matching, shortest-job-first, and
// the compute-intensive-first static order of Fig 9a.
//
// All baselines operate at sub-layer granularity and support weight
// prefetching with a configurable depth: Depth = 2 models the
// conventional double-buffering of the baseline accelerator (§II-B);
// Depth = 0 removes the bound so prefetching is limited only by SRAM
// capacity (the "+ MB prefetching" variants of Fig 16). Compute blocks
// always execute in the order their memory blocks were issued, which
// is how a sub-layer-granularity pipeline behaves.
package sched

import (
	"aimt/internal/arch"
	"aimt/internal/sim"
)

// base provides the issue-order compute-block queue shared by every
// baseline policy.
type base struct {
	sim.NopHooks
	// Depth bounds outstanding (issued, compute-incomplete) memory
	// blocks; 0 means unbounded (SRAM-capacity limited).
	depth int
	q     []sim.CBRef
	// scratch buffers reused across picks.
	mbs []sim.MBRef
}

func (b *base) depthOK(v *sim.View) bool {
	return b.depth <= 0 || v.OutstandingMBs() < b.depth
}

// enqueue records that the scheduler is about to issue r's memory
// block; the matching compute block runs in issue order.
func (b *base) enqueue(r sim.MBRef) {
	b.q = append(b.q, sim.CBRef{Net: r.Net, Layer: r.Layer, Iter: r.Iter})
}

// PickCB returns the head of the issue-order queue; the engine waits
// on it if its weights are still in flight.
func (b *base) PickCB(v *sim.View) (sim.CBRef, bool) {
	if len(b.q) == 0 {
		return sim.CBRef{}, false
	}
	return b.q[0], true
}

// OnCBStart pops the issue-order queue.
func (b *base) OnCBStart(v *sim.View, r sim.CBRef) {
	if len(b.q) > 0 && b.q[0] == r {
		b.q = b.q[1:]
	}
}

// ForceMB records a memory-block issue the policy did not pick
// itself: a wrapping scheduler (Lookahead) committed r directly, and
// the matching compute block must still run in issue order. Without
// this the issue-order queue would desynchronize from the machine and
// the forced block's weights would sit in SRAM forever.
func (b *base) ForceMB(v *sim.View, r sim.MBRef) { b.enqueue(r) }

// candidates returns the issuable memory blocks under the depth bound.
func (b *base) candidates(v *sim.View) []sim.MBRef {
	b.mbs = b.mbs[:0]
	if !b.depthOK(v) {
		return b.mbs
	}
	all := v.MBCandidates(b.mbs)
	n := 0
	for _, r := range all {
		if v.IsMBIssuable(r) {
			all[n] = r
			n++
		}
	}
	b.mbs = all[:n]
	return b.mbs
}

// FIFO executes networks in arrival order: the first network's
// sub-layers are exhausted before the next network's begin (the
// paper's network-serial baseline, Fig 6a).
type FIFO struct{ base }

// NewFIFO returns a FIFO scheduler with double-buffered prefetching.
func NewFIFO() *FIFO { return &FIFO{base{depth: 2}} }

// NewSerialFIFO returns a FIFO scheduler with no prefetching at all:
// at most one memory block in flight, so every fetch and compute
// fully serialize. Its makespan is the analytic serialized bound
// (the sum of all MB and CB cycles) — the reference point the
// differential tests compare the simulator against.
func NewSerialFIFO() *FIFO { return &FIFO{base{depth: 1}} }

// Name implements sim.Scheduler.
func (f *FIFO) Name() string {
	if f.depth == 1 {
		return "SerialFIFO"
	}
	return "FIFO"
}

// PickMB implements sim.Scheduler: the lowest (net, layer) candidate.
func (f *FIFO) PickMB(v *sim.View) (sim.MBRef, bool) {
	c := f.candidates(v)
	if len(c) == 0 {
		return sim.MBRef{}, false
	}
	f.enqueue(c[0])
	return c[0], true
}

// RR rotates across networks per sub-layer (Fig 6b), providing
// fairness but no load matching.
type RR struct {
	base
	next int
}

// NewRR returns a round-robin scheduler with double-buffered
// prefetching.
func NewRR() *RR { return &RR{base: base{depth: 2}} }

// Name implements sim.Scheduler.
func (*RR) Name() string { return "RR" }

// PickMB implements sim.Scheduler: the first issuable candidate at or
// after the rotation pointer.
func (r *RR) PickMB(v *sim.View) (sim.MBRef, bool) {
	c := r.candidates(v)
	if len(c) == 0 {
		return sim.MBRef{}, false
	}
	n := v.NumNets()
	for off := 0; off < n; off++ {
		net := (r.next + off) % n
		for _, m := range c {
			if m.Net == net {
				r.next = (net + 1) % n
				r.enqueue(m)
				return m, true
			}
		}
	}
	r.enqueue(c[0])
	return c[0], true
}

// Greedy dynamically selects the memory block whose duration is most
// similar to the currently executing compute block (Fig 6c).
type Greedy struct{ base }

// NewGreedy returns a greedy scheduler with double-buffered
// prefetching.
func NewGreedy() *Greedy { return &Greedy{base{depth: 2}} }

// NewGreedyPrefetch returns the Fig 16 variant whose prefetch depth is
// bounded only by SRAM capacity.
func NewGreedyPrefetch() *Greedy { return &Greedy{base{depth: 0}} }

// Name implements sim.Scheduler.
func (g *Greedy) Name() string {
	if g.depth == 0 {
		return "Greedy+PF"
	}
	return "Greedy"
}

// PickMB implements sim.Scheduler.
func (g *Greedy) PickMB(v *sim.View) (sim.MBRef, bool) {
	c := g.candidates(v)
	if len(c) == 0 {
		return sim.MBRef{}, false
	}
	target := arch.Cycles(0)
	if _, rem, ok := v.ExecutingCB(); ok {
		target = rem
	}
	best := c[0]
	bestDist := dist(v.MBCycles(best), target)
	for _, m := range c[1:] {
		if d := dist(v.MBCycles(m), target); d < bestDist {
			best, bestDist = m, d
		}
	}
	g.enqueue(best)
	return best, true
}

func dist(a, b arch.Cycles) arch.Cycles {
	if a > b {
		return a - b
	}
	return b - a
}

// SJF picks the sub-layer with the smallest max(MB, CB) duration
// (§III-B: "the size is determined by max(MB cycle, CB cycle)").
type SJF struct{ base }

// NewSJF returns a shortest-job-first scheduler with double-buffered
// prefetching.
func NewSJF() *SJF { return &SJF{base{depth: 2}} }

// Name implements sim.Scheduler.
func (*SJF) Name() string { return "SJF" }

// PickMB implements sim.Scheduler.
func (s *SJF) PickMB(v *sim.View) (sim.MBRef, bool) {
	c := s.candidates(v)
	if len(c) == 0 {
		return sim.MBRef{}, false
	}
	size := func(m sim.MBRef) arch.Cycles {
		l := v.Layer(m.Net, m.Layer)
		if l.MBCycles > l.CBCycles {
			return l.MBCycles
		}
		return l.CBCycles
	}
	best := c[0]
	bestSize := size(best)
	for _, m := range c[1:] {
		if sz := size(m); sz < bestSize {
			best, bestSize = m, sz
		}
	}
	s.enqueue(best)
	return best, true
}

// ComputeFirst is the naive prefetch-aware static order of Fig 9a:
// all sub-layers of compute-intensive networks first, then the
// memory-intensive networks, with prefetching bounded only by SRAM
// capacity. It ignores fairness (paper §III-C).
type ComputeFirst struct {
	base
	memHeavy []bool
}

// NewComputeFirst returns the Fig 16 "naive + MB prefetching"
// scheduler. memHeavy flags, indexed by network instance, mark the
// networks to defer; construct it with MarkMemoryIntensive.
func NewComputeFirst(memHeavy []bool) *ComputeFirst {
	return &ComputeFirst{base: base{depth: 0}, memHeavy: memHeavy}
}

// Name implements sim.Scheduler.
func (*ComputeFirst) Name() string { return "ComputeFirst+PF" }

// PickMB implements sim.Scheduler: lowest (class, net, layer) where
// compute-intensive networks form the earlier class.
func (cf *ComputeFirst) PickMB(v *sim.View) (sim.MBRef, bool) {
	c := cf.candidates(v)
	if len(c) == 0 {
		return sim.MBRef{}, false
	}
	best := -1
	for i, m := range c {
		if best < 0 || cf.class(m.Net) < cf.class(c[best].Net) {
			best = i
		}
	}
	cf.enqueue(c[best])
	return c[best], true
}

func (cf *ComputeFirst) class(net int) int {
	if net < len(cf.memHeavy) && cf.memHeavy[net] {
		return 1
	}
	return 0
}
