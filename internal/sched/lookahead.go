package sched

import (
	"aimt/internal/arch"
	"aimt/internal/sim"
)

// Lookahead wraps another scheduler and turns its contested memory-
// block choices into true forward simulations: whenever both a
// memory-intensive (capacity-critical) candidate and a compute-heavy
// candidate are issuable, it snapshots the engine, forces each branch
// in turn, steps the simulation Horizon cycles ahead under the inner
// policy, and commits whichever choice kept the machine busier
// (Engine.Progress: HBM + PE busy cycles). Everything else — compute
// picks, hooks, uncontested fetches — delegates to the inner policy,
// so on ties and when speculation is unavailable Lookahead is exactly
// its inner scheduler.
//
// The speculative runs execute on the very engine being scheduled:
// the engine hands itself over through sim.EngineAware at run start,
// speculation mutes observability (Engine.Quiesce) so forked branches
// leave no trace, and sim.Snapshot/Restore rewind machine, checker
// and scheduler state, so a run with Lookahead still satisfies every
// machine invariant. Committed decisions are recorded through
// View.NoteLookahead (KindLookahead + aimt_sim_lookahead_total).
type Lookahead struct {
	inner   sim.Scheduler
	horizon arch.Cycles

	// cooldown spaces speculations: after one commits (or ties), no
	// new fork happens for this many cycles. It bounds speculation
	// overhead to O(horizon / cooldown) per simulated cycle.
	cooldown arch.Cycles

	eng      *sim.Engine
	snap     *sim.Snapshot
	nextSpec arch.Cycles

	// speculating marks that the engine is stepping a forked branch:
	// decisions inside the branch delegate straight to the inner
	// policy (no nested forks). forcing injects the branch's first,
	// contested pick.
	speculating bool
	forcing     bool
	forced      sim.MBRef

	mbs []sim.MBRef
}

// mbForcer is implemented by schedulers whose compute-block execution
// order is fixed at memory-block issue time (the baselines' shared
// issue-order queue). Lookahead notifies the inner policy whenever it
// returns a pick the policy did not make itself — both the injected
// first pick of a speculative branch and a committed winner — so the
// policy's bookkeeping tracks the machine.
type mbForcer interface {
	ForceMB(v *sim.View, r sim.MBRef)
}

// notePick informs the inner policy of an externally decided pick.
func (s *Lookahead) notePick(v *sim.View, r sim.MBRef) {
	if f, ok := s.inner.(mbForcer); ok {
		f.ForceMB(v, r)
	}
}

// NewLookahead returns a speculative lookahead scheduler over inner.
// horizon is how far ahead each contested branch is simulated;
// non-positive defaults to 4096 cycles. The cooldown between
// speculations defaults to the horizon.
func NewLookahead(inner sim.Scheduler, horizon arch.Cycles) *Lookahead {
	if horizon <= 0 {
		horizon = 4096
	}
	return &Lookahead{inner: inner, horizon: horizon, cooldown: horizon}
}

// SetCooldown overrides the minimum cycle spacing between
// speculations. It returns the scheduler for chaining.
func (s *Lookahead) SetCooldown(c arch.Cycles) *Lookahead {
	if c > 0 {
		s.cooldown = c
	}
	return s
}

// Name implements sim.Scheduler.
func (s *Lookahead) Name() string { return "Lookahead(" + s.inner.Name() + ")" }

// AttachEngine implements sim.EngineAware: the engine hands itself to
// the scheduler at run start so PickMB can fork it.
func (s *Lookahead) AttachEngine(e *sim.Engine) {
	s.eng = e
	s.nextSpec = 0
	s.speculating = false
	s.forcing = false
}

// PickMB implements sim.Scheduler; see the type comment.
func (s *Lookahead) PickMB(v *sim.View) (sim.MBRef, bool) {
	if s.forcing {
		// First pick inside a forked branch: inject the contested
		// choice this branch explores.
		s.forcing = false
		s.notePick(v, s.forced)
		return s.forced, true
	}
	if s.speculating || s.eng == nil || v.Now() < s.nextSpec {
		return s.inner.PickMB(v)
	}

	// A decision is contested when both block classes are issuable
	// right now: fetching the capacity-critical block claims SRAM for
	// a long window, fetching the compute-heavy block builds PE
	// runway. The static heuristics disagree here; simulate instead.
	s.mbs = v.MBCandidates(s.mbs[:0])
	var memC, cmpC sim.MBRef
	var haveMem, haveCmp bool
	for _, m := range s.mbs {
		if !v.IsMBIssuable(m) {
			continue
		}
		if v.Layer(m.Net, m.Layer).MemoryIntensive() {
			if !haveMem {
				memC, haveMem = m, true
			}
		} else if !haveCmp {
			cmpC, haveCmp = m, true
		}
		if haveMem && haveCmp {
			break
		}
	}
	if !haveMem || !haveCmp {
		return s.inner.PickMB(v)
	}

	s.nextSpec = v.Now() + s.cooldown
	unmute := s.eng.Quiesce()
	s.snap = s.eng.Snapshot(s.snap)
	limit := v.Now() + s.horizon
	memScore, okA := s.scoreBranch(memC, limit)
	cmpScore, okB := s.scoreBranch(cmpC, limit)
	unmute()
	if !okA || !okB {
		return s.inner.PickMB(v)
	}
	if memScore > cmpScore {
		v.NoteLookahead(memC, s.horizon, memScore-cmpScore)
		s.notePick(v, memC)
		return memC, true
	}
	if cmpScore > memScore {
		v.NoteLookahead(cmpC, s.horizon, cmpScore-memScore)
		s.notePick(v, cmpC)
		return cmpC, true
	}
	// Tie: the horizon cannot tell the branches apart; defer to the
	// inner policy so Lookahead never does worse than it.
	return s.inner.PickMB(v)
}

// scoreBranch forces m as the next fetch, steps the engine to limit
// under the inner policy, reads the accumulated busy cycles, and
// rewinds. ok=false means the branch errored (it is discarded and the
// decision falls back to the inner policy).
func (s *Lookahead) scoreBranch(m sim.MBRef, limit arch.Cycles) (score arch.Cycles, ok bool) {
	s.speculating = true
	s.forcing, s.forced = true, m
	_, err := s.eng.StepUntil(limit)
	score = s.eng.Progress()
	rerr := s.eng.Restore(s.snap)
	s.speculating = false
	s.forcing = false
	if err != nil || rerr != nil {
		return 0, false
	}
	return score, true
}

// PickCB implements sim.Scheduler by delegating to the inner policy.
func (s *Lookahead) PickCB(v *sim.View) (sim.CBRef, bool) { return s.inner.PickCB(v) }

// OnMBDone implements sim.Scheduler.
func (s *Lookahead) OnMBDone(v *sim.View, r sim.MBRef) { s.inner.OnMBDone(v, r) }

// OnCBStart implements sim.Scheduler.
func (s *Lookahead) OnCBStart(v *sim.View, r sim.CBRef) { s.inner.OnCBStart(v, r) }

// OnCBDone implements sim.Scheduler.
func (s *Lookahead) OnCBDone(v *sim.View, r sim.CBRef) { s.inner.OnCBDone(v, r) }

// OnCBSplit implements sim.Scheduler.
func (s *Lookahead) OnCBSplit(v *sim.View, r sim.CBRef, remaining arch.Cycles) {
	s.inner.OnCBSplit(v, r, remaining)
}

// lookaheadState captures the speculation cooldown alongside the inner
// policy's state, so engine snapshots rewind the whole stack.
type lookaheadState struct {
	nextSpec   arch.Cycles
	innerState any
}

// SaveState implements sim.StatefulScheduler.
func (s *Lookahead) SaveState(prev any) any {
	st, _ := prev.(*lookaheadState)
	if st == nil {
		st = &lookaheadState{}
	}
	st.nextSpec = s.nextSpec
	if ss, ok := s.inner.(sim.StatefulScheduler); ok {
		st.innerState = ss.SaveState(st.innerState)
	}
	return st
}

// RestoreState implements sim.StatefulScheduler.
func (s *Lookahead) RestoreState(stAny any) {
	st := stAny.(*lookaheadState)
	s.nextSpec = st.nextSpec
	if ss, ok := s.inner.(sim.StatefulScheduler); ok {
		ss.RestoreState(st.innerState)
	}
}
