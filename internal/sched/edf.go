package sched

import (
	"math"

	"aimt/internal/arch"
	"aimt/internal/sim"
)

// EDF is the deadline-aware serving scheduler: earliest-deadline-first
// request ordering layered on AI-MT's capacity-bounded MB prefetching
// (depth 0, SRAM-limited — the paper's "+ MB prefetching" mechanism).
// Both engines serve the unfinished network with the earliest deadline
// first: the HBM channel fetches its next memory block, and the PE
// complex runs its earliest ready compute block. Networks without a
// deadline (missing or non-positive entries) sort last, so on a
// deadline-free mix EDF degenerates to FIFO-with-prefetching and keeps
// the same block multiset and work-conservation properties as every
// other policy.
//
// Unlike PREMA's time multiplexing, EDF still co-executes blocks from
// different networks — when the urgent network's fetches are blocked
// on SRAM or dependencies, later-deadline work fills both engines.
type EDF struct {
	sim.NopHooks

	// deadlines holds per-network-instance absolute deadlines in
	// cycles, indexed like the net slice handed to sim.Run.
	deadlines []arch.Cycles

	// scratch buffers reused across picks.
	mbs []sim.MBRef
	cbs []sim.CBRef
}

// NewEDF returns an earliest-deadline-first scheduler. deadlines[i] is
// network instance i's absolute deadline; nil or short slices mean no
// deadline for the missing entries.
func NewEDF(deadlines []arch.Cycles) *EDF {
	return &EDF{deadlines: deadlines}
}

// Name implements sim.Scheduler.
func (e *EDF) Name() string { return "EDF" }

func (e *EDF) deadline(net int) arch.Cycles {
	if net < len(e.deadlines) && e.deadlines[net] > 0 {
		return e.deadlines[net]
	}
	return math.MaxInt64
}

// PickMB implements sim.Scheduler: the issuable memory block of the
// earliest-deadline network, SRAM capacity permitting. Ties resolve to
// the lowest (net, layer), the candidate order.
func (e *EDF) PickMB(v *sim.View) (sim.MBRef, bool) {
	e.mbs = v.MBCandidates(e.mbs[:0])
	best, found := sim.MBRef{}, false
	var bestDL arch.Cycles
	for _, m := range e.mbs {
		if !v.IsMBIssuable(m) {
			continue
		}
		if dl := e.deadline(m.Net); !found || dl < bestDL {
			best, bestDL, found = m, dl, true
		}
	}
	return best, found
}

// PickCB implements sim.Scheduler: the ready compute block of the
// earliest-deadline network. With nothing ready the PE idles until the
// next event (a completed fetch re-polls the scheduler immediately, so
// no start is delayed).
func (e *EDF) PickCB(v *sim.View) (sim.CBRef, bool) {
	e.cbs = v.ReadyCBs(e.cbs[:0])
	best, found := sim.CBRef{}, false
	var bestDL arch.Cycles
	for _, c := range e.cbs {
		if dl := e.deadline(c.Net); !found || dl < bestDL {
			best, bestDL, found = c, dl, true
		}
	}
	return best, found
}
