package sched

import (
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sim"
)

func testConfig(t testing.TB) arch.Config {
	t.Helper()
	cfg := arch.Config{
		PEDim:        4,
		NumArrays:    4,
		FreqHz:       1_000_000_000,
		MemBandwidth: 1_000_000_000,
		WeightSRAM:   64 * 16,
		IOSRAM:       1 << 20,
		WeightBytes:  1,
		FillLatency:  2,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// oneLayer builds a single-layer network with n sub-layers.
func oneLayer(name string, cfg arch.Config, mb, cb arch.Cycles, iters, blocks int) *compiler.CompiledNetwork {
	return &compiler.CompiledNetwork{
		Name: name, Batch: 1,
		Layers: []compiler.CompiledLayer{{
			Name: name + "0", MBCycles: mb, CBCycles: cb, Iters: iters,
			MBBlocks: blocks, MBBytes: cfg.BlockBytes() * arch.Bytes(blocks),
		}},
	}
}

// traceOrder records the order networks' memory blocks are issued.
type traceOrder struct{ nets []int }

func (o *traceOrder) Event(engine, name string, net, layer, iter int, start, end arch.Cycles) {
	if engine == "mem" {
		o.nets = append(o.nets, net)
	}
}

func run(t *testing.T, cfg arch.Config, nets []*compiler.CompiledNetwork, s sim.Scheduler) (*sim.Result, *traceOrder) {
	t.Helper()
	rec := &traceOrder{}
	res, err := sim.Run(cfg, nets, s, sim.Options{Tracer: rec, CheckInvariants: true})
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return res, rec
}

func TestFIFOIsNetworkSerial(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 10, 10, 3, 1),
		oneLayer("b", cfg, 10, 10, 3, 1),
	}
	_, rec := run(t, cfg, nets, NewFIFO())
	want := []int{0, 0, 0, 1, 1, 1}
	for i, n := range rec.nets {
		if n != want[i] {
			t.Fatalf("FIFO issue order = %v, want %v", rec.nets, want)
		}
	}
}

func TestRRAlternates(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 10, 10, 3, 1),
		oneLayer("b", cfg, 10, 10, 3, 1),
	}
	_, rec := run(t, cfg, nets, NewRR())
	// Round-robin alternates while both have work.
	if rec.nets[0] == rec.nets[1] {
		t.Fatalf("RR issued %v, want alternation", rec.nets)
	}
	counts := map[int]int{}
	for _, n := range rec.nets[:4] {
		counts[n]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("RR first four issues %v, want 2+2", rec.nets[:4])
	}
}

func TestDoubleBufferingBoundsOutstanding(t *testing.T) {
	cfg := testConfig(t)
	// MBs are instant relative to CBs; depth-2 means the third MB
	// waits for the first CB to finish. Observed via SRAM peak: at
	// most 2 blocks resident.
	nets := []*compiler.CompiledNetwork{oneLayer("a", cfg, 1, 50, 8, 1)}
	res, _ := run(t, cfg, nets, NewFIFO())
	if res.SRAMPeakBlocks > 2 {
		t.Fatalf("FIFO peak = %d blocks, double buffering allows 2", res.SRAMPeakBlocks)
	}
}

func TestGreedyMatchesExecutingCB(t *testing.T) {
	cfg := testConfig(t)
	// Greedy sizes fetches against the executing compute block. The
	// decision of interest happens at t=40, when net1's fetch ends
	// mid-way through net0's 100-cycle CB (70 cycles remain): net2's
	// 95-cycle MB (distance 25) must beat net1's second 30-cycle MB
	// (distance 40). The unbounded-prefetch variant keeps the memory
	// engine free to choose.
	nets := []*compiler.CompiledNetwork{
		oneLayer("long", cfg, 10, 100, 1, 1),
		oneLayer("small", cfg, 30, 5, 2, 1),
		oneLayer("near", cfg, 95, 5, 1, 1),
	}
	_, rec := run(t, cfg, nets, NewGreedyPrefetch())
	// t=0: PE idle, target 0 -> smallest MB (net0, 10). t=10: PE still
	// idle at decision time -> smallest remaining (net1, 30). t=40:
	// net0's CB executes with 70 remaining -> net2.
	want := []int{0, 1, 2, 1}
	for i, n := range want {
		if rec.nets[i] != n {
			t.Fatalf("greedy order = %v, want %v", rec.nets, want)
		}
	}
}

func TestSJFPicksSmallestJob(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("big", cfg, 30, 60, 1, 1),
		oneLayer("small", cfg, 20, 10, 1, 1),
		oneLayer("mid", cfg, 25, 40, 1, 1),
	}
	_, rec := run(t, cfg, nets, NewSJF())
	// Job sizes max(MB,CB): 60, 20, 40 -> order 1, 2, 0.
	want := []int{1, 2, 0}
	for i, n := range want {
		if rec.nets[i] != n {
			t.Fatalf("SJF order = %v, want %v", rec.nets, want)
		}
	}
}

func TestComputeFirstDefersMemoryHeavy(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("mem", cfg, 50, 5, 2, 1),
		oneLayer("comp", cfg, 5, 50, 2, 1),
	}
	_, rec := run(t, cfg, nets, NewComputeFirst([]bool{true, false}))
	// All of net1's (compute) MBs issue before net0's.
	want := []int{1, 1, 0, 0}
	for i, n := range want {
		if rec.nets[i] != n {
			t.Fatalf("ComputeFirst order = %v, want %v", rec.nets, want)
		}
	}
}

func TestGreedyPrefetchUnbounded(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{oneLayer("a", cfg, 1, 50, 8, 1)}
	res, _ := run(t, cfg, nets, NewGreedyPrefetch())
	if res.SRAMPeakBlocks <= 2 {
		t.Fatalf("Greedy+PF peak = %d blocks, expected capacity-bounded prefetch beyond 2", res.SRAMPeakBlocks)
	}
}

func TestNames(t *testing.T) {
	cases := map[string]sim.Scheduler{
		"FIFO":            NewFIFO(),
		"RR":              NewRR(),
		"Greedy":          NewGreedy(),
		"Greedy+PF":       NewGreedyPrefetch(),
		"SJF":             NewSJF(),
		"ComputeFirst+PF": NewComputeFirst(nil),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestPREMATimeMultiplexes(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 10, 10, 2, 1),
		oneLayer("b", cfg, 10, 10, 2, 1),
	}
	_, rec := run(t, cfg, nets, NewPREMA(nil))
	// One network owns the machine until a layer boundary: both of its
	// sub-layers issue before the other network's.
	first := rec.nets[0]
	if rec.nets[1] != first {
		t.Fatalf("PREMA interleaved within a layer: %v", rec.nets)
	}
	if rec.nets[2] == first {
		t.Fatalf("PREMA did not hand over at the layer boundary: %v", rec.nets)
	}
}

func TestPREMAPriorityFavorsHighRate(t *testing.T) {
	cfg := testConfig(t)
	// Three equal networks; net 2 has 10x the token rate. After the
	// opening election (tokens all zero, lowest index wins), net 2
	// must run second — its tokens accrue fastest while waiting.
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 10, 10, 2, 1),
		oneLayer("b", cfg, 10, 10, 2, 1),
		oneLayer("c", cfg, 10, 10, 2, 1),
	}
	res, rec := run(t, cfg, nets, NewPREMA([]float64{1, 1, 10}))
	after := rec.nets[2]
	if after != 2 {
		t.Errorf("high-priority net ran %d-th: issue order %v", after, rec.nets)
	}
	if res.NetFinish[2] > res.NetFinish[1] {
		t.Errorf("high-priority net finished after low-priority: %v", res.NetFinish)
	}
}

func TestPREMACompletesMixedLoad(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 3, 20, 6, 1),
		oneLayer("b", cfg, 25, 4, 6, 4),
	}
	res, _ := run(t, cfg, nets, NewPREMA(nil))
	if res.CBCount != 12 {
		t.Errorf("PREMA executed %d CBs, want 12", res.CBCount)
	}
}

// All baselines complete a mixed two-network workload and respect the
// makespan lower bound.
func TestAllBaselinesComplete(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 3, 20, 6, 1),
		oneLayer("b", cfg, 25, 4, 6, 4),
	}
	var lower arch.Cycles
	for _, cn := range nets {
		s := cn.Stats()
		if s.CBCycles > lower {
			lower = s.CBCycles
		}
		if s.MBCycles > lower {
			lower = s.MBCycles
		}
	}
	for _, s := range []sim.Scheduler{
		NewFIFO(), NewRR(), NewGreedy(), NewGreedyPrefetch(), NewSJF(),
		NewComputeFirst([]bool{false, true}),
	} {
		res, _ := run(t, cfg, nets, s)
		if res.Makespan < lower {
			t.Errorf("%s makespan %d below bound %d", s.Name(), res.Makespan, lower)
		}
		if res.CBCount != 12 {
			t.Errorf("%s executed %d CBs, want 12", s.Name(), res.CBCount)
		}
	}
}
