package sched

import (
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sim"
)

// TestEDFOrdersByDeadline: with three identical networks and inverted
// deadlines, EDF must issue the tightest-deadline network's memory
// blocks first, regardless of instance order.
func TestEDFOrdersByDeadline(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 10, 10, 3, 1),
		oneLayer("b", cfg, 10, 10, 3, 1),
		oneLayer("c", cfg, 10, 10, 3, 1),
	}
	// Net 2 has the earliest deadline, then 1, then 0.
	_, rec := run(t, cfg, nets, NewEDF([]arch.Cycles{3000, 2000, 1000}))
	want := []int{2, 2, 2, 1, 1, 1, 0, 0, 0}
	if len(rec.nets) != len(want) {
		t.Fatalf("issued %d MBs, want %d", len(rec.nets), len(want))
	}
	for i, n := range want {
		if rec.nets[i] != n {
			t.Fatalf("MB issue order %v, want %v", rec.nets, want)
		}
	}
}

// TestEDFWithoutDeadlinesFallsBackToOrder: nil deadlines sort every
// network last equally, so candidate order (lowest net first) wins and
// the run completes with the usual invariants.
func TestEDFWithoutDeadlinesFallsBackToOrder(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("a", cfg, 10, 10, 2, 1),
		oneLayer("b", cfg, 10, 10, 2, 1),
	}
	_, rec := run(t, cfg, nets, NewEDF(nil))
	if rec.nets[0] != 0 {
		t.Errorf("first MB from net %d, want 0", rec.nets[0])
	}
}

// TestEDFPrefetchesBeyondDoubleBuffering: EDF layers deadline order on
// capacity-bounded prefetching, so a single network's fetches must run
// ahead of compute past the double-buffering depth of the baselines.
func TestEDFPrefetchesBeyondDoubleBuffering(t *testing.T) {
	cfg := testConfig(t)
	// Short fetches, long computes: an unbounded prefetcher finishes
	// all fetches while the first compute still runs.
	nets := []*compiler.CompiledNetwork{oneLayer("a", cfg, 5, 500, 8, 1)}
	edfRes, _ := run(t, cfg, nets, NewEDF(nil))
	fifoRes, _ := run(t, cfg, nets, NewFIFO())
	if edfRes.Makespan > fifoRes.Makespan {
		t.Errorf("EDF makespan %d exceeds FIFO's %d — prefetching regressed", edfRes.Makespan, fifoRes.Makespan)
	}
	// All 8 fetches fit in SRAM and each is far shorter than one CB, so
	// the memory engine must drain well before the last compute.
	if edfRes.MemBusy != 8*5 {
		t.Errorf("memory busy %d, want 40", edfRes.MemBusy)
	}
}

// TestEDFLateArrivalsRespectDeadlines: a late-arriving urgent request
// takes priority over queued loose-deadline work as soon as it lands.
func TestEDFLateArrivalsRespectDeadlines(t *testing.T) {
	cfg := testConfig(t)
	nets := []*compiler.CompiledNetwork{
		oneLayer("slack", cfg, 20, 20, 8, 1),
		oneLayer("urgent", cfg, 20, 20, 2, 1),
	}
	rec := &traceOrder{}
	res, err := sim.Run(cfg, nets, NewEDF([]arch.Cycles{1 << 40, 500}),
		sim.Options{Tracer: rec, CheckInvariants: true, Arrivals: []arch.Cycles{0, 45}})
	if err != nil {
		t.Fatal(err)
	}
	// After cycle 45 every remaining issue must prefer net 1 until its
	// blocks are exhausted: net 1's two MBs appear before the tail of
	// net 0's.
	firstUrgent := -1
	for i, n := range rec.nets {
		if n == 1 {
			firstUrgent = i
			break
		}
	}
	if firstUrgent < 0 || firstUrgent > 4 {
		t.Fatalf("urgent net's first MB at position %d of %v", firstUrgent, rec.nets)
	}
	if res.NetFinish[1] >= res.NetFinish[0] {
		t.Errorf("urgent net finished at %d, after slack net's %d", res.NetFinish[1], res.NetFinish[0])
	}
}
