package sched

import (
	"aimt/internal/arch"
	"aimt/internal/sim"
)

// This file implements sim.StatefulScheduler for every baseline whose
// decision state must travel with engine snapshots: the issue-order
// compute queue (base), the round-robin rotation pointer (RR) and
// PREMA's token economy. EDF is a pure function of the View and needs
// nothing. The state values are reused across SaveState calls, so a
// speculative scheduler snapshotting at steady state allocates
// nothing.

// baseState captures base's issue-order compute queue.
type baseState struct {
	q []sim.CBRef
}

// SaveState implements sim.StatefulScheduler.
func (b *base) SaveState(prev any) any {
	st, _ := prev.(*baseState)
	if st == nil {
		st = &baseState{}
	}
	st.q = append(st.q[:0], b.q...)
	return st
}

// RestoreState implements sim.StatefulScheduler.
func (b *base) RestoreState(stAny any) {
	st := stAny.(*baseState)
	b.q = append(b.q[:0], st.q...)
}

// rrState adds the rotation pointer to the base queue.
type rrState struct {
	q    []sim.CBRef
	next int
}

// SaveState implements sim.StatefulScheduler.
func (r *RR) SaveState(prev any) any {
	st, _ := prev.(*rrState)
	if st == nil {
		st = &rrState{}
	}
	st.q = append(st.q[:0], r.q...)
	st.next = r.next
	return st
}

// RestoreState implements sim.StatefulScheduler.
func (r *RR) RestoreState(stAny any) {
	st := stAny.(*rrState)
	r.q = append(r.q[:0], st.q...)
	r.next = st.next
}

// premaState captures PREMA's token economy alongside the base queue.
type premaState struct {
	q          []sim.CBRef
	active     int
	hasTokens  bool
	tokens     []float64
	lastUpdate arch.Cycles
}

// SaveState implements sim.StatefulScheduler.
func (p *PREMA) SaveState(prev any) any {
	st, _ := prev.(*premaState)
	if st == nil {
		st = &premaState{}
	}
	st.q = append(st.q[:0], p.q...)
	st.active = p.active
	st.hasTokens = p.tokens != nil
	st.tokens = append(st.tokens[:0], p.tokens...)
	st.lastUpdate = p.lastUpdate
	return st
}

// RestoreState implements sim.StatefulScheduler.
func (p *PREMA) RestoreState(stAny any) {
	st := stAny.(*premaState)
	p.q = append(p.q[:0], st.q...)
	p.active = st.active
	if st.hasTokens {
		p.tokens = append(p.tokens[:0], st.tokens...)
	} else {
		p.tokens = nil // lazily allocated on first accrue; keep it so
	}
	p.lastUpdate = st.lastUpdate
}
