package sched

import (
	"aimt/internal/arch"
	"aimt/internal/sim"
)

// PREMA is a simplified reimplementation of the predictive multi-task
// scheduler of Choi & Rhu (HPCA 2020), the closest related work the
// paper compares against (§VII-C): networks time-share the accelerator
// under token-based preemptive priority, with preemption at layer
// boundaries. Unlike AI-MT it never co-executes blocks from different
// networks — one network owns the machine at a time — so it meets
// latency goals for high-priority tenants but cannot recover the
// compute/memory load imbalance.
//
// Token mechanics (simplified): every waiting network accumulates
// tokens at its priority rate; at each decision point (the active
// network finishes a layer or completes), the waiting network with
// the most tokens — if it beats the active one by Threshold — takes
// over, and its tokens reset.
type PREMA struct {
	base

	// priority holds per-network token accumulation rates; missing
	// entries default to 1.
	priority []float64

	// Threshold is the token lead a challenger needs to preempt the
	// active network.
	Threshold float64

	active     int
	tokens     []float64
	lastUpdate arch.Cycles
}

// NewPREMA returns a PREMA scheduler. priority[i] is network i's token
// rate (nil means equal priorities).
func NewPREMA(priority []float64) *PREMA {
	return &PREMA{
		base:      base{depth: 2},
		priority:  priority,
		Threshold: 1,
		active:    -1,
	}
}

// Name implements sim.Scheduler.
func (p *PREMA) Name() string { return "PREMA" }

func (p *PREMA) rate(net int) float64 {
	if net < len(p.priority) && p.priority[net] > 0 {
		return p.priority[net]
	}
	return 1
}

// accrue advances waiting networks' tokens to the current cycle. Only
// arrived, unfinished networks accumulate: a request that has not
// reached the accelerator yet is not waiting for service.
func (p *PREMA) accrue(v *sim.View) {
	if p.tokens == nil {
		p.tokens = make([]float64, v.NumNets())
	}
	dt := float64(v.Now() - p.lastUpdate)
	p.lastUpdate = v.Now()
	if dt <= 0 {
		return
	}
	for _, i := range v.ActiveNets() {
		if i != p.active {
			p.tokens[i] += dt * p.rate(i)
		}
	}
}

// elect picks the next active network at a decision point.
func (p *PREMA) elect(v *sim.View) {
	p.accrue(v)
	best, bestTok := -1, -1.0
	for _, i := range v.ActiveNets() {
		if p.tokens[i] > bestTok {
			best, bestTok = i, p.tokens[i]
		}
	}
	if best < 0 {
		return
	}
	if p.active >= 0 && !v.NetFinished(p.active) && bestTok < p.tokens[p.active]+p.Threshold {
		return // challenger lacks the lead to preempt
	}
	p.active = best
	p.tokens[best] = 0
}

// decisionPoint reports whether the active network just crossed a
// layer boundary (its last completed compute block ended a layer) or
// is unset/finished.
func (p *PREMA) needsElection(v *sim.View) bool {
	return p.active < 0 || v.NetFinished(p.active)
}

// PickMB issues the active network's next memory block under
// double-buffered prefetching.
func (p *PREMA) PickMB(v *sim.View) (sim.MBRef, bool) {
	if p.needsElection(v) {
		p.elect(v)
	}
	if p.active < 0 {
		return sim.MBRef{}, false
	}
	for _, m := range p.candidates(v) {
		if m.Net == p.active {
			p.enqueue(m)
			return m, true
		}
	}
	return sim.MBRef{}, false
}

// OnCBDone re-elects at layer boundaries — the preemption granularity
// PREMA checkpoints at.
func (p *PREMA) OnCBDone(v *sim.View, r sim.CBRef) {
	if r.Net != p.active {
		return
	}
	l := v.Layer(r.Net, r.Layer)
	if r.Iter == l.Iters-1 {
		p.elect(v)
	}
}
