package rtrace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"aimt/internal/analysis"
	"aimt/internal/trace"
)

// Attach wires the request-trace surface onto an admin mux:
//
//	/requests — attribution report, tail exemplars and the sampled
//	            recent ring as indented JSON.
func Attach(mux *http.ServeMux, st *Store) {
	mux.HandleFunc("/requests", func(w http.ResponseWriter, r *http.Request) {
		total, shed, sampled := st.Totals()
		body := struct {
			Requests    int           `json:"requests"`
			Shed        int           `json:"shed"`
			Sampled     int           `json:"sampled"`
			SampleEvery int           `json:"sample_every"`
			Attribution []Attribution `json:"attribution"`
			Exemplars   []RequestSpan `json:"exemplars"`
			Recent      []RequestSpan `json:"recent"`
		}{
			Requests:    total,
			Shed:        shed,
			Sampled:     sampled,
			SampleEvery: st.SampleEvery(),
			Attribution: st.Attribution(),
			Exemplars:   st.Exemplars(),
			Recent:      st.Recent(),
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}

// maxWaterfallRows bounds the dashboard panel; the full exemplar set
// stays available on /requests.
const maxWaterfallRows = 8

// WaterfallHTML renders the store's worst exemplars as an HTML
// section with an inline waterfall SVG, for embedding in the /runs
// dashboard. Empty when no exemplars are retained yet.
func (st *Store) WaterfallHTML() string {
	ex := st.Exemplars()
	if len(ex) == 0 {
		return ""
	}
	if len(ex) > maxWaterfallRows {
		ex = ex[:maxWaterfallRows]
	}
	rows := make([]analysis.WaterfallRow, 0, len(ex))
	for _, sp := range ex {
		row := analysis.WaterfallRow{
			Label: fmt.Sprintf("req %d · %s · %s", sp.Req, sp.Class, sp.Run),
		}
		for _, e := range sp.Entries {
			for _, iv := range e.Intervals {
				row.Segments = append(row.Segments, analysis.WaterfallSegment{
					Kind:  iv.Kind,
					Start: float64(iv.Start - sp.Arrive),
					End:   float64(iv.End - sp.Arrive),
				})
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("<h2>Tail exemplars</h2>\n")
	b.WriteString(`<p class="sub">Worst-latency requests per class, cycle-exact latency attribution. Full spans at <a href="/requests">/requests</a>.</p>` + "\n")
	b.WriteString(analysis.WaterfallSVG(analysis.Waterfall{
		Title:  "Tail exemplar waterfalls",
		XLabel: "cycles since arrival",
		Kinds:  SegmentKinds,
	}, rows))
	return b.String()
}

// Tracks renders request spans as Perfetto tracks under one shared
// "requests" process: one thread per span, one slice per attributed
// interval (slice name = segment kind, net = request id, layer =
// stream entry).
func Tracks(pid int, spans []RequestSpan) []trace.Track {
	var out []trace.Track
	for ti, sp := range spans {
		var evs []trace.Event
		for _, e := range sp.Entries {
			for _, iv := range e.Intervals {
				evs = append(evs, trace.Event{
					Engine: "request", Name: iv.Kind,
					Net: sp.Req, Layer: e.Entry, Iter: -1,
					Start: iv.Start, End: iv.End,
				})
			}
		}
		label := fmt.Sprintf("req %d %s", sp.Req, sp.Class)
		if sp.Missed {
			label += " (missed)"
		}
		out = append(out, trace.Track{
			PID: pid, TID: ti + 1,
			Process: "requests", Thread: label,
			Events: evs,
		})
	}
	return out
}
