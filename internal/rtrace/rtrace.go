// Package rtrace is the per-request span tracer: it turns the
// engine's occupancy events into an attributed span per served
// request, decomposing end-to-end latency cycle-exactly into named
// segments (idle-in-queue, hbm-bound, pe-bound, preempted-out, host).
//
// The pipeline has three pieces:
//
//   - Collector implements sim.Tracer structurally and buckets every
//     occupancy interval by network instance. It is attached per run
//     (per chip in a cluster) and merged into stream coordinates.
//   - Build folds a stream's metadata plus a finished sim.Result and
//     a Collector into []RequestSpan: one span per request, one entry
//     span per phase (prefill, each decode step), each partitioned
//     into segments that sum exactly to finish − arrival.
//   - Store (store.go) retains bounded state across runs: worst-N
//     tail exemplars per class, a sampled ring of recent spans, and
//     running attribution aggregates.
//
// Attribution rule: within an entry's [effective arrival, finish)
// window every cycle gets exactly one label, chosen by priority
// pe-bound > host > preempted-out > hbm-bound, with idle-in-queue as
// the remainder. Because the labels partition the window, the
// reconciliation identity Σ segments = finish − arrival holds by
// construction, and chained entries telescope (each decode's
// effective arrival is its predecessor's finish) so request segments
// sum to last finish − head arrival.
package rtrace

import (
	"sort"
	"strings"

	"aimt/internal/arch"
)

// Segment kinds, in canonical report order. Every attributed cycle
// carries exactly one of these labels.
const (
	// SegQueue is time the entry was ready but no engine was doing its
	// work: waiting for AVL_CB credit, for the PE array, or for its
	// turn in the memory-block schedule.
	SegQueue = "idle-in-queue"

	// SegHBM is time the HBM channel was fetching this entry's own
	// memory blocks while its PE work was stalled on them.
	SegHBM = "hbm-bound"

	// SegPE is time the PE array was executing this entry's compute
	// blocks.
	SegPE = "pe-bound"

	// SegPreempt is time between a split-halted compute block and its
	// resumption: the entry was preempted out by a higher-priority
	// competitor.
	SegPreempt = "preempted-out"

	// SegHost is PCIe transfer time for this entry's input and output.
	SegHost = "host"
)

// SegmentKinds lists every segment label in canonical report order.
var SegmentKinds = []string{SegQueue, SegHBM, SegPE, SegPreempt, SegHost}

// Segment is one attributed share of an entry or request window.
type Segment struct {
	Kind   string      `json:"kind"`
	Cycles arch.Cycles `json:"cycles"`
}

// Interval is one contiguous attributed slice of an entry's window,
// suitable for rendering as a waterfall bar or a Perfetto slice.
type Interval struct {
	Kind  string      `json:"kind"`
	Start arch.Cycles `json:"start"`
	End   arch.Cycles `json:"end"`
}

// EntrySpan is the attributed execution of one stream entry (one
// request phase): a single-shot request's whole service, a
// transformer prompt pass, or one decode iteration.
type EntrySpan struct {
	// Entry is the stream index of this phase.
	Entry int `json:"entry"`

	// Phase names the request phase ("single", "prefill", "decode").
	Phase string `json:"phase,omitempty"`

	// Arrive is the effective arrival: the stream arrival for a head
	// entry, the predecessor's finish for a chained decode step.
	Arrive arch.Cycles `json:"arrive"`

	// Finish is the completion cycle.
	Finish arch.Cycles `json:"finish"`

	// Segments partition [Arrive, Finish): they sum exactly to
	// Finish − Arrive. Zero-cycle kinds are omitted.
	Segments []Segment `json:"segments"`

	// Intervals is the same partition in time order, contiguous slices
	// covering [Arrive, Finish) exactly.
	Intervals []Interval `json:"intervals,omitempty"`
}

// RequestSpan is the end-to-end attributed trace of one request.
type RequestSpan struct {
	// Req is the request id (stream ReqOf value).
	Req int `json:"req"`

	// Run labels the sweep point that served the request, e.g.
	// "AI-MT@0.80" or "AI-MT/least-work".
	Run string `json:"run,omitempty"`

	// Class is the request class name.
	Class string `json:"class"`

	// Chip is the chip the dispatcher routed the request to (0 for
	// single-chip runs, -1 for shed requests).
	Chip int `json:"chip"`

	// ETA is the dispatcher's predicted completion cycle at routing
	// time (0 when no dispatcher estimate was recorded). For shed
	// requests it is the prediction that exceeded the deadline.
	ETA arch.Cycles `json:"eta,omitempty"`

	// Shed reports that admission control rejected the request; shed
	// spans have no entries and zero latency.
	Shed bool `json:"shed,omitempty"`

	// Arrive is the head entry's stream arrival cycle.
	Arrive arch.Cycles `json:"arrive"`

	// Finish is the last entry's completion cycle.
	Finish arch.Cycles `json:"finish"`

	// Deadline is the last entry's absolute deadline.
	Deadline arch.Cycles `json:"deadline"`

	// Missed reports Finish > Deadline.
	Missed bool `json:"missed,omitempty"`

	// Latency is Finish − Arrive.
	Latency arch.Cycles `json:"latency"`

	// Totals sums each segment kind across entries. Because chained
	// entries telescope, Totals sum exactly to Latency.
	Totals []Segment `json:"totals"`

	// Entries holds the per-phase spans in execution order.
	Entries []EntrySpan `json:"entries"`
}

// peIval is one PE occupancy interval with enough identity to pair a
// split-halted block with its resumption.
type peIval struct {
	start, end  arch.Cycles
	layer, iter int
	split       bool
}

type ival struct{ start, end arch.Cycles }

// Collector buckets engine occupancy events by network instance. It
// implements sim.Tracer structurally; attach it via
// sim.Options.Tracer (alone or fanned out through sim.MultiTracer).
// The zero Collector is unusable — size it with NewCollector.
type Collector struct {
	pe   [][]peIval
	mem  [][]ival
	host [][]ival
}

// NewCollector sizes a collector for a stream of nets instances.
func NewCollector(nets int) *Collector {
	return &Collector{
		pe:   make([][]peIval, nets),
		mem:  make([][]ival, nets),
		host: make([][]ival, nets),
	}
}

// Event implements the sim.Tracer contract. Events for out-of-range
// instances (host warm-up probes, etc.) are dropped.
func (c *Collector) Event(engine, name string, net, layer, iter int, start, end arch.Cycles) {
	if net < 0 || net >= len(c.pe) || end <= start {
		return
	}
	switch engine {
	case "pe":
		split := strings.HasPrefix(name, "CB(split)")
		c.pe[net] = append(c.pe[net], peIval{start, end, layer, iter, split})
	case "mem":
		c.mem[net] = append(c.mem[net], ival{start, end})
	case "host":
		c.host[net] = append(c.host[net], ival{start, end})
	}
}

// Merge folds a sub-collector recorded over a chip-local sub-stream
// into c, translating local instance li to global instance remap[li].
func (c *Collector) Merge(sub *Collector, remap []int) {
	for li, gi := range remap {
		if li >= len(sub.pe) || gi < 0 || gi >= len(c.pe) {
			continue
		}
		c.pe[gi] = append(c.pe[gi], sub.pe[li]...)
		c.mem[gi] = append(c.mem[gi], sub.mem[li]...)
		c.host[gi] = append(c.host[gi], sub.host[li]...)
	}
}

// Input adapts a finished run to the span builder without importing
// the serve package: all slices are indexed by stream entry.
type Input struct {
	// Run labels the sweep point (scheduler@load or scheduler/policy).
	Run string

	// Classes and ClassOf name each entry's request class.
	Classes []string
	ClassOf []int

	// ReqOf maps entries to request ids (dense, ascending); nil means
	// entry index and request id coincide.
	ReqOf []int

	// Phases names each entry's phase ("single", "prefill", "decode");
	// nil means all single-phase.
	Phases []string

	// StreamArrive is each entry's stream arrival cycle; Deadlines
	// each entry's absolute deadline.
	StreamArrive []arch.Cycles
	Deadlines    []arch.Cycles

	// Arrive and Finish are the result's effective arrival and finish
	// cycles (sim.Result.NetArrive / NetFinish).
	Arrive []arch.Cycles
	Finish []arch.Cycles

	// Chip is each entry's routed chip; nil means chip 0. ETA is the
	// dispatcher's predicted completion at routing time; nil means no
	// estimate. Shed marks admission-rejected entries; nil means none.
	Chip []int
	ETA  []arch.Cycles
	Shed []bool
}

// Build attributes every request in the input against the collected
// occupancy intervals. Requests whose entries did not finish (run
// truncated by MaxCycles) are dropped. The collector may be nil only
// if the input has no finished entries.
func Build(in Input, c *Collector) []RequestSpan {
	n := len(in.ClassOf)
	if n == 0 {
		return nil
	}
	// Group entries by request id, preserving entry order.
	groups := make([][]int, 0, n)
	at := make(map[int]int, n)
	for i := 0; i < n; i++ {
		req := i
		if in.ReqOf != nil {
			req = in.ReqOf[i]
		}
		gi, ok := at[req]
		if !ok {
			gi = len(groups)
			at[req] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}

	out := make([]RequestSpan, 0, len(groups))
	for _, g := range groups {
		head, last := g[0], g[len(g)-1]
		req := head
		if in.ReqOf != nil {
			req = in.ReqOf[head]
		}
		sp := RequestSpan{
			Req:      req,
			Run:      in.Run,
			Class:    in.Classes[in.ClassOf[head]],
			Arrive:   in.StreamArrive[head],
			Deadline: in.Deadlines[last],
		}
		if in.Chip != nil {
			sp.Chip = in.Chip[head]
		}
		if in.ETA != nil {
			sp.ETA = in.ETA[head]
		}
		if in.Shed != nil && in.Shed[head] {
			sp.Shed = true
			sp.Chip = -1
			out = append(out, sp)
			continue
		}

		totals := map[string]arch.Cycles{}
		done := true
		for _, i := range g {
			a, f := in.Arrive[i], in.Finish[i]
			if f < a || (f == 0 && a > 0) {
				done = false // truncated run: entry never finished
				break
			}
			es := EntrySpan{Entry: i, Arrive: a, Finish: f}
			if in.Phases != nil {
				es.Phase = in.Phases[i]
			}
			es.Segments, es.Intervals = attribute(a, f, c.pe[i], c.mem[i], c.host[i])
			for _, s := range es.Segments {
				totals[s.Kind] += s.Cycles
			}
			sp.Entries = append(sp.Entries, es)
		}
		if !done {
			continue
		}
		sp.Finish = in.Finish[last]
		sp.Latency = sp.Finish - sp.Arrive
		sp.Missed = sp.Finish > sp.Deadline
		for _, k := range SegmentKinds {
			if totals[k] > 0 {
				sp.Totals = append(sp.Totals, Segment{Kind: k, Cycles: totals[k]})
			}
		}
		out = append(out, sp)
	}
	return out
}

// Classification priorities: lower wins when intervals overlap.
const (
	prioPE = iota
	prioHost
	prioPreempt
	prioHBM
	nPrio
)

var prioKind = [nPrio + 1]string{SegPE, SegHost, SegPreempt, SegHBM, SegQueue}

// bnd is one sweep boundary: at cycle `at`, priority `prio` gains
// (+1) or loses (-1) one covering interval.
type bnd struct {
	at    arch.Cycles
	prio  int
	delta int
}

// attribute partitions [a, f) into labelled segments using the
// collected occupancy intervals for one entry. The returned intervals
// cover the window exactly; the segments are the per-kind sums.
func attribute(a, f arch.Cycles, pe []peIval, mem, host []ival) ([]Segment, []Interval) {
	if f <= a {
		return nil, nil
	}
	bs := make([]bnd, 0, 2*(len(pe)+len(mem)+len(host))+8)
	add := func(prio int, s, e arch.Cycles) {
		if s < a {
			s = a
		}
		if e > f {
			e = f
		}
		if s < e {
			bs = append(bs, bnd{s, prio, 1}, bnd{e, prio, -1})
		}
	}
	for _, iv := range pe {
		add(prioPE, iv.start, iv.end)
	}
	for _, iv := range host {
		add(prioHost, iv.start, iv.end)
	}
	for _, iv := range mem {
		add(prioHBM, iv.start, iv.end)
	}
	// A split-halted compute block is preempted out until the next PE
	// interval for the same (layer, iter) begins.
	for i, iv := range pe {
		if !iv.split {
			continue
		}
		resume := f
		for j, jv := range pe {
			if j == i || jv.layer != iv.layer || jv.iter != iv.iter {
				continue
			}
			if jv.start >= iv.end && jv.start < resume {
				resume = jv.start
			}
		}
		add(prioPreempt, iv.end, resume)
	}

	sort.Slice(bs, func(i, j int) bool {
		if bs[i].at != bs[j].at {
			return bs[i].at < bs[j].at
		}
		if bs[i].prio != bs[j].prio {
			return bs[i].prio < bs[j].prio
		}
		return bs[i].delta < bs[j].delta
	})

	var counts [nPrio]int
	kindAt := func() string {
		for p := 0; p < nPrio; p++ {
			if counts[p] > 0 {
				return prioKind[p]
			}
		}
		return SegQueue
	}
	var ivs []Interval
	sums := map[string]arch.Cycles{}
	emit := func(from, to arch.Cycles, kind string) {
		if to <= from {
			return
		}
		sums[kind] += to - from
		if n := len(ivs); n > 0 && ivs[n-1].Kind == kind && ivs[n-1].End == from {
			ivs[n-1].End = to
			return
		}
		ivs = append(ivs, Interval{Kind: kind, Start: from, End: to})
	}
	cur := a
	for i := 0; i < len(bs); {
		at := bs[i].at
		emit(cur, at, kindAt())
		if at > cur {
			cur = at
		}
		for i < len(bs) && bs[i].at == at {
			counts[bs[i].prio] += bs[i].delta
			i++
		}
	}
	emit(cur, f, kindAt())

	segs := make([]Segment, 0, len(sums))
	for _, k := range SegmentKinds {
		if sums[k] > 0 {
			segs = append(segs, Segment{Kind: k, Cycles: sums[k]})
		}
	}
	return segs, ivs
}
