package rtrace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"aimt/internal/arch"
	"aimt/internal/obs"
)

// Options bound what a Store retains. The zero value picks sensible
// defaults; Store never grows without bound regardless of traffic.
type Options struct {
	// SampleEvery keeps one in every N finished spans in the recent
	// ring (1 keeps all). <= 0 defaults to 16. Tail exemplars are
	// retained independently of sampling.
	SampleEvery int

	// WorstN is how many worst-latency exemplars to keep per class.
	// <= 0 defaults to 8.
	WorstN int

	// RingCap bounds the recent-span ring. <= 0 defaults to 256.
	RingCap int
}

func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	if o.WorstN <= 0 {
		o.WorstN = 8
	}
	if o.RingCap <= 0 {
		o.RingCap = 256
	}
	return o
}

// phaseAgg accumulates segment cycles for one (class, phase) pair.
type phaseAgg struct {
	entries int
	latency arch.Cycles
	segs    map[string]arch.Cycles
}

// classAgg accumulates one class's request population.
type classAgg struct {
	requests int
	shed     int
	missed   int
	latency  arch.Cycles
	segs     map[string]arch.Cycles
	phases   map[string]*phaseAgg
	worst    []RequestSpan // latency-descending, len <= WorstN
}

// Store retains bounded request-trace state across runs: worst-N
// exemplars per class (always, regardless of sampling), a sampled
// ring of recent spans, and running attribution aggregates. All
// methods are safe for concurrent use; a nil *Store is inert.
type Store struct {
	mu      sync.Mutex
	opt     Options
	total   int // finished spans seen
	shed    int // shed spans seen
	sampled int // spans kept in the ring overall
	classes map[string]*classAgg
	ring    []RequestSpan
	ringAt  int

	// published counter values, so Publish emits deltas.
	pubTotal, pubShed, pubSampled int
}

// NewStore builds a Store with the given bounds.
func NewStore(opt Options) *Store {
	return &Store{opt: opt.withDefaults(), classes: map[string]*classAgg{}}
}

// SampleEvery reports the store's 1-in-N sampling rate.
func (st *Store) SampleEvery() int { return st.opt.SampleEvery }

// WorstN reports how many exemplars are retained per class.
func (st *Store) WorstN() int { return st.opt.WorstN }

// AddRun folds one run's spans into the store.
func (st *Store) AddRun(spans []RequestSpan) {
	if st == nil || len(spans) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sp := range spans {
		ca := st.classes[sp.Class]
		if ca == nil {
			ca = &classAgg{segs: map[string]arch.Cycles{}, phases: map[string]*phaseAgg{}}
			st.classes[sp.Class] = ca
		}
		if sp.Shed {
			st.shed++
			ca.shed++
			continue
		}
		st.total++
		ca.requests++
		ca.latency += sp.Latency
		if sp.Missed {
			ca.missed++
		}
		for _, s := range sp.Totals {
			ca.segs[s.Kind] += s.Cycles
		}
		for _, e := range sp.Entries {
			if e.Phase == "" { // single-phase class: the class row already covers it
				continue
			}
			pa := ca.phases[e.Phase]
			if pa == nil {
				pa = &phaseAgg{segs: map[string]arch.Cycles{}}
				ca.phases[e.Phase] = pa
			}
			pa.entries++
			pa.latency += e.Finish - e.Arrive
			for _, s := range e.Segments {
				pa.segs[s.Kind] += s.Cycles
			}
		}
		st.addWorst(ca, sp)
		if (st.total-1)%st.opt.SampleEvery == 0 {
			st.sampled++
			if len(st.ring) < st.opt.RingCap {
				st.ring = append(st.ring, sp)
			} else {
				st.ring[st.ringAt] = sp
			}
			st.ringAt = (st.ringAt + 1) % st.opt.RingCap
		}
	}
}

// addWorst inserts sp into the class's latency-descending exemplar
// list, keeping at most WorstN entries.
func (st *Store) addWorst(ca *classAgg, sp RequestSpan) {
	i := sort.Search(len(ca.worst), func(i int) bool { return ca.worst[i].Latency < sp.Latency })
	if i >= st.opt.WorstN {
		return
	}
	ca.worst = append(ca.worst, RequestSpan{})
	copy(ca.worst[i+1:], ca.worst[i:])
	ca.worst[i] = sp
	if len(ca.worst) > st.opt.WorstN {
		ca.worst = ca.worst[:st.opt.WorstN]
	}
}

// Totals reports (finished, shed, ring-sampled) span counts.
func (st *Store) Totals() (total, shed, sampled int) {
	if st == nil {
		return 0, 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total, st.shed, st.sampled
}

// Exemplars returns every retained tail exemplar, worst first
// (latency descending, class name as tie-break).
func (st *Store) Exemplars() []RequestSpan {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []RequestSpan
	for _, name := range st.classNames() {
		out = append(out, st.classes[name].worst...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Req < out[j].Req
	})
	return out
}

// Worst returns the single worst-latency exemplar across classes.
func (st *Store) Worst() (RequestSpan, bool) {
	ex := st.Exemplars()
	if len(ex) == 0 {
		return RequestSpan{}, false
	}
	return ex[0], true
}

// Recent returns the sampled ring, oldest first.
func (st *Store) Recent() []RequestSpan {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]RequestSpan, 0, len(st.ring))
	if len(st.ring) == st.opt.RingCap {
		out = append(out, st.ring[st.ringAt:]...)
		out = append(out, st.ring[:st.ringAt]...)
	} else {
		out = append(out, st.ring...)
	}
	return out
}

func (st *Store) classNames() []string {
	names := make([]string, 0, len(st.classes))
	for name := range st.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SegmentShare is one segment's share of a population's latency.
type SegmentShare struct {
	Kind   string      `json:"kind"`
	Cycles arch.Cycles `json:"cycles"`
	Share  float64     `json:"share"`
}

// Attribution is one row of the latency-attribution report: a whole
// class (Phase == "") or one phase of it.
type Attribution struct {
	Class string `json:"class"`
	Phase string `json:"phase,omitempty"`

	// Requests counts finished requests for class rows, entries for
	// phase rows. Shed and Missed are class-row only.
	Requests int `json:"requests"`
	Shed     int `json:"shed,omitempty"`
	Missed   int `json:"missed,omitempty"`

	// TotalLatency is the summed latency of the population; Mean is
	// its per-kind decomposition (shares of TotalLatency).
	TotalLatency arch.Cycles    `json:"total_latency"`
	Mean         []SegmentShare `json:"mean"`

	// Tail decomposes the retained worst-N exemplars the same way;
	// class rows only. WorstReq/WorstLatency identify the worst one.
	Tail         []SegmentShare `json:"tail,omitempty"`
	WorstReq     int            `json:"worst_req,omitempty"`
	WorstLatency arch.Cycles    `json:"worst_latency,omitempty"`
}

func shares(segs map[string]arch.Cycles, total arch.Cycles) []SegmentShare {
	var out []SegmentShare
	for _, k := range SegmentKinds {
		c := segs[k]
		if c == 0 {
			continue
		}
		sh := SegmentShare{Kind: k, Cycles: c}
		if total > 0 {
			sh.Share = float64(c) / float64(total)
		}
		out = append(out, sh)
	}
	return out
}

// Attribution builds the report: for each class (sorted by name) one
// class row followed by its phase rows (sorted by phase name).
func (st *Store) Attribution() []Attribution {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Attribution
	for _, name := range st.classNames() {
		ca := st.classes[name]
		row := Attribution{
			Class:        name,
			Requests:     ca.requests,
			Shed:         ca.shed,
			Missed:       ca.missed,
			TotalLatency: ca.latency,
			Mean:         shares(ca.segs, ca.latency),
		}
		if len(ca.worst) > 0 {
			tail := map[string]arch.Cycles{}
			var tailLat arch.Cycles
			for _, sp := range ca.worst {
				tailLat += sp.Latency
				for _, s := range sp.Totals {
					tail[s.Kind] += s.Cycles
				}
			}
			row.Tail = shares(tail, tailLat)
			row.WorstReq = ca.worst[0].Req
			row.WorstLatency = ca.worst[0].Latency
		}
		out = append(out, row)

		phases := make([]string, 0, len(ca.phases))
		for ph := range ca.phases {
			phases = append(phases, ph)
		}
		sort.Strings(phases)
		for _, ph := range phases {
			pa := ca.phases[ph]
			out = append(out, Attribution{
				Class:        name,
				Phase:        ph,
				Requests:     pa.entries,
				TotalLatency: pa.latency,
				Mean:         shares(pa.segs, pa.latency),
			})
		}
	}
	return out
}

// Publish emits the store's state as aimt_rtrace_* series: traffic
// counters (delta-tracked, so repeated publishes don't double-count)
// and per-class attribution-share gauges.
func (st *Store) Publish(reg *obs.Registry) {
	if st == nil || reg == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	reg.Counter("aimt_rtrace_requests_total").Add(int64(st.total - st.pubTotal))
	reg.Counter("aimt_rtrace_shed_total").Add(int64(st.shed - st.pubShed))
	reg.Counter("aimt_rtrace_sampled_total").Add(int64(st.sampled - st.pubSampled))
	st.pubTotal, st.pubShed, st.pubSampled = st.total, st.shed, st.sampled
	for _, name := range st.classNames() {
		ca := st.classes[name]
		cl := func(metric string) string { return obs.Label(metric, "class", name) }
		if ca.latency > 0 {
			for _, k := range SegmentKinds {
				g := obs.Label(cl("aimt_rtrace_mean_share"), "segment", k)
				reg.Gauge(g).Set(float64(ca.segs[k]) / float64(ca.latency))
			}
		}
		if len(ca.worst) > 0 {
			tail := map[string]arch.Cycles{}
			var tailLat arch.Cycles
			for _, sp := range ca.worst {
				tailLat += sp.Latency
				for _, s := range sp.Totals {
					tail[s.Kind] += s.Cycles
				}
			}
			if tailLat > 0 {
				for _, k := range SegmentKinds {
					g := obs.Label(cl("aimt_rtrace_tail_share"), "segment", k)
					reg.Gauge(g).Set(float64(tail[k]) / float64(tailLat))
				}
			}
			reg.Gauge(cl("aimt_rtrace_worst_latency_cycles")).Set(float64(ca.worst[0].Latency))
		}
	}
}

// PrintAttribution renders the report as a text table: one line per
// class, indented lines per phase, with percentage decompositions.
func PrintAttribution(w io.Writer, rows []Attribution) error {
	for _, row := range rows {
		var err error
		if row.Phase == "" {
			_, err = fmt.Fprintf(w, "%-12s %6d req  %4d shed  %4d missed  %s\n",
				row.Class, row.Requests, row.Shed, row.Missed, shareString(row.Mean))
			if err == nil && len(row.Tail) > 0 {
				_, err = fmt.Fprintf(w, "%-12s tail (worst req %d, %d cyc): %s\n",
					"", row.WorstReq, int64(row.WorstLatency), shareString(row.Tail))
			}
		} else {
			_, err = fmt.Fprintf(w, "  %-10s %6d entries  %s\n",
				row.Phase, row.Requests, shareString(row.Mean))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func shareString(ss []SegmentShare) string {
	if len(ss) == 0 {
		return "(no cycles)"
	}
	s := ""
	for i, sh := range ss {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.0f%% %s", sh.Share*100, sh.Kind)
	}
	return s
}
