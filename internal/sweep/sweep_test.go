package sweep

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/core"
	"aimt/internal/nn"
	"aimt/internal/sched"
	"aimt/internal/sim"
)

func testConfig(t testing.TB) arch.Config {
	t.Helper()
	cfg := arch.Config{
		PEDim:        4,
		NumArrays:    4,
		FreqHz:       1_000_000_000,
		MemBandwidth: 1_000_000_000,
		WeightSRAM:   64 * 16,
		IOSRAM:       1 << 20,
		WeightBytes:  1,
		FillLatency:  2,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// testJobs builds a small mix × scheduler cross-product over two tiny
// networks, mirroring how experiments.go uses the sweep.
func testJobs(t testing.TB) []Job {
	t.Helper()
	cfg := testConfig(t)

	b := nn.NewBuilder("convy", 3, 8, 8)
	b.Conv("c1", 8, 3, 1, 1)
	b.Conv("c2", 8, 3, 1, 1)
	b.FC("fc", 10)
	convy, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b = nn.NewBuilder("fcy", 16, 1, 1)
	b.FC("f1", 32)
	b.FC("f2", 16)
	fcy, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var nets []*compiler.CompiledNetwork
	for _, n := range []*nn.Network{convy, fcy} {
		cn, err := compiler.Compile(n, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, cn)
	}
	mixes := [][]*compiler.CompiledNetwork{
		{nets[0]},
		{nets[0], nets[1]},
		{nets[1], nets[0], nets[1]},
	}

	scheds := []struct {
		name string
		mk   func() sim.Scheduler
	}{
		{"FIFO", func() sim.Scheduler { return sched.NewFIFO() }},
		{"RR", func() sim.Scheduler { return sched.NewRR() }},
		{"Greedy", func() sim.Scheduler { return sched.NewGreedy() }},
		{"SJF", func() sim.Scheduler { return sched.NewSJF() }},
		{"AI-MT", func() sim.Scheduler { return core.New(cfg, core.All()) }},
	}

	var jobs []Job
	for mi, mix := range mixes {
		for _, s := range scheds {
			jobs = append(jobs, Job{
				Mix:  fmt.Sprintf("mix%d", mi),
				Cfg:  cfg,
				Nets: mix,
				New:  s.mk,
			})
		}
	}
	return jobs
}

// render flattens outcomes to a canonical byte string so serial and
// parallel sweeps can be compared for byte identity.
func render(outs []Outcome) string {
	var sb strings.Builder
	for _, o := range outs {
		fmt.Fprintf(&sb, "%d %s %s err=%v", o.Index, o.Mix, o.Scheduler, o.Err)
		if o.Res != nil {
			fmt.Fprintf(&sb, " %+v", *o.Res)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestDeterministicAcrossWorkers is the sweep determinism guarantee:
// the same jobs produce byte-identical aggregated results at every
// worker count, invariants checked on every job. Run under -race this
// also proves sharing compiled networks across jobs is safe.
func TestDeterministicAcrossWorkers(t *testing.T) {
	jobs := testJobs(t)
	serial := Run(jobs, Options{Workers: 1, CheckInvariants: true})
	if err := FirstError(serial); err != nil {
		t.Fatal(err)
	}
	want := render(serial)
	for _, workers := range []int{2, 8, 0} {
		got := Run(jobs, Options{Workers: workers, CheckInvariants: true})
		if err := FirstError(got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d: outcomes differ from serial run", workers)
		}
		if s := render(got); s != want {
			t.Errorf("workers=%d: rendered results not byte-identical:\n--- serial\n%s--- parallel\n%s", workers, want, s)
		}
	}
}

// TestOutcomeOrderAndLabels pins the aggregation contract: outcomes
// arrive in job order with the scheduler label filled from the
// constructed scheduler when the job left it empty.
func TestOutcomeOrderAndLabels(t *testing.T) {
	jobs := testJobs(t)
	outs := Run(jobs, Options{Workers: 4})
	if len(outs) != len(jobs) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(jobs))
	}
	for i, o := range outs {
		if o.Index != i {
			t.Errorf("outcome %d has index %d", i, o.Index)
		}
		if o.Mix != jobs[i].Mix {
			t.Errorf("outcome %d mix = %q, want %q", i, o.Mix, jobs[i].Mix)
		}
		if o.Scheduler == "" {
			t.Errorf("outcome %d has no scheduler label", i)
		}
		if o.Err != nil || o.Res == nil {
			t.Errorf("outcome %d: res=%v err=%v", i, o.Res, o.Err)
		}
	}
}

// TestJobErrors checks failures stay in their slot and FirstError
// annotates them, without disturbing the other jobs.
func TestJobErrors(t *testing.T) {
	jobs := testJobs(t)[:3]
	jobs[1] = Job{Mix: "broken"} // no factory
	outs := Run(jobs, Options{Workers: 2})
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil {
		t.Fatal("broken job reported no error")
	}
	err := FirstError(outs)
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("FirstError = %v, want mention of the broken mix", err)
	}
}

// TestForcedInvariants checks Options.CheckInvariants reaches the
// simulator: a run that violates an invariant only the checker sees
// must fail once the sweep forces checking on.
func TestForcedInvariants(t *testing.T) {
	jobs := testJobs(t)[:1]
	if jobs[0].Opts.CheckInvariants {
		t.Fatal("test premise broken: job already checks invariants")
	}
	outs := Run(jobs, Options{Workers: 1, CheckInvariants: true})
	if outs[0].Err != nil {
		t.Fatalf("legitimate run failed under forced invariants: %v", outs[0].Err)
	}
	if outs[0].Res == nil {
		t.Fatal("no result")
	}
}
