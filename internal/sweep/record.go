package sweep

import (
	"aimt/internal/runstore"
)

// RecordOutcomes appends one run per successful sweep outcome to the
// store: labels carry the job's mix and scheduler (plus any extra
// labels shared by the batch), metrics the simulation's makespan,
// utilization and block counts. Failed outcomes are skipped — their
// errors surface through FirstError, not the history. It returns the
// stored runs.
func RecordOutcomes(st *runstore.Store, commit string, extra map[string]string, outs []Outcome) ([]runstore.Run, error) {
	var stored []runstore.Run
	for _, o := range outs {
		if o.Res == nil {
			continue
		}
		labels := map[string]string{"mix": o.Mix, "sched": o.Scheduler}
		for k, v := range extra {
			labels[k] = v
		}
		r, err := st.Append(runstore.Run{
			Source: "sweep",
			Commit: commit,
			Labels: labels,
			Metrics: []runstore.Metric{
				{Name: "makespan cycles", Value: float64(o.Res.Makespan), Unit: "cycles"},
				{Name: "pe util frac", Value: o.Res.PEUtilization(), Unit: "frac"},
				{Name: "mem util frac", Value: o.Res.MemUtilization(), Unit: "frac"},
				{Name: "mb count", Value: float64(o.Res.MBCount), Unit: "count"},
				{Name: "cb count", Value: float64(o.Res.CBCount), Unit: "count"},
				{Name: "splits count", Value: float64(o.Res.Splits), Unit: "count"},
			},
		})
		if err != nil {
			return stored, err
		}
		stored = append(stored, r)
	}
	return stored, nil
}
