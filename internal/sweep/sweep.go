// Package sweep runs batches of independent simulations — the paper's
// mix × scheduler × mechanism cross-products — over a worker pool.
//
// Results are deterministic regardless of worker count: every job
// writes its outcome into a slot fixed by its index, so aggregation
// order is the job order, never the completion order. Sharing compiled
// networks across concurrent jobs is safe because the simulator treats
// them as read-only; each job gets a fresh scheduler from its factory
// because schedulers carry run state.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sim"
)

// Job is one simulation in a sweep.
type Job struct {
	// Mix and Scheduler label the job in outcomes and error messages.
	// An empty Scheduler is filled from the constructed scheduler's
	// Name.
	Mix       string
	Scheduler string

	// Cfg is the hardware configuration for this job (jobs in one
	// sweep may differ, e.g. the Fig 16 SRAM sweep).
	Cfg arch.Config

	// Nets is the co-located network set. The simulator never mutates
	// compiled networks, so the same slice may back many jobs.
	Nets []*compiler.CompiledNetwork

	// New constructs the job's scheduler. It must return a fresh value
	// on every call: schedulers carry per-run state and a sweep runs
	// jobs concurrently.
	New func() sim.Scheduler

	// Opts forwards per-job simulation options (arrivals, tracing,
	// invariant checking).
	Opts sim.Options
}

// Outcome is one job's result. Outcomes are returned in job order.
type Outcome struct {
	// Index is the job's position in the sweep.
	Index int
	// Mix and Scheduler echo the job's labels.
	Mix       string
	Scheduler string
	// Res is the simulation result, nil if Err is set.
	Res *sim.Result
	// Err is the job's failure, nil on success.
	Err error
}

// Options tunes a sweep.
type Options struct {
	// Workers caps the worker pool; <= 0 means GOMAXPROCS.
	Workers int

	// CheckInvariants forces the machine-model invariant checker on
	// for every job, regardless of each job's own Opts.
	CheckInvariants bool
}

// Run executes every job and returns their outcomes in job order.
// Individual failures land in Outcome.Err (see FirstError); Run itself
// never fails.
func Run(jobs []Job, opts Options) []Outcome {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	out := make([]Outcome, len(jobs))
	runOne := func(i int) {
		j := jobs[i]
		o := Outcome{Index: i, Mix: j.Mix, Scheduler: j.Scheduler}
		if j.New == nil {
			o.Err = fmt.Errorf("sweep: job %d (%s) has no scheduler factory", i, j.Mix)
		} else {
			s := j.New()
			if o.Scheduler == "" {
				o.Scheduler = s.Name()
			}
			sopts := j.Opts
			if opts.CheckInvariants {
				sopts.CheckInvariants = true
			}
			o.Res, o.Err = sim.Run(j.Cfg, j.Nets, s, sopts)
		}
		out[i] = o
	}

	if workers <= 1 {
		for i := range jobs {
			runOne(i)
		}
		return out
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// FirstError returns the first failed outcome's error, annotated with
// the job's labels, or nil if every job succeeded.
func FirstError(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			if o.Scheduler != "" {
				return fmt.Errorf("%s under %s: %w", o.Mix, o.Scheduler, o.Err)
			}
			return fmt.Errorf("%s: %w", o.Mix, o.Err)
		}
	}
	return nil
}
