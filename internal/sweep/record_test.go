package sweep

import (
	"testing"
	"time"

	"aimt/internal/runstore"
)

// TestRecordOutcomes runs a real (tiny) sweep and checks every
// successful outcome lands in the store with its mix/sched labels and
// simulator metrics, while failed outcomes are skipped rather than
// recorded as zero rows.
func TestRecordOutcomes(t *testing.T) {
	jobs := testJobs(t)[:4]
	outs := Run(jobs, Options{Workers: 2})
	if err := FirstError(outs); err != nil {
		t.Fatal(err)
	}
	outs = append(outs, Outcome{Mix: "broken", Scheduler: "none"}) // Res == nil

	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

	stored, err := RecordOutcomes(st, "abc1234", map[string]string{"suite": "unit"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 4 {
		t.Fatalf("stored %d runs, want 4 (failed outcome must be skipped)", len(stored))
	}
	for i, r := range stored {
		if r.Source != "sweep" || r.Commit != "abc1234" {
			t.Errorf("run %d source/commit = %q/%q", i, r.Source, r.Commit)
		}
		if r.Label("mix") != outs[i].Mix || r.Label("sched") != outs[i].Scheduler {
			t.Errorf("run %d labels = %v, want mix=%q sched=%q", i, r.Labels, outs[i].Mix, outs[i].Scheduler)
		}
		if r.Label("suite") != "unit" {
			t.Errorf("run %d missing extra label: %v", i, r.Labels)
		}
		v, ok := r.Metric("makespan cycles")
		if !ok || v <= 0 {
			t.Errorf("run %d makespan = %v (ok=%v), want > 0", i, v, ok)
		}
		if _, ok := r.Metric("pe util frac"); !ok {
			t.Errorf("run %d missing pe util row", i)
		}
	}
}
