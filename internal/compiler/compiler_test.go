package compiler

import (
	"errors"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
	"aimt/internal/nn"
)

func cfg(t *testing.T) arch.Config {
	t.Helper()
	c := arch.PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func compile(t *testing.T, net *nn.Network, batch int) *CompiledNetwork {
	t.Helper()
	cn, err := Compile(net, cfg(t), batch)
	if err != nil {
		t.Fatalf("compile %s: %v", net.Name, err)
	}
	if err := cn.Validate(); err != nil {
		t.Fatalf("validate %s: %v", net.Name, err)
	}
	return cn
}

// Algorithm 1 on a CONV layer: 64 3x3x64 filters on 56x56 input.
func TestEstimateConv(t *testing.T) {
	b := nn.NewBuilder("one", 64, 56, 56)
	b.Conv("conv", 64, 3, 1, 1)
	cn := compile(t, b.MustBuild(), 1)
	l := cn.Layers[0]

	c := cfg(t)
	if l.MBCycles != c.ReadCyclesPerArray() {
		t.Errorf("MB = %d, want read_cyc_per_array = %d", l.MBCycles, c.ReadCyclesPerArray())
	}
	// CB = ceil(56*56/16)*1 + 256 = 196 + 256.
	if want := arch.Cycles(196 + 256); l.CBCycles != want {
		t.Errorf("CB = %d, want %d", l.CBCycles, want)
	}
	// iters = ceil(64/128) * ceil(64*9/128) = 1 * 5.
	if l.Iters != 5 {
		t.Errorf("iters = %d, want 5", l.Iters)
	}
	if l.MBBlocks != 1 {
		t.Errorf("MBBlocks = %d, want 1 (shared weight mapping)", l.MBBlocks)
	}
}

// Algorithm 1 on an FC layer: 25088 -> 4096 (VGG fc6).
func TestEstimateFC(t *testing.T) {
	b := nn.NewBuilder("one", 25088, 1, 1)
	b.FC("fc", 4096)
	cn := compile(t, b.MustBuild(), 1)
	l := cn.Layers[0]

	c := cfg(t)
	if want := c.ReadCyclesPerArray() * arch.Cycles(c.NumArrays); l.MBCycles != want {
		t.Errorf("MB = %d, want %d (all arrays hold distinct weights)", l.MBCycles, want)
	}
	if want := arch.Cycles(1 + 256); l.CBCycles != want {
		t.Errorf("CB = %d, want %d (batch + fill)", l.CBCycles, want)
	}
	// iters = ceil(4096/2048) * ceil(25088/128) = 2 * 196.
	if l.Iters != 392 {
		t.Errorf("iters = %d, want 392", l.Iters)
	}
	if l.MBBlocks != 16 {
		t.Errorf("MBBlocks = %d, want NumArrays", l.MBBlocks)
	}
	if !l.MemoryIntensive() {
		t.Error("FC sub-layer not memory-intensive at batch 1")
	}
}

// Depthwise convolutions contract only k*k per output channel.
func TestEstimateDWConv(t *testing.T) {
	b := nn.NewBuilder("one", 256, 28, 28)
	b.DWConv("dw", 3, 1, 1)
	cn := compile(t, b.MustBuild(), 1)
	l := cn.Layers[0]
	// iters = ceil(256/128) * ceil(9/128) = 2.
	if l.Iters != 2 {
		t.Errorf("iters = %d, want 2", l.Iters)
	}
}

func TestBatchScalesCBNotMB(t *testing.T) {
	b := nn.NewBuilder("one", 64, 56, 56)
	b.Conv("conv", 64, 3, 1, 1)
	net := b.MustBuild()
	one := compile(t, net, 1)
	eight := compile(t, net, 8)
	if one.Layers[0].MBCycles != eight.Layers[0].MBCycles {
		t.Error("MB cycles changed with batch")
	}
	if one.Layers[0].Iters != eight.Layers[0].Iters {
		t.Error("iters changed with batch")
	}
	// CB = ceil(ow*oh/arrays)*batch + fill grows linearly in batch.
	fill := cfg(t).FillLatency
	if got, want := eight.Layers[0].CBCycles-fill, 8*(one.Layers[0].CBCycles-fill); got != want {
		t.Errorf("batch-8 CB work = %d, want %d", got, want)
	}
}

func TestPoolLayersFused(t *testing.T) {
	cn := compile(t, nn.VGG16(), 1)
	if len(cn.Layers) != 16 {
		t.Fatalf("VGG16 compiled layers = %d, want 16 (13 conv + 3 fc)", len(cn.Layers))
	}
	for _, l := range cn.Layers {
		if l.Type == nn.Pool {
			t.Errorf("pool layer %s survived compilation", l.Name)
		}
	}
	// Dependencies pass through the fused pools: conv2_1 (index 2)
	// depends on conv1_2 (index 1).
	if got := cn.Layers[2].Deps; len(got) != 1 || got[0] != 1 {
		t.Errorf("conv2_1 deps = %v, want [1]", got)
	}
}

func TestResidualDependencies(t *testing.T) {
	cn := compile(t, nn.ResNet50(), 1)
	// Some layer must have two predecessors (post-residual convs).
	found := false
	for _, l := range cn.Layers {
		if len(l.Deps) == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no compiled layer carries a residual double dependency")
	}
	// Posts must mirror Deps.
	for i, l := range cn.Layers {
		for _, d := range l.Deps {
			ok := false
			for _, p := range cn.Layers[d].Posts {
				if p == i {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("layer %d dep %d not mirrored in Posts", i, d)
			}
		}
	}
}

func TestWeightBytesMatchBlocks(t *testing.T) {
	cn := compile(t, nn.ResNet50(), 1)
	c := cfg(t)
	for _, l := range cn.Layers {
		if l.MBBytes != c.BlockBytes()*arch.Bytes(l.MBBlocks) {
			t.Errorf("%s: MBBytes %d != blocks %d * %d", l.Name, l.MBBytes, l.MBBlocks, c.BlockBytes())
		}
	}
}

func TestGNMTMemoryIntensive(t *testing.T) {
	for _, batch := range []int{1, 8, 32} {
		cn := compile(t, nn.GNMT(), batch)
		if !cn.MemoryIntensive() {
			t.Errorf("GNMT at batch %d not memory-intensive", batch)
		}
		for _, l := range cn.Layers {
			if !l.MemoryIntensive() {
				t.Errorf("GNMT %s at batch %d not memory-intensive", l.Name, batch)
			}
		}
	}
}

func TestCNNsComputeIntensive(t *testing.T) {
	for _, name := range []string{"RN34", "RN50", "MN"} {
		net, err := nn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cn := compile(t, net, 1)
		if cn.MemoryIntensive() {
			t.Errorf("%s classified memory-intensive", name)
		}
	}
}

func TestVGGSplitPersonality(t *testing.T) {
	// The paper's Fig 5: VGG16's conv layers are compute-intensive,
	// its FC layers memory-intensive.
	cn := compile(t, nn.VGG16(), 1)
	for _, l := range cn.Layers {
		memory := l.MemoryIntensive()
		if l.Type == nn.FC && !memory {
			t.Errorf("%s (FC) not memory-intensive", l.Name)
		}
		if l.Type == nn.Conv && memory {
			t.Errorf("%s (CONV) not compute-intensive", l.Name)
		}
	}
}

func TestHostBytes(t *testing.T) {
	cn := compile(t, nn.VGG16(), 4)
	if want := arch.Bytes(3 * 224 * 224 * 4); cn.HostInBytes != want {
		t.Errorf("HostInBytes = %d, want %d", cn.HostInBytes, want)
	}
	if want := arch.Bytes(1000 * 4); cn.HostOutBytes != want {
		t.Errorf("HostOutBytes = %d, want %d", cn.HostOutBytes, want)
	}
}

func TestCompileRejects(t *testing.T) {
	if _, err := Compile(nn.VGG16(), cfg(t), 0); !errors.Is(err, ErrBadBatch) {
		t.Errorf("batch 0: %v", err)
	}
	bad := &nn.Network{Name: "bad"}
	if _, err := Compile(bad, cfg(t), 1); err == nil {
		t.Error("empty network compiled")
	}
	poolOnly := nn.NewBuilder("pool", 3, 8, 8)
	poolOnly.Pool("p", 2, 2, 0)
	if _, err := Compile(poolOnly.MustBuild(), cfg(t), 1); err == nil {
		t.Error("weightless network compiled")
	}
}

func TestStatsTotals(t *testing.T) {
	cn := compile(t, nn.ResNet34(), 1)
	s := cn.Stats()
	var subs int
	var mb, cb arch.Cycles
	var wb arch.Bytes
	for _, l := range cn.Layers {
		subs += l.Iters
		mb += l.TotalMBCycles()
		cb += l.TotalCBCycles()
		wb += l.TotalWeightBytes()
	}
	if s.SubLayers != subs || s.MBCycles != mb || s.CBCycles != cb || s.WeightBytes != wb {
		t.Errorf("Stats() = %+v, recomputed %d/%d/%d/%d", s, subs, mb, cb, wb)
	}
}

// Compiled weight traffic must cover the model's true weight count
// (block-granular fetches round up, never down).
func TestWeightTrafficCoversModel(t *testing.T) {
	for name, net := range nn.Zoo() {
		cn := compile(t, net, 1)
		traffic := int64(cn.Stats().WeightBytes)
		if traffic < net.TotalWeights() {
			t.Errorf("%s: weight traffic %d < model weights %d", name, traffic, net.TotalWeights())
		}
	}
}

// Property: sub-layer counts scale with layer dimensions as ceil
// ratios — iters is monotone in OutC for CONV layers.
func TestPropertyItersMonotoneInOutC(t *testing.T) {
	c := cfg(t)
	f := func(a, b uint8) bool {
		oc1, oc2 := int(a)+1, int(b)+1
		if oc1 > oc2 {
			oc1, oc2 = oc2, oc1
		}
		mk := func(oc int) CompiledLayer {
			bld := nn.NewBuilder("x", 64, 28, 28)
			bld.Conv("c", oc*8, 3, 1, 1)
			cn, err := Compile(bld.MustBuild(), c, 1)
			if err != nil {
				t.Fatal(err)
			}
			return cn.Layers[0]
		}
		return mk(oc1).Iters <= mk(oc2).Iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cn := compile(t, nn.VGG16(), 1)
	cn.Layers[3].Iters = 0
	if err := cn.Validate(); err == nil {
		t.Error("zero iters accepted")
	}
	cn = compile(t, nn.VGG16(), 1)
	cn.Layers[3].Deps = []int{7}
	if err := cn.Validate(); err == nil {
		t.Error("forward dep accepted")
	}
}
