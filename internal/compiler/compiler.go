// Package compiler lowers a neural network onto the accelerator: it
// implements the paper's latency-estimation model (Algorithm 1) and
// emits the per-network sub-layer scheduling table the runtime
// scheduler consumes (paper §IV-A1).
//
// Each weight-carrying layer is divided into identical sub-layers —
// one per PE-array weight mapping. A sub-layer has a memory block
// (MB: fetch its weights from HBM into the weight SRAM) and a compute
// block (CB: stream inputs through the loaded weights). The compiler
// statically determines, per layer, the MB cycles, CB cycles, the
// number of sub-layers (#iters), the SRAM footprint of one MB, and the
// dependency indegrees used at runtime.
//
// Pooling, activation and normalization layers run on dedicated
// post-processing units and are fused into their producers: they
// contribute dependency edges but no MBs or CBs, so the scheduling
// table contains exactly the CONV/FC layers (as in the paper).
package compiler

import (
	"errors"
	"fmt"

	"aimt/internal/arch"
	"aimt/internal/nn"
)

// Task identifies one compiled weight layer of one network instance.
type Task struct {
	// Layer is the index into CompiledNetwork.Layers.
	Layer int
	// Iter is the sub-layer index within the layer, 0-based.
	Iter int
}

// CompiledLayer is one row of the sub-layer scheduling table.
type CompiledLayer struct {
	// Name is the source layer name, e.g. "conv3_2".
	Name string

	// Type is the source layer type (Conv, DWConv, FC or Attn).
	Type nn.LayerType

	// MBCycles is the HBM occupancy of one memory block.
	MBCycles arch.Cycles

	// CBCycles is the PE-array occupancy of one compute block.
	CBCycles arch.Cycles

	// Iters is the number of identical sub-layers the layer divides
	// into (the paper's #iters).
	Iters int

	// MBBytes is the weight-SRAM footprint of one memory block.
	MBBytes arch.Bytes

	// MBBlocks is MBBytes expressed in allocator blocks (one block per
	// PE array's weights): 1 for CONV, NumArrays for FC.
	MBBlocks int

	// Deps lists predecessor compiled-layer indices: this layer's
	// first sub-layer may not start (MB chain: fetch order; CB chain:
	// data dependency) until every predecessor's last sub-layer of the
	// same kind has finished.
	Deps []int

	// Posts lists successor compiled-layer indices (the paper's
	// post-layer ids).
	Posts []int
}

// TotalMBCycles returns MBCycles * Iters.
func (l CompiledLayer) TotalMBCycles() arch.Cycles {
	return l.MBCycles * arch.Cycles(l.Iters)
}

// TotalCBCycles returns CBCycles * Iters.
func (l CompiledLayer) TotalCBCycles() arch.Cycles {
	return l.CBCycles * arch.Cycles(l.Iters)
}

// TotalWeightBytes returns the layer's full weight footprint.
func (l CompiledLayer) TotalWeightBytes() arch.Bytes {
	return l.MBBytes * arch.Bytes(l.Iters)
}

// MemoryIntensive reports whether the layer's memory blocks are longer
// than its compute blocks — the property early MB eviction keys on.
func (l CompiledLayer) MemoryIntensive() bool {
	return l.MBCycles > l.CBCycles
}

// CompiledNetwork is the sub-layer scheduling table for one network at
// one batch size, plus the host-transfer byte counts used by the
// simulator's PCIe stage.
type CompiledNetwork struct {
	// Name is the source network name.
	Name string

	// Batch is the batch size the table was compiled for.
	Batch int

	// Layers holds the weight layers in topological order.
	Layers []CompiledLayer

	// HostInBytes is the input-feature traffic per inference batch.
	HostInBytes arch.Bytes

	// HostOutBytes is the output-feature traffic per inference batch.
	HostOutBytes arch.Bytes
}

// Errors returned by Compile.
var (
	ErrBadBatch = errors.New("compiler: batch size must be positive")
)

// Compile lowers net onto cfg at the given batch size. cfg must have
// been validated.
func Compile(net *nn.Network, cfg arch.Config, batch int) (*CompiledNetwork, error) {
	if batch <= 0 {
		return nil, ErrBadBatch
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}

	// Map original layer indices to compiled (weight-layer) indices,
	// fusing non-weight layers: a weight layer depends on the weight
	// layers reachable backwards through fused layers.
	weightIdx := make([]int, len(net.Layers)) // -1 for fused layers
	for i := range weightIdx {
		weightIdx[i] = -1
	}
	// effDeps[i] = set of compiled indices feeding original layer i.
	effDeps := make([][]int, len(net.Layers))

	cn := &CompiledNetwork{
		Name:         net.Name,
		Batch:        batch,
		HostInBytes:  arch.Bytes(net.InputBytes(cfg.WeightBytes) * int64(batch)),
		HostOutBytes: arch.Bytes(net.OutputBytes(cfg.WeightBytes) * int64(batch)),
	}

	for i, l := range net.Layers {
		var deps []int
		seen := map[int]bool{}
		for _, in := range l.Inputs {
			if w := weightIdx[in]; w >= 0 {
				if !seen[w] {
					seen[w] = true
					deps = append(deps, w)
				}
			} else {
				for _, d := range effDeps[in] {
					if !seen[d] {
						seen[d] = true
						deps = append(deps, d)
					}
				}
			}
		}
		if !l.Type.HasWeights() {
			effDeps[i] = deps
			continue
		}
		cl, err := estimate(l, cfg, batch)
		if err != nil {
			return nil, fmt.Errorf("compiler: %s/%s: %w", net.Name, l.Name, err)
		}
		cl.Deps = deps
		weightIdx[i] = len(cn.Layers)
		effDeps[i] = []int{weightIdx[i]}
		cn.Layers = append(cn.Layers, cl)
	}
	for i, l := range cn.Layers {
		for _, d := range l.Deps {
			cn.Layers[d].Posts = append(cn.Layers[d].Posts, i)
		}
	}
	if len(cn.Layers) == 0 {
		return nil, fmt.Errorf("compiler: %s has no weight layers", net.Name)
	}
	return cn, nil
}

// estimate implements the paper's Algorithm 1, extended with the
// depthwise-convolution mapping described in DESIGN.md.
func estimate(l nn.Layer, cfg arch.Config, batch int) (CompiledLayer, error) {
	read := cfg.ReadCyclesPerArray()
	fill := cfg.FillLatency
	dim := int64(cfg.PEDim)
	arrays := int64(cfg.NumArrays)

	cl := CompiledLayer{Name: l.Name, Type: l.Type}
	switch l.Type {
	case nn.Conv, nn.DWConv:
		// All PE arrays share one weight mapping; input feature rows
		// are partitioned across arrays.
		ow, oh := int64(l.OutW()), int64(l.OutH())
		cl.MBCycles = read
		cl.CBCycles = arch.Cycles(ceil(ow*oh, arrays)*int64(batch)) + fill
		rows := int64(l.InC) * int64(l.Kernel) * int64(l.Kernel)
		if l.Type == nn.DWConv {
			// Each output channel sees only its own k*k inputs, so the
			// contraction depth per filter column is k*k.
			rows = int64(l.Kernel) * int64(l.Kernel)
		}
		cl.Iters = int(ceil(int64(l.OutC), dim) * ceil(rows, dim))
		cl.MBBlocks = 1
	case nn.FC:
		// Each PE array holds distinct filters; the batch streams
		// through all arrays.
		cl.MBCycles = read * arch.Cycles(arrays)
		cl.CBCycles = arch.Cycles(int64(batch)*int64(l.Reuse())) + fill
		cl.Iters = int(ceil(int64(l.OutC), dim*arrays) * ceil(int64(l.InC), dim))
		cl.MBBlocks = cfg.NumArrays
	case nn.Attn:
		// KV-cache-stationary, mapped like FC: each PE array holds a
		// distinct Ctx-tile of the cache (K for the score product, V for
		// the context product) and the Tokens query positions stream
		// through. A decode pass (Tokens = 1) pays the full cache fetch
		// for one token of compute — memory-bound; a prefill pass
		// (Tokens = SeqLen) amortizes the same fetch — compute-heavy.
		cl.MBCycles = read * arch.Cycles(arrays)
		cl.CBCycles = arch.Cycles(int64(batch)*int64(l.Tokens)) + fill
		cl.Iters = int(ceil(int64(l.Ctx), dim*arrays) * ceil(int64(l.InC), dim))
		cl.MBBlocks = cfg.NumArrays
	default:
		return cl, fmt.Errorf("layer type %v carries no weights", l.Type)
	}
	cl.MBBytes = cfg.BlockBytes() * arch.Bytes(cl.MBBlocks)
	if cl.Iters <= 0 {
		return cl, fmt.Errorf("computed %d sub-layers", cl.Iters)
	}
	return cl, nil
}

func ceil(a, b int64) int64 {
	if b <= 0 {
		panic("compiler: ceil by non-positive divisor")
	}
	return (a + b - 1) / b
}

// Stats aggregates a compiled network's totals.
type Stats struct {
	// SubLayers is the total number of sub-layers (Σ Iters).
	SubLayers int
	// MBCycles is the total HBM occupancy (Σ MBCycles·Iters).
	MBCycles arch.Cycles
	// CBCycles is the total PE occupancy (Σ CBCycles·Iters).
	CBCycles arch.Cycles
	// WeightBytes is the total weight traffic.
	WeightBytes arch.Bytes
}

// Stats computes aggregate totals over the network's layers.
func (cn *CompiledNetwork) Stats() Stats {
	var s Stats
	for _, l := range cn.Layers {
		s.SubLayers += l.Iters
		s.MBCycles += l.TotalMBCycles()
		s.CBCycles += l.TotalCBCycles()
		s.WeightBytes += l.TotalWeightBytes()
	}
	return s
}

// MemoryIntensive reports whether the network as a whole demands more
// HBM cycles than PE cycles — the paper's workload classification
// (GNMT and large-FC VGG16 vs the compute-bound CNNs).
func (cn *CompiledNetwork) MemoryIntensive() bool {
	s := cn.Stats()
	return s.MBCycles > s.CBCycles
}

// Validate checks internal consistency of a compiled table; the
// simulator calls it before running.
func (cn *CompiledNetwork) Validate() error {
	if len(cn.Layers) == 0 {
		return errors.New("compiler: empty compiled network")
	}
	if cn.Batch <= 0 {
		return ErrBadBatch
	}
	for i, l := range cn.Layers {
		if l.Iters <= 0 || l.MBCycles < 0 || l.CBCycles <= 0 || l.MBBlocks <= 0 {
			return fmt.Errorf("compiler: layer %d (%s) has invalid parameters %+v", i, l.Name, l)
		}
		for _, d := range l.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("compiler: layer %d (%s) has non-topological dep %d", i, l.Name, d)
			}
		}
	}
	return nil
}
