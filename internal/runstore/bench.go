package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// BenchBenchmark is one parsed `go test -bench` result line; the
// JSON shape of the checked-in BENCH_*.json artifacts.
type BenchBenchmark struct {
	Pkg          string             `json:"pkg"`
	Name         string             `json:"name"`
	Iterations   int64              `json:"iterations"`
	NsPerOp      float64            `json:"ns_per_op"`
	BytesPerOp   float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp  float64            `json:"allocs_per_op,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	BlocksPerSec float64            `json:"blocks_per_sec,omitempty"`
}

// Key is the benchmark's stable identity across reports.
func (b BenchBenchmark) Key() string { return b.Pkg + "." + b.Name }

// BenchReport is the BENCH_*.json schema (also the benchcheck
// baseline schema), produced by cmd/aimt-benchjson.
type BenchReport struct {
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks []BenchBenchmark `json:"benchmarks"`
}

// Run flattens the report into a store Run (source "bench"): one
// metric row per benchmark measurement, named "<pkg>.<name> <unit>".
func (rep *BenchReport) Run(id string) Run {
	r := Run{ID: id, Source: "bench", Labels: map[string]string{}}
	if rep.GOOS != "" {
		r.Labels["goos"] = rep.GOOS
	}
	if rep.GOARCH != "" {
		r.Labels["goarch"] = rep.GOARCH
	}
	if rep.CPU != "" {
		r.Labels["cpu"] = rep.CPU
	}
	for _, b := range rep.Benchmarks {
		add := func(unit string, v float64) {
			r.Metrics = append(r.Metrics, Metric{Name: b.Key() + " " + unit, Value: v, Unit: unit})
		}
		add("ns/op", b.NsPerOp)
		if b.BytesPerOp > 0 {
			add("B/op", b.BytesPerOp)
		}
		if b.AllocsPerOp > 0 {
			add("allocs/op", b.AllocsPerOp)
		}
		if b.BlocksPerSec > 0 {
			add("blocks/s", b.BlocksPerSec)
		}
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			add(u, b.Metrics[u])
		}
	}
	return r
}

// LoadBenchReport parses a BENCH_*.json (or bench baseline) file.
func LoadBenchReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

// LoadBenchFile loads a bench JSON artifact as a Run whose ID is the
// file's base name without extension (BENCH_3.json -> BENCH_3).
func LoadBenchFile(path string) (Run, error) {
	rep, err := LoadBenchReport(path)
	if err != nil {
		return Run{}, err
	}
	id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	r := rep.Run(id)
	r.Source = "seed"
	return r, nil
}

// LoadBenchGlob loads every bench artifact matching the glob as seed
// history, ordered by trailing number then name, so the checked-in
// BENCH_3 -> BENCH_5 -> BENCH_8 files form a perf trajectory.
// A pattern matching nothing yields an empty, error-free history.
func LoadBenchGlob(pattern string) ([]Run, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool {
		ni, iok := trailingNum(paths[i])
		nj, jok := trailingNum(paths[j])
		if iok && jok && ni != nj {
			return ni < nj
		}
		return paths[i] < paths[j]
	})
	var runs []Run
	for _, p := range paths {
		r, err := LoadBenchFile(p)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// trailingNum extracts the number ending a file's stem (BENCH_12.json
// -> 12).
func trailingNum(path string) (int, bool) {
	stem := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	i := len(stem)
	for i > 0 && stem[i-1] >= '0' && stem[i-1] <= '9' {
		i--
	}
	if i == len(stem) {
		return 0, false
	}
	n, err := strconv.Atoi(stem[i:])
	return n, err == nil
}
