package runstore

import (
	"fmt"
	"io"
	"strings"
)

// Diff verdicts.
const (
	VerdictOK          = "ok"
	VerdictRegression  = "regression"
	VerdictImprovement = "improvement"
	VerdictMissing     = "missing" // in old, absent from new
	VerdictAdded       = "added"   // in new, absent from old
	VerdictInfo        = "info"    // direction unknown or old value zero
)

// Direction returns how a metric unit reads: -1 when lower is better
// (latency, allocations), +1 when higher is better (throughput), 0
// when the unit carries no regression direction (utilization, counts).
func Direction(unit string) int {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "cycles", "rate":
		return -1
	case "blocks/s", "req/Mcyc", "tok/Mcyc":
		return 1
	default:
		return 0
	}
}

// DiffRow is one metric compared across two runs.
type DiffRow struct {
	Metric   string
	Unit     string
	Old, New float64
	// Ratio is New/Old when both sides exist and Old is nonzero.
	Ratio float64
	// Verdict is one of the Verdict* constants.
	Verdict string
}

// Diff is a metric-by-metric comparison of two runs against a noise
// threshold: only ratios beyond it (in the unit's bad direction)
// count as regressions, so runner-to-runner variance doesn't flag.
type Diff struct {
	OldID, NewID string
	Noise        float64
	Rows         []DiffRow
}

// Regressions returns the rows that regressed beyond the noise
// threshold.
func (d *Diff) Regressions() []DiffRow {
	var out []DiffRow
	for _, r := range d.Rows {
		if r.Verdict == VerdictRegression || r.Verdict == VerdictMissing {
			out = append(out, r)
		}
	}
	return out
}

// Regressed reports whether any metric regressed (a metric vanishing
// from the new run counts: losing a gated benchmark is a regression).
func (d *Diff) Regressed() bool { return len(d.Regressions()) > 0 }

// DiffRuns compares new against old. noise is the multiplicative
// tolerance (1.25 = 25% drift allowed); values below 1 mean none.
// Rows follow old's metric order, then new-only metrics in new's
// order. A metric whose old value is zero cannot be ratio-gated and
// reads as info.
func DiffRuns(old, new Run, noise float64) *Diff {
	if noise < 1 {
		noise = 1
	}
	d := &Diff{OldID: old.ID, NewID: new.ID, Noise: noise}
	newByName := map[string]Metric{}
	for _, m := range new.Metrics {
		newByName[m.Name] = m
	}
	seen := map[string]bool{}
	for _, om := range old.Metrics {
		seen[om.Name] = true
		nm, ok := newByName[om.Name]
		if !ok {
			d.Rows = append(d.Rows, DiffRow{Metric: om.Name, Unit: om.Unit, Old: om.Value, Verdict: VerdictMissing})
			continue
		}
		row := DiffRow{Metric: om.Name, Unit: om.Unit, Old: om.Value, New: nm.Value}
		switch {
		case om.Value == 0:
			row.Verdict = VerdictInfo
			if nm.Value == 0 {
				row.Verdict = VerdictOK
				row.Ratio = 1
			}
		default:
			row.Ratio = nm.Value / om.Value
			switch dir := Direction(om.Unit); {
			case dir < 0 && row.Ratio > noise:
				row.Verdict = VerdictRegression
			case dir < 0 && row.Ratio < 1/noise:
				row.Verdict = VerdictImprovement
			case dir > 0 && row.Ratio < 1/noise:
				row.Verdict = VerdictRegression
			case dir > 0 && row.Ratio > noise:
				row.Verdict = VerdictImprovement
			case dir == 0:
				row.Verdict = VerdictInfo
			default:
				row.Verdict = VerdictOK
			}
		}
		d.Rows = append(d.Rows, row)
	}
	for _, nm := range new.Metrics {
		if !seen[nm.Name] {
			d.Rows = append(d.Rows, DiffRow{Metric: nm.Name, Unit: nm.Unit, New: nm.Value, Verdict: VerdictAdded})
		}
	}
	return d
}

// WriteText renders the diff as an aligned table plus a one-line
// summary — the structured artifact `make bench-compare` prints.
func (d *Diff) WriteText(w io.Writer) error {
	wide := len("metric")
	for _, r := range d.Rows {
		if len(r.Metric) > wide {
			wide = len(r.Metric)
		}
	}
	if _, err := fmt.Fprintf(w, "diff %s (old) vs %s (new), noise %.2fx\n", d.OldID, d.NewID, d.Noise); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-*s %14s %14s %8s  %s\n", wide, "metric", "old", "new", "ratio", "verdict"); err != nil {
		return err
	}
	for _, r := range d.Rows {
		ratio := "-"
		if r.Ratio != 0 {
			ratio = fmt.Sprintf("%.2fx", r.Ratio)
		}
		oldV, newV := num(r.Old), num(r.New)
		switch r.Verdict {
		case VerdictAdded:
			oldV = "-"
		case VerdictMissing:
			newV = "-"
		}
		mark := ""
		switch r.Verdict {
		case VerdictRegression, VerdictMissing:
			mark = "  <-- REGRESSION"
		case VerdictImprovement:
			mark = "  (better)"
		}
		if _, err := fmt.Fprintf(w, "  %-*s %14s %14s %8s  %s%s\n",
			wide, r.Metric, oldV, newV, ratio, r.Verdict, mark); err != nil {
			return err
		}
	}
	regs := d.Regressions()
	if len(regs) == 0 {
		_, err := fmt.Fprintf(w, "no regressions beyond %.2fx noise (%d metrics)\n", d.Noise, len(d.Rows))
		return err
	}
	names := make([]string, len(regs))
	for i, r := range regs {
		names[i] = r.Metric
	}
	_, err := fmt.Fprintf(w, "%d regression(s) beyond %.2fx noise: %s\n", len(regs), d.Noise, strings.Join(names, ", "))
	return err
}

// num renders a metric value compactly: integers without a fraction,
// everything else with two decimals.
func num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
