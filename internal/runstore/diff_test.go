package runstore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func benchRun(id string, ns, allocs float64) Run {
	rep := &BenchReport{Benchmarks: []BenchBenchmark{
		{Pkg: "aimt", Name: "SimulatorThroughput", NsPerOp: ns, AllocsPerOp: allocs,
			Metrics: map[string]float64{"blocks/op": 9318}, BlocksPerSec: 9318 / (ns * 1e-9)},
	}}
	return rep.Run(id)
}

func TestSelfDiffHasNoRegressions(t *testing.T) {
	r := benchRun("same", 1.79e6, 24)
	d := DiffRuns(r, r, 1.25)
	if d.Regressed() {
		t.Fatalf("self-diff regressed: %+v", d.Regressions())
	}
	for _, row := range d.Rows {
		if row.Ratio != 1 {
			t.Fatalf("self-diff ratio %v on %s", row.Ratio, row.Metric)
		}
	}
}

func TestDiffFlagsInjectedRegression(t *testing.T) {
	old := benchRun("base", 1.79e6, 24)
	slow := benchRun("slow", 2*1.79e6, 24) // injected 2x ns/op regression
	d := DiffRuns(old, slow, 1.25)
	if !d.Regressed() {
		t.Fatal("2x ns/op regression not flagged at 1.25x noise")
	}
	found := false
	for _, row := range d.Regressions() {
		if row.Metric == "aimt.SimulatorThroughput ns/op" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ns/op row missing from regressions: %+v", d.Regressions())
	}
	// The same 2x drift within a generous threshold passes.
	if DiffRuns(old, slow, 2.5).Regressed() {
		t.Fatal("2x drift flagged beyond a 2.5x noise threshold")
	}
}

func TestDiffDirections(t *testing.T) {
	old := Run{ID: "old", Metrics: []Metric{
		{Name: "tput req/Mcyc", Value: 100, Unit: "req/Mcyc"},
		{Name: "miss rate", Value: 0.10, Unit: "rate"},
		{Name: "pe util frac", Value: 0.5, Unit: "frac"},
		{Name: "gone ns/op", Value: 5, Unit: "ns/op"},
	}}
	new := Run{ID: "new", Metrics: []Metric{
		{Name: "tput req/Mcyc", Value: 50, Unit: "req/Mcyc"}, // halved throughput: regression
		{Name: "miss rate", Value: 0.05, Unit: "rate"},       // improvement
		{Name: "pe util frac", Value: 0.9, Unit: "frac"},     // directionless: info
		{Name: "fresh ns/op", Value: 1, Unit: "ns/op"},       // added
	}}
	d := DiffRuns(old, new, 1.25)
	want := map[string]string{
		"tput req/Mcyc": VerdictRegression,
		"miss rate":     VerdictImprovement,
		"pe util frac":  VerdictInfo,
		"gone ns/op":    VerdictMissing,
		"fresh ns/op":   VerdictAdded,
	}
	for _, row := range d.Rows {
		if row.Verdict != want[row.Metric] {
			t.Errorf("%s: verdict %s, want %s", row.Metric, row.Verdict, want[row.Metric])
		}
	}
	if len(d.Rows) != len(want) {
		t.Fatalf("row count %d, want %d", len(d.Rows), len(want))
	}
	if got := len(d.Regressions()); got != 2 { // throughput + missing metric
		t.Fatalf("regressions = %d, want 2", got)
	}
}

// TestDiffGolden pins the rendered -diff output byte-for-byte; it is
// the structured artifact CI prints on a bench regression.
func TestDiffGolden(t *testing.T) {
	old := benchRun("bench_baseline", 1.79e6, 24)
	new := benchRun("BENCH_9", 3.58e6, 24)
	var buf bytes.Buffer
	if err := DiffRuns(old, new, 1.25).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "diff.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("diff output drifted (use -update if intentional):\n--- got\n%s--- want\n%s", buf.String(), want)
	}
}
