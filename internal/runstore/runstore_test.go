package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

func openFixed(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Now = fixedClock
	return s
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openFixed(t, dir)
	r1, err := s.Append(Run{Source: "serve", Labels: map[string]string{"sched": "AI-MT"},
		Metrics: []Metric{{Name: "p99 cycles", Value: 1234, Unit: "cycles"}}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID != "run-000001" {
		t.Fatalf("assigned ID = %q, want run-000001", r1.ID)
	}
	if r1.Time != "2026-08-08T12:00:00Z" {
		t.Fatalf("assigned Time = %q", r1.Time)
	}
	if _, err := s.Append(Run{ID: "custom", Source: "bench"}); err != nil {
		t.Fatal(err)
	}

	s2 := openFixed(t, dir)
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	got, ok := s2.Get("run-000001")
	if !ok || got.Labels["sched"] != "AI-MT" {
		t.Fatalf("Get(run-000001) = %+v, %v", got, ok)
	}
	if v, ok := got.Metric("p99 cycles"); !ok || v != 1234 {
		t.Fatalf("Metric(p99 cycles) = %v, %v", v, ok)
	}
	// Sequence numbering resumes past existing runs.
	r3, err := s2.Append(Run{Source: "serve"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.ID != "run-000002" {
		t.Fatalf("resumed ID = %q, want run-000002", r3.ID)
	}
}

func TestSelect(t *testing.T) {
	s := openFixed(t, t.TempDir())
	seed := []Run{
		{Source: "serve", Labels: map[string]string{"sched": "AI-MT", "load": "0.80"}},
		{Source: "serve", Labels: map[string]string{"sched": "FIFO", "load": "0.80"}},
		{Source: "bench", Labels: map[string]string{"goos": "linux"}},
	}
	for _, r := range seed {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Select(Query{Source: "serve"}); len(got) != 2 {
		t.Fatalf("Select(serve) = %d runs, want 2", len(got))
	}
	got := s.Select(Query{Source: "serve", Labels: map[string]string{"sched": "AI-MT"}})
	if len(got) != 1 || got[0].Labels["load"] != "0.80" {
		t.Fatalf("Select(serve, AI-MT) = %+v", got)
	}
	if got := s.Select(Query{Labels: map[string]string{"sched": "EDF"}}); len(got) != 0 {
		t.Fatalf("Select(EDF) = %+v, want none", got)
	}
}

func TestCompactDropsDuplicateIDs(t *testing.T) {
	dir := t.TempDir()
	s := openFixed(t, dir)
	if _, err := s.Append(Run{ID: "a", Source: "serve", Labels: map[string]string{"v": "1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Run{ID: "b", Source: "serve"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Run{ID: "a", Source: "serve", Labels: map[string]string{"v": "2"}}); err != nil {
		t.Fatal(err)
	}
	dropped, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("Compact dropped %d, want 1", dropped)
	}
	runs := s.Runs()
	if len(runs) != 2 || runs[0].ID != "a" || runs[0].Labels["v"] != "2" || runs[1].ID != "b" {
		t.Fatalf("after Compact: %+v", runs)
	}
	// The rewrite is durable.
	s2 := openFixed(t, dir)
	if s2.Len() != 2 {
		t.Fatalf("reopened after Compact: Len = %d, want 2", s2.Len())
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openFixed(t, dir)
	if _, err := s.Append(Run{Source: "serve"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Run{Source: "serve"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName)
	// Simulate a writer dying mid-append: a partial JSON line with no
	// trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"run-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openFixed(t, dir)
	if !s2.Recovered() {
		t.Fatal("Open did not report torn-tail recovery")
	}
	if s2.Len() != 2 {
		t.Fatalf("Len after recovery = %d, want 2", s2.Len())
	}
	// The tail was truncated away: the next append lands cleanly and a
	// further reopen is clean.
	if _, err := s2.Append(Run{Source: "serve"}); err != nil {
		t.Fatal(err)
	}
	s3 := openFixed(t, dir)
	if s3.Recovered() || s3.Len() != 3 {
		t.Fatalf("after recovery+append: recovered=%v len=%d, want false/3", s3.Recovered(), s3.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `run-0000"`) || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("log not clean after recovery:\n%s", data)
	}
}

func TestCorruptMiddleLineIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := openFixed(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.Append(Run{Source: "serve"}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mangled := "not json\n" + lines[1]
	if err := os.WriteFile(path, []byte(lines[0]+mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted corruption before the tail")
	}
}

func TestBenchReportRunAndGlob(t *testing.T) {
	rep := &BenchReport{
		GOOS: "linux", GOARCH: "amd64",
		Benchmarks: []BenchBenchmark{
			{Pkg: "aimt", Name: "ServeStream", NsPerOp: 100, AllocsPerOp: 22,
				Metrics: map[string]float64{"blocks/op": 5}, BlocksPerSec: 5e7},
		},
	}
	r := rep.Run("BENCH_X")
	if r.Source != "bench" || r.Labels["goos"] != "linux" {
		t.Fatalf("Run() = %+v", r)
	}
	want := map[string]float64{
		"aimt.ServeStream ns/op":     100,
		"aimt.ServeStream allocs/op": 22,
		"aimt.ServeStream blocks/s":  5e7,
		"aimt.ServeStream blocks/op": 5,
	}
	for name, v := range want {
		if got, ok := r.Metric(name); !ok || got != v {
			t.Fatalf("Metric(%q) = %v, %v; want %v", name, got, ok, v)
		}
	}

	dir := t.TempDir()
	for _, name := range []string{"BENCH_10.json", "BENCH_3.json", "BENCH_8.json"} {
		if err := os.WriteFile(filepath.Join(dir, name),
			[]byte(`{"benchmarks":[{"pkg":"aimt","name":"X","iterations":1,"ns_per_op":1}]}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := LoadBenchGlob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, r := range runs {
		if r.Source != "seed" {
			t.Fatalf("glob run source = %q, want seed", r.Source)
		}
		ids = append(ids, r.ID)
	}
	if got := strings.Join(ids, ","); got != "BENCH_3,BENCH_8,BENCH_10" {
		t.Fatalf("glob order = %s, want numeric BENCH_3,BENCH_8,BENCH_10", got)
	}
	if runs, err := LoadBenchGlob(filepath.Join(dir, "NOPE_*.json")); err != nil || len(runs) != 0 {
		t.Fatalf("empty glob = %v, %v; want no runs, no error", runs, err)
	}
}
