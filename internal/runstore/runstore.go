// Package runstore persists run history — benchmark sweeps, serving
// load curves, experiment batches — as a small append-only columnar
// store: one Run per line of a JSON Lines file, each Run carrying
// identifying labels (scheduler, routing policy, mix, commit, ...)
// plus flat per-metric rows. The shape follows benchmark-results
// schemas from end-to-end system analyzers: a run is the unit of
// provenance, metrics are the unit of comparison, and everything is
// filterable without a database.
//
// The store is deliberately crash-tolerant in the one way an
// append-only log needs to be: a torn final line (the writer died
// mid-append) is detected at Open, dropped, and truncated away, so
// the next Append lands on a clean line boundary. Corruption anywhere
// before the final line is real damage and surfaces as an error.
package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FileName is the log file within a store directory.
const FileName = "runs.jsonl"

// Metric is one measured value of a run.
type Metric struct {
	// Name identifies the metric within the run, unit suffix included
	// (e.g. "aimt.ServeStream ns/op", "p99 cycles") so names are
	// unique keys for diffing.
	Name string `json:"name"`
	// Value is the measurement.
	Value float64 `json:"value"`
	// Unit is the measurement unit ("ns/op", "cycles", "rate", ...).
	// Diffing uses it to decide which direction is a regression.
	Unit string `json:"unit,omitempty"`
}

// Run is one recorded run: provenance plus metric rows.
type Run struct {
	// ID is unique within a store; Append assigns run-NNNNNN when empty.
	ID string `json:"id"`
	// Time is the RFC 3339 wall-clock time the run was recorded;
	// Append fills it when empty.
	Time string `json:"time,omitempty"`
	// Commit is the git commit the run was produced from, when known.
	Commit string `json:"commit,omitempty"`
	// Source is the producing driver: "bench", "serve", "cluster",
	// "sweep" or "seed" for ingested history.
	Source string `json:"source"`
	// Labels are free-form identifying dimensions: scheduler, policy,
	// mix, load, arch, goos, ...
	Labels map[string]string `json:"labels,omitempty"`
	// Metrics are the run's measurements.
	Metrics []Metric `json:"metrics"`
}

// Metric returns the named metric's value.
func (r Run) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Label returns a label value, "" when absent.
func (r Run) Label(key string) string { return r.Labels[key] }

// Store is an append-only run log under one directory. All methods
// are safe for concurrent use.
type Store struct {
	// Now supplies append timestamps; tests pin it for determinism.
	// Defaults to time.Now.
	Now func() time.Time

	dir  string
	path string

	mu   sync.Mutex
	runs []Run
	seq  int
	// recovered counts torn trailing lines dropped at Open (0 or 1).
	recovered int
}

// Open loads (creating if needed) the run store under dir. A torn
// final line — a crashed writer's partial append — is dropped and
// truncated away; corruption before the final line is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{Now: time.Now, dir: dir, path: filepath.Join(dir, FileName)}
	s.seq = 1
	data, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}

	valid := 0 // byte offset just past the last well-formed line
	lineNo := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		end := len(data)
		if nl >= 0 {
			end = off + nl + 1
		}
		line := bytes.TrimSpace(data[off:end])
		lineNo++
		if len(line) == 0 {
			valid = end
			off = end
			continue
		}
		var r Run
		if err := json.Unmarshal(line, &r); err != nil {
			// Only a torn tail is recoverable: nothing after this line
			// may hold data.
			if len(bytes.TrimSpace(data[end:])) > 0 {
				return nil, fmt.Errorf("runstore: %s line %d: corrupt entry not at tail: %w", s.path, lineNo, err)
			}
			s.recovered = 1
			break
		}
		s.runs = append(s.runs, r)
		valid = end
		off = end
	}
	if valid < len(data) {
		if err := os.Truncate(s.path, int64(valid)); err != nil {
			return nil, fmt.Errorf("runstore: truncating torn tail: %w", err)
		}
	}
	s.seq = nextSeq(s.runs)
	return s, nil
}

// nextSeq returns one past the highest run-NNNNNN sequence in use, so
// assigned IDs never collide with survivors of a Compact.
func nextSeq(runs []Run) int {
	max := 0
	for _, r := range runs {
		var n int
		if _, err := fmt.Sscanf(r.ID, "run-%06d", &n); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Recovered reports whether Open dropped a torn trailing line.
func (s *Store) Recovered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered > 0
}

// Len returns the number of stored runs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Runs returns all runs in append order.
func (s *Store) Runs() []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Run, len(s.runs))
	copy(out, s.runs)
	return out
}

// Get returns the run with the given ID (the latest, if Compact has
// not yet folded duplicates).
func (s *Store) Get(id string) (Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.runs) - 1; i >= 0; i-- {
		if s.runs[i].ID == id {
			return s.runs[i], true
		}
	}
	return Run{}, false
}

// Append records a run: assigns ID and timestamp when empty, writes
// one JSON line, and returns the stored form.
func (s *Store) Append(r Run) (Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.ID == "" {
		r.ID = fmt.Sprintf("run-%06d", s.seq)
		s.seq++
	}
	if r.Time == "" {
		now := s.Now
		if now == nil {
			now = time.Now
		}
		r.Time = now().UTC().Format(time.RFC3339)
	}
	line, err := json.Marshal(r)
	if err != nil {
		return Run{}, err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Run{}, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return Run{}, err
	}
	if err := f.Close(); err != nil {
		return Run{}, err
	}
	s.runs = append(s.runs, r)
	return r, nil
}

// Query filters runs; zero fields match everything.
type Query struct {
	// Source, when non-empty, must equal Run.Source.
	Source string
	// Labels must all be present with equal values.
	Labels map[string]string
}

// Match reports whether the run satisfies the query.
func (q Query) Match(r Run) bool {
	if q.Source != "" && r.Source != q.Source {
		return false
	}
	for k, v := range q.Labels {
		if r.Labels[k] != v {
			return false
		}
	}
	return true
}

// Select returns the runs matching q, in append order.
func (s *Store) Select(q Query) []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Run
	for _, r := range s.runs {
		if q.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

// Compact rewrites the log keeping only the latest run per ID
// (append order otherwise preserved), atomically via a temp file and
// rename. It returns how many duplicate entries were dropped.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byID := map[string]int{}
	var kept []Run
	for _, r := range s.runs {
		if i, ok := byID[r.ID]; ok {
			kept[i] = r
			continue
		}
		byID[r.ID] = len(kept)
		kept = append(kept, r)
	}
	dropped := len(s.runs) - len(kept)
	var buf bytes.Buffer
	for _, r := range kept {
		line, err := json.Marshal(r)
		if err != nil {
			return 0, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	s.runs = kept
	return dropped, nil
}

// CurrentCommit returns the working tree's short git commit, or ""
// when git (or a repository) is unavailable — runs recorded outside a
// checkout simply have no commit.
func CurrentCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
