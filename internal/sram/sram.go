// Package sram implements the weight-buffer management substrate of
// AI-MT (paper §IV-A3): a block-granular SRAM allocator built from a
// free list, a weight management table (a block-id linked list), and
// per-layer chains delimited by w_head and w_tail.
//
// One block holds one PE array's weights. A CONV memory block occupies
// one block; an FC memory block occupies one block per PE array. When
// a memory block is fetched its blocks are appended to the owning
// layer's chain; when the matching compute block completes, the same
// number of blocks is consumed from the chain head and returned to the
// free list. This lets the runtime locate every compute block's
// weights with only two pointers per layer, exactly as the paper
// describes.
package sram

import (
	"errors"
	"fmt"
)

// nilBlock marks the end of a chain in the weight management table.
const nilBlock = int32(-1)

// Buffer is a block-granular weight SRAM.
type Buffer struct {
	// next is the weight management table: next[i] is the block id
	// following block i in whichever chain block i belongs to.
	next []int32

	// free is the free list of unallocated block ids.
	free []int32

	numBlocks int
}

// Chain is one layer's resident weight blocks: the paper's w_head and
// w_tail columns of the sub-layer scheduling table.
type Chain struct {
	head, tail int32
	count      int
}

// Len returns the number of blocks currently in the chain.
func (c *Chain) Len() int { return c.count }

// NewBuffer returns a buffer with the given number of blocks, all free.
func NewBuffer(numBlocks int) *Buffer {
	if numBlocks <= 0 {
		panic(fmt.Sprintf("sram: non-positive block count %d", numBlocks))
	}
	b := &Buffer{
		next:      make([]int32, numBlocks),
		free:      make([]int32, 0, numBlocks),
		numBlocks: numBlocks,
	}
	for i := numBlocks - 1; i >= 0; i-- {
		b.next[i] = nilBlock
		b.free = append(b.free, int32(i))
	}
	return b
}

// Reset reinitializes the buffer to numBlocks all-free blocks,
// reusing the existing backing arrays when they are large enough.
// It leaves the buffer exactly as NewBuffer would, so pooled
// simulation engines can recycle one buffer across runs without
// reallocating the management table.
func (b *Buffer) Reset(numBlocks int) {
	if numBlocks <= 0 {
		panic(fmt.Sprintf("sram: non-positive block count %d", numBlocks))
	}
	if cap(b.next) < numBlocks {
		b.next = make([]int32, numBlocks)
		b.free = make([]int32, 0, numBlocks)
	}
	b.next = b.next[:numBlocks]
	b.free = b.free[:0]
	b.numBlocks = numBlocks
	for i := numBlocks - 1; i >= 0; i-- {
		b.next[i] = nilBlock
		b.free = append(b.free, int32(i))
	}
}

// SaveState copies the buffer's mutable state — the weight management
// table and the free list — into the given slices (reusing their
// capacity) and returns them. Together with the per-layer chains this
// captures the allocator completely; see RestoreState.
func (b *Buffer) SaveState(next, free []int32) (n, f []int32) {
	next = append(next[:0], b.next...)
	free = append(free[:0], b.free...)
	return next, free
}

// RestoreState overwrites the buffer's mutable state with a copy
// previously taken by SaveState on the same buffer geometry.
func (b *Buffer) RestoreState(next, free []int32) {
	b.next = append(b.next[:0], next...)
	b.free = append(b.free[:0], free...)
}

// NumBlocks returns the buffer's total block count.
func (b *Buffer) NumBlocks() int { return b.numBlocks }

// FreeBlocks returns the number of unallocated blocks.
func (b *Buffer) FreeBlocks() int { return len(b.free) }

// UsedBlocks returns the number of allocated blocks.
func (b *Buffer) UsedBlocks() int { return b.numBlocks - len(b.free) }

// Errors reported by buffer operations.
var (
	ErrNoSpace   = errors.New("sram: not enough free blocks")
	ErrUnderflow = errors.New("sram: consume exceeds chain length")
)

// Allocate takes n blocks from the free list and appends them, linked
// in order, to the given layer chain. It fails without side effects if
// fewer than n blocks are free.
func (b *Buffer) Allocate(c *Chain, n int) error {
	if n <= 0 {
		return fmt.Errorf("sram: allocate %d blocks", n)
	}
	if len(b.free) < n {
		return fmt.Errorf("%w: want %d, have %d", ErrNoSpace, n, len(b.free))
	}
	for i := 0; i < n; i++ {
		id := b.free[len(b.free)-1]
		b.free = b.free[:len(b.free)-1]
		b.next[id] = nilBlock
		if c.count == 0 {
			c.head, c.tail = id, id
		} else {
			b.next[c.tail] = id
			c.tail = id
		}
		c.count++
	}
	return nil
}

// Consume releases n blocks from the chain head back to the free list
// — the weights a completed compute block has finished reading.
func (b *Buffer) Consume(c *Chain, n int) error {
	if n <= 0 {
		return fmt.Errorf("sram: consume %d blocks", n)
	}
	if c.count < n {
		return fmt.Errorf("%w: want %d, chain has %d", ErrUnderflow, n, c.count)
	}
	for i := 0; i < n; i++ {
		id := c.head
		c.head = b.next[id]
		b.next[id] = nilBlock
		b.free = append(b.free, id)
		c.count--
	}
	if c.count == 0 {
		c.head, c.tail = nilBlock, nilBlock
	}
	return nil
}

// Check verifies the buffer's internal invariants against the given
// set of live chains: every block is in exactly one chain or the free
// list, chain lengths match their linked lists, and no id is out of
// range. Intended for tests and the simulator's debug mode.
func (b *Buffer) Check(chains []*Chain) error {
	seen := make([]bool, b.numBlocks)
	mark := func(id int32, where string) error {
		if id < 0 || int(id) >= b.numBlocks {
			return fmt.Errorf("sram: %s references block %d out of range", where, id)
		}
		if seen[id] {
			return fmt.Errorf("sram: block %d appears twice (%s)", id, where)
		}
		seen[id] = true
		return nil
	}
	for _, id := range b.free {
		if err := mark(id, "free list"); err != nil {
			return err
		}
	}
	for ci, c := range chains {
		n := 0
		for id := c.head; n < c.count; id = b.next[id] {
			if err := mark(id, fmt.Sprintf("chain %d", ci)); err != nil {
				return err
			}
			n++
			if n == c.count && id != c.tail {
				return fmt.Errorf("sram: chain %d tail mismatch", ci)
			}
		}
	}
	for id, s := range seen {
		if !s {
			return fmt.Errorf("sram: block %d leaked (in no chain or free list)", id)
		}
	}
	return nil
}
