package sram

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBufferAllFree(t *testing.T) {
	b := NewBuffer(64)
	if b.NumBlocks() != 64 || b.FreeBlocks() != 64 || b.UsedBlocks() != 0 {
		t.Fatalf("fresh buffer: num=%d free=%d used=%d", b.NumBlocks(), b.FreeBlocks(), b.UsedBlocks())
	}
	if err := b.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewBufferPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuffer(0) did not panic")
		}
	}()
	NewBuffer(0)
}

func TestAllocateConsumeRoundTrip(t *testing.T) {
	b := NewBuffer(16)
	var c Chain
	if err := b.Allocate(&c, 5); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 || b.FreeBlocks() != 11 {
		t.Fatalf("after alloc: len=%d free=%d", c.Len(), b.FreeBlocks())
	}
	if err := b.Check([]*Chain{&c}); err != nil {
		t.Fatal(err)
	}
	if err := b.Consume(&c, 5); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || b.FreeBlocks() != 16 {
		t.Fatalf("after consume: len=%d free=%d", c.Len(), b.FreeBlocks())
	}
	if err := b.Check([]*Chain{&c}); err != nil {
		t.Fatal(err)
	}
}

func TestConsumeIsFIFO(t *testing.T) {
	// Two interleaved allocations into one chain must release from the
	// head: allocating after a partial consume and consuming the rest
	// must never corrupt the free list.
	b := NewBuffer(8)
	var c Chain
	if err := b.Allocate(&c, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Allocate(&c, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Consume(&c, 3); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("chain len = %d, want 2", c.Len())
	}
	if err := b.Allocate(&c, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Consume(&c, 6); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || b.FreeBlocks() != 8 {
		t.Fatalf("final: len=%d free=%d", c.Len(), b.FreeBlocks())
	}
}

func TestAllocateNoSpace(t *testing.T) {
	b := NewBuffer(4)
	var c Chain
	if err := b.Allocate(&c, 5); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Allocate(5/4) = %v, want ErrNoSpace", err)
	}
	// Failure must have no side effects.
	if b.FreeBlocks() != 4 || c.Len() != 0 {
		t.Fatalf("failed alloc mutated state: free=%d len=%d", b.FreeBlocks(), c.Len())
	}
	if err := b.Allocate(&c, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Allocate(&c, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Allocate on full = %v, want ErrNoSpace", err)
	}
}

func TestConsumeUnderflow(t *testing.T) {
	b := NewBuffer(4)
	var c Chain
	if err := b.Consume(&c, 1); !errors.Is(err, ErrUnderflow) {
		t.Fatalf("Consume on empty = %v, want ErrUnderflow", err)
	}
	if err := b.Allocate(&c, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Consume(&c, 3); !errors.Is(err, ErrUnderflow) {
		t.Fatalf("Consume(3/2) = %v, want ErrUnderflow", err)
	}
}

func TestBadCounts(t *testing.T) {
	b := NewBuffer(4)
	var c Chain
	if err := b.Allocate(&c, 0); err == nil {
		t.Error("Allocate(0) succeeded")
	}
	if err := b.Allocate(&c, -1); err == nil {
		t.Error("Allocate(-1) succeeded")
	}
	if err := b.Consume(&c, 0); err == nil {
		t.Error("Consume(0) succeeded")
	}
}

func TestMultipleChainsShareBuffer(t *testing.T) {
	b := NewBuffer(10)
	chains := make([]*Chain, 3)
	for i := range chains {
		chains[i] = &Chain{}
		if err := b.Allocate(chains[i], 3); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreeBlocks() != 1 {
		t.Fatalf("free = %d, want 1", b.FreeBlocks())
	}
	if err := b.Check(chains); err != nil {
		t.Fatal(err)
	}
	// Release the middle chain; others must be untouched.
	if err := b.Consume(chains[1], 3); err != nil {
		t.Fatal(err)
	}
	if b.FreeBlocks() != 4 || chains[0].Len() != 3 || chains[2].Len() != 3 {
		t.Fatalf("after middle release: free=%d lens=%d,%d,%d",
			b.FreeBlocks(), chains[0].Len(), chains[1].Len(), chains[2].Len())
	}
	if err := b.Check(chains); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRandomWorkload drives a random allocate/consume schedule
// across many chains, checking conservation and structural invariants
// after every operation — the allocator equivalent of the paper's
// weight-management-table correctness.
func TestPropertyRandomWorkload(t *testing.T) {
	const blocks = 64
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuffer(blocks)
		chains := make([]*Chain, 8)
		for i := range chains {
			chains[i] = &Chain{}
		}
		outstanding := 0
		for op := 0; op < 300; op++ {
			c := chains[rng.Intn(len(chains))]
			if rng.Intn(2) == 0 {
				n := 1 + rng.Intn(16)
				err := b.Allocate(c, n)
				if n <= b.FreeBlocks()+0 && err != nil && !errors.Is(err, ErrNoSpace) {
					t.Logf("unexpected alloc error: %v", err)
					return false
				}
				if err == nil {
					outstanding += n
				}
			} else if c.Len() > 0 {
				n := 1 + rng.Intn(c.Len())
				if err := b.Consume(c, n); err != nil {
					t.Logf("unexpected consume error: %v", err)
					return false
				}
				outstanding -= n
			}
			if b.UsedBlocks() != outstanding {
				t.Logf("conservation violated: used=%d outstanding=%d", b.UsedBlocks(), outstanding)
				return false
			}
			if err := b.Check(chains); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckDetectsLeak(t *testing.T) {
	b := NewBuffer(4)
	var c Chain
	if err := b.Allocate(&c, 2); err != nil {
		t.Fatal(err)
	}
	// Report no chains: the two allocated blocks look leaked.
	if err := b.Check(nil); err == nil {
		t.Error("Check missed leaked blocks")
	}
}
