// Package profiling wires pprof CPU and heap profiling into the
// command-line drivers. Both aimt-serve and aimt-bench expose
// -cpuprofile/-memprofile flags backed by Start, so any sweep or
// serving run can be profiled without recompiling:
//
//	aimt-serve -requests 20000 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof -top cpu.pprof
package profiling

import (
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// AttachPprof mounts the net/http/pprof handlers under /debug/pprof/
// on the given mux. The admin surface (aimt-serve -admin) combines
// this with the obs handler, so live runs can be profiled without the
// file-based -cpuprofile/-memprofile flags:
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
}

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (if non-empty). Either path may be empty; the stop function
// is always safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
