package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"aimt/internal/arch"
)

func TestLedgerRingEviction(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		kind := KindMBPrefetch
		if i%2 == 1 {
			kind = KindCBMerge
		}
		l.Record(Decision{Cycle: arch.Cycles(100 * i), Kind: kind, Stall: StallNone})
	}
	if l.Len() != 4 || l.Total() != 10 || l.Dropped() != 6 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 4/10/6", l.Len(), l.Total(), l.Dropped())
	}
	// Lifetime per-kind counts survive ring eviction.
	if l.CountKind(KindMBPrefetch) != 5 || l.CountKind(KindCBMerge) != 5 {
		t.Errorf("per-kind counts = %d/%d, want 5/5",
			l.CountKind(KindMBPrefetch), l.CountKind(KindCBMerge))
	}
	if l.CountStall(StallNone) != 10 {
		t.Errorf("CountStall(none) = %d, want 10", l.CountStall(StallNone))
	}
	// The ring retains the newest entries, oldest first, with global
	// sequence numbers.
	tail := l.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("Tail(0) returned %d entries, want 4", len(tail))
	}
	for i, d := range tail {
		if want := int64(6 + i); d.Seq != want {
			t.Errorf("tail[%d].Seq = %d, want %d", i, d.Seq, want)
		}
	}
	if got := l.Tail(2); len(got) != 2 || got[0].Seq != 8 || got[1].Seq != 9 {
		t.Errorf("Tail(2) = %+v, want seqs 8,9", got)
	}
	if got := l.Filter(KindCBMerge); len(got) != 2 {
		t.Errorf("Filter(cb-merge) kept %d of the ring, want 2", len(got))
	}
	sum := l.Summary()
	if sum.Total != 10 || sum.Dropped != 6 || sum.ByKind[KindMBPrefetch] != 5 {
		t.Errorf("Summary = %+v", sum)
	}
}

func TestLedgerEachEarlyStop(t *testing.T) {
	l := NewLedger(8)
	for i := 0; i < 5; i++ {
		l.Record(Decision{Kind: KindCBMerge, Stall: StallNone})
	}
	seen := 0
	l.Each(func(Decision) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("Each visited %d entries after early stop, want 3", seen)
	}
}

func TestLedgerWriteJSONL(t *testing.T) {
	_, led := fixedRegistry()
	var buf bytes.Buffer
	if err := led.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d: %v", len(kinds), err)
		}
		kinds = append(kinds, d.Kind)
	}
	want := []string{KindMBPrefetch, KindEarlyEvict, KindCBSplit}
	if len(kinds) != len(want) {
		t.Fatalf("wrote %d lines, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("line %d kind = %s, want %s", i, kinds[i], want[i])
		}
	}
}
