package obs

import (
	"encoding/json"
	"io"
	"sync"

	"aimt/internal/arch"
)

// Decision kinds recorded in the ledger. The engine records prefetch,
// merge-claim and split decisions at its state-transition funnels;
// the AI-MT scheduler records eviction reservations through the
// View.NoteEviction seam.
const (
	// KindMBPrefetch is one memory block handed to the HBM channel.
	KindMBPrefetch = "mb-prefetch"
	// KindCBMerge is one compute block claimed ahead of execution
	// (the paper's CB merging into the selected queue).
	KindCBMerge = "cb-merge"
	// KindEarlyEvict is one early-eviction capacity reservation: a
	// capacity-critical memory block is blocked on SRAM space and the
	// scheduler holds the channel idle for it instead of letting
	// smaller blocks steal the window (§IV-C).
	KindEarlyEvict = "early-evict"
	// KindCBSplit is one halted compute block (the paper's CB split).
	KindCBSplit = "cb-split"
	// KindPreempt is one priority preemption: the scheduler requested a
	// CB split so a higher-priority request's ready compute block can
	// displace a lower-priority executing one (serving control plane).
	KindPreempt = "preempt"
	// KindShed is one admission-control decision: the cluster
	// dispatcher predicted the request could not meet its deadline on
	// any active chip and dropped it instead of routing it.
	KindShed = "admission-shed"
	// KindScaleUp and KindScaleDown are elastic-autoscaler set changes:
	// the dispatcher grew or shrank the active chip set. Detail carries
	// the new active chip count.
	KindScaleUp   = "scale-up"
	KindScaleDown = "scale-down"
	// KindLookahead is one committed speculative scheduling decision:
	// the scheduler forked the machine state, simulated the contested
	// choices Horizon cycles ahead, and committed the recorded block's
	// branch. Detail carries the predicted busy-cycle delta over the
	// losing branch.
	KindLookahead = "lookahead"
)

// Stall attribution: which resource bounded the machine at the moment
// a decision fired.
const (
	// StallHBM means the PE complex was starved — no resident,
	// unconsumed compute work existed, so progress waited on the HBM
	// channel.
	StallHBM = "hbm-bound"
	// StallPE means the weight SRAM was the constraint — the next
	// fetch lacked free blocks, so progress waited on the PE complex
	// to consume resident weights.
	StallPE = "pe-bound"
	// StallNone means neither engine was limiting at decision time.
	StallNone = "none"
)

// Decision is one ledger entry: a scheduler or engine decision
// attributed to its simulated cycle, block, SRAM occupancy and stall
// cause.
type Decision struct {
	// Seq is the decision's global sequence number (0-based over the
	// ledger's lifetime, including entries the ring has dropped).
	Seq int64 `json:"seq"`
	// Cycle is the simulated time the decision fired.
	Cycle arch.Cycles `json:"cycle"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Net, Layer and Iter identify the block the decision concerns.
	Net   int `json:"net"`
	Layer int `json:"layer"`
	Iter  int `json:"iter"`
	// SRAMUsed and SRAMTotal give weight-SRAM occupancy in blocks at
	// decision time.
	SRAMUsed  int `json:"sram_used"`
	SRAMTotal int `json:"sram_total"`
	// AvailCB is the resident unconsumed compute work (the paper's
	// AVL_CB) at decision time.
	AvailCB arch.Cycles `json:"avail_cb"`
	// Stall is one of the Stall* constants.
	Stall string `json:"stall"`
	// Detail carries the decision's magnitude in cycles: the fetch
	// length for a prefetch, the claimed compute for a merge, the
	// blocked fetch length for an eviction, the remaining work for a
	// split, the predicted progress delta for a lookahead.
	Detail arch.Cycles `json:"detail,omitempty"`
	// Horizon, for lookahead decisions, is how many cycles ahead the
	// branches were simulated before committing.
	Horizon arch.Cycles `json:"horizon,omitempty"`
}

// Ledger is a bounded, concurrency-safe ring of decisions. Appends
// never allocate once the ring is warm; when the ring is full the
// oldest entries are dropped (Dropped counts them) while per-kind
// totals keep exact lifetime counts, so attribution tests and the
// admin surface can reconcile against simulator results even for
// streams far longer than the ring.
type Ledger struct {
	mu      sync.Mutex
	buf     []Decision
	next    int // ring write position
	total   int64
	byKind  map[string]int64
	byStall map[string]int64
}

// DefaultLedgerCap is the ring capacity used when NewLedger is given
// a non-positive one.
const DefaultLedgerCap = 4096

// NewLedger returns a ledger retaining the last capacity decisions
// (DefaultLedgerCap when capacity <= 0).
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultLedgerCap
	}
	return &Ledger{
		buf:     make([]Decision, 0, capacity),
		byKind:  make(map[string]int64),
		byStall: make(map[string]int64),
	}
}

// Record appends one decision, assigning its sequence number.
func (l *Ledger) Record(d Decision) {
	l.mu.Lock()
	d.Seq = l.total
	l.total++
	l.byKind[d.Kind]++
	l.byStall[d.Stall]++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, d)
	} else {
		l.buf[l.next] = d
		l.next++
		if l.next == len(l.buf) {
			l.next = 0
		}
	}
	l.mu.Unlock()
}

// Total returns the lifetime number of recorded decisions.
func (l *Ledger) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Len returns the number of retained decisions.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Dropped returns how many decisions the ring has evicted.
func (l *Ledger) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total - int64(len(l.buf))
}

// CountKind returns the lifetime count of decisions of the given
// kind, unaffected by ring eviction.
func (l *Ledger) CountKind(kind string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byKind[kind]
}

// CountStall returns the lifetime count of decisions attributed to
// the given stall cause.
func (l *Ledger) CountStall(stall string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byStall[stall]
}

// Each calls fn on every retained decision, oldest first, stopping
// early when fn returns false. The ledger is locked for the duration;
// fn must not call back into it.
func (l *Ledger) Each(fn func(Decision) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < len(l.buf); i++ {
		if !fn(l.buf[(l.next+i)%len(l.buf)]) {
			return
		}
	}
}

// Tail returns up to n of the most recent decisions, oldest first.
// n <= 0 returns every retained decision.
func (l *Ledger) Tail(n int) []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.buf) {
		n = len(l.buf)
	}
	out := make([]Decision, n)
	for i := 0; i < n; i++ {
		out[i] = l.buf[(l.next+len(l.buf)-n+i)%len(l.buf)]
	}
	return out
}

// Filter returns the retained decisions of the given kind, oldest
// first.
func (l *Ledger) Filter(kind string) []Decision {
	var out []Decision
	l.Each(func(d Decision) bool {
		if d.Kind == kind {
			out = append(out, d)
		}
		return true
	})
	return out
}

// LedgerSummary is the JSON-marshalable header of a ledger: lifetime
// totals and the per-kind/per-stall breakdowns.
type LedgerSummary struct {
	Total   int64            `json:"total"`
	Dropped int64            `json:"dropped"`
	ByKind  map[string]int64 `json:"by_kind"`
	ByStall map[string]int64 `json:"by_stall"`
}

// Summary returns the ledger's lifetime totals.
func (l *Ledger) Summary() LedgerSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LedgerSummary{
		Total:   l.total,
		Dropped: l.total - int64(len(l.buf)),
		ByKind:  make(map[string]int64, len(l.byKind)),
		ByStall: make(map[string]int64, len(l.byStall)),
	}
	for k, v := range l.byKind {
		s.ByKind[k] = v
	}
	for k, v := range l.byStall {
		s.ByStall[k] = v
	}
	return s
}

// WriteJSONL emits the retained decisions as JSON Lines, oldest
// first — one decision object per line, ready for jq or a columnar
// loader.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	var err error
	l.Each(func(d Decision) bool {
		err = enc.Encode(d)
		return err == nil
	})
	return err
}
