package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"aimt/internal/analysis"
	"aimt/internal/runstore"
)

// The /runs dashboard turns the run-history store into an analysis
// surface: cross-run perf trajectories (the ingested BENCH_*.json
// artifacts plus everything appended since), serving load curves per
// scheduler/policy, and the live decision-ledger timeline — all as
// server-rendered HTML with inline SVG, zero scripts, zero deps.

// AttachRuns registers the run-history dashboard on mux:
//
//	/runs       HTML dashboard (tables + inline SVG charts)
//	/runs.json  the same run set as JSON
//
// src supplies the run set per request (seed history plus store
// contents); led, when non-nil, feeds the decision-timeline chart.
// Each extra, when non-nil, supplies one additional HTML section per
// request (e.g. the request-trace exemplar waterfall), rendered after
// the ledger timeline; an extra returning "" is skipped.
func AttachRuns(mux *http.ServeMux, src func() []runstore.Run, led *Ledger, extras ...func() string) {
	mux.HandleFunc("/runs", func(w http.ResponseWriter, _ *http.Request) {
		sections := make([]string, 0, len(extras))
		for _, extra := range extras {
			if extra != nil {
				sections = append(sections, extra())
			}
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(RunsHTML(src(), led, sections...))
	})
	mux.HandleFunc("/runs.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Runs []runstore.Run `json:"runs"`
		}{src()})
	})
}

// RunsHTML renders the dashboard page. It is a pure function of the
// run set, ledger contents and extra sections (pre-rendered HTML,
// empty strings skipped), so golden tests pin it byte-for-byte.
func RunsHTML(runs []runstore.Run, led *Ledger, extras ...string) []byte {
	var b strings.Builder
	b.WriteString(`<!doctype html>
<html lang="en"><head><meta charset="utf-8"><title>aimt run history</title>
<style>
body{font-family:system-ui,sans-serif;margin:24px auto;max-width:1000px;color:#0b0b0b;background:#f9f9f7}
h1{font-size:20px} h2{font-size:15px;margin:28px 0 8px}
table{border-collapse:collapse;font-size:12px;background:#fcfcfb}
th,td{border:1px solid #e1e0d9;padding:4px 8px;text-align:left}
th{color:#52514e;font-weight:600} td.num{text-align:right;font-variant-numeric:tabular-nums}
.muted{color:#898781} svg{margin:6px 0}
</style></head><body>
<h1>aimt run history</h1>
`)
	bySource := map[string]int{}
	for _, r := range runs {
		bySource[r.Source]++
	}
	sources := make([]string, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	var parts []string
	for _, s := range sources {
		parts = append(parts, fmt.Sprintf("%d %s", bySource[s], s))
	}
	summary := "no runs recorded yet"
	if len(runs) > 0 {
		summary = fmt.Sprintf("%d runs (%s)", len(runs), strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, `<p class="muted">%s — raw data at <a href="/runs.json">/runs.json</a></p>`+"\n", html.EscapeString(summary))

	writeTrajectorySection(&b, runs)
	writeLoadCurveSection(&b, runs)
	writeLedgerSection(&b, led)
	for _, extra := range extras {
		if extra != "" {
			b.WriteString(extra)
		}
	}
	writeRunsTable(&b, runs)

	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// benchLike selects the perf-trajectory run set: ingested BENCH_*
// seed history plus runs recorded by the bench driver, in order.
func benchLike(runs []runstore.Run) []runstore.Run {
	var out []runstore.Run
	for _, r := range runs {
		if r.Source == "bench" || r.Source == "seed" {
			out = append(out, r)
		}
	}
	return out
}

// writeTrajectorySection charts cross-run benchmark metrics: ns/op
// linearly and allocs/op on a log10 axis (the allocation-free-core
// work moved it five orders of magnitude; a linear axis would flatten
// everything since).
func writeTrajectorySection(b *strings.Builder, runs []runstore.Run) {
	bench := benchLike(runs)
	b.WriteString("<h2>Perf trajectory</h2>\n")
	if len(bench) == 0 {
		b.WriteString(`<p class="muted">no bench runs — ingest BENCH_*.json or run make bench with -runstore</p>` + "\n")
		return
	}
	ticks := make([]string, len(bench))
	for i, r := range bench {
		ticks[i] = r.ID
	}
	b.WriteString(trajectoryChart(bench, ticks, "ns/op", "ns/op across runs (lower is better)", false))
	b.WriteString(trajectoryChart(bench, ticks, "allocs/op", "log10(allocs/op) across runs (lower is better)", true))
}

// trajectoryChart builds one unit's cross-run chart: one series per
// benchmark, x = run position.
func trajectoryChart(bench []runstore.Run, ticks []string, unit, title string, log10 bool) string {
	points := map[string][]analysis.ChartPoint{}
	var order []string
	for i, r := range bench {
		for _, m := range r.Metrics {
			if m.Unit != unit {
				continue
			}
			name := strings.TrimSuffix(m.Name, " "+unit)
			if _, ok := points[name]; !ok {
				order = append(order, name)
			}
			v := m.Value
			if log10 {
				v = math.Log10(math.Max(v, 1))
			}
			points[name] = append(points[name], analysis.ChartPoint{X: float64(i), Y: v})
		}
	}
	if len(order) == 0 {
		return ""
	}
	series := make([]analysis.ChartSeries, 0, len(order))
	for _, name := range order {
		series = append(series, analysis.ChartSeries{Name: name, Points: points[name]})
	}
	return analysis.LineChartSVG(analysis.Chart{Title: title, YLabel: unit, XTicks: ticks}, series)
}

// writeLoadCurveSection charts serve/cluster runs that carry a load
// label: p99 and miss rate against offered load, one series per
// scheduler or routing policy within each mix.
func writeLoadCurveSection(b *strings.Builder, runs []runstore.Run) {
	type key struct{ mix, series string }
	type pt struct{ load, p99, miss float64 }
	curves := map[key][]pt{}
	var mixes []string
	for _, r := range runs {
		if r.Source != "serve" && r.Source != "cluster" {
			continue
		}
		load, err := strconv.ParseFloat(r.Label("load"), 64)
		if err != nil {
			continue
		}
		series := r.Label("policy")
		if series == "" {
			series = r.Label("sched")
		}
		if series == "" {
			series = r.Source
		}
		k := key{r.Label("mix"), series}
		seen := false
		for _, m := range mixes {
			if m == k.mix {
				seen = true
			}
		}
		if !seen {
			mixes = append(mixes, k.mix)
		}
		p99, _ := r.Metric("p99 cycles")
		miss, _ := r.Metric("miss rate")
		curves[k] = append(curves[k], pt{load, p99, miss})
	}
	b.WriteString("<h2>Load curves</h2>\n")
	if len(curves) == 0 {
		b.WriteString(`<p class="muted">no serving runs with load labels yet — run aimt-serve with -runstore</p>` + "\n")
		return
	}
	sort.Strings(mixes)
	for _, mix := range mixes {
		var names []string
		for k := range curves {
			if k.mix == mix {
				names = append(names, k.series)
			}
		}
		sort.Strings(names)
		var p99Series, missSeries []analysis.ChartSeries
		for _, name := range names {
			pts := curves[key{mix, name}]
			sort.Slice(pts, func(i, j int) bool { return pts[i].load < pts[j].load })
			var pp, mm []analysis.ChartPoint
			for _, p := range pts {
				pp = append(pp, analysis.ChartPoint{X: p.load, Y: p.p99})
				mm = append(mm, analysis.ChartPoint{X: p.load, Y: p.miss})
			}
			p99Series = append(p99Series, analysis.ChartSeries{Name: name, Points: pp})
			missSeries = append(missSeries, analysis.ChartSeries{Name: name, Points: mm})
		}
		label := mix
		if label == "" {
			label = "default mix"
		}
		b.WriteString(analysis.LineChartSVG(analysis.Chart{
			Title: "p99 latency vs offered load — " + label, YLabel: "cycles"}, p99Series))
		b.WriteString(analysis.LineChartSVG(analysis.Chart{
			Title: "SLA miss rate vs offered load — " + label, YLabel: "rate"}, missSeries))
	}
}

// ledgerKindOrder fixes the decision-timeline series order (and so
// slot colors) regardless of which kind fired first.
var ledgerKindOrder = []string{
	KindMBPrefetch, KindCBMerge, KindEarlyEvict, KindCBSplit,
	KindPreempt, KindShed, KindScaleUp, KindScaleDown, KindLookahead,
}

// writeLedgerSection charts the ledger tail as cumulative decisions
// per kind over simulated cycles.
func writeLedgerSection(b *strings.Builder, led *Ledger) {
	b.WriteString("<h2>Decision ledger timeline</h2>\n")
	if led == nil || led.Len() == 0 {
		b.WriteString(`<p class="muted">no ledger attached to this surface</p>` + "\n")
		return
	}
	tail := led.Tail(SnapshotTail)
	counts := map[string]int{}
	points := map[string][]analysis.ChartPoint{}
	for _, d := range tail {
		counts[d.Kind]++
		points[d.Kind] = append(points[d.Kind], analysis.ChartPoint{X: float64(d.Cycle), Y: float64(counts[d.Kind])})
	}
	var series []analysis.ChartSeries
	for _, kind := range ledgerKindOrder {
		if pts := points[kind]; len(pts) > 0 {
			series = append(series, analysis.ChartSeries{Name: kind, Points: pts})
		}
	}
	fmt.Fprintf(b, `<p class="muted">last %d of %d decisions</p>`+"\n", len(tail), led.Total())
	b.WriteString(analysis.LineChartSVG(analysis.Chart{
		Title: "cumulative decisions by kind (ledger tail)", YLabel: "decisions"}, series))
}

// writeRunsTable lists every run, newest last, with its labels and up
// to four leading metrics.
func writeRunsTable(b *strings.Builder, runs []runstore.Run) {
	b.WriteString("<h2>Runs</h2>\n")
	if len(runs) == 0 {
		return
	}
	b.WriteString("<table>\n<tr><th>id</th><th>time</th><th>commit</th><th>source</th><th>labels</th><th>metrics</th></tr>\n")
	for _, r := range runs {
		keys := make([]string, 0, len(r.Labels))
		for k := range r.Labels {
			if k == "cpu" { // long and constant within a machine; the JSON keeps it
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var labels []string
		for _, k := range keys {
			labels = append(labels, k+"="+r.Labels[k])
		}
		var cells []string
		for i, m := range r.Metrics {
			if i == 4 {
				cells = append(cells, fmt.Sprintf("… %d more", len(r.Metrics)-i))
				break
			}
			cells = append(cells, fmt.Sprintf("%s=%s", m.Name, trimFloat(m.Value)))
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(r.ID), html.EscapeString(r.Time), html.EscapeString(r.Commit),
			html.EscapeString(r.Source), html.EscapeString(strings.Join(labels, " ")),
			html.EscapeString(strings.Join(cells, ", ")))
	}
	b.WriteString("</table>\n")
}

// trimFloat renders a metric value without trailing fraction noise.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
