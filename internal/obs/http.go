package obs

import (
	"encoding/json"
	"net/http"
)

// SnapshotTail is how many ledger entries /debug/snapshot includes.
const SnapshotTail = 256

// snapshotBody is the /debug/snapshot JSON schema: the full registry
// plus the ledger summary and tail.
type snapshotBody struct {
	Metrics Snapshot       `json:"metrics"`
	Ledger  *LedgerSummary `json:"ledger,omitempty"`
	Tail    []Decision     `json:"ledger_tail,omitempty"`
}

// Handler returns the admin HTTP mux:
//
//	/metrics         Prometheus text exposition of the registry,
//	                 Go runtime health (aimt_runtime_*) sampled at
//	                 each scrape
//	/healthz         liveness probe ("ok")
//	/debug/snapshot  full registry + ledger tail as JSON
//
// led may be nil; the snapshot then omits the ledger section. pprof
// endpoints are attached separately (profiling.AttachPprof) so the
// obs layer itself stays dependency-free.
func Handler(reg *Registry, led *Ledger) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	sampleRuntime := AttachRuntime(reg)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		sampleRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		body := snapshotBody{Metrics: reg.Snapshot()}
		if led != nil {
			sum := led.Summary()
			body.Ledger = &sum
			body.Tail = led.Tail(SnapshotTail)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	return mux
}
