package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aimt/internal/runstore"
)

var updateRuns = flag.Bool("update-runs", false, "rewrite the runs dashboard golden under testdata/")

// dashboardFixture builds a deterministic run set shaped like real
// history: two bench "seed" artifacts (a perf trajectory) plus a
// serving load curve over two schedulers, and a small ledger.
func dashboardFixture() ([]runstore.Run, *Ledger) {
	bench := func(id string, ns, allocs float64) runstore.Run {
		rep := &runstore.BenchReport{GOOS: "linux", Benchmarks: []runstore.BenchBenchmark{
			{Pkg: "aimt", Name: "ServeStream", NsPerOp: ns, AllocsPerOp: allocs},
			{Pkg: "aimt", Name: "SimulatorThroughput", NsPerOp: ns / 8, AllocsPerOp: allocs / 7},
		}}
		r := rep.Run(id)
		r.Source = "seed"
		r.Time = "2026-08-08T00:00:00Z"
		return r
	}
	serve := func(id, sched, load string, p99, miss float64) runstore.Run {
		return runstore.Run{
			ID: id, Time: "2026-08-08T01:00:00Z", Commit: "abc1234", Source: "serve",
			Labels: map[string]string{"mix": "CNN/RNN", "sched": sched, "load": load},
			Metrics: []runstore.Metric{
				{Name: "p99 cycles", Value: p99, Unit: "cycles"},
				{Name: "miss rate", Value: miss, Unit: "rate"},
				{Name: "tput req/Mcyc", Value: 12, Unit: "req/Mcyc"},
			},
		}
	}
	runs := []runstore.Run{
		bench("BENCH_3", 26483471, 272461),
		bench("BENCH_8", 4722945, 22),
		serve("run-000001", "AI-MT", "0.50", 40000, 0),
		serve("run-000002", "AI-MT", "1.10", 90000, 0.08),
		serve("run-000003", "FIFO", "0.50", 52000, 0.01),
		serve("run-000004", "FIFO", "1.10", 240000, 0.31),
	}
	led := NewLedger(16)
	led.Record(Decision{Cycle: 100, Kind: KindMBPrefetch, Detail: 64})
	led.Record(Decision{Cycle: 220, Kind: KindCBMerge, Detail: 32})
	led.Record(Decision{Cycle: 400, Kind: KindMBPrefetch, Detail: 64})
	led.Record(Decision{Cycle: 950, Kind: KindCBSplit, Detail: 12})
	return runs, led
}

// TestRunsDashboardGolden pins the dashboard byte-for-byte: the HTML
// is a pure function of the run set and ledger, so any drift in page
// structure, chart geometry or palette fails here first.
func TestRunsDashboardGolden(t *testing.T) {
	runs, led := dashboardFixture()
	got := RunsHTML(runs, led)
	path := filepath.Join("testdata", "runs_dashboard.golden.html")
	if *updateRuns {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (regenerate with -update-runs): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("dashboard HTML drifted from %s (use -update-runs if intentional); got %d bytes, want %d",
			path, len(got), len(want))
	}
}

func TestRunsDashboardContent(t *testing.T) {
	runs, led := dashboardFixture()
	page := string(RunsHTML(runs, led))
	for _, want := range []string{
		"<svg",               // charts rendered inline
		"BENCH_3", "BENCH_8", // trajectory ticks + table rows
		"ns/op across runs", // trajectory chart title
		"log10(allocs/op)",  // allocation trajectory is log-scaled
		"p99 latency vs offered load — CNN/RNN",
		"AI-MT", "FIFO", // load-curve series
		"cumulative decisions by kind",
		"mb-prefetch", // ledger series present
		"run-000004",  // runs table row
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if n := strings.Count(page, "<svg"); n != 5 {
		t.Errorf("dashboard has %d charts, want 5 (2 trajectory, 2 load, 1 ledger)", n)
	}
}

func TestRunsDashboardEmpty(t *testing.T) {
	page := string(RunsHTML(nil, nil))
	for _, want := range []string{"no runs recorded yet", "no bench runs", "no serving runs", "no ledger"} {
		if !strings.Contains(page, want) {
			t.Errorf("empty dashboard missing %q", want)
		}
	}
}

func TestAttachRunsEndpoints(t *testing.T) {
	runs, led := dashboardFixture()
	mux := http.NewServeMux()
	AttachRuns(mux, func() []runstore.Run { return runs }, led)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("/runs: status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(buf.String(), "<svg") || !strings.Contains(buf.String(), "run-000001") {
		t.Error("/runs missing chart or run row")
	}

	resp2, err := http.Get(srv.URL + "/runs.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body struct {
		Runs []runstore.Run `json:"runs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Runs) != len(runs) || body.Runs[2].Labels["sched"] != "AI-MT" {
		t.Fatalf("/runs.json returned %d runs", len(body.Runs))
	}
}
