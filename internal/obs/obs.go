// Package obs is the live observability layer: a zero-dependency,
// concurrency-safe instrumentation registry (counters, gauges and
// cycle histograms built on the streaming estimator in
// internal/hdr) with Prometheus-text and JSON exposition, plus a
// bounded scheduler decision ledger (see ledger.go) that attributes
// every MB-prefetch, CB-merge, early-eviction and CB-split decision
// to a cycle, network and stall cause.
//
// The layer is strictly opt-in: the simulator, serving and cluster
// paths thread a *Registry and *Ledger behind nil-check guards, so a
// run without observability pays nothing — no allocations, no atomic
// traffic, no locks. With observability on, counters and gauges are
// single atomic operations and ledger appends are one short critical
// section into a fixed ring, so even saturation sweeps stay within
// the benchcheck gate.
//
// Series names are opaque keys that may carry Prometheus-style
// labels inline, e.g. "aimt_serve_requests_total{class=\"cnn\"}".
// The exposition code treats everything before the first '{' as the
// metric family for # TYPE lines and sorts series bytewise, so
// scrapes are deterministic.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"aimt/internal/arch"
	"aimt/internal/hdr"
)

// Counter is a monotonically increasing int64 series. The zero value
// is ready for use; obtain shared instances from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (negative deltas are ignored so the
// series stays monotone).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 series that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrency-safe cycle-latency histogram wrapping
// the HDR-style streaming estimator from internal/hdr.
type Histogram struct {
	mu sync.Mutex
	h  hdr.Histogram
}

// Observe records one value.
func (h *Histogram) Observe(v arch.Cycles) {
	h.mu.Lock()
	h.h.Record(v)
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int         `json:"count"`
	Sum   float64     `json:"sum"`
	Min   arch.Cycles `json:"min"`
	Max   arch.Cycles `json:"max"`
	P50   arch.Cycles `json:"p50"`
	P95   arch.Cycles `json:"p95"`
	P99   arch.Cycles `json:"p99"`
	P999  arch.Cycles `json:"p999"`
}

// Snapshot summarizes the histogram under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.h.Count(),
		Sum:   h.h.Sum(),
		Min:   h.h.Min(),
		Max:   h.h.Max(),
		P50:   h.h.Quantile(50),
		P95:   h.h.Quantile(95),
		P99:   h.h.Quantile(99),
		P999:  h.h.Quantile(99.9),
	}
}

// Registry holds named series. Lookups are get-or-create and return
// stable handles, so hot paths resolve their series once and then
// touch only the atomic values.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every series. Values are read per-series, so a
// snapshot taken during a run is internally slightly skewed but never
// torn.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON emits the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// family returns the metric family of a series name: everything
// before the inline label block, if any.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixed inserts a family suffix before a series name's label
// block: suffixed(`h{c="x"}`, "_sum") is `h_sum{c="x"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// Label returns the series name with key="value" appended to its
// inline label block, creating the block when the name has none.
// Emitters use it to build per-class / per-chip series keys once,
// outside their hot paths.
func Label(name, key, value string) string { return withLabel(name, key, value) }

// withLabel appends key="value" to a series name's label block,
// creating the block when the name has none.
func withLabel(name, key, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + key + "=" + strconv.Quote(value) + "}"
	}
	return name + "{" + key + "=" + strconv.Quote(value) + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format: counters and gauges verbatim, histograms as
// summaries with quantile labels. Series are sorted bytewise and
// # HELP and # TYPE lines are emitted once per family (curated help
// text with a name-derived fallback), so the output is deterministic
// for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	var b strings.Builder
	typed := make(map[string]bool)
	typeLine := func(fam, kind string) {
		if !typed[fam] {
			typed[fam] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, helpFor(fam))
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kind)
		}
	}

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		typeLine(family(name), "counter")
		fmt.Fprintf(&b, "%s %d\n", name, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		typeLine(family(name), "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, fmtFloat(snap.Gauges[name]))
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		typeLine(family(name), "summary")
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, "quantile", "0.5"), h.P50)
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, "quantile", "0.95"), h.P95)
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, "quantile", "0.99"), h.P99)
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, "quantile", "0.999"), h.P999)
		fmt.Fprintf(&b, "%s %s\n", suffixed(name, "_sum"), fmtFloat(h.Sum))
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_count"), h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
