package obs

import (
	"runtime"
	"sync"

	"aimt/internal/arch"
)

// AttachRuntime registers Go runtime health series on the registry
// and returns a sample function; each call refreshes the gauges and
// folds new GC pauses into the pause histogram. Handler calls it once
// and samples on every /metrics scrape, so long -hold runs expose
// heap growth, goroutine leaks and GC pressure with zero background
// work between scrapes.
func AttachRuntime(reg *Registry) func() {
	heap := reg.Gauge("aimt_runtime_heap_bytes")
	goroutines := reg.Gauge("aimt_runtime_goroutines")
	gcTotal := reg.Counter("aimt_runtime_gc_total")
	pauses := reg.Histogram("aimt_runtime_gc_pause_ns")
	var mu sync.Mutex
	var seen uint32 // GC cycles already folded into the histogram
	return func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapAlloc))
		goroutines.Set(float64(runtime.NumGoroutine()))
		mu.Lock()
		defer mu.Unlock()
		gcTotal.Add(int64(ms.NumGC - seen))
		// PauseNs is a ring of the last 256 pauses; fold in only the
		// cycles since the previous sample, skipping any overwritten by
		// a burst of more than 256 collections between scrapes.
		from := seen
		if ms.NumGC > 256 && from < ms.NumGC-256 {
			from = ms.NumGC - 256
		}
		for i := from; i < ms.NumGC; i++ {
			pauses.Observe(arch.Cycles(ms.PauseNs[i%256]))
		}
		seen = ms.NumGC
	}
}
