package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aimt/internal/arch"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func TestRegistryHandlesAreStable(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("Counter returned distinct handles for one name")
	}
	if reg.Counter("a") == reg.Counter("b") {
		t.Error("Counter shared a handle across names")
	}
	if reg.Gauge("g") != reg.Gauge("g") || reg.Histogram("h") != reg.Histogram("h") {
		t.Error("Gauge/Histogram handles not stable")
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3) // ignored: counters are monotone
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
}

func TestLabelHelpers(t *testing.T) {
	cases := []struct{ name, key, val, want string }{
		{"reqs", "class", "cnn", `reqs{class="cnn"}`},
		{`reqs{sched="EDF"}`, "class", "rnn", `reqs{sched="EDF",class="rnn"}`},
	}
	for _, c := range cases {
		if got := Label(c.name, c.key, c.val); got != c.want {
			t.Errorf("Label(%q,%q,%q) = %q, want %q", c.name, c.key, c.val, got, c.want)
		}
	}
	if got := family(`reqs{class="cnn"}`); got != "reqs" {
		t.Errorf("family = %q, want reqs", got)
	}
	if got := suffixed(`h{c="x"}`, "_sum"); got != `h_sum{c="x"}` {
		t.Errorf("suffixed = %q", got)
	}
}

// TestConcurrentUpdatesAndScrape hammers one registry from many
// goroutines — counter adds, gauge moves, histogram observations and
// fresh-series creation — while a scraper renders both expositions.
// Run under -race this is the registry's data-race gate; the final
// counts must still be exact.
func TestConcurrentUpdatesAndScrape(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := reg.Counter(fmt.Sprintf("own_total{worker=\"%d\"}", w))
			for i := 0; i < iters; i++ {
				reg.Counter("shared_total").Inc()
				own.Inc()
				reg.Gauge("shared_gauge").Add(1)
				reg.Histogram("shared_hist").Observe(arch.Cycles(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if err := reg.WriteJSON(&buf); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := reg.Counter("shared_total").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("shared_gauge").Value(); got != workers*iters {
		t.Errorf("shared gauge = %v, want %d", got, workers*iters)
	}
	if got := reg.Histogram("shared_hist").Snapshot().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("own_total{worker=\"%d\"}", w)
		if got := reg.Counter(name).Value(); got != iters {
			t.Errorf("%s = %d, want %d", name, got, iters)
		}
	}
}

// fixedRegistry builds a deterministic registry and ledger for the
// golden expositions: labeled and bare series of every type.
func fixedRegistry() (*Registry, *Ledger) {
	reg := NewRegistry()
	reg.Counter("aimt_sim_mb_prefetch_total").Add(42)
	reg.Counter(`aimt_serve_requests_total{scheduler="AI-MT"}`).Add(300)
	reg.Counter(`aimt_serve_requests_total{scheduler="EDF"}`).Add(300)
	reg.Gauge("aimt_sim_sram_used_blocks").Set(48)
	reg.Gauge(`aimt_sim_inflight{class="rnn"}`).Set(3)
	h := reg.Histogram("aimt_sim_cb_cycles")
	for v := arch.Cycles(1); v <= 100; v++ {
		h.Observe(v)
	}
	led := NewLedger(8)
	led.Record(Decision{Cycle: 100, Kind: KindMBPrefetch, Net: 0, Layer: 1, Iter: 2,
		SRAMUsed: 4, SRAMTotal: 8, AvailCB: 60, Stall: StallNone, Detail: 50})
	led.Record(Decision{Cycle: 160, Kind: KindEarlyEvict, Net: 1, Layer: 0, Iter: 0,
		SRAMUsed: 8, SRAMTotal: 8, AvailCB: 10, Stall: StallPE, Detail: 240})
	led.Record(Decision{Cycle: 400, Kind: KindCBSplit, Net: 0, Layer: 1, Iter: 3,
		SRAMUsed: 6, SRAMTotal: 8, Stall: StallPE, Detail: 1200})
	return reg, led
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (use -update if intentional):\n--- got\n%s--- want\n%s",
			path, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	reg, _ := fixedRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())

	// Scrapes must be deterministic: a second render is identical.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of one registry state differ")
	}
}

func TestSnapshotJSONGolden(t *testing.T) {
	reg, _ := fixedRegistry()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", buf.Bytes())
}
