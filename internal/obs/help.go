package obs

import "strings"

// metricHelp curates the # HELP text for the repo's well-known metric
// families. Families not listed fall back to a name-derived line in
// helpFor, so the exposition always carries one HELP per family.
var metricHelp = map[string]string{
	// Engine telemetry (aimt_sim_*).
	"aimt_sim_mb_prefetch_total":      "Memory blocks fetched from HBM into weight SRAM.",
	"aimt_sim_mb_completed_total":     "Memory-block fetches completed.",
	"aimt_sim_cb_completed_total":     "Compute blocks executed to completion on the PE array.",
	"aimt_sim_cb_splits_total":        "Compute blocks split (halted early) by the scheduler.",
	"aimt_sim_cb_merge_total":         "Split compute blocks merged back and resumed.",
	"aimt_sim_evictions_total":        "Weight SRAM block evictions.",
	"aimt_sim_preempt_total":          "Priority preemptions (a ready higher-priority request displaced an executing one).",
	"aimt_sim_lookahead_total":        "Speculative lookahead forks simulated.",
	"aimt_sim_nets_finished_total":    "Network instances finished.",
	"aimt_sim_mem_busy_cycles_total":  "HBM channel busy cycles.",
	"aimt_sim_pe_busy_cycles_total":   "PE-array busy cycles.",
	"aimt_sim_host_busy_cycles_total": "Host PCIe link busy cycles.",
	"aimt_sim_now_cycles":             "Current simulated cycle.",
	"aimt_sim_active_nets":            "Network instances arrived and not yet finished.",
	"aimt_sim_inflight":               "In-flight network instances (per class when labelled).",
	"aimt_sim_avail_cb_cycles":        "AVL_CB level: cycles of prefetched compute ready to issue.",
	"aimt_sim_sram_used_blocks":       "Weight SRAM blocks in use.",
	"aimt_sim_sram_peak_blocks":       "Peak weight SRAM blocks in use.",
	"aimt_sim_sram_total_blocks":      "Weight SRAM capacity in blocks.",
	"aimt_sim_mem_util":               "HBM channel busy fraction.",
	"aimt_sim_pe_util":                "PE-array busy fraction.",
	"aimt_sim_host_queue_depth":       "Host transfer queue depth.",
	"aimt_sim_mb_cycles":              "Memory-block fetch duration distribution (cycles).",
	"aimt_sim_cb_cycles":              "Compute-block execution duration distribution (cycles).",

	// Serving reports (aimt_serve_*).
	"aimt_serve_requests_total":         "Stream entries served (phases count individually).",
	"aimt_serve_sla_misses_total":       "Requests that finished after their deadline.",
	"aimt_serve_shed_total":             "Requests dropped by admission control.",
	"aimt_serve_class_requests_total":   "Requests per class, shed included.",
	"aimt_serve_class_sla_misses_total": "Deadline misses per class.",
	"aimt_serve_class_shed_total":       "Admission-shed requests per class.",
	"aimt_serve_class_p99_cycles":       "Per-class p99 latency in cycles.",
	"aimt_serve_phase_requests_total":   "Stream entries per request phase.",
	"aimt_serve_phase_sla_misses_total": "Deadline misses per request phase.",
	"aimt_serve_phase_shed_total":       "Admission-shed entries per request phase.",
	"aimt_serve_phase_p99_cycles":       "Per-phase p99 latency in cycles.",
	"aimt_serve_p50_cycles":             "Request latency p50 in cycles.",
	"aimt_serve_p99_cycles":             "Request latency p99 in cycles.",
	"aimt_serve_p999_cycles":            "Request latency p99.9 in cycles.",
	"aimt_serve_miss_rate":              "Fraction of served requests that missed their deadline.",
	"aimt_serve_throughput_per_mcycle":  "Completed requests per million cycles.",
	"aimt_serve_tokens_per_mcycle":      "Generated tokens per million cycles.",
	"aimt_serve_pe_util":                "PE busy fraction over the makespan.",
	"aimt_serve_mem_util":               "HBM busy fraction over the makespan.",

	// Cluster dispatch (aimt_cluster_*).
	"aimt_cluster_requests_total":             "Requests routed by the cluster dispatcher.",
	"aimt_cluster_sla_misses_total":           "Cluster-wide deadline misses.",
	"aimt_cluster_shed_total":                 "Requests shed at the cluster front door.",
	"aimt_cluster_scale_ups_total":            "Autoscaler active-set grow events.",
	"aimt_cluster_scale_downs_total":          "Autoscaler active-set shrink events.",
	"aimt_cluster_active_chips":               "Active chip count when dispatch finished.",
	"aimt_cluster_imbalance":                  "PE-load imbalance across chips (0 = balanced).",
	"aimt_cluster_chip_requests":              "Requests routed to the chip.",
	"aimt_cluster_chip_p99_cycles":            "Per-chip p99 latency in cycles.",
	"aimt_cluster_chip_pe_util":               "Per-chip PE busy fraction.",
	"aimt_cluster_tokens_per_mcycle_per_chip": "Generated tokens per million cycles per chip.",

	// Request tracing (aimt_rtrace_*).
	"aimt_rtrace_requests_total":       "Requests attributed by the span tracer.",
	"aimt_rtrace_shed_total":           "Shed requests seen by the span tracer.",
	"aimt_rtrace_sampled_total":        "Requests retained in the sampled ring.",
	"aimt_rtrace_mean_share":           "Mean share of class latency per attributed segment.",
	"aimt_rtrace_tail_share":           "Share of worst-N exemplar latency per attributed segment.",
	"aimt_rtrace_worst_latency_cycles": "Worst retained request latency per class in cycles.",

	// Go runtime health (aimt_runtime_*).
	"aimt_runtime_heap_bytes":  "Go heap bytes in use (runtime.MemStats.HeapAlloc).",
	"aimt_runtime_goroutines":  "Live goroutines.",
	"aimt_runtime_gc_total":    "Completed garbage-collection cycles.",
	"aimt_runtime_gc_pause_ns": "Garbage-collection stop-the-world pause distribution (nanoseconds).",
}

// helpFor returns the # HELP text for a metric family.
func helpFor(fam string) string {
	if h, ok := metricHelp[fam]; ok {
		return h
	}
	return strings.ReplaceAll(strings.TrimPrefix(fam, "aimt_"), "_", " ") + "."
}
