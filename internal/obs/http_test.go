package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := mux.Client().Get(mux.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	reg, led := fixedRegistry()
	srv := httptest.NewServer(Handler(reg, led))
	defer srv.Close()

	body, ct := get(t, srv, "/healthz")
	if body != "ok\n" || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/healthz = %q (%s)", body, ct)
	}

	body, ct = get(t, srv, "/metrics")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ct)
	}
	for _, want := range []string{
		"# TYPE aimt_sim_mb_prefetch_total counter",
		"aimt_sim_mb_prefetch_total 42",
		`aimt_serve_requests_total{scheduler="AI-MT"} 300`,
		`aimt_sim_inflight{class="rnn"} 3`,
		`aimt_sim_cb_cycles{quantile="0.5"}`,
		"aimt_sim_cb_cycles_count 100",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, ct = get(t, srv, "/debug/snapshot")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/snapshot content type %q", ct)
	}
	var snap snapshotBody
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/snapshot is not valid JSON: %v", err)
	}
	if snap.Metrics.Counters["aimt_sim_mb_prefetch_total"] != 42 {
		t.Errorf("snapshot counters = %v", snap.Metrics.Counters)
	}
	if snap.Ledger == nil || snap.Ledger.Total != 3 {
		t.Errorf("snapshot ledger summary = %+v, want total 3", snap.Ledger)
	}
	if len(snap.Tail) != 3 || snap.Tail[1].Kind != KindEarlyEvict {
		t.Errorf("snapshot tail = %+v", snap.Tail)
	}
}

// TestHandlerNilLedger pins that the snapshot omits the ledger
// section when no ledger is attached.
func TestHandlerNilLedger(t *testing.T) {
	reg, _ := fixedRegistry()
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()
	body, _ := get(t, srv, "/debug/snapshot")
	var snap snapshotBody
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Ledger != nil || snap.Tail != nil {
		t.Errorf("nil-ledger snapshot still has ledger sections: %+v", snap)
	}
}
