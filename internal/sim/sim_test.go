package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sram"
)

// testConfig returns a small machine: 4 arrays of 4x4 PEs, 1 B/cycle
// HBM (so MB cycles equal bytes/1), 8-block weight SRAM, no host link.
func testConfig(t testing.TB) arch.Config {
	t.Helper()
	cfg := arch.Config{
		PEDim:        4,
		NumArrays:    4,
		FreqHz:       1_000_000_000,
		MemBandwidth: 1_000_000_000, // 1 B/cycle
		WeightSRAM:   8 * 16,        // 8 blocks of 16 B
		IOSRAM:       1 << 20,
		WeightBytes:  1,
		FillLatency:  2,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// chainNet builds a linear compiled network with the given per-layer
// (MB cycles, CB cycles, iters, blocks).
type layerSpec struct {
	mb, cb arch.Cycles
	iters  int
	blocks int
}

func chainNet(name string, cfg arch.Config, specs ...layerSpec) *compiler.CompiledNetwork {
	cn := &compiler.CompiledNetwork{Name: name, Batch: 1}
	for i, s := range specs {
		l := compiler.CompiledLayer{
			Name:     name + string(rune('a'+i)),
			Type:     0,
			MBCycles: s.mb,
			CBCycles: s.cb,
			Iters:    s.iters,
			MBBlocks: s.blocks,
			MBBytes:  cfg.BlockBytes() * arch.Bytes(s.blocks),
		}
		if i > 0 {
			l.Deps = []int{i - 1}
			cn.Layers[i-1].Posts = append(cn.Layers[i-1].Posts, i)
		}
		cn.Layers = append(cn.Layers, l)
	}
	return cn
}

// serial is the simplest legal scheduler: issue the first issuable MB
// (FIFO order, unbounded prefetch), run the first ready CB.
type serial struct{ NopHooks }

func (serial) Name() string { return "serial" }

func (serial) PickMB(v *View) (MBRef, bool) {
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (serial) PickCB(v *View) (CBRef, bool) {
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[0], true
}

func TestSingleLayerTimeline(t *testing.T) {
	cfg := testConfig(t)
	// One layer, one sub-layer: MB 10 cycles, CB 20 cycles.
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 20, iters: 1, blocks: 1})
	res, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30 {
		t.Errorf("makespan = %d, want 30 (serial MB then CB)", res.Makespan)
	}
	if res.MemBusy != 10 || res.PEBusy != 20 {
		t.Errorf("busy = %d/%d, want 10/20", res.MemBusy, res.PEBusy)
	}
	if res.MBCount != 1 || res.CBCount != 1 {
		t.Errorf("counts = %d/%d", res.MBCount, res.CBCount)
	}
}

func TestPipeliningOverlapsFetchAndCompute(t *testing.T) {
	cfg := testConfig(t)
	// Four sub-layers: MB 10, CB 10. With prefetching the steady state
	// overlaps: makespan = 10 (first MB) + 4*10 (CBs) = 50.
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 10, iters: 4, blocks: 1})
	res, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 50 {
		t.Errorf("makespan = %d, want 50", res.Makespan)
	}
}

func TestSRAMCapacityBoundsPrefetch(t *testing.T) {
	cfg := testConfig(t) // 8 blocks
	// 16 sub-layers of 1 block each, MB fast (1 cycle), CB slow (10).
	// Prefetch races ahead but can hold at most 8 blocks.
	cn := chainNet("n", cfg, layerSpec{mb: 1, cb: 10, iters: 16, blocks: 1})
	res, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SRAMPeakBlocks > 8 {
		t.Errorf("SRAM peak = %d blocks, capacity 8", res.SRAMPeakBlocks)
	}
	if res.SRAMPeakBlocks < 8 {
		t.Errorf("SRAM peak = %d blocks, prefetch should saturate capacity", res.SRAMPeakBlocks)
	}
}

func TestOversizedMBRejected(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 10, iters: 1, blocks: 9})
	if _, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{}); err == nil {
		t.Error("MB larger than the weight buffer accepted")
	}
}

func TestLayerDependencyGatesCB(t *testing.T) {
	cfg := testConfig(t)
	// Layer a: 1 sub-layer CB 50; layer b: CB 5. b's CB must not start
	// before a's finishes even though b's weights arrive early.
	cn := chainNet("n", cfg,
		layerSpec{mb: 5, cb: 50, iters: 1, blocks: 1},
		layerSpec{mb: 5, cb: 5, iters: 1, blocks: 1},
	)
	rec := &eventLog{}
	res, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	// a: MB 0-5, CB 5-55. b: MB 5-10 (prefetched), CB 55-60.
	if res.Makespan != 60 {
		t.Errorf("makespan = %d, want 60", res.Makespan)
	}
	b := rec.find("pe", 0, 1, 0)
	if b == nil || b.Start != 55 {
		t.Errorf("layer b CB = %+v, want start 55", b)
	}
}

func TestCrossNetworkIndependence(t *testing.T) {
	cfg := testConfig(t)
	// Two single-layer nets; the serial scheduler interleaves their
	// MBs, and both finish without waiting on each other.
	n1 := chainNet("x", cfg, layerSpec{mb: 10, cb: 30, iters: 1, blocks: 1})
	n2 := chainNet("y", cfg, layerSpec{mb: 10, cb: 30, iters: 1, blocks: 1})
	res, err := Run(cfg, []*compiler.CompiledNetwork{n1, n2}, serial{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// MBs at 0-10 and 10-20; CBs at 10-40 and 40-70.
	if res.Makespan != 70 {
		t.Errorf("makespan = %d, want 70", res.Makespan)
	}
	if res.NetFinish[0] != 40 || res.NetFinish[1] != 70 {
		t.Errorf("finishes = %v", res.NetFinish)
	}
}

func TestDiamondDependency(t *testing.T) {
	cfg := testConfig(t)
	// a -> {b, c} -> d: d waits for both branches.
	cn := &compiler.CompiledNetwork{Name: "d", Batch: 1}
	mk := func(deps []int) compiler.CompiledLayer {
		return compiler.CompiledLayer{
			Name: "l", MBCycles: 1, CBCycles: 10, Iters: 1, MBBlocks: 1,
			MBBytes: cfg.BlockBytes(), Deps: deps,
		}
	}
	cn.Layers = []compiler.CompiledLayer{mk(nil), mk([]int{0}), mk([]int{0}), mk([]int{1, 2})}
	for i, l := range cn.Layers {
		for _, d := range l.Deps {
			cn.Layers[d].Posts = append(cn.Layers[d].Posts, i)
		}
	}
	rec := &eventLog{}
	res, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.find("pe", 0, 3, 0)
	bEnd := rec.find("pe", 0, 1, 0).End
	cEnd := rec.find("pe", 0, 2, 0).End
	join := bEnd
	if cEnd > join {
		join = cEnd
	}
	if d.Start < join {
		t.Errorf("d started at %d before both branches ended (%d, %d)", d.Start, bEnd, cEnd)
	}
	if res.Makespan != d.End {
		t.Errorf("makespan %d != last CB end %d", res.Makespan, d.End)
	}
}

func TestHostTransfersGateAndSerialize(t *testing.T) {
	cfg := testConfig(t)
	cfg.HostBandwidth = 1_000_000_000 // 1 B/cycle
	n1 := chainNet("x", cfg, layerSpec{mb: 1, cb: 10, iters: 1, blocks: 1})
	n1.HostInBytes = 100
	n1.HostOutBytes = 50
	n2 := chainNet("y", cfg, layerSpec{mb: 1, cb: 10, iters: 1, blocks: 1})
	n2.HostInBytes = 100
	rec := &eventLog{}
	res, err := Run(cfg, []*compiler.CompiledNetwork{n1, n2}, serial{}, Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Inputs serialize: net0 0-100, net1 100-200. net0 CB starts at
	// 100 (weights long resident), ends 110; its output transfer
	// queues behind net1's input on the single link, 200-250. net1 CB
	// 200-210.
	cb0 := rec.find("pe", 0, 0, 0)
	if cb0.Start != 100 {
		t.Errorf("net0 CB start = %d, want 100 (gated by host input)", cb0.Start)
	}
	cb1 := rec.find("pe", 1, 0, 0)
	if cb1.Start != 200 {
		t.Errorf("net1 CB start = %d, want 200", cb1.Start)
	}
	if res.NetFinish[0] != 250 {
		t.Errorf("net0 finish = %d, want 250 (output queues behind net1 input)", res.NetFinish[0])
	}
	if res.HostBusy != 250 {
		t.Errorf("host busy = %d, want 250", res.HostBusy)
	}
}

// splitter forces a split while the long CB runs, then behaves
// serially; it verifies halt/resume mechanics and the refill penalty.
type splitter struct {
	serial
	splitAt  arch.Cycles
	splitRun bool
	resumes  []arch.Cycles // CBCycles observed for layer-0 restarts
}

func (s *splitter) PickMB(v *View) (MBRef, bool) {
	if !s.splitRun && v.Now() >= s.splitAt {
		if cur, _, ok := v.ExecutingCB(); ok && cur.Layer == 0 {
			s.splitRun = v.RequestSplit()
			return MBRef{}, false
		}
	}
	return s.serial.PickMB(v)
}

func (s *splitter) PickCB(v *View) (CBRef, bool) {
	r, ok := s.serial.PickCB(v)
	if ok && r.Net == 0 && r.Layer == 0 {
		s.resumes = append(s.resumes, v.CBCycles(r))
	}
	return r, ok
}

func (s *splitter) OnCBSplit(v *View, r CBRef, remaining arch.Cycles) {}

func TestSplitAndResume(t *testing.T) {
	cfg := testConfig(t) // fill latency 2
	// Net A's long CB (10-110) is split at t=40, when net B's first
	// fetch completes and gives the scheduler a decision point.
	a := chainNet("a", cfg, layerSpec{mb: 10, cb: 100, iters: 1, blocks: 4})
	b := chainNet("b", cfg, layerSpec{mb: 30, cb: 5, iters: 2, blocks: 2})
	s := &splitter{splitAt: 40}
	rec := &eventLog{}
	res, err := Run(cfg, []*compiler.CompiledNetwork{a, b}, s, Options{Tracer: rec, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits != 1 {
		t.Fatalf("splits = %d, want 1", res.Splits)
	}
	// A's CB ran 10-40 (30 cycles), split, resumed with remaining 70
	// plus fill 2 => 40-112. B's CBs follow: 112-117, 117-122.
	if res.Makespan != 122 {
		t.Errorf("makespan = %d, want 122", res.Makespan)
	}
	// Total PE busy = 30 + 72 + 5 + 5.
	if res.PEBusy != 112 {
		t.Errorf("PE busy = %d, want 112 (refill penalty included)", res.PEBusy)
	}
	// The resumed pick must have seen remnant + fill.
	if len(s.resumes) != 2 || s.resumes[0] != 100 || s.resumes[1] != 72 {
		t.Errorf("resume cycles = %v, want [100 72]", s.resumes)
	}
	// The split interval is visible in the trace.
	first := rec.find("pe", 0, 0, 0)
	if first == nil || first.End-first.Start != 30 {
		t.Errorf("split interval = %+v, want 30 cycles", first)
	}
}

func TestSplitOnFreshCBIgnored(t *testing.T) {
	cfg := testConfig(t)
	v := &View{cfg: cfg}
	if v.RequestSplit() {
		t.Error("split granted with idle PE")
	}
}

// stubborn never schedules anything.
type stubborn struct{ NopHooks }

func (stubborn) Name() string               { return "stubborn" }
func (stubborn) PickMB(*View) (MBRef, bool) { return MBRef{}, false }
func (stubborn) PickCB(*View) (CBRef, bool) { return CBRef{}, false }

func TestDeadlockDetected(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 10, iters: 1, blocks: 1})
	_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, stubborn{}, Options{})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

// liar returns non-issuable MBs.
type liar struct{ serial }

func (liar) PickMB(v *View) (MBRef, bool) { return MBRef{Net: 0, Layer: 0, Iter: 99}, true }

func TestBadSchedulerRejected(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 10, iters: 1, blocks: 1})
	if _, err := Run(cfg, []*compiler.CompiledNetwork{cn}, liar{}, Options{}); err == nil {
		t.Error("non-issuable MB accepted")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 1000, iters: 5, blocks: 1})
	_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{MaxCycles: 50})
	if !errors.Is(err, ErrTimeLimit) {
		t.Errorf("err = %v, want ErrTimeLimit", err)
	}
}

func TestArrivals(t *testing.T) {
	cfg := testConfig(t)
	n1 := chainNet("early", cfg, layerSpec{mb: 10, cb: 10, iters: 1, blocks: 1})
	n2 := chainNet("late", cfg, layerSpec{mb: 10, cb: 10, iters: 1, blocks: 1})
	rec := &eventLog{}
	res, err := Run(cfg, []*compiler.CompiledNetwork{n1, n2}, serial{},
		Options{Tracer: rec, Arrivals: []arch.Cycles{0, 100}})
	if err != nil {
		t.Fatal(err)
	}
	// The late network must be invisible before cycle 100.
	for _, e := range rec.events {
		if e.net == 1 && e.Start < 100 {
			t.Errorf("late network active at %d: %+v", e.Start, e)
		}
	}
	if res.NetArrive[1] != 100 {
		t.Errorf("NetArrive[1] = %d, want 100", res.NetArrive[1])
	}
	// early: MB 0-10, CB 10-20, finish 20. late: MB 100-110,
	// CB 110-120.
	if res.NetFinish[0] != 20 || res.NetFinish[1] != 120 {
		t.Errorf("finishes = %v, want [20 120]", res.NetFinish)
	}
	if res.Makespan != 120 {
		t.Errorf("makespan = %d, want 120", res.Makespan)
	}
}

func TestArrivalWhileBusy(t *testing.T) {
	cfg := testConfig(t)
	// The late net arrives mid-way through the early net's CB; the
	// engine must pick it up at the next event without a dedicated
	// wake-up (its arrival is an event).
	n1 := chainNet("early", cfg, layerSpec{mb: 10, cb: 100, iters: 1, blocks: 1})
	n2 := chainNet("late", cfg, layerSpec{mb: 10, cb: 10, iters: 1, blocks: 1})
	rec := &eventLog{}
	_, err := Run(cfg, []*compiler.CompiledNetwork{n1, n2}, serial{},
		Options{Tracer: rec, Arrivals: []arch.Cycles{0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	mb := rec.find("mem", 1, 0, 0)
	if mb == nil || mb.Start != 50 {
		t.Errorf("late MB = %+v, want start 50 (fetched during early CB)", mb)
	}
}

func TestSchedulerLatency(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 5, iters: 3, blocks: 1})
	hw, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(cfg, []*compiler.CompiledNetwork{cn}, serial{}, Options{SchedulerLatency: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Memory-bound chain: three issues each pay 7 extra cycles.
	if want := hw.Makespan + 3*7; sw.Makespan != want {
		t.Errorf("software-scheduler makespan = %d, want %d", sw.Makespan, want)
	}
	// Decision latency is not transfer time.
	if sw.MemBusy != hw.MemBusy {
		t.Errorf("MemBusy changed: %d vs %d", sw.MemBusy, hw.MemBusy)
	}
}

func TestRunRejectsEmptyAndInvalid(t *testing.T) {
	cfg := testConfig(t)
	if _, err := Run(cfg, nil, serial{}, Options{}); err == nil {
		t.Error("empty workload accepted")
	}
	bad := &compiler.CompiledNetwork{Name: "bad", Batch: 1}
	if _, err := Run(cfg, []*compiler.CompiledNetwork{bad}, serial{}, Options{}); err == nil {
		t.Error("invalid network accepted")
	}
}

// eventLog records tracer events for assertions.
type eventLog struct{ events []traceEvent }

type traceEvent struct {
	engine          string
	net, layer, itr int
	Start, End      arch.Cycles
}

func (l *eventLog) Event(engine, name string, net, layer, iter int, start, end arch.Cycles) {
	l.events = append(l.events, traceEvent{engine, net, layer, iter, start, end})
}

func (l *eventLog) find(engine string, net, layer, iter int) *traceEvent {
	for i := range l.events {
		e := &l.events[i]
		if e.engine == engine && e.net == net && e.layer == layer && e.itr == iter {
			return e
		}
	}
	return nil
}

// TestPropertyMachineInvariants runs random workloads under the serial
// scheduler and checks the universal invariants: the makespan respects
// the lower bound max(sum MB, sum CB); every CB starts after its MB
// ends; busy cycles equal the block totals; no engine interval
// overlaps another on the same engine.
func TestPropertyMachineInvariants(t *testing.T) {
	cfg := testConfig(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var nets []*compiler.CompiledNetwork
		var mbTot, cbTot arch.Cycles
		for n := 0; n < 1+rng.Intn(3); n++ {
			var specs []layerSpec
			for l := 0; l < 1+rng.Intn(4); l++ {
				s := layerSpec{
					mb:     arch.Cycles(1 + rng.Intn(20)),
					cb:     arch.Cycles(1 + rng.Intn(30)),
					iters:  1 + rng.Intn(5),
					blocks: 1 + rng.Intn(3),
				}
				specs = append(specs, s)
				mbTot += s.mb * arch.Cycles(s.iters)
				cbTot += s.cb * arch.Cycles(s.iters)
			}
			nets = append(nets, chainNet("n", cfg, specs...))
		}
		rec := &eventLog{}
		res, err := Run(cfg, nets, serial{}, Options{Tracer: rec, CheckInvariants: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		lower := mbTot
		if cbTot > lower {
			lower = cbTot
		}
		if res.Makespan < lower {
			t.Logf("seed %d: makespan %d below bound %d", seed, res.Makespan, lower)
			return false
		}
		if res.MemBusy != mbTot || res.PEBusy != cbTot {
			t.Logf("seed %d: busy %d/%d, want %d/%d", seed, res.MemBusy, res.PEBusy, mbTot, cbTot)
			return false
		}
		// Per-sub-layer MB-before-CB ordering and per-engine
		// non-overlap.
		type key struct{ n, l, i int }
		mbEnd := map[key]arch.Cycles{}
		lastEnd := map[string]arch.Cycles{}
		for _, e := range rec.events {
			if e.Start < lastEnd[e.engine] {
				t.Logf("seed %d: %s interval overlap at %d", seed, e.engine, e.Start)
				return false
			}
			lastEnd[e.engine] = e.End
			if e.engine == "mem" {
				mbEnd[key{e.net, e.layer, e.itr}] = e.End
			}
			if e.engine == "pe" {
				end, ok := mbEnd[key{e.net, e.layer, e.itr}]
				if !ok || e.Start < end {
					t.Logf("seed %d: CB %v started before its MB finished", seed, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestViewAccessors(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg,
		layerSpec{mb: 10, cb: 20, iters: 2, blocks: 1},
		layerSpec{mb: 10, cb: 5, iters: 1, blocks: 2},
	)
	v := &View{cfg: cfg, buf: sram.NewBuffer(cfg.WeightBlocks()), nets: []*netState{newNetState(cn)}}
	v.nets[0].hostInDone = true
	// The engine maintains the active list, the incremental
	// outstanding/remaining counters and the candidate frontiers; a
	// hand-built View must seed them the same way.
	v.activeAdd(0)
	v.mbRemaining = 3

	if v.NumNets() != 1 || v.NumLayers(0) != 2 {
		t.Fatalf("dims wrong")
	}
	mbs := v.MBCandidates(nil)
	if len(mbs) != 1 || mbs[0].Layer != 0 {
		t.Fatalf("MB candidates = %v", mbs)
	}
	if !v.IsMBIssuable(mbs[0]) {
		t.Fatal("first MB not issuable")
	}
	if v.IsMBIssuable(MBRef{Net: 0, Layer: 1, Iter: 0}) {
		t.Fatal("locked layer issuable")
	}
	if got := v.AvailableCBCycles(); got != 0 {
		t.Fatalf("available CB cycles = %d before any fetch", got)
	}
	// Simulate a completed fetch and the host-input unlock, adjusting
	// the engine-maintained counters and frontiers the way issueMB,
	// completeMB and finishHostIn would.
	v.nets[0].mbIssued[0] = 1
	v.nets[0].mbDone[0] = 1
	v.outstanding++
	v.mbRemaining--
	v.nets[0].cbIndeg[0] = 0
	v.unlockCB(v.nets[0], 0)
	if got := v.AvailableCBCycles(); got != 20 {
		t.Fatalf("available CB cycles = %d, want 20", got)
	}
	ready := v.ReadyCBs(nil)
	if len(ready) != 1 || ready[0].Layer != 0 {
		t.Fatalf("ready = %v", ready)
	}
	sel := v.SelectableCBs(nil)
	if len(sel) != 1 {
		t.Fatalf("selectable = %v", sel)
	}
	if err := v.SelectCB(sel[0]); err != nil {
		t.Fatal(err)
	}
	if err := v.SelectCB(sel[0]); err == nil {
		t.Fatal("double select accepted")
	}
	if got := v.OutstandingMBs(); got != 1 {
		t.Fatalf("outstanding = %d", got)
	}
	if !v.HasMBWork() {
		t.Fatal("work remains but HasMBWork is false")
	}
}
