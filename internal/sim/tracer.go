package sim

import "aimt/internal/arch"

// MultiTracer fans one engine's event stream out to several tracers,
// so a run can feed e.g. an occupancy recorder and a request-span
// collector at once. Like any non-nil Tracer it costs one interface
// call per event; use a single tracer (or nil) on hot paths.
type MultiTracer []Tracer

// Event implements Tracer.
func (m MultiTracer) Event(engine, name string, net, layer, iter int, start, end arch.Cycles) {
	for _, t := range m {
		if t != nil {
			t.Event(engine, name, net, layer, iter, start, end)
		}
	}
}
