package sim

import (
	"errors"
	"fmt"

	"aimt/internal/arch"
	"aimt/internal/sram"
)

// ErrInvariant wraps every machine-model invariant violation reported
// by the opt-in checker (Options.CheckInvariants), so callers can
// errors.Is for it.
var ErrInvariant = errors.New("sim: machine invariant violated")

// checker validates the machine-model invariants at every engine
// event. It keeps its own shadow copy of the machine state — derived
// only from the event stream, never read back from the engine's
// bookkeeping — so that a scheduler (or a future engine refactor) that
// corrupts engine state is caught the moment the corruption becomes
// observable:
//
//  1. the HBM channel and the PE complex each execute one block at a
//     time (occupancy intervals never overlap);
//  2. weight-SRAM occupancy never exceeds capacity, and the allocator's
//     chains stay consistent with the shadow occupancy;
//  3. no compute block starts before all of its memory blocks complete
//     and before every predecessor layer's compute blocks complete;
//  4. event time is monotonically non-decreasing;
//  5. split/resume conserves compute-block work: the segments of a
//     halted block sum to its full cycles plus one refill penalty per
//     resume;
//  6. the incrementally maintained candidate frontiers agree with a
//     brute-force rescan: MBCandidates, ReadyCBs, SelectableCBs and
//     AvailableCBCycles equal the reference full-scan results after
//     every state transition (see frontier.go);
//  7. halts and resumes pair up: a compute block that starts with less
//     than its full work must be the resume of exactly the outstanding
//     halted remainder (plus the refill penalty), and each halt is
//     resumed at most once — a stray or double-inflated remnant
//     (resume without halt, double resume) fires here, at the start,
//     rather than surfacing later as family 5's conservation residue.
type checker struct {
	v    *View
	fill arch.Cycles

	now arch.Cycles

	// Engine occupancy shadows: whether a block is in flight and when
	// the last completed interval ended.
	memInFlight bool
	peInFlight  bool
	memFree     arch.Cycles
	peFree      arch.Cycles

	// used is the shadow weight-SRAM occupancy in blocks, counted from
	// MB issues and CB completions only.
	used int

	nets []netShadow

	// layerSlab is the flat backing every netShadow's layers sub-slice
	// is carved from, so a pooled checker resets without reallocating.
	layerSlab []layerShadow

	mbCount, cbCount, splitCount int

	// Scratch buffers for the frontier-vs-scan comparison (invariant 6).
	mbGot, mbWant []MBRef
	cbGot, cbWant []CBRef

	// chainPtrs caches the pointer list checkSRAM hands to sram.Check;
	// the chains themselves live in the engine arena, so the pointers
	// are stable for the whole run and are built once.
	chainPtrs []*sram.Chain
}

// netShadow is the checker's independent progress record for one
// network instance.
type netShadow struct {
	hostInDone bool
	layers     []layerShadow
}

// layerShadow shadows one layer's sub-layer progress.
type layerShadow struct {
	mbIssued int
	mbDone   int
	cbDone   int

	// executed accumulates the PE time spent on the layer's current
	// (possibly split) compute block; resumes counts its halts.
	executed arch.Cycles
	resumes  int

	// halted and remaining track the outstanding halt (invariant 7): a
	// split sets them, the matching resume clears them, and any start
	// whose work disagrees with them is a broken halt/resume pairing.
	halted    bool
	remaining arch.Cycles
}

func newChecker(v *View) *checker {
	c := &checker{}
	c.reset(v)
	return c
}

// reset rebinds the checker to a fresh run over v, reusing its slab,
// scratch and chain-pointer storage from the previous run.
func (c *checker) reset(v *View) {
	totalLayers := 0
	for _, s := range v.nets {
		totalLayers += len(s.cn.Layers)
	}
	*c = checker{
		v:         v,
		fill:      v.cfg.FillLatency,
		nets:      c.nets[:0],
		layerSlab: c.layerSlab[:0],
		mbGot:     c.mbGot[:0], mbWant: c.mbWant[:0],
		cbGot: c.cbGot[:0], cbWant: c.cbWant[:0],
		chainPtrs: c.chainPtrs[:0],
	}
	if cap(c.nets) < len(v.nets) {
		c.nets = make([]netShadow, 0, len(v.nets))
	}
	if cap(c.layerSlab) < totalLayers {
		c.layerSlab = make([]layerShadow, 0, totalLayers)
	}
	slab := c.layerSlab[:totalLayers]
	for i := range slab {
		slab[i] = layerShadow{}
	}
	off := 0
	for _, s := range v.nets {
		n := len(s.cn.Layers)
		c.nets = append(c.nets, netShadow{layers: slab[off : off+n : off+n]})
		for i := range s.chains {
			c.chainPtrs = append(c.chainPtrs, &s.chains[i])
		}
		off += n
	}
	c.layerSlab = slab
}

func (c *checker) violate(format string, args ...any) error {
	return fmt.Errorf("%w at cycle %d: %s", ErrInvariant, c.now, fmt.Sprintf(format, args...))
}

// advance checks invariant 4: simulation time never moves backwards.
func (c *checker) advance(t arch.Cycles) error {
	if t < c.now {
		return c.violate("time moved backwards to %d", t)
	}
	c.now = t
	return nil
}

// hostIn records that a network's input features arrived.
func (c *checker) hostIn(net int) {
	c.nets[net].hostInDone = true
}

// mbIssue checks invariants 1 and 2 at memory-block issue: the channel
// must be free, the MB must be the layer's next, and the allocation
// must fit the SRAM.
func (c *checker) mbIssue(r MBRef, blocks int) error {
	if c.memInFlight {
		return c.violate("MB %+v issued while the HBM channel executes another block", r)
	}
	sh := &c.nets[r.Net].layers[r.Layer]
	if r.Iter != sh.mbIssued {
		return c.violate("MB %+v issued out of order (next iter %d)", r, sh.mbIssued)
	}
	if r.Iter >= c.v.nets[r.Net].cn.Layers[r.Layer].Iters {
		return c.violate("MB %+v beyond the layer's %d sub-layers", r, c.v.nets[r.Net].cn.Layers[r.Layer].Iters)
	}
	c.used += blocks
	if cap := c.v.buf.NumBlocks(); c.used > cap {
		return c.violate("SRAM occupancy %d blocks exceeds capacity %d after MB %+v", c.used, cap, r)
	}
	sh.mbIssued++
	c.memInFlight = true
	return nil
}

// mbDone checks invariant 1 on the completed fetch interval.
func (c *checker) mbDone(r MBRef, start, end arch.Cycles) error {
	if !c.memInFlight {
		return c.violate("MB %+v completed but none was in flight", r)
	}
	c.memInFlight = false
	if end < start {
		return c.violate("MB %+v interval [%d,%d) runs backwards", r, start, end)
	}
	if start < c.memFree {
		return c.violate("MB %+v interval [%d,%d) overlaps the previous fetch ending at %d", r, start, end, c.memFree)
	}
	c.memFree = end
	sh := &c.nets[r.Net].layers[r.Layer]
	sh.mbDone++
	if sh.mbDone > sh.mbIssued {
		return c.violate("MB %+v completed more times than issued (%d > %d)", r, sh.mbDone, sh.mbIssued)
	}
	c.mbCount++
	return nil
}

// cbStart checks invariants 1 and 3 at compute-block start: the PE
// complex must be free, the block's weights must have been fetched
// (per the checker's own MB completion count), and every predecessor
// layer must have finished computing.
func (c *checker) cbStart(r CBRef, work arch.Cycles) error {
	if c.peInFlight {
		return c.violate("CB %+v started while the PE complex executes another block", r)
	}
	if work <= 0 {
		return c.violate("CB %+v started with non-positive work %d", r, work)
	}
	ns := &c.nets[r.Net]
	sh := &ns.layers[r.Layer]
	if r.Iter != sh.cbDone {
		return c.violate("CB %+v started out of order (next iter %d)", r, sh.cbDone)
	}
	if r.Iter >= sh.mbDone {
		return c.violate("CB %+v started before its memory block completed (%d fetched)", r, sh.mbDone)
	}
	l := c.v.nets[r.Net].cn.Layers[r.Layer]
	if len(l.Deps) == 0 && !ns.hostInDone {
		return c.violate("CB %+v started before the network's host input arrived", r)
	}
	for _, d := range l.Deps {
		if ns.layers[d].cbDone < c.v.nets[r.Net].cn.Layers[d].Iters {
			return c.violate("CB %+v started before predecessor layer %d finished (%d/%d CBs)",
				r, d, ns.layers[d].cbDone, c.v.nets[r.Net].cn.Layers[d].Iters)
		}
	}
	if sh.halted {
		if work != sh.remaining+c.fill {
			return c.violate("CB %+v resumed with %d cycles, want halted remainder %d + refill %d",
				r, work, sh.remaining, c.fill)
		}
		sh.halted, sh.remaining = false, 0
	} else if work != l.CBCycles {
		return c.violate("CB %+v started with %d cycles but no halt is outstanding (full block is %d): resume without halt",
			r, work, l.CBCycles)
	}
	c.peInFlight = true
	return nil
}

// cbDone checks invariants 1, 2 and 5 at compute-block completion.
func (c *checker) cbDone(r CBRef, start, end arch.Cycles, blocks int) error {
	if !c.peInFlight {
		return c.violate("CB %+v completed but none was executing", r)
	}
	c.peInFlight = false
	if end < start {
		return c.violate("CB %+v interval [%d,%d) runs backwards", r, start, end)
	}
	if start < c.peFree {
		return c.violate("CB %+v interval [%d,%d) overlaps the previous block ending at %d", r, start, end, c.peFree)
	}
	c.peFree = end

	sh := &c.nets[r.Net].layers[r.Layer]
	sh.executed += end - start
	want := c.v.nets[r.Net].cn.Layers[r.Layer].CBCycles + arch.Cycles(sh.resumes)*c.fill
	if sh.executed != want {
		return c.violate("CB %+v executed %d cycles over %d resume(s), want %d (split/resume lost work)",
			r, sh.executed, sh.resumes, want)
	}
	sh.executed, sh.resumes = 0, 0
	sh.cbDone++
	if sh.cbDone > sh.mbDone {
		return c.violate("CB %+v completed before its memory block (%d fetched)", r, sh.mbDone)
	}

	c.used -= blocks
	if c.used < 0 {
		return c.violate("CB %+v freed more SRAM blocks than were allocated", r)
	}
	if got := c.v.buf.UsedBlocks(); got != c.used {
		return c.violate("allocator occupancy %d blocks disagrees with the event stream's %d", got, c.used)
	}
	if err := c.checkSRAM(); err != nil {
		return c.violate("%v", err)
	}
	c.cbCount++
	return nil
}

// cbSplit checks invariants 1 and 5 when the engine halts a compute
// block: the executed and remaining portions must add up to the work
// the block was assigned.
func (c *checker) cbSplit(r CBRef, start, end, remaining arch.Cycles) error {
	if !c.peInFlight {
		return c.violate("CB %+v split but none was executing", r)
	}
	c.peInFlight = false
	if end <= start {
		return c.violate("CB %+v split with empty interval [%d,%d)", r, start, end)
	}
	if start < c.peFree {
		return c.violate("CB %+v split interval [%d,%d) overlaps the previous block ending at %d", r, start, end, c.peFree)
	}
	if remaining <= 0 {
		return c.violate("CB %+v split with nothing remaining", r)
	}
	c.peFree = end

	sh := &c.nets[r.Net].layers[r.Layer]
	sh.executed += end - start
	sh.resumes++
	want := c.v.nets[r.Net].cn.Layers[r.Layer].CBCycles + arch.Cycles(sh.resumes-1)*c.fill
	if sh.executed+remaining != want {
		return c.violate("CB %+v split: executed %d + remaining %d != %d (work not conserved)",
			r, sh.executed, remaining, want)
	}
	sh.halted, sh.remaining = true, remaining
	c.splitCount++
	return nil
}

// frontiers checks invariant 6: the candidate sets the schedulers see
// through the incrementally maintained frontiers must be identical —
// element for element, in order — to a brute-force rescan of every
// layer, and the incremental AVL_CB counter must equal the rescanned
// total. The engine calls this after every state transition that can
// move candidacy (MB issue, MB/CB completion, CB start, CB split,
// host-input completion).
func (c *checker) frontiers() error {
	v := c.v
	c.mbGot = v.MBCandidates(c.mbGot[:0])
	c.mbWant = v.scanMBCandidates(c.mbWant[:0])
	if !mbRefsEqual(c.mbGot, c.mbWant) {
		return c.violate("MB frontier %v diverged from full scan %v", c.mbGot, c.mbWant)
	}
	c.cbGot = v.ReadyCBs(c.cbGot[:0])
	c.cbWant = v.scanReadyCBs(c.cbWant[:0])
	if !cbRefsEqual(c.cbGot, c.cbWant) {
		return c.violate("ready-CB frontier %v diverged from full scan %v", c.cbGot, c.cbWant)
	}
	c.cbGot = v.SelectableCBs(c.cbGot[:0])
	c.cbWant = v.scanSelectableCBs(c.cbWant[:0])
	if !cbRefsEqual(c.cbGot, c.cbWant) {
		return c.violate("selectable-CB frontier %v diverged from full scan %v", c.cbGot, c.cbWant)
	}
	if got, want := v.AvailableCBCycles(), v.scanAvailableCBCycles(); got != want {
		return c.violate("incremental AVL_CB %d diverged from full scan %d", got, want)
	}
	return nil
}

func mbRefsEqual(a, b []MBRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cbRefsEqual(a, b []CBRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSRAM verifies the allocator's free list and per-layer chains
// against each other (invariant 2's structural half).
func (c *checker) checkSRAM() error {
	return c.v.buf.Check(c.chainPtrs)
}

// finish runs the end-of-simulation checks: every sub-layer fetched
// and computed exactly once, all SRAM returned, and the engine's
// aggregate counters agreeing with the event stream.
func (c *checker) finish(res *Result) error {
	if c.memInFlight || c.peInFlight {
		return c.violate("run finished with a block still in flight")
	}
	if c.used != 0 {
		return c.violate("run finished with %d SRAM blocks still allocated", c.used)
	}
	if free, total := c.v.buf.FreeBlocks(), c.v.buf.NumBlocks(); free != total {
		return c.violate("allocator reports %d/%d blocks free after completion", free, total)
	}
	for ni := range c.nets {
		for li, sh := range c.nets[ni].layers {
			iters := c.v.nets[ni].cn.Layers[li].Iters
			if sh.mbDone != iters || sh.cbDone != iters {
				return c.violate("net %d layer %d finished %d/%d MBs and %d/%d CBs",
					ni, li, sh.mbDone, iters, sh.cbDone, iters)
			}
			if sh.executed != 0 || sh.resumes != 0 {
				return c.violate("net %d layer %d left a half-executed compute block", ni, li)
			}
		}
	}
	if res.MBCount != c.mbCount || res.CBCount != c.cbCount || res.Splits != c.splitCount {
		return c.violate("result counts MB=%d CB=%d splits=%d disagree with the event stream's %d/%d/%d",
			res.MBCount, res.CBCount, res.Splits, c.mbCount, c.cbCount, c.splitCount)
	}
	return nil
}
