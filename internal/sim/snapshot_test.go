package sim

import (
	"errors"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
)

// snapshotWorkload builds a small two-network workload with enough
// events that a mid-run probe leaves plenty of simulation ahead of it.
func snapshotWorkload(t *testing.T) (arch.Config, []*compiler.CompiledNetwork) {
	t.Helper()
	cfg := testConfig(t)
	a := chainNet("a", cfg,
		layerSpec{mb: 10, cb: 14, iters: 8, blocks: 1},
		layerSpec{mb: 6, cb: 22, iters: 8, blocks: 1},
	)
	b := chainNet("b", cfg,
		layerSpec{mb: 16, cb: 5, iters: 8, blocks: 2},
	)
	return cfg, []*compiler.CompiledNetwork{a, b}
}

// probedEngine runs the workload partway with invariant checking on
// and returns the engine stopped mid-run.
func probedEngine(t *testing.T) *Engine {
	t.Helper()
	cfg, nets := snapshotWorkload(t)
	ref, err := Run(cfg, nets, serial{}, Options{CheckInvariants: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	e, err := NewEngine(cfg, nets, serial{}, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.StepUntil(ref.Makespan / 2); err != nil {
		t.Fatalf("StepUntil: %v", err)
	}
	if e.Now() >= ref.Makespan {
		t.Fatalf("probe landed at %d, past makespan %d — workload too small", e.Now(), ref.Makespan)
	}
	return e
}

// TestSnapshotSabotageAvailCB corrupts a restored snapshot's
// incrementally maintained AVL_CB counter. The checker's frontier
// family recomputes the counter by full scan after every event, so
// the very next event after the restore must trip ErrInvariant — this
// is the proof that Restore feeds the restored state back through the
// same validation as live state, rather than bypassing it.
func TestSnapshotSabotageAvailCB(t *testing.T) {
	e := probedEngine(t)
	snap := e.Snapshot(nil)
	snap.availCB += 977 // corrupt the machine's AVL_CB shadow
	if err := e.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, err := e.Run(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("run after corrupted restore: err=%v, want ErrInvariant", err)
	}
}

// TestSnapshotSabotageSRAMFreeList corrupts a snapshot's SRAM
// allocator state by double-freeing a block. The checker's structural
// SRAM walk (free list and chains partition the blocks exactly) must
// reject the replay.
func TestSnapshotSabotageSRAMFreeList(t *testing.T) {
	e := probedEngine(t)
	snap := e.Snapshot(nil)
	if len(snap.sramFree) == 0 {
		t.Fatal("probe found an empty free list; nothing to sabotage")
	}
	snap.sramFree = append(snap.sramFree, snap.sramFree[0])
	if err := e.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("run after corrupted SRAM restore succeeded; want checker error")
	}
}

// TestSnapshotCrossRunRejected re-initializes the engine for a new
// run and checks that the stale snapshot from the previous run is
// refused: the arena was re-carved, so restoring it would corrupt the
// new run's state.
func TestSnapshotCrossRunRejected(t *testing.T) {
	cfg, nets := snapshotWorkload(t)
	e, err := NewEngine(cfg, nets, serial{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot(nil)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Re-initialize the same engine value for a fresh run; the old
	// snapshot's runID is now stale.
	if err := e.init(cfg, nets, serial{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(snap); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("Restore of stale snapshot: err=%v, want ErrSnapshot", err)
	}
}

// TestSnapshotStorageReuse checks that reusing one Snapshot across
// captures allocates nothing once warm — the property the speculative
// scheduler's hot path depends on.
func TestSnapshotStorageReuse(t *testing.T) {
	e := probedEngine(t)
	snap := e.Snapshot(nil)
	allocs := testing.AllocsPerRun(50, func() {
		snap = e.Snapshot(snap)
	})
	if allocs > 0 {
		t.Errorf("Snapshot into reused storage allocates %.1f objects/op, want 0", allocs)
	}
}

// TestNoteLookaheadDisabledAllocFree checks NoteLookahead's nil
// guards: with neither a registry nor a ledger attached, a committed
// speculation records nothing and the note itself allocates nothing —
// the disabled-observability hot path stays free.
func TestNoteLookaheadDisabledAllocFree(t *testing.T) {
	v := &View{}
	allocs := testing.AllocsPerRun(100, func() {
		v.NoteLookahead(MBRef{}, 1024, 7)
	})
	if allocs > 0 {
		t.Errorf("NoteLookahead with observability disabled allocates %.1f objects/op, want 0", allocs)
	}
}
