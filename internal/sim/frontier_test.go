package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sram"
)

// probe is a randomized scheduler that compares the incrementally
// maintained frontiers against the reference full scans at every
// decision point (in addition to the checker's per-event comparison),
// while exercising every path that moves candidacy: random MB issue
// order, random CB order, ahead-of-execution claims, and splits.
type probe struct {
	NopHooks
	t   *testing.T
	rng *rand.Rand

	// sq holds ahead-of-execution claims in order; a claimed layer
	// leaves ReadyCBs, so the probe must run its claims itself (the
	// same contract core.AIMT's selected queue follows).
	sq []CBRef
}

func (*probe) Name() string { return "frontier-probe" }

func (p *probe) check(v *View) {
	p.t.Helper()
	got, want := v.MBCandidates(nil), v.scanMBCandidates(nil)
	if !mbRefsEqual(got, want) {
		p.t.Fatalf("MBCandidates %v != scan %v", got, want)
	}
	if g, w := v.ReadyCBs(nil), v.scanReadyCBs(nil); !cbRefsEqual(g, w) {
		p.t.Fatalf("ReadyCBs %v != scan %v", g, w)
	}
	if g, w := v.SelectableCBs(nil), v.scanSelectableCBs(nil); !cbRefsEqual(g, w) {
		p.t.Fatalf("SelectableCBs %v != scan %v", g, w)
	}
	if g, w := v.AvailableCBCycles(), v.scanAvailableCBCycles(); g != w {
		p.t.Fatalf("AvailableCBCycles %d != scan %d", g, w)
	}
}

func (p *probe) PickMB(v *View) (MBRef, bool) {
	p.check(v)
	// Occasionally claim the first selectable compute block ahead of
	// execution, so cbSelected moves independently of execution.
	// (Claims must be made in iteration order per layer, so only the
	// first selectable entry of a layer is claimable.)
	if sel := v.SelectableCBs(nil); len(sel) > 0 && p.rng.Intn(3) == 0 {
		pick := sel[p.rng.Intn(len(sel))]
		if err := v.SelectCB(pick); err == nil {
			p.sq = append(p.sq, pick)
			p.check(v)
		}
	}
	var issuable []MBRef
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			issuable = append(issuable, m)
		}
	}
	if len(issuable) == 0 {
		return MBRef{}, false
	}
	return issuable[p.rng.Intn(len(issuable))], true
}

func (p *probe) PickCB(v *View) (CBRef, bool) {
	p.check(v)
	if len(p.sq) > 0 {
		return p.sq[0], true
	}
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[p.rng.Intn(len(cbs))], true
}

func (p *probe) OnMBDone(v *View, r MBRef) {
	p.check(v)
	if p.rng.Intn(4) == 0 {
		v.RequestSplit()
	}
}

func (p *probe) OnCBStart(v *View, r CBRef) {
	if len(p.sq) > 0 && p.sq[0] == r {
		p.sq = p.sq[1:]
	}
	p.check(v)
}

func (p *probe) OnCBDone(v *View, r CBRef) { p.check(v) }

func (p *probe) OnCBSplit(v *View, r CBRef, remaining arch.Cycles) {
	// The engine rolled the layer's selection counter back; drop the
	// matching claims.
	kept := p.sq[:0]
	for _, c := range p.sq {
		if c.Net != r.Net || c.Layer != r.Layer {
			kept = append(kept, c)
		}
	}
	p.sq = kept
	p.check(v)
}

// TestFrontierMatchesScanRandom drives random multi-net workloads with
// staggered arrivals and host transfers under the probing scheduler:
// the frontier-based candidate sets must equal the brute-force scans
// at every decision and every event (the run also has the invariant
// checker's own per-event comparison enabled).
func TestFrontierMatchesScanRandom(t *testing.T) {
	cfg := testConfig(t)
	cfg.HostBandwidth = 2_000_000_000 // 2 B/cycle: host transfers take real time
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var nets []*compiler.CompiledNetwork
		var arrivals []arch.Cycles
		for n := 0; n < 2+rng.Intn(3); n++ {
			var specs []layerSpec
			for l := 0; l < 1+rng.Intn(4); l++ {
				specs = append(specs, layerSpec{
					mb:     arch.Cycles(1 + rng.Intn(60)),
					cb:     arch.Cycles(1 + rng.Intn(60)),
					iters:  1 + rng.Intn(5),
					blocks: 1 + rng.Intn(3),
				})
			}
			cn := chainNet("n", cfg, specs...)
			cn.HostInBytes = arch.Bytes(rng.Intn(40))
			cn.HostOutBytes = arch.Bytes(rng.Intn(40))
			nets = append(nets, cn)
			arrivals = append(arrivals, arch.Cycles(rng.Intn(400)))
		}
		_, err := Run(cfg, nets, &probe{t: t, rng: rng},
			Options{CheckInvariants: true, Arrivals: arrivals})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// frontierSaboteur corrupts the maintained frontier state mid-run; the
// checker's frontier-vs-scan comparison must catch it at the next
// event.
type frontierSaboteur struct {
	NopHooks
	corrupt func(v *View)
}

func (*frontierSaboteur) Name() string { return "frontier-saboteur" }

func (s *frontierSaboteur) PickMB(v *View) (MBRef, bool) {
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (s *frontierSaboteur) PickCB(v *View) (CBRef, bool) {
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[0], true
}

func (s *frontierSaboteur) OnMBDone(v *View, r MBRef) { s.corrupt(v) }

func TestInvariantCatchesFrontierCorruption(t *testing.T) {
	cfg := testConfig(t)
	for _, tc := range []struct {
		name    string
		corrupt func(v *View)
	}{
		{"dropped-mb-frontier-entry", func(v *View) {
			s := v.nets[0]
			if len(s.mbFront) > 0 {
				s.mbFront = s.mbFront[:len(s.mbFront)-1]
			}
		}},
		{"phantom-cb-frontier-entry", func(v *View) {
			// Inject the still-locked last layer into the CB frontier.
			s := v.nets[0]
			last := len(s.cn.Layers) - 1
			for _, li := range s.cbFront {
				if li == last {
					return
				}
			}
			s.cbFront = frontAdd(s.cbFront, last)
		}},
		{"drifted-avl-counter", func(v *View) { v.availCB += 17 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cn := chainNet("n", cfg,
				layerSpec{mb: 10, cb: 20, iters: 3, blocks: 1},
				layerSpec{mb: 10, cb: 5, iters: 2, blocks: 1})
			_, err := Run(cfg, []*compiler.CompiledNetwork{cn},
				&frontierSaboteur{corrupt: tc.corrupt}, Options{CheckInvariants: true})
			if !errors.Is(err, ErrInvariant) {
				t.Fatalf("err = %v, want ErrInvariant (frontier diverged from scan)", err)
			}
		})
	}
}

// benchView hand-builds a mid-run View over nets deep chain networks:
// per net, the first prog layers are complete, the layer at prog is
// mid-flight with resident unconsumed compute blocks, and everything
// beyond is still locked — the steady state of a deep-layer mix, where
// a full scan walks every layer to find a handful of candidates.
func benchView(b *testing.B, nets, layers int) *View {
	b.Helper()
	cfg := testConfig(b)
	v := &View{cfg: cfg, buf: sram.NewBuffer(cfg.WeightBlocks())}
	for n := 0; n < nets; n++ {
		specs := make([]layerSpec, layers)
		for l := range specs {
			specs[l] = layerSpec{mb: 10, cb: 20, iters: 4, blocks: 1}
		}
		s := newNetState(chainNet("n", cfg, specs...))
		s.hostInDone = true
		prog := layers / 2
		for li := 0; li < layers; li++ {
			iters := s.cn.Layers[li].Iters
			switch {
			case li < prog:
				s.mbIndeg[li], s.cbIndeg[li] = 0, 0
				s.mbIssued[li], s.mbDone[li] = iters, iters
				s.cbSelected[li], s.cbDone[li] = iters, iters
			case li == prog:
				s.mbIndeg[li], s.cbIndeg[li] = 0, 0
				s.mbIssued[li], s.mbDone[li] = 3, 2
				s.cbSelected[li], s.cbDone[li] = 1, 0
			}
			// Layers beyond prog keep their constructed in-degrees
			// (locked), except the one directly after prog, whose MB
			// chain the finished prefix would have unlocked.
			if li == prog+1 {
				s.mbIndeg[li] = 0
			}
		}
		v.nets = append(v.nets, s)
		v.activeAdd(n)
	}
	// Rebuild the frontiers and the AVL counter from the counters, the
	// way the engine's incremental maintenance would have left them.
	for _, s := range v.nets {
		s.mbFront, s.cbFront = s.mbFront[:0], s.cbFront[:0]
		for li := range s.cn.Layers {
			if s.mbIndeg[li] == 0 && s.mbIssued[li] < s.cn.Layers[li].Iters {
				s.mbFront = frontAdd(s.mbFront, li)
			}
			if s.cbIndeg[li] == 0 && s.mbDone[li] > s.cbDone[li] {
				s.cbFront = frontAdd(s.cbFront, li)
			}
		}
	}
	v.availCB = v.scanAvailableCBCycles()
	return v
}

// BenchmarkCandidateScan measures one full scheduler-visible candidate
// derivation (MBCandidates + ReadyCBs + SelectableCBs +
// AvailableCBCycles) on a deep-layer mid-run state: the incremental
// frontiers against the reference full scan they replaced.
func BenchmarkCandidateScan(b *testing.B) {
	v := benchView(b, 8, 64)
	if g, w := v.MBCandidates(nil), v.scanMBCandidates(nil); !mbRefsEqual(g, w) {
		b.Fatalf("frontier %v != scan %v", g, w)
	}
	var mbs []MBRef
	var cbs []CBRef
	b.Run("frontier", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mbs = v.MBCandidates(mbs[:0])
			cbs = v.ReadyCBs(cbs[:0])
			cbs = v.SelectableCBs(cbs[:0])
			_ = v.AvailableCBCycles()
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mbs = v.scanMBCandidates(mbs[:0])
			cbs = v.scanReadyCBs(cbs[:0])
			cbs = v.scanSelectableCBs(cbs[:0])
			_ = v.scanAvailableCBCycles()
		}
	})
}
