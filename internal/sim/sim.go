// Package sim is the cycle-level accelerator simulator. It models the
// machine the paper evaluates on: one HBM channel executing memory
// blocks (MBs) serially, one PE-array complex executing compute blocks
// (CBs) serially at sub-layer granularity, a block-granular weight
// SRAM gating prefetch depth, and a host (PCIe) link moving input and
// output features.
//
// Scheduling policy is pluggable through the Scheduler interface; the
// engine owns all state transitions (dependency resolution, SRAM
// allocation, split/resume) so that every policy is simulated under
// identical machine semantics.
package sim

import (
	"fmt"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/obs"
	"aimt/internal/sram"
)

// MBRef identifies one memory block: sub-layer Iter of compiled layer
// Layer of network instance Net.
type MBRef struct {
	Net, Layer, Iter int
}

// CBRef identifies one compute block.
type CBRef struct {
	Net, Layer, Iter int
}

// Scheduler decides which block each engine runs next. The engine
// consults it whenever an engine is idle and state may have changed.
// Implementations must be deterministic functions of the View.
type Scheduler interface {
	// Name labels the policy in results and traces.
	Name() string

	// PickMB returns the next memory block to fetch. Returning ok=false
	// leaves the HBM channel idle until the next event. The returned
	// block must be issuable (IsMBIssuable).
	PickMB(v *View) (MBRef, bool)

	// PickCB returns the compute block the PE complex should run next.
	// If the returned block is not yet executable (its weights are
	// still in flight), the PE complex waits for it — this is how a
	// policy expresses a dependency stall. Returning ok=false leaves
	// the PE complex idle until the next event.
	PickCB(v *View) (CBRef, bool)

	// OnMBDone is invoked when a memory block completes.
	OnMBDone(v *View, r MBRef)

	// OnCBStart is invoked when a compute block begins execution.
	OnCBStart(v *View, r CBRef)

	// OnCBDone is invoked when a compute block completes.
	OnCBDone(v *View, r CBRef)

	// OnCBSplit is invoked after the engine halts an executing compute
	// block (see View.RequestSplit). remaining is the work left,
	// excluding the refill penalty charged at resume.
	OnCBSplit(v *View, r CBRef, remaining arch.Cycles)
}

// NopHooks provides no-op notification methods for schedulers that
// only implement the Pick methods.
type NopHooks struct{}

// OnMBDone implements Scheduler.
func (NopHooks) OnMBDone(*View, MBRef) {}

// OnCBStart implements Scheduler.
func (NopHooks) OnCBStart(*View, CBRef) {}

// OnCBDone implements Scheduler.
func (NopHooks) OnCBDone(*View, CBRef) {}

// OnCBSplit implements Scheduler.
func (NopHooks) OnCBSplit(*View, CBRef, arch.Cycles) {}

// netState tracks one network instance's progress through its
// sub-layer scheduling table.
type netState struct {
	cn *compiler.CompiledNetwork

	mbIndeg []int // unresolved MB-chain predecessors per layer
	cbIndeg []int // unresolved CB-chain predecessors per layer

	mbIssued   []int // MBs handed to the HBM channel, per layer
	mbDone     []int // MBs fully fetched, per layer
	cbSelected []int // CBs claimed by the scheduler (>= cbDone), per layer
	cbDone     []int // CBs completed, per layer

	// remnant, when positive, is the remaining work of a halted CB: the
	// layer's next CB (iter == cbDone) resumes with remnant plus the PE
	// refill penalty instead of its full CBCycles.
	remnant []arch.Cycles

	// mbFront and cbFront are the net's candidate frontiers: the
	// ascending layer lists the candidate scans iterate instead of
	// visiting every layer (see frontier.go for the membership
	// conditions and the maintenance points).
	mbFront []int
	cbFront []int

	chains []sram.Chain // resident weight blocks per layer

	arrival    arch.Cycles
	arrived    bool
	hostInDone bool
	layersLeft int
	finished   bool
	finishAt   arch.Cycles
}

// stateArena carves every net's per-layer bookkeeping out of three
// flat, grow-only slabs — a struct-of-arrays layout. Each netState's
// slices are fixed-capacity sub-slices of the slabs, so a pooled
// engine re-running a same-shaped workload allocates nothing, and a
// snapshot of the whole machine is three bulk copies (plus per-net
// scalars) instead of a walk over thousands of tiny slices. The
// frontier sub-slices are carved with capacity equal to the net's
// layer count — a frontier can never hold more than one entry per
// layer, so frontAdd's append can never grow past the carve.
type stateArena struct {
	ints   []int         // 8 ints per layer: 6 counters + 2 frontier backings
	cycles []arch.Cycles // 1 per layer: remnant
	chains []sram.Chain  // 1 per layer
}

// reset clears and re-carves the arena for a workload with the given
// total layer count, reusing capacity when possible.
func (a *stateArena) reset(totalLayers int) {
	ni, nc := totalLayers*8, totalLayers
	if cap(a.ints) < ni {
		a.ints = make([]int, ni)
	}
	if cap(a.cycles) < nc {
		a.cycles = make([]arch.Cycles, nc)
	}
	if cap(a.chains) < nc {
		a.chains = make([]sram.Chain, nc)
	}
	a.ints = a.ints[:ni]
	a.cycles = a.cycles[:nc]
	a.chains = a.chains[:nc]
	for i := range a.ints {
		a.ints[i] = 0
	}
	for i := range a.cycles {
		a.cycles[i] = 0
	}
	for i := range a.chains {
		a.chains[i] = sram.Chain{}
	}
}

// carveInts takes the next n ints from the slab.
func carveInts(slab []int, off *int, n int) []int {
	s := slab[*off : *off+n : *off+n]
	*off += n
	return s
}

// initNetState wires one net's state into the arena slabs (already
// zeroed by reset) and seeds its dependency counts and MB frontier.
func initNetState(s *netState, cn *compiler.CompiledNetwork, a *stateArena, intOff, layerOff *int) {
	n := len(cn.Layers)
	*s = netState{
		cn:         cn,
		mbIndeg:    carveInts(a.ints, intOff, n),
		cbIndeg:    carveInts(a.ints, intOff, n),
		mbIssued:   carveInts(a.ints, intOff, n),
		mbDone:     carveInts(a.ints, intOff, n),
		cbSelected: carveInts(a.ints, intOff, n),
		cbDone:     carveInts(a.ints, intOff, n),
		mbFront:    carveInts(a.ints, intOff, n)[:0],
		cbFront:    carveInts(a.ints, intOff, n)[:0],
		remnant:    a.cycles[*layerOff : *layerOff+n : *layerOff+n],
		chains:     a.chains[*layerOff : *layerOff+n : *layerOff+n],
		layersLeft: n,
		arrived:    true, // the engine clears this for late arrivals
	}
	*layerOff += n
	for i, l := range cn.Layers {
		s.mbIndeg[i] = len(l.Deps)
		s.cbIndeg[i] = len(l.Deps)
		if len(l.Deps) == 0 {
			// Root layers additionally wait for the host input transfer
			// before computing (their weights may be fetched earlier).
			s.cbIndeg[i] = 1
		}
		if s.mbIndeg[i] == 0 && l.Iters > 0 {
			s.mbFront = append(s.mbFront, i)
		}
		// cbFront starts empty: no weights are resident before the
		// first MB completes, and root CB chains wait on host input.
	}
}

// newNetState builds a standalone net state with its own slabs —
// used by tests that assemble a View by hand; the engine carves all
// nets out of one shared arena instead.
func newNetState(cn *compiler.CompiledNetwork) *netState {
	a := &stateArena{}
	a.reset(len(cn.Layers))
	s := &netState{}
	var intOff, layerOff int
	initNetState(s, cn, a, &intOff, &layerOff)
	return s
}

// View is the scheduler's window onto simulator state. All methods are
// read-only except SelectCB and RequestSplit.
type View struct {
	cfg  arch.Config
	nets []*netState
	buf  *sram.Buffer

	// active holds the indices of arrived, unfinished networks in
	// ascending order — the only nets candidate scans must visit. With
	// open-loop serving streams of many thousands of requests, scanning
	// every instance per pick would make the engine quadratic in the
	// stream length; the active list keeps each scan proportional to
	// the in-flight population.
	active []int

	// outstanding is the incremental Σ(mbIssued - cbDone) over all
	// nets; mbRemaining counts memory blocks not yet issued anywhere.
	outstanding int
	mbRemaining int

	// availCB is the incrementally maintained AVL_CB total: resident,
	// unconsumed compute work on unlocked layers, updated at every
	// state transition that can move it (see frontier.go). Unarrived
	// nets contribute zero by construction (no MB has completed), so
	// the counter needs no arrival handling.
	availCB arch.Cycles

	// cbTotal and mbTotal cache MixTotals, which is static for a run
	// but may be queried per pick by schedulers.
	cbTotal, mbTotal arch.Cycles

	now arch.Cycles

	// led and om are the run's observability hooks (Options.Ledger
	// and Options.Metrics): nil unless the run opted in, and every
	// emission site guards on that, so the disabled path costs
	// nothing.
	led *obs.Ledger
	om  *simObs

	// HBM channel occupancy.
	memBusy bool
	curMB   MBRef
	memEnd  arch.Cycles

	// PE complex occupancy.
	peBusy    bool
	curCB     CBRef
	cbStart   arch.Cycles
	peEnd     arch.Cycles
	curCBWork arch.Cycles // total cycles assigned to the executing CB

	splitRequested bool
}

// Now returns the current simulation time in cycles.
func (v *View) Now() arch.Cycles { return v.now }

// Config returns the hardware configuration being simulated.
func (v *View) Config() arch.Config { return v.cfg }

// NumNets returns the number of co-located network instances.
func (v *View) NumNets() int { return len(v.nets) }

// ActiveNets returns the indices of arrived, unfinished networks in
// ascending order. The slice is the engine's own index — callers must
// treat it as read-only and must not retain it across events.
func (v *View) ActiveNets() []int { return v.active }

// NetArrived reports whether network instance net has arrived.
func (v *View) NetArrived(net int) bool { return v.nets[net].arrived }

// activeAdd inserts net into the sorted active list.
func (v *View) activeAdd(net int) {
	i := len(v.active)
	for i > 0 && v.active[i-1] > net {
		i--
	}
	v.active = append(v.active, 0)
	copy(v.active[i+1:], v.active[i:])
	v.active[i] = net
}

// activeRemove deletes net from the active list.
func (v *View) activeRemove(net int) {
	for i, n := range v.active {
		if n == net {
			v.active = append(v.active[:i], v.active[i+1:]...)
			return
		}
	}
}

// NumLayers returns the layer count of network instance net.
func (v *View) NumLayers(net int) int { return len(v.nets[net].cn.Layers) }

// Layer returns the scheduling-table row for (net, layer).
func (v *View) Layer(net, layer int) compiler.CompiledLayer {
	return v.nets[net].cn.Layers[layer]
}

// NetName returns the name of network instance net.
func (v *View) NetName(net int) string { return v.nets[net].cn.Name }

// NetFinished reports whether network instance net has completed.
func (v *View) NetFinished(net int) bool { return v.nets[net].finished }

// HostInputDone reports whether network instance net's input features
// have arrived over the host link; until then none of its compute
// blocks can start.
func (v *View) HostInputDone(net int) bool { return v.nets[net].hostInDone }

// MixTotals returns the workload's total compute-block and
// memory-block cycles — the static load balance schedulers may use to
// adapt policy (a memory-bound mix must never idle the HBM channel).
// The totals are computed once at Run start; this is a cached read.
func (v *View) MixTotals() (cb, mb arch.Cycles) {
	return v.cbTotal, v.mbTotal
}

// FreeBlocks returns the number of free weight-SRAM blocks.
func (v *View) FreeBlocks() int { return v.buf.FreeBlocks() }

// TotalBlocks returns the weight SRAM's capacity in blocks.
func (v *View) TotalBlocks() int { return v.buf.NumBlocks() }

// MBCycles returns the HBM occupancy of the referenced memory block.
func (v *View) MBCycles(r MBRef) arch.Cycles {
	return v.Layer(r.Net, r.Layer).MBCycles
}

// MBBlocks returns the SRAM blocks the referenced MB allocates.
func (v *View) MBBlocks(r MBRef) int {
	return v.Layer(r.Net, r.Layer).MBBlocks
}

// CBCycles returns the PE occupancy of the referenced compute block,
// accounting for a halted remainder plus refill penalty when the block
// is a resume.
func (v *View) CBCycles(r CBRef) arch.Cycles {
	s := v.nets[r.Net]
	if r.Iter == s.cbDone[r.Layer] && s.remnant[r.Layer] > 0 {
		return s.remnant[r.Layer] + v.cfg.FillLatency
	}
	return s.cn.Layers[r.Layer].CBCycles
}

// IsMBIssuable reports whether the referenced MB may be handed to the
// HBM channel right now: its network has arrived, its layer's MB
// chain is unlocked, it is the layer's next MB, and the SRAM has room
// for its blocks.
func (v *View) IsMBIssuable(r MBRef) bool {
	s := v.nets[r.Net]
	l := s.cn.Layers[r.Layer]
	return s.arrived &&
		s.mbIndeg[r.Layer] == 0 &&
		r.Iter == s.mbIssued[r.Layer] &&
		r.Iter < l.Iters &&
		v.buf.FreeBlocks() >= l.MBBlocks
}

// IsCBExecutable reports whether the referenced CB can start now: its
// layer's CB chain is unlocked, it is the layer's next CB, and its
// weights are resident.
func (v *View) IsCBExecutable(r CBRef) bool {
	s := v.nets[r.Net]
	return s.arrived &&
		s.cbIndeg[r.Layer] == 0 &&
		r.Iter == s.cbDone[r.Layer] &&
		r.Iter < s.cn.Layers[r.Layer].Iters &&
		s.mbDone[r.Layer] > r.Iter
}

// MBCandidates appends to out one entry per (net, layer) whose next
// memory block is unlocked (dependency-free), in (net, layer) order.
// Capacity is not checked — use IsMBIssuable or MBBlocks. The engine
// maintains the per-net frontiers incrementally, so the cost is the
// size of the result, not the layer count.
func (v *View) MBCandidates(out []MBRef) []MBRef {
	for _, ni := range v.active {
		s := v.nets[ni]
		for _, li := range s.mbFront {
			out = append(out, MBRef{Net: ni, Layer: li, Iter: s.mbIssued[li]})
		}
	}
	return out
}

// ReadyCBs appends to out one entry per (net, layer) whose next
// compute block is executable right now (weights resident, chain
// unlocked), in (net, layer) order.
func (v *View) ReadyCBs(out []CBRef) []CBRef {
	for _, ni := range v.active {
		s := v.nets[ni]
		for _, li := range s.cbFront {
			// cbFront membership already implies cbIndeg == 0 and
			// mbDone > cbDone; ready additionally means no claim is
			// pending ahead of execution.
			if s.cbSelected[li] == s.cbDone[li] {
				out = append(out, CBRef{Net: ni, Layer: li, Iter: s.cbDone[li]})
			}
		}
	}
	return out
}

// SelectableCBs appends to out the compute blocks a scheduler may
// claim ahead of execution (the paper's CB candidate queue for
// merging): CBs whose layer is unlocked and whose weights are already
// resident, beyond those already selected — the blocks that can
// overlap an in-flight fetch. Several consecutive iterations of one
// layer may appear.
func (v *View) SelectableCBs(out []CBRef) []CBRef {
	for _, ni := range v.active {
		s := v.nets[ni]
		for _, li := range s.cbFront {
			for it := s.cbSelected[li]; it < s.mbDone[li]; it++ {
				out = append(out, CBRef{Net: ni, Layer: li, Iter: it})
			}
		}
	}
	return out
}

// AvailableCBCycles returns the total PE work that is available to
// overlap right now: for every unlocked layer, the compute blocks
// whose weights are resident but not yet consumed — the paper's
// AVL_CB, computed exactly from machine state. The engine maintains
// the total incrementally, so this is an O(1) read.
func (v *View) AvailableCBCycles() arch.Cycles { return v.availCB }

// SelectCB claims a compute block ahead of execution (AI-MT's CB
// merging). Claims must be made in iteration order per layer.
func (v *View) SelectCB(r CBRef) error {
	s := v.nets[r.Net]
	if s.cbIndeg[r.Layer] != 0 {
		return fmt.Errorf("sim: SelectCB %+v: layer locked", r)
	}
	if r.Iter != s.cbSelected[r.Layer] {
		return fmt.Errorf("sim: SelectCB %+v: expected iter %d", r, s.cbSelected[r.Layer])
	}
	if r.Iter >= s.mbDone[r.Layer] {
		return fmt.Errorf("sim: SelectCB %+v: weights not resident", r)
	}
	s.cbSelected[r.Layer]++
	if v.om != nil {
		v.om.merges.Inc()
	}
	if v.led != nil {
		v.note(obs.KindCBMerge, r.Net, r.Layer, r.Iter, v.stallCause(0), v.CBCycles(r))
	}
	return nil
}

// ExecutingCB returns the compute block currently on the PE complex
// and its remaining cycles.
func (v *View) ExecutingCB() (CBRef, arch.Cycles, bool) {
	if !v.peBusy {
		return CBRef{}, 0, false
	}
	return v.curCB, v.peEnd - v.now, true
}

// FetchingMB returns the memory block currently occupying the HBM
// channel and its remaining cycles.
func (v *View) FetchingMB() (MBRef, arch.Cycles, bool) {
	if !v.memBusy {
		return MBRef{}, 0, false
	}
	return v.curMB, v.memEnd - v.now, true
}

// OutstandingMBs returns the number of memory blocks issued whose
// compute blocks have not completed — the quantity a double-buffering
// baseline bounds at two. Maintained incrementally by the engine.
func (v *View) OutstandingMBs() int { return v.outstanding }

// HasMBWork reports whether any memory block remains to be issued
// (whether or not currently unlocked or fitting in SRAM). Maintained
// incrementally by the engine.
func (v *View) HasMBWork() bool { return v.mbRemaining > 0 }

// RequestSplit halts the executing compute block (the paper's CB
// split): the executed portion is kept, the remainder returns to
// candidacy with a PE refill penalty, and any ahead-of-execution
// claims on that layer are released. It returns false when there is
// nothing to split (PE idle or the block just started). The engine
// invokes OnCBSplit on the scheduler after a successful split.
func (v *View) RequestSplit() bool {
	if !v.peBusy || v.now <= v.cbStart {
		return false
	}
	v.splitRequested = true
	return true
}
