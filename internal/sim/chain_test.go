package sim

import (
	"reflect"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
)

// TestChainAfterSequencesPhases pins the multi-phase contract: a
// chained instance is invisible until its predecessor finishes, then
// arrives exactly at the predecessor's finish cycle.
func TestChainAfterSequencesPhases(t *testing.T) {
	cfg := testConfig(t)
	mk := func(name string) *compiler.CompiledNetwork {
		return chainNet(name, cfg, layerSpec{mb: 10, cb: 20, iters: 1, blocks: 1})
	}
	nets := []*compiler.CompiledNetwork{mk("prefill"), mk("dec1"), mk("dec2")}
	res, err := Run(cfg, nets, serial{}, Options{
		ChainAfter:      []int{-1, 0, 1},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each phase runs serially: MB 10 then CB 20 per phase.
	wantArrive := []arch.Cycles{0, 30, 60}
	wantFinish := []arch.Cycles{30, 60, 90}
	for i := range nets {
		if res.NetArrive[i] != wantArrive[i] || res.NetFinish[i] != wantFinish[i] {
			t.Errorf("net %d: arrive/finish = %d/%d, want %d/%d",
				i, res.NetArrive[i], res.NetFinish[i], wantArrive[i], wantFinish[i])
		}
	}
	if res.Makespan != 90 {
		t.Errorf("makespan = %d, want 90", res.Makespan)
	}
}

// TestChainAfterRespectsStaticArrival covers the rare case of a
// chained phase whose static arrival lies beyond the predecessor's
// finish: the effective arrival is the later of the two.
func TestChainAfterRespectsStaticArrival(t *testing.T) {
	cfg := testConfig(t)
	mk := func(name string) *compiler.CompiledNetwork {
		return chainNet(name, cfg, layerSpec{mb: 10, cb: 20, iters: 1, blocks: 1})
	}
	nets := []*compiler.CompiledNetwork{mk("prefill"), mk("decode")}
	res, err := Run(cfg, nets, serial{}, Options{
		Arrivals:        []arch.Cycles{0, 100},
		ChainAfter:      []int{-1, 0},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetArrive[1] != 100 || res.NetFinish[1] != 130 {
		t.Errorf("deferred phase arrive/finish = %d/%d, want 100/130",
			res.NetArrive[1], res.NetFinish[1])
	}
}

// TestChainAfterValidation rejects self and forward references.
func TestChainAfterValidation(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 20, iters: 1, blocks: 1})
	nets := []*compiler.CompiledNetwork{cn, cn}
	for _, chain := range [][]int{{-1, 1}, {0, -1}, {-1, -2}} {
		if _, err := Run(cfg, nets, serial{}, Options{ChainAfter: chain}); err == nil {
			t.Errorf("ChainAfter %v: want error, got nil", chain)
		}
	}
}

// TestChainAfterAllUnchainedIsIdentity pins the differential anchor:
// an explicit all--1 chain slice is bit-identical to no chain slice.
func TestChainAfterAllUnchainedIsIdentity(t *testing.T) {
	cfg := testConfig(t)
	mk := func(name string) *compiler.CompiledNetwork {
		return chainNet(name, cfg,
			layerSpec{mb: 10, cb: 6, iters: 3, blocks: 1},
			layerSpec{mb: 4, cb: 12, iters: 2, blocks: 2})
	}
	nets := []*compiler.CompiledNetwork{mk("a"), mk("b"), mk("c")}
	arrivals := []arch.Cycles{0, 15, 40}
	base, err := Run(cfg, nets, serial{}, Options{Arrivals: arrivals})
	if err != nil {
		t.Fatal(err)
	}
	chained, err := Run(cfg, nets, serial{}, Options{Arrivals: arrivals, ChainAfter: []int{-1, -1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, chained) {
		t.Errorf("all--1 ChainAfter diverged:\nbase    %+v\nchained %+v", base, chained)
	}
}
