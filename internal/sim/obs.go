package sim

import (
	"strconv"

	"aimt/internal/arch"
	"aimt/internal/obs"
)

// simObs bundles the engine's pre-resolved metric handles. The engine
// resolves every series once at Run start, so hot-loop emission is a
// handful of atomic operations — no map lookups, no allocations. A
// nil *simObs (no Options.Metrics) disables metric emission entirely;
// the decision ledger is gated separately by View.led.
type simObs struct {
	// Lifetime counters. With several runs sharing one registry (a
	// parallel sweep, a multi-chip cluster), counters aggregate across
	// runs; gauges reflect the most recent writer.
	prefetches *obs.Counter // MBs issued to the HBM channel
	merges     *obs.Counter // CBs claimed ahead of execution
	evictions  *obs.Counter // early-eviction capacity reservations
	splits     *obs.Counter // halted compute blocks
	preempts   *obs.Counter // priority preemption split requests
	lookaheads *obs.Counter // committed speculative lookahead decisions
	mbDone     *obs.Counter
	cbDone     *obs.Counter
	netsDone   *obs.Counter
	memBusyC   *obs.Counter // busy cycles per engine
	peBusyC    *obs.Counter
	hostBusyC  *obs.Counter

	// Live machine state.
	now        *obs.Gauge
	activeNets *obs.Gauge
	sramUsed   *obs.Gauge
	sramTotal  *obs.Gauge
	sramPeak   *obs.Gauge
	availCB    *obs.Gauge
	hostQ      *obs.Gauge
	memUtil    *obs.Gauge
	peUtil     *obs.Gauge

	// Block-size distributions.
	mbHist *obs.Histogram
	cbHist *obs.Histogram

	// classGauge, when Options.NetClasses is set, maps each net index
	// to its class's in-flight gauge (nets of one class share a
	// handle). Nil entries mean the net is unlabeled.
	classGauge []*obs.Gauge
}

func newSimObs(reg *obs.Registry, classes []string, numNets int) *simObs {
	o := &simObs{
		prefetches: reg.Counter("aimt_sim_mb_prefetch_total"),
		merges:     reg.Counter("aimt_sim_cb_merge_total"),
		evictions:  reg.Counter("aimt_sim_evictions_total"),
		splits:     reg.Counter("aimt_sim_cb_splits_total"),
		preempts:   reg.Counter("aimt_sim_preempt_total"),
		lookaheads: reg.Counter("aimt_sim_lookahead_total"),
		mbDone:     reg.Counter("aimt_sim_mb_completed_total"),
		cbDone:     reg.Counter("aimt_sim_cb_completed_total"),
		netsDone:   reg.Counter("aimt_sim_nets_finished_total"),
		memBusyC:   reg.Counter("aimt_sim_mem_busy_cycles_total"),
		peBusyC:    reg.Counter("aimt_sim_pe_busy_cycles_total"),
		hostBusyC:  reg.Counter("aimt_sim_host_busy_cycles_total"),
		now:        reg.Gauge("aimt_sim_now_cycles"),
		activeNets: reg.Gauge("aimt_sim_active_nets"),
		sramUsed:   reg.Gauge("aimt_sim_sram_used_blocks"),
		sramTotal:  reg.Gauge("aimt_sim_sram_total_blocks"),
		sramPeak:   reg.Gauge("aimt_sim_sram_peak_blocks"),
		availCB:    reg.Gauge("aimt_sim_avail_cb_cycles"),
		hostQ:      reg.Gauge("aimt_sim_host_queue_depth"),
		memUtil:    reg.Gauge("aimt_sim_mem_util"),
		peUtil:     reg.Gauge("aimt_sim_pe_util"),
		mbHist:     reg.Histogram("aimt_sim_mb_cycles"),
		cbHist:     reg.Histogram("aimt_sim_cb_cycles"),
	}
	if len(classes) > 0 {
		byName := make(map[string]*obs.Gauge, 4)
		o.classGauge = make([]*obs.Gauge, numNets)
		for i := 0; i < numNets && i < len(classes); i++ {
			name := classes[i]
			g := byName[name]
			if g == nil {
				g = reg.Gauge("aimt_sim_inflight{class=" + strconv.Quote(name) + "}")
				byName[name] = g
			}
			o.classGauge[i] = g
		}
	}
	return o
}

// arrive notes a network entering the in-flight population.
func (o *simObs) arrive(net, active int) {
	o.activeNets.Set(float64(active))
	if net < len(o.classGauge) && o.classGauge[net] != nil {
		o.classGauge[net].Add(1)
	}
}

// finish notes a network completing.
func (o *simObs) finish(net, active int) {
	o.netsDone.Inc()
	o.activeNets.Set(float64(active))
	if net < len(o.classGauge) && o.classGauge[net] != nil {
		o.classGauge[net].Add(-1)
	}
}

// stallCause attributes the machine's binding resource at a decision:
// pe-bound when the weight SRAM cannot take need more blocks (the
// channel waits on compute to consume weights), hbm-bound when no
// resident unconsumed compute exists (the PE complex waits on
// memory), none otherwise. need <= 0 asks only whether SRAM is
// completely full.
func (v *View) stallCause(need int) string {
	if free := v.buf.FreeBlocks(); free == 0 || free < need {
		return obs.StallPE
	}
	if v.availCB == 0 {
		return obs.StallHBM
	}
	return obs.StallNone
}

// note appends one decision to the run's ledger. Callers must have
// checked v.led != nil; stall is a Stall* constant, usually from
// stallCause (splits pass StallPE directly — a split is by
// construction a capacity-recovery decision).
func (v *View) note(kind string, net, layer, iter int, stall string, detail arch.Cycles) {
	v.led.Record(obs.Decision{
		Cycle:     v.now,
		Kind:      kind,
		Net:       net,
		Layer:     layer,
		Iter:      iter,
		SRAMUsed:  v.buf.UsedBlocks(),
		SRAMTotal: v.buf.NumBlocks(),
		AvailCB:   v.availCB,
		Stall:     stall,
		Detail:    detail,
	})
}

// NoteEviction records an early-eviction capacity reservation in the
// run's decision ledger and metrics: the scheduler is holding SRAM
// capacity for the capacity-critical memory block r (fetch longer
// than compute, §IV-C) instead of letting smaller blocks steal the
// window. Schedulers call it once at each reservation's onset; it is
// a no-op when the run has no ledger or registry attached.
func (v *View) NoteEviction(r MBRef) {
	if v.om != nil {
		v.om.evictions.Inc()
	}
	if v.led == nil {
		return
	}
	l := v.nets[r.Net].cn.Layers[r.Layer]
	v.note(obs.KindEarlyEvict, r.Net, r.Layer, r.Iter, v.stallCause(l.MBBlocks), l.MBCycles)
}

// NotePreemption records a priority preemption in the run's decision
// ledger and metrics: the scheduler is requesting a split of the
// executing compute block r so a higher-priority request's ready work
// can take the PE complex (the serving control plane's cross-request
// preemption). Schedulers call it once per granted RequestSplit made
// for priority reasons; the split itself is still recorded separately
// by the engine (KindCBSplit) when applied. A no-op when the run has
// no ledger or registry attached.
func (v *View) NotePreemption(r CBRef) {
	if v.om != nil {
		v.om.preempts.Inc()
	}
	if v.led == nil {
		return
	}
	var rem arch.Cycles
	if cur, remaining, ok := v.ExecutingCB(); ok && cur == r {
		rem = remaining
	}
	v.note(obs.KindPreempt, r.Net, r.Layer, r.Iter, v.stallCause(0), rem)
}

// NoteLookahead records a committed speculative scheduling decision in
// the run's decision ledger and metrics: the scheduler forked the
// machine state at a contested choice, simulated the alternatives
// horizon cycles ahead, and committed memory block r because its
// branch kept the machine busier by delta cycles. Schedulers call it
// once per committed speculation, after unmuting observability (the
// speculative stepping itself runs under Quiesce and leaves no
// trace). A no-op when the run has no ledger or registry attached.
func (v *View) NoteLookahead(r MBRef, horizon, delta arch.Cycles) {
	if v.om != nil {
		v.om.lookaheads.Inc()
	}
	if v.led == nil {
		return
	}
	// Detail carries the predicted progress delta; the horizon is
	// encoded in the free-form field so both survive the ring.
	d := obs.Decision{
		Cycle:     v.now,
		Kind:      obs.KindLookahead,
		Net:       r.Net,
		Layer:     r.Layer,
		Iter:      r.Iter,
		SRAMUsed:  v.buf.UsedBlocks(),
		SRAMTotal: v.buf.NumBlocks(),
		AvailCB:   v.availCB,
		Stall:     v.stallCause(0),
		Detail:    delta,
		Horizon:   horizon,
	}
	v.led.Record(d)
}
