package sim

import "aimt/internal/arch"

// Candidate frontiers.
//
// Every scheduler decision needs the same three candidate sets —
// issuable memory blocks, ready compute blocks, selectable compute
// blocks — plus the AVL_CB total. Deriving them by scanning all layers
// of every active network makes each pick O(active nets × layers),
// and scheduleAll runs once per engine event, so long serving streams
// pay O(events × nets × layers) overall. But candidacy only changes
// at a handful of state transitions (MB issue, MB/CB completion, CB
// split, host-input completion), and each transition touches at most
// one layer plus its direct successors. The engine therefore keeps
// per-net frontiers — sorted layer lists holding exactly the layers
// the old scans would emit — and an incremental AVL_CB counter,
// turning the scans into iterations over the (small) ready sets and
// AvailableCBCycles into an O(1) read.
//
// Membership conditions (maintained, never rescanned):
//
//	mbFront: mbIndeg == 0 && mbIssued < Iters
//	cbFront: cbIndeg == 0 && mbDone  > cbDone
//
// ReadyCBs and SelectableCBs are both filters over cbFront: a cbFront
// layer is ready when nothing on it is claimed ahead of execution
// (cbSelected == cbDone), and contributes selectable iterations
// cbSelected..mbDone-1. Since cbDone <= cbSelected <= mbDone always
// holds, both sets are subsets of cbFront, so one frontier serves all
// three CB-side queries.
//
// The scan* functions below are the original full-scan
// implementations, kept as the reference the invariant checker (and
// the differential tests) compare the frontiers against at every
// engine event.

// frontAdd inserts layer li into the ascending frontier f. li must
// not already be present.
func frontAdd(f []int, li int) []int {
	i := len(f)
	f = append(f, 0)
	for i > 0 && f[i-1] > li {
		f[i] = f[i-1]
		i--
	}
	f[i] = li
	return f
}

// frontRemove deletes layer li from the frontier f.
func frontRemove(f []int, li int) []int {
	for i, l := range f {
		if l == li {
			return append(f[:i], f[i+1:]...)
		}
	}
	return f
}

// unlockCB accounts for layer li of net s whose CB chain just became
// dependency-free: any already-resident compute blocks join the CB
// frontier and the available-compute counter. (A layer's weights may
// be fetched while its CB chain is still locked — MB and CB chains
// unlock independently.)
func (v *View) unlockCB(s *netState, li int) {
	n := s.mbDone[li] - s.cbDone[li]
	if n <= 0 {
		return
	}
	s.cbFront = frontAdd(s.cbFront, li)
	l := s.cn.Layers[li]
	v.availCB += arch.Cycles(n) * l.CBCycles
	if s.remnant[li] > 0 {
		v.availCB -= l.CBCycles - (s.remnant[li] + v.cfg.FillLatency)
	}
}

// scanMBCandidates is the reference full-scan implementation of
// MBCandidates, used by the invariant checker to validate the
// incrementally maintained MB frontier.
func (v *View) scanMBCandidates(out []MBRef) []MBRef {
	for _, ni := range v.active {
		s := v.nets[ni]
		for li := range s.cn.Layers {
			if s.mbIndeg[li] == 0 && s.mbIssued[li] < s.cn.Layers[li].Iters {
				out = append(out, MBRef{Net: ni, Layer: li, Iter: s.mbIssued[li]})
			}
		}
	}
	return out
}

// scanReadyCBs is the reference full-scan implementation of ReadyCBs.
func (v *View) scanReadyCBs(out []CBRef) []CBRef {
	for _, ni := range v.active {
		s := v.nets[ni]
		for li := range s.cn.Layers {
			r := CBRef{Net: ni, Layer: li, Iter: s.cbDone[li]}
			if s.cbSelected[li] == s.cbDone[li] && v.IsCBExecutable(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// scanSelectableCBs is the reference full-scan implementation of
// SelectableCBs.
func (v *View) scanSelectableCBs(out []CBRef) []CBRef {
	for _, ni := range v.active {
		s := v.nets[ni]
		for li := range s.cn.Layers {
			if s.cbIndeg[li] != 0 {
				continue
			}
			for it := s.cbSelected[li]; it < s.mbDone[li]; it++ {
				out = append(out, CBRef{Net: ni, Layer: li, Iter: it})
			}
		}
	}
	return out
}

// scanAvailableCBCycles is the reference full-scan implementation of
// AvailableCBCycles.
func (v *View) scanAvailableCBCycles() arch.Cycles {
	var sum arch.Cycles
	for _, ni := range v.active {
		s := v.nets[ni]
		for li, l := range s.cn.Layers {
			if s.cbIndeg[li] != 0 {
				continue
			}
			n := s.mbDone[li] - s.cbDone[li]
			if n <= 0 {
				continue
			}
			sum += arch.Cycles(n) * l.CBCycles
			if s.remnant[li] > 0 {
				// The layer's next CB is a halted remainder, shorter
				// than a full block.
				sum -= l.CBCycles - (s.remnant[li] + v.cfg.FillLatency)
			}
		}
	}
	return sum
}
