package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/obs"
	"aimt/internal/sram"
)

// Tracer receives one call per completed (or halted) occupancy
// interval on each engine. Engines are "mem" (HBM channel), "pe"
// (PE-array complex) and "host" (PCIe link).
type Tracer interface {
	Event(engine, name string, net, layer, iter int, start, end arch.Cycles)
}

// Options tune a simulation run.
type Options struct {
	// Tracer, when non-nil, receives every occupancy interval.
	Tracer Tracer

	// MaxCycles aborts runs that exceed this simulated time; zero means
	// the default of 2e11 cycles.
	MaxCycles arch.Cycles

	// SchedulerLatency models a software implementation of the
	// scheduler (paper §IV-D): every memory-block issue pays this many
	// cycles of decision latency before the fetch begins, occupying
	// the channel's issue slot but not counting as transfer time. Zero
	// models the paper's hardware scheduler.
	SchedulerLatency arch.Cycles

	// Arrivals gives each network instance's arrival cycle, modelling
	// the cloud serving scenario where requests stream in over time.
	// A network is invisible to the scheduler — no candidates, no host
	// input transfer — before its arrival. Nil or short slices mean
	// arrival at cycle zero.
	Arrivals []arch.Cycles

	// ChainAfter chains network instances into multi-phase requests:
	// ChainAfter[i] = p (with 0 <= p < i) keeps instance i invisible
	// until instance p finishes, whereupon i arrives at
	// max(Arrivals[i], p's finish cycle). This is how a serving stream
	// expresses autoregressive decode: each decode iteration is an
	// instance chained after its predecessor, and Result.NetArrive
	// reports the effective arrival so per-phase latency is measured
	// from readiness, not enqueue. -1 (and entries beyond the slice)
	// means unchained; nil preserves the single-phase behaviour
	// bit-for-bit.
	ChainAfter []int

	// Metrics, when non-nil, receives live engine telemetry: block
	// and split counters, per-engine busy-cycle totals, SRAM
	// occupancy, the AVL_CB level, in-flight population and
	// utilization gauges (aimt_sim_* series). Handles are resolved
	// once at Run start, so emission is a few atomic operations per
	// event; nil keeps the hot loop allocation-free and atomic-free.
	// Runs sharing a registry aggregate their counters; gauges show
	// the most recent writer.
	Metrics *obs.Registry

	// Ledger, when non-nil, records every scheduler decision — MB
	// prefetches, ahead-of-execution CB claims (merges), early-
	// eviction capacity reservations and CB splits — with its cycle,
	// block, SRAM occupancy and stall attribution.
	Ledger *obs.Ledger

	// NetClasses, when set alongside Metrics, labels each network
	// instance with its request class; the engine then exports a live
	// per-class in-flight gauge (aimt_sim_inflight{class="..."}).
	// Shorter slices leave the remaining nets unlabeled. The serving
	// layer fills this from its stream's class table.
	NetClasses []string

	// CheckInvariants validates the machine-model invariants at every
	// engine event against an independent shadow of the machine state:
	// the HBM channel and PE complex each execute one block at a time,
	// SRAM occupancy never exceeds capacity (and the allocator's chains
	// stay consistent), no compute block starts before its memory
	// blocks and predecessor layers complete, event time is monotonic,
	// split/resume conserves compute-block work, and the incrementally
	// maintained candidate frontiers match a brute-force rescan of
	// every layer. Violations abort the run with an error wrapping
	// ErrInvariant. Slow; intended for tests and the sweep engine's
	// verification mode.
	CheckInvariants bool
}

// Result summarizes one simulation run.
type Result struct {
	// Scheduler is the policy name.
	Scheduler string

	// Makespan is the cycle at which the last network (including its
	// host output transfer) completed.
	Makespan arch.Cycles

	// MemBusy, PEBusy and HostBusy are total occupied cycles per engine.
	MemBusy, PEBusy, HostBusy arch.Cycles

	// MBCount and CBCount are completed block counts; Splits counts
	// compute-block halts; Resumes counts restarted remnants.
	MBCount, CBCount, Splits int

	// NetNames, NetArrive and NetFinish give, per network instance,
	// its name, arrival cycle and completion cycle; latency is
	// NetFinish[i] - NetArrive[i].
	NetNames  []string
	NetArrive []arch.Cycles
	NetFinish []arch.Cycles

	// SRAMPeakBlocks is the high-water mark of weight-SRAM occupancy.
	SRAMPeakBlocks int

	// BlockBytes converts SRAMPeakBlocks to bytes.
	BlockBytes arch.Bytes
}

// MemUtilization returns HBM-channel occupancy over the makespan.
func (r *Result) MemUtilization() float64 { return ratio(r.MemBusy, r.Makespan) }

// PEUtilization returns PE-complex occupancy over the makespan.
func (r *Result) PEUtilization() float64 { return ratio(r.PEBusy, r.Makespan) }

// SRAMPeakBytes returns the weight-SRAM high-water mark in bytes.
func (r *Result) SRAMPeakBytes() arch.Bytes {
	return arch.Bytes(r.SRAMPeakBlocks) * r.BlockBytes
}

func ratio(a, b arch.Cycles) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Run errors.
var (
	ErrDeadlock  = errors.New("sim: deadlock — no engine busy and work remains")
	ErrTimeLimit = errors.New("sim: exceeded MaxCycles")
)

type hostXfer struct {
	net    int
	output bool
	cycles arch.Cycles
}

// Engine is one simulation in progress: the machine state (View), the
// scheduler driving it, and the event loop. The free function Run
// drives a pooled engine start-to-finish; NewEngine hands the caller
// an engine it can step in bounded increments (StepUntil) and fork
// with O(state) Snapshot/Restore — the substrate speculative
// schedulers and predictive dispatchers forward-simulate on.
type Engine struct {
	v    *View
	view View
	sch  Scheduler
	opts Options

	// arena backs every net's per-layer bookkeeping (see stateArena);
	// states and netPtrs are the grow-only netState storage the View's
	// nets slice points into.
	arena   stateArena
	states  []netState
	netPtrs []*netState

	// hostQ is a FIFO popped at hostHead: popping by reslicing the
	// front would pin the backing array (and every completed transfer
	// record) for the whole run, which matters on long serving
	// streams. The array is recycled whenever the queue drains, so
	// its footprint is bounded by the maximum queue depth.
	hostQ    []hostXfer
	hostHead int
	hostBusy bool
	hostEnd  arch.Cycles
	curHost  hostXfer

	// arrivalOrder lists the indices of late-arriving nets sorted by
	// (arrival, index); nextArrival points at the first not yet
	// arrived. The loop consults only this pointer instead of scanning
	// every instance per event — essential for long serving streams.
	arrivalOrder []int
	nextArrival  int

	// chainSucc, when non-nil, maps each net to the chained phases that
	// arrive when it finishes (Options.ChainAfter inverted). chainBuf
	// is its pooled backing.
	chainSucc [][]int
	chainBuf  [][]int

	// chk, when non-nil, validates machine-model invariants at every
	// event (Options.CheckInvariants). chkState is its pooled storage.
	chk      *checker
	chkState checker

	// mbScratch and cbScratch are reused by the deadlock-diagnosis
	// path so it allocates nothing.
	mbScratch []MBRef
	cbScratch []CBRef

	// runID increments at every init; snapshots record it so a restore
	// into a re-initialized (or pooled-and-reused) engine is rejected.
	runID uint64

	res Result
}

// EngineAware is implemented by schedulers that forward-simulate: the
// engine hands itself to the scheduler once at run start, before any
// decision is requested, so the scheduler can Snapshot/StepUntil/
// Restore the very machine it is scheduling.
type EngineAware interface {
	AttachEngine(*Engine)
}

// StatefulScheduler is implemented by schedulers whose decision state
// (queues, rotation cursors, token balances) must travel with engine
// snapshots so that a restore replays bit-identically. SaveState
// returns an opaque copy of the current state, reusing prev (a value
// previously returned by SaveState on the same scheduler, or nil)
// when possible; RestoreState reinstates a saved copy.
type StatefulScheduler interface {
	SaveState(prev any) any
	RestoreState(st any)
}

// enginePool recycles engines (arena slabs, frontier backings, SRAM
// tables, scratch buffers) across Run calls, which is what makes a
// steady-state serve stream allocation-free per run.
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// Run simulates the co-located execution of the given compiled
// networks under the scheduler. All networks arrive at cycle zero in
// slice order. cfg must have been validated.
func Run(cfg arch.Config, nets []*compiler.CompiledNetwork, sch Scheduler, opts Options) (*Result, error) {
	e := enginePool.Get().(*Engine)
	res, err := func() (*Result, error) {
		if err := e.init(cfg, nets, sch, opts); err != nil {
			return nil, err
		}
		if err := e.complete(); err != nil {
			return nil, err
		}
		return e.cloneResult(), nil
	}()
	e.release()
	enginePool.Put(e)
	return res, err
}

// NewEngine returns an engine primed over the given workload, ready to
// be stepped (StepUntil), snapshotted and run. Unlike Run, the caller
// owns the engine; nothing is pooled.
func NewEngine(cfg arch.Config, nets []*compiler.CompiledNetwork, sch Scheduler, opts Options) (*Engine, error) {
	e := new(Engine)
	if err := e.init(cfg, nets, sch, opts); err != nil {
		return nil, err
	}
	return e, nil
}

// init validates the workload and (re)builds the engine's state for a
// fresh run, reusing every backing array from the previous run.
func (e *Engine) init(cfg arch.Config, nets []*compiler.CompiledNetwork, sch Scheduler, opts Options) error {
	if len(nets) == 0 {
		return errors.New("sim: no networks")
	}
	totalLayers := 0
	for _, cn := range nets {
		if err := cn.Validate(); err != nil {
			return err
		}
		for _, l := range cn.Layers {
			if l.MBBlocks > cfg.WeightBlocks() {
				return fmt.Errorf("sim: %s/%s needs %d SRAM blocks but the weight buffer holds %d",
					cn.Name, l.Name, l.MBBlocks, cfg.WeightBlocks())
			}
		}
		totalLayers += len(cn.Layers)
	}
	if opts.MaxCycles <= 0 {
		opts.MaxCycles = 200_000_000_000
	}
	e.runID++

	// Reset the view in place, keeping its recycled slices.
	e.view = View{cfg: cfg, buf: e.view.buf, nets: e.netPtrs[:0], active: e.view.active[:0]}
	v := &e.view
	e.v = v
	if v.buf == nil {
		v.buf = sram.NewBuffer(cfg.WeightBlocks())
	} else {
		v.buf.Reset(cfg.WeightBlocks())
	}

	e.arena.reset(totalLayers)
	if cap(e.states) < len(nets) {
		e.states = make([]netState, len(nets))
	}
	e.states = e.states[:len(nets)]
	var intOff, layerOff int
	for i, cn := range nets {
		initNetState(&e.states[i], cn, &e.arena, &intOff, &layerOff)
		v.nets = append(v.nets, &e.states[i])
	}
	e.netPtrs = v.nets

	e.sch = sch
	e.opts = opts
	e.hostQ = e.hostQ[:0]
	e.hostHead = 0
	e.hostBusy = false
	e.hostEnd = 0
	e.curHost = hostXfer{}
	e.arrivalOrder = e.arrivalOrder[:0]
	e.nextArrival = 0
	e.chainSucc = nil
	e.chk = nil
	if opts.CheckInvariants {
		e.chk = &e.chkState
		e.chk.reset(v)
	}
	v.led = opts.Ledger
	if opts.Metrics != nil {
		v.om = newSimObs(opts.Metrics, opts.NetClasses, len(nets))
		v.om.sramTotal.Set(float64(cfg.WeightBlocks()))
	}

	e.res = Result{
		Scheduler:  sch.Name(),
		BlockBytes: cfg.BlockBytes(),
		NetNames:   resizeStrings(e.res.NetNames, len(nets)),
		NetArrive:  resizeCycles(e.res.NetArrive, len(nets)),
		NetFinish:  resizeCycles(e.res.NetFinish, len(nets)),
	}
	for i, cn := range nets {
		e.res.NetNames[i] = cn.Name
		if i < len(opts.Arrivals) && opts.Arrivals[i] > 0 {
			v.nets[i].arrived = false
			v.nets[i].arrival = opts.Arrivals[i]
			e.res.NetArrive[i] = opts.Arrivals[i]
		}
	}
	for i := 0; i < len(nets) && i < len(opts.ChainAfter); i++ {
		p := opts.ChainAfter[i]
		if p == -1 {
			continue
		}
		if p < 0 || p >= i {
			return fmt.Errorf("sim: ChainAfter[%d] = %d must name an earlier instance or -1", i, p)
		}
		if e.chainSucc == nil {
			if cap(e.chainBuf) < len(nets) {
				e.chainBuf = make([][]int, len(nets))
			}
			e.chainSucc = e.chainBuf[:len(nets)]
			for j := range e.chainSucc {
				e.chainSucc[j] = e.chainSucc[j][:0]
			}
		}
		e.chainSucc[p] = append(e.chainSucc[p], i)
		v.nets[i].arrived = false // invisible until the predecessor finishes
	}

	for _, cn := range nets {
		for _, l := range cn.Layers {
			v.mbRemaining += l.Iters
		}
		st := cn.Stats()
		v.cbTotal += st.CBCycles
		v.mbTotal += st.MBCycles
	}

	if ea, ok := sch.(EngineAware); ok {
		ea.AttachEngine(e)
	}

	// Networks arriving at cycle zero start their host input transfer
	// immediately; late arrivals do so when they arrive. Chained phases
	// join neither group: their predecessor's completion arrives them.
	for i := range nets {
		if e.chainSucc != nil && i < len(opts.ChainAfter) && opts.ChainAfter[i] >= 0 {
			continue
		}
		if v.nets[i].arrived {
			v.activeAdd(i)
			if err := e.arrive(i); err != nil {
				return err
			}
		} else {
			e.arrivalOrder = append(e.arrivalOrder, i)
		}
	}
	sort.SliceStable(e.arrivalOrder, func(a, b int) bool {
		return v.nets[e.arrivalOrder[a]].arrival < v.nets[e.arrivalOrder[b]].arrival
	})
	return nil
}

// release drops every reference a pooled engine would otherwise pin
// (compiled networks, the scheduler, observability sinks) while
// keeping the backing arrays for reuse.
func (e *Engine) release() {
	for i := range e.states {
		e.states[i].cn = nil
	}
	for i := range e.res.NetNames {
		e.res.NetNames[i] = ""
	}
	e.sch = nil
	e.opts = Options{}
	e.view.led = nil
	e.view.om = nil
	e.chainSucc = nil
	e.chk = nil
	e.chkState.v = nil
}

// cloneResult copies the engine's result with fresh slices, so the
// caller's Result survives the engine's reuse.
func (e *Engine) cloneResult() *Result {
	out := e.res
	out.NetNames = append([]string(nil), e.res.NetNames...)
	out.NetArrive = append([]arch.Cycles(nil), e.res.NetArrive...)
	out.NetFinish = append([]arch.Cycles(nil), e.res.NetFinish...)
	return &out
}

func resizeStrings(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = ""
	}
	return s
}

func resizeCycles(s []arch.Cycles, n int) []arch.Cycles {
	if cap(s) < n {
		return make([]arch.Cycles, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// complete runs the event loop to completion and finalizes the result.
func (e *Engine) complete() error {
	if _, err := e.loop(-1); err != nil {
		return err
	}
	e.res.Makespan = e.v.now
	if e.chk != nil {
		if err := e.chk.finish(&e.res); err != nil {
			return err
		}
	}
	return nil
}

// Run drives the engine from its current state to completion and
// returns the result. It may be called after NewEngine, after a
// Restore, or after StepUntil ran the run partway.
func (e *Engine) Run() (*Result, error) {
	if err := e.complete(); err != nil {
		return nil, err
	}
	return e.cloneResult(), nil
}

// StepUntil advances the simulation, processing every event up to and
// including cycle limit. It returns done=true when the workload
// completed at or before the limit; done=false means the next event
// lies beyond the limit and the engine stopped without advancing to
// it. A deadlock (no engine busy, work remaining) is always an error.
func (e *Engine) StepUntil(limit arch.Cycles) (done bool, err error) {
	if limit < 0 {
		limit = 0
	}
	return e.loop(limit)
}

// Now returns the engine's current simulated cycle.
func (e *Engine) Now() arch.Cycles { return e.v.now }

// Config returns the hardware configuration being simulated.
func (e *Engine) Config() arch.Config { return e.v.cfg }

// Progress returns the total engine-busy cycles accumulated so far
// (HBM channel plus PE complex) — the objective a speculative
// scheduler compares across forked branches: whichever choice kept
// the machine busier within the horizon wins.
func (e *Engine) Progress() arch.Cycles {
	return e.res.MemBusy + e.res.PEBusy
}

// NetFinishAt reports whether network instance i has finished and, if
// so, at which cycle — the predicted completion a forward-simulating
// dispatcher reads off after stepping a candidate schedule.
func (e *Engine) NetFinishAt(i int) (arch.Cycles, bool) {
	s := e.v.nets[i]
	return s.finishAt, s.finished
}

// Quiesce mutes the engine's externally visible emission — metrics,
// ledger and tracer — until the returned function is called.
// Speculative stepping wraps itself in Quiesce so forked branches
// leave no trace in the run's observability; the machine state the
// speculation mutates is unwound separately by Snapshot/Restore.
func (e *Engine) Quiesce() (restore func()) {
	om, led, tr := e.v.om, e.v.led, e.opts.Tracer
	e.v.om, e.v.led, e.opts.Tracer = nil, nil, nil
	return func() {
		e.v.om, e.v.led, e.opts.Tracer = om, led, tr
	}
}

// loop is the event loop: schedule onto idle engines, advance to the
// earliest completion or arrival, apply completions. limit >= 0 stops
// before advancing past it (see StepUntil); limit < 0 runs to
// completion.
func (e *Engine) loop(limit arch.Cycles) (done bool, err error) {
	v := e.v
	for {
		if err := e.scheduleAll(); err != nil {
			return false, err
		}

		// Advance to the earliest completion among busy engines, or to
		// the next pending arrival.
		var next arch.Cycles = -1
		consider := func(busy bool, end arch.Cycles) {
			if busy && (next < 0 || end < next) {
				next = end
			}
		}
		consider(v.memBusy, v.memEnd)
		consider(v.peBusy, v.peEnd)
		consider(e.hostBusy, e.hostEnd)
		if e.nextArrival < len(e.arrivalOrder) {
			consider(true, v.nets[e.arrivalOrder[e.nextArrival]].arrival)
		}

		if next < 0 {
			if e.allDone() {
				return true, nil
			}
			return false, fmt.Errorf("%w at cycle %d: %s", ErrDeadlock, v.now, e.stuckDiagnosis())
		}
		if limit >= 0 && next > limit {
			return false, nil
		}
		if next > e.opts.MaxCycles {
			return false, fmt.Errorf("%w (%d)", ErrTimeLimit, e.opts.MaxCycles)
		}
		if e.chk != nil {
			if err := e.chk.advance(next); err != nil {
				return false, err
			}
		}
		v.now = next
		if v.om != nil {
			v.om.now.Set(float64(next))
			v.om.hostQ.Set(float64(len(e.hostQ) - e.hostHead))
		}

		if v.memBusy && v.memEnd == v.now {
			if err := e.completeMB(); err != nil {
				return false, err
			}
		}
		if v.peBusy && v.peEnd == v.now {
			if err := e.completeCB(); err != nil {
				return false, err
			}
		}
		if e.hostBusy && e.hostEnd == v.now {
			if err := e.completeHost(); err != nil {
				return false, err
			}
		}
		for e.nextArrival < len(e.arrivalOrder) {
			i := e.arrivalOrder[e.nextArrival]
			if v.nets[i].arrival > v.now {
				break
			}
			e.nextArrival++
			v.nets[i].arrived = true
			v.activeAdd(i)
			if err := e.arrive(i); err != nil {
				return false, err
			}
		}
	}
}

// arrive starts network net's host input transfer (or resolves it
// immediately when the link is unconfigured or the input empty).
func (e *Engine) arrive(net int) error {
	if e.v.om != nil {
		e.v.om.arrive(net, len(e.v.active))
	}
	c := e.v.cfg.HostCycles(e.v.nets[net].cn.HostInBytes)
	if c == 0 {
		return e.finishHostIn(net)
	}
	e.hostQ = append(e.hostQ, hostXfer{net: net, cycles: c})
	return nil
}

// scheduleAll issues work onto idle engines until no further progress
// is possible at the current cycle.
func (e *Engine) scheduleAll() error {
	v := e.v
	for progress := true; progress; {
		progress = false

		if !v.memBusy && v.HasMBWork() {
			r, ok := e.sch.PickMB(v)
			if v.splitRequested {
				v.splitRequested = false
				if err := e.applySplit(); err != nil {
					return err
				}
				progress = true
			}
			if ok {
				if err := e.issueMB(r); err != nil {
					return err
				}
				progress = true
			}
		}

		if !v.peBusy {
			if r, ok := e.sch.PickCB(v); ok && v.IsCBExecutable(r) {
				if err := e.startCB(r); err != nil {
					return err
				}
				progress = true
			}
		}

		if !e.hostBusy && e.hostHead < len(e.hostQ) {
			e.curHost = e.hostQ[e.hostHead]
			e.hostHead++
			if e.hostHead == len(e.hostQ) {
				e.hostQ = e.hostQ[:0]
				e.hostHead = 0
			}
			e.hostBusy = true
			e.hostEnd = v.now + e.curHost.cycles
			progress = true
		}
	}
	return nil
}

func (e *Engine) issueMB(r MBRef) error {
	v := e.v
	if !v.IsMBIssuable(r) {
		return fmt.Errorf("sim: scheduler %s returned non-issuable MB %+v", e.sch.Name(), r)
	}
	s := v.nets[r.Net]
	l := s.cn.Layers[r.Layer]
	if err := v.buf.Allocate(&s.chains[r.Layer], l.MBBlocks); err != nil {
		return fmt.Errorf("sim: issue MB %+v: %w", r, err)
	}
	if used := v.buf.UsedBlocks(); used > e.res.SRAMPeakBlocks {
		e.res.SRAMPeakBlocks = used
	}
	s.mbIssued[r.Layer]++
	if s.mbIssued[r.Layer] == l.Iters {
		s.mbFront = frontRemove(s.mbFront, r.Layer)
	}
	v.outstanding++
	v.mbRemaining--
	v.memBusy = true
	v.curMB = r
	v.memEnd = v.now + e.opts.SchedulerLatency + l.MBCycles
	if v.om != nil {
		v.om.prefetches.Inc()
		v.om.sramUsed.Set(float64(v.buf.UsedBlocks()))
		v.om.sramPeak.Set(float64(e.res.SRAMPeakBlocks))
	}
	if v.led != nil {
		v.note(obs.KindMBPrefetch, r.Net, r.Layer, r.Iter, v.stallCause(0), l.MBCycles)
	}
	if e.chk != nil {
		if err := e.chk.mbIssue(r, l.MBBlocks); err != nil {
			return err
		}
		if err := e.chk.frontiers(); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) completeMB() error {
	v := e.v
	r := v.curMB
	s := v.nets[r.Net]
	l := s.cn.Layers[r.Layer]
	start := v.memEnd - l.MBCycles
	v.memBusy = false
	e.res.MemBusy += l.MBCycles
	e.res.MBCount++
	e.trace("mem", "MB:", l.Name, r.Net, r.Layer, r.Iter, start, v.now)
	if v.om != nil {
		v.om.mbDone.Inc()
		v.om.memBusyC.Add(int64(l.MBCycles))
		v.om.memUtil.Set(ratio(e.res.MemBusy, v.now))
		v.om.mbHist.Observe(l.MBCycles)
	}
	if e.chk != nil {
		if err := e.chk.mbDone(r, start, v.now); err != nil {
			return err
		}
	}

	s.mbDone[r.Layer]++
	if s.cbIndeg[r.Layer] == 0 {
		// One more resident, unconsumed compute block on an unlocked
		// layer: it joins the CB frontier (if the layer was drained)
		// and the available-compute total.
		if s.mbDone[r.Layer]-s.cbDone[r.Layer] == 1 {
			s.cbFront = frontAdd(s.cbFront, r.Layer)
		}
		v.availCB += l.CBCycles
	}
	if s.mbDone[r.Layer] == l.Iters {
		for _, p := range l.Posts {
			s.mbIndeg[p]--
			if s.mbIndeg[p] == 0 && s.mbIssued[p] < s.cn.Layers[p].Iters {
				s.mbFront = frontAdd(s.mbFront, p)
			}
		}
	}
	if e.chk != nil {
		if err := e.chk.frontiers(); err != nil {
			return err
		}
	}
	if v.om != nil {
		v.om.availCB.Set(float64(v.availCB))
	}
	e.sch.OnMBDone(v, r)
	return nil
}

func (e *Engine) startCB(r CBRef) error {
	v := e.v
	s := v.nets[r.Net]
	if s.cbSelected[r.Layer] == s.cbDone[r.Layer] {
		s.cbSelected[r.Layer]++ // implicit claim for policies without merging
	}
	work := v.CBCycles(r)
	v.peBusy = true
	v.curCB = r
	v.cbStart = v.now
	v.curCBWork = work
	v.peEnd = v.now + work
	if e.chk != nil {
		if err := e.chk.cbStart(r, work); err != nil {
			return err
		}
		if err := e.chk.frontiers(); err != nil {
			return err
		}
	}
	e.sch.OnCBStart(v, r)
	return nil
}

func (e *Engine) completeCB() error {
	v := e.v
	r := v.curCB
	s := v.nets[r.Net]
	l := s.cn.Layers[r.Layer]
	v.peBusy = false
	e.res.PEBusy += v.curCBWork
	e.res.CBCount++
	e.trace("pe", "CB:", l.Name, r.Net, r.Layer, r.Iter, v.cbStart, v.now)

	if err := v.buf.Consume(&s.chains[r.Layer], l.MBBlocks); err != nil {
		return fmt.Errorf("sim: complete CB %+v: %w", r, err)
	}
	if v.om != nil {
		v.om.cbDone.Inc()
		v.om.peBusyC.Add(int64(v.curCBWork))
		v.om.peUtil.Set(ratio(e.res.PEBusy, v.now))
		v.om.cbHist.Observe(v.curCBWork)
		v.om.sramUsed.Set(float64(v.buf.UsedBlocks()))
	}
	if e.chk != nil {
		if err := e.chk.cbDone(r, v.cbStart, v.now, l.MBBlocks); err != nil {
			return err
		}
	}
	// The consumed block leaves the available-compute total: a halted
	// remainder counted remnant + refill, a fresh block its full
	// cycles. (An executing block stays counted until it completes —
	// the reference scan counts mbDone - cbDone.)
	if rem := s.remnant[r.Layer]; rem > 0 {
		v.availCB -= rem + v.cfg.FillLatency
	} else {
		v.availCB -= l.CBCycles
	}
	s.remnant[r.Layer] = 0
	s.cbDone[r.Layer]++
	if s.mbDone[r.Layer] == s.cbDone[r.Layer] {
		s.cbFront = frontRemove(s.cbFront, r.Layer)
	}
	v.outstanding--
	if s.cbDone[r.Layer] == l.Iters {
		for _, p := range l.Posts {
			s.cbIndeg[p]--
			if s.cbIndeg[p] == 0 {
				v.unlockCB(s, p)
			}
		}
		s.layersLeft--
		if s.layersLeft == 0 {
			if err := e.finishCompute(r.Net); err != nil {
				return err
			}
		}
	}
	if e.chk != nil {
		if err := e.chk.frontiers(); err != nil {
			return err
		}
	}
	if v.om != nil {
		v.om.availCB.Set(float64(v.availCB))
	}
	e.sch.OnCBDone(v, r)
	return nil
}

// applySplit halts the executing compute block at the current cycle.
func (e *Engine) applySplit() error {
	v := e.v
	if !v.peBusy || v.now <= v.cbStart || v.peEnd <= v.now {
		return nil // nothing meaningful to split; ignore the request
	}
	r := v.curCB
	s := v.nets[r.Net]
	l := s.cn.Layers[r.Layer]
	executed := v.now - v.cbStart
	remaining := v.peEnd - v.now

	v.peBusy = false
	e.res.PEBusy += executed
	e.res.Splits++
	e.trace("pe", "CB(split):", l.Name, r.Net, r.Layer, r.Iter, v.cbStart, v.now)

	if e.chk != nil {
		if err := e.chk.cbSplit(r, v.cbStart, v.now, remaining); err != nil {
			return err
		}
	}
	// The halted block's availability shrinks from what it counted at
	// start (a full block, or a previous remnant + refill) to the new
	// remainder + refill. Frontier membership is unchanged: the block
	// returns to candidacy on a still-unlocked layer.
	old := l.CBCycles
	if s.remnant[r.Layer] > 0 {
		old = s.remnant[r.Layer] + v.cfg.FillLatency
	}
	v.availCB += remaining + v.cfg.FillLatency - old
	s.remnant[r.Layer] = remaining
	s.cbSelected[r.Layer] = s.cbDone[r.Layer]
	if e.chk != nil {
		if err := e.chk.frontiers(); err != nil {
			return err
		}
	}
	if v.om != nil {
		v.om.splits.Inc()
		v.om.peBusyC.Add(int64(executed))
		v.om.availCB.Set(float64(v.availCB))
	}
	if v.led != nil {
		// A split is by construction a capacity-recovery decision:
		// the scheduler is clearing the PE so small compute blocks
		// can free SRAM for a blocked capacity-critical fetch.
		v.note(obs.KindCBSplit, r.Net, r.Layer, r.Iter, obs.StallPE, remaining)
	}
	e.sch.OnCBSplit(v, r, remaining)
	return nil
}

func (e *Engine) finishCompute(net int) error {
	cn := e.v.nets[net].cn
	c := e.v.cfg.HostCycles(cn.HostOutBytes)
	if c == 0 {
		return e.finishNet(net)
	}
	e.hostQ = append(e.hostQ, hostXfer{net: net, output: true, cycles: c})
	return nil
}

func (e *Engine) completeHost() error {
	v := e.v
	x := e.curHost
	e.hostBusy = false
	e.res.HostBusy += x.cycles
	name := "host-in"
	if x.output {
		name = "host-out"
	}
	e.trace("host", "", name, x.net, -1, -1, e.hostEnd-x.cycles, v.now)
	if v.om != nil {
		v.om.hostBusyC.Add(int64(x.cycles))
	}
	if x.output {
		return e.finishNet(x.net)
	}
	return e.finishHostIn(x.net)
}

func (e *Engine) finishHostIn(net int) error {
	s := e.v.nets[net]
	s.hostInDone = true
	for li, l := range s.cn.Layers {
		if len(l.Deps) == 0 {
			s.cbIndeg[li]--
			if s.cbIndeg[li] == 0 {
				e.v.unlockCB(s, li)
			}
		}
	}
	if e.chk != nil {
		e.chk.hostIn(net)
		return e.chk.frontiers()
	}
	return nil
}

func (e *Engine) finishNet(net int) error {
	s := e.v.nets[net]
	s.finished = true
	s.finishAt = e.v.now
	e.v.activeRemove(net)
	e.res.NetFinish[net] = e.v.now
	if e.v.om != nil {
		e.v.om.finish(net, len(e.v.active))
	}
	if e.chainSucc != nil {
		for _, c := range e.chainSucc[net] {
			if err := e.chainArrive(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// chainArrive arrives chained phase i now that its predecessor has
// finished — immediately when its static arrival has passed (the
// normal case: a decode iteration is ready the moment the previous
// token completes), otherwise by queueing it with the ordinary late
// arrivals.
func (e *Engine) chainArrive(i int) error {
	v := e.v
	s := v.nets[i]
	if s.arrival > v.now {
		e.deferArrival(i)
		return nil
	}
	s.arrival = v.now
	s.arrived = true
	e.res.NetArrive[i] = v.now
	v.activeAdd(i)
	return e.arrive(i)
}

// deferArrival inserts net i into the pending suffix of arrivalOrder,
// keeping it sorted by arrival cycle.
func (e *Engine) deferArrival(i int) {
	pos := e.nextArrival
	for pos < len(e.arrivalOrder) && e.v.nets[e.arrivalOrder[pos]].arrival <= e.v.nets[i].arrival {
		pos++
	}
	e.arrivalOrder = append(e.arrivalOrder, 0)
	copy(e.arrivalOrder[pos+1:], e.arrivalOrder[pos:])
	e.arrivalOrder[pos] = i
}

func (e *Engine) allDone() bool {
	for _, s := range e.v.nets {
		if !s.finished {
			return false
		}
	}
	return e.hostHead == len(e.hostQ) && !e.hostBusy
}

// trace forwards one occupancy interval to the Tracer. The block
// label is passed as prefix + name and concatenated only after the
// nil check, so a run without a tracer never pays the string
// allocation — this keeps the event hot loop allocation-free (see
// BenchmarkSimulatorThroughput's allocs/op).
func (e *Engine) trace(engineName, prefix, name string, net, layer, iter int, start, end arch.Cycles) {
	if e.opts.Tracer != nil {
		e.opts.Tracer.Event(engineName, prefix+name, net, layer, iter, start, end)
	}
}

// stuckDiagnosis renders a short description of why no engine can make
// progress, for deadlock errors.
func (e *Engine) stuckDiagnosis() string {
	v := e.v
	e.mbScratch = v.MBCandidates(e.mbScratch[:0])
	e.cbScratch = v.ReadyCBs(e.cbScratch[:0])
	return fmt.Sprintf("free SRAM blocks %d/%d, %d MB candidates, %d ready CBs, host queue %d",
		v.FreeBlocks(), v.TotalBlocks(), len(e.mbScratch), len(e.cbScratch), len(e.hostQ)-e.hostHead)
}
