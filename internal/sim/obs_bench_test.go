package sim

import (
	"testing"

	"aimt/internal/compiler"
	"aimt/internal/obs"
)

// obsBenchNets is a two-net event-dense workload for the
// observability overhead benchmarks: many small sub-layers keep the
// engine's event loop (and therefore the instrumentation funnels)
// hot.
func obsBenchNets(b *testing.B) []*compiler.CompiledNetwork {
	cfg := testConfig(b)
	return []*compiler.CompiledNetwork{
		chainNet("a", cfg,
			layerSpec{mb: 4, cb: 16, iters: 64, blocks: 1},
			layerSpec{mb: 8, cb: 8, iters: 64, blocks: 2},
		),
		chainNet("b", cfg,
			layerSpec{mb: 16, cb: 4, iters: 64, blocks: 4},
			layerSpec{mb: 2, cb: 24, iters: 64, blocks: 1},
		),
	}
}

func benchRun(b *testing.B, opts Options) {
	cfg := testConfig(b)
	nets := obsBenchNets(b)
	sch := &scratchSerial{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, nets, sch, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineObsDisabled is the instrumented-but-disabled path:
// the observability seams are compiled in but no registry or ledger
// is attached, so every emission site is a nil check.
func BenchmarkEngineObsDisabled(b *testing.B) {
	benchRun(b, Options{})
}

// BenchmarkEngineObsEnabled attaches a registry and ledger, measuring
// the full emission cost: atomic counter/gauge updates per event plus
// one locked ring append per scheduler decision.
func BenchmarkEngineObsEnabled(b *testing.B) {
	benchRun(b, Options{Metrics: obs.NewRegistry(), Ledger: obs.NewLedger(0)})
}

// scratchSerial is serial with reused candidate buffers, so the
// scheduler itself allocates nothing per decision and the allocation
// test below isolates the engine's own per-event cost.
type scratchSerial struct {
	NopHooks
	mbuf []MBRef
	cbuf []CBRef
}

func (*scratchSerial) Name() string { return "scratch-serial" }

func (s *scratchSerial) PickMB(v *View) (MBRef, bool) {
	s.mbuf = v.MBCandidates(s.mbuf[:0])
	for _, m := range s.mbuf {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (s *scratchSerial) PickCB(v *View) (CBRef, bool) {
	s.cbuf = v.ReadyCBs(s.cbuf[:0])
	if len(s.cbuf) == 0 {
		return CBRef{}, false
	}
	return s.cbuf[0], true
}

// TestDisabledObsAddsNoPerEventAllocations pins the zero-cost claim
// for the disabled path: growing the event count 8x must not grow the
// run's allocation count with it (per-event trace strings or ledger
// entries would). Only fixed setup (result slices, frontier state,
// the event heap's high-water mark) may allocate.
func TestDisabledObsAddsNoPerEventAllocations(t *testing.T) {
	cfg := testConfig(t)
	run := func(iters int) float64 {
		return testing.AllocsPerRun(20, func() {
			cn := chainNet("n", cfg, layerSpec{mb: 2, cb: 4, iters: iters, blocks: 1})
			if _, err := Run(cfg, []*compiler.CompiledNetwork{cn}, &scratchSerial{}, Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(64), run(512)
	// 448 extra MB+CB pairs; with any per-event allocation the delta
	// would be in the hundreds.
	if delta := large - small; delta > 32 {
		t.Errorf("8x the events grew allocations by %.0f (%.0f -> %.0f); disabled path is not allocation-free",
			delta, small, large)
	}
}

// TestDisabledObsAddsNoPerEventAllocationsChained repeats the pin for
// a transformer-style multi-phase stream: a prefill instance with N
// decode instances chained behind it. Chain bookkeeping is O(nets)
// setup; per-event cost must stay allocation-free.
func TestDisabledObsAddsNoPerEventAllocationsChained(t *testing.T) {
	cfg := testConfig(t)
	run := func(iters int) float64 {
		chain := []int{-1, 0, 1, 2}
		return testing.AllocsPerRun(20, func() {
			nets := []*compiler.CompiledNetwork{
				chainNet("prefill", cfg, layerSpec{mb: 2, cb: 4, iters: iters, blocks: 1}),
				chainNet("dec1", cfg, layerSpec{mb: 4, cb: 2, iters: iters, blocks: 1}),
				chainNet("dec2", cfg, layerSpec{mb: 4, cb: 2, iters: iters, blocks: 1}),
				chainNet("dec3", cfg, layerSpec{mb: 4, cb: 2, iters: iters, blocks: 1}),
			}
			if _, err := Run(cfg, nets, &scratchSerial{}, Options{ChainAfter: chain}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(64), run(512)
	if delta := large - small; delta > 32 {
		t.Errorf("8x the events grew allocations by %.0f (%.0f -> %.0f); chained disabled path is not allocation-free",
			delta, small, large)
	}
}
