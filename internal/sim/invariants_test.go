package sim

import (
	"errors"
	"strings"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sram"
)

// The invariant checker keeps shadow state derived purely from the
// event stream, so a scheduler (or an engine regression) that corrupts
// the engine's bookkeeping is caught at the first observable
// violation. These tests sabotage the machine deliberately and assert
// the checker fires; the positive direction — every legitimate
// scheduler passing with invariants on — is covered by the root
// package's property tests.

// spoofResidency is a deliberately broken scheduler: when a memory
// block completes it marks the whole layer as fetched, so compute
// blocks start before their weights arrive.
type spoofResidency struct{ NopHooks }

func (spoofResidency) Name() string { return "spoof-residency" }

func (spoofResidency) PickMB(v *View) (MBRef, bool) {
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (spoofResidency) PickCB(v *View) (CBRef, bool) {
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[0], true
}

func (spoofResidency) OnMBDone(v *View, r MBRef) {
	// The sabotage: pretend every sub-layer of the layer is resident.
	v.nets[r.Net].mbDone[r.Layer] = v.nets[r.Net].cn.Layers[r.Layer].Iters
}

func TestInvariantCatchesCBBeforeMB(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 5, iters: 2, blocks: 1})
	_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, spoofResidency{}, Options{CheckInvariants: true})
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant (CB started before its MB completed)", err)
	}
}

// workThief splits the executing compute block once and then inflates
// the halted remainder, so the resumed block executes more cycles than
// the layer owns — a split/resume that fails to conserve work.
type workThief struct {
	NopHooks
	split bool
	steal arch.Cycles
}

func (*workThief) Name() string { return "work-thief" }

func (w *workThief) PickMB(v *View) (MBRef, bool) {
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (w *workThief) PickCB(v *View) (CBRef, bool) {
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[0], true
}

func (w *workThief) OnMBDone(v *View, r MBRef) {
	if !w.split {
		if v.RequestSplit() {
			w.split = true
		}
	}
}

func (w *workThief) OnCBSplit(v *View, r CBRef, remaining arch.Cycles) {
	// The sabotage: tamper with the halted remainder.
	v.nets[r.Net].remnant[r.Layer] = remaining + w.steal
}

func TestInvariantCatchesSplitWorkLoss(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 5, cb: 50, iters: 3, blocks: 1})
	for _, steal := range []arch.Cycles{7, -7} {
		_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, &workThief{steal: steal}, Options{CheckInvariants: true})
		if !errors.Is(err, ErrInvariant) {
			t.Errorf("steal %d: err = %v, want ErrInvariant (work not conserved)", steal, err)
		}
	}
	// The same split pattern without tampering must pass: the checker
	// accepts a legitimate halt/resume.
	res, err := Run(cfg, []*compiler.CompiledNetwork{cn}, &workThief{}, Options{CheckInvariants: true})
	if err != nil {
		t.Fatalf("legitimate split rejected: %v", err)
	}
	if res.Splits != 1 {
		t.Errorf("splits = %d, want 1", res.Splits)
	}
	if want := 3*50 + arch.Cycles(res.Splits)*cfg.FillLatency; res.PEBusy != want {
		t.Errorf("PEBusy = %d, want %d (work + refill per resume)", res.PEBusy, want)
	}
}

// ghostResume fabricates a halted remainder that never came from a
// split: after a compute block completes it plants a remnant, so the
// layer's next block starts as the resume of a halt that never
// happened — a broken preemption path the halt/resume pairing family
// must catch.
type ghostResume struct {
	NopHooks
	planted bool
}

func (*ghostResume) Name() string { return "ghost-resume" }

func (g *ghostResume) PickMB(v *View) (MBRef, bool) {
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (g *ghostResume) PickCB(v *View) (CBRef, bool) {
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[0], true
}

func (g *ghostResume) OnCBDone(v *View, r CBRef) {
	// The sabotage: plant a remnant for the layer's next sub-layer
	// without any halt having occurred.
	if !g.planted && r.Iter+1 < v.nets[r.Net].cn.Layers[r.Layer].Iters {
		v.nets[r.Net].remnant[r.Layer] = 17
		g.planted = true
	}
}

func TestInvariantCatchesResumeWithoutHalt(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 50, iters: 3, blocks: 1})
	_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, &ghostResume{}, Options{CheckInvariants: true})
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant (resume without halt)", err)
	}
}

// doubleResumer splits once legitimately, lets the resume complete,
// then replays the consumed remainder so a second, unearned resume of
// the same halt is attempted on the layer's next block.
type doubleResumer struct {
	NopHooks
	split    bool
	saved    arch.Cycles
	replayed bool
}

func (*doubleResumer) Name() string { return "double-resumer" }

func (d *doubleResumer) PickMB(v *View) (MBRef, bool) {
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			return m, true
		}
	}
	return MBRef{}, false
}

func (d *doubleResumer) PickCB(v *View) (CBRef, bool) {
	cbs := v.ReadyCBs(nil)
	if len(cbs) == 0 {
		return CBRef{}, false
	}
	return cbs[0], true
}

func (d *doubleResumer) OnMBDone(v *View, r MBRef) {
	if !d.split && v.RequestSplit() {
		d.split = true
	}
}

func (d *doubleResumer) OnCBSplit(v *View, r CBRef, remaining arch.Cycles) {
	d.saved = remaining
}

func (d *doubleResumer) OnCBDone(v *View, r CBRef) {
	// The sabotage: resurrect the already-consumed halt remainder so
	// the next block resumes a halt that was already resumed.
	if d.saved > 0 && !d.replayed && r.Iter+1 < v.nets[r.Net].cn.Layers[r.Layer].Iters {
		v.nets[r.Net].remnant[r.Layer] = d.saved
		d.replayed = true
	}
}

func TestInvariantCatchesDoubleResume(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 5, cb: 50, iters: 3, blocks: 1})
	_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, &doubleResumer{}, Options{CheckInvariants: true})
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant (double resume)", err)
	}
}

// leakyConsumer completes compute blocks but skips returning their
// SRAM blocks — emulating an allocator leak the checker must notice
// when the event-stream occupancy disagrees with the buffer.
type leakyConsumer struct{ spoof spoofResidency }

func (leakyConsumer) Name() string { return "leaky-consumer" }

func (l leakyConsumer) PickMB(v *View) (MBRef, bool)      { return l.spoof.PickMB(v) }
func (l leakyConsumer) PickCB(v *View) (CBRef, bool)      { return l.spoof.PickCB(v) }
func (leakyConsumer) OnMBDone(*View, MBRef)               {}
func (leakyConsumer) OnCBStart(*View, CBRef)              {}
func (leakyConsumer) OnCBSplit(*View, CBRef, arch.Cycles) {}

func (leakyConsumer) OnCBDone(v *View, r CBRef) {
	// The sabotage: re-allocate the block the engine just freed into a
	// foreign chain, leaking it from the checker's point of view.
	s := v.nets[r.Net]
	_ = v.buf.Allocate(&s.chains[r.Layer], 1)
}

func TestInvariantCatchesSRAMLeak(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 5, iters: 3, blocks: 1})
	_, err := Run(cfg, []*compiler.CompiledNetwork{cn}, leakyConsumer{}, Options{CheckInvariants: true})
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant (allocator occupancy disagrees with events)", err)
	}
}

// TestCheckerUnits exercises checker transitions the engine cannot
// currently produce, so regressions in future engine refactors are
// still caught.
func TestCheckerUnits(t *testing.T) {
	cfg := testConfig(t)
	cn := chainNet("n", cfg, layerSpec{mb: 10, cb: 5, iters: 2, blocks: 1})
	mkChecker := func() *checker {
		v := &View{cfg: cfg, buf: sram.NewBuffer(cfg.WeightBlocks())}
		v.nets = append(v.nets, newNetState(cn))
		return newChecker(v)
	}

	t.Run("time-backwards", func(t *testing.T) {
		c := mkChecker()
		if err := c.advance(10); err != nil {
			t.Fatal(err)
		}
		if err := c.advance(5); !errors.Is(err, ErrInvariant) {
			t.Errorf("err = %v, want ErrInvariant", err)
		}
	})

	t.Run("two-MBs-at-once", func(t *testing.T) {
		c := mkChecker()
		if err := c.mbIssue(MBRef{}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbIssue(MBRef{Iter: 1}, 1); !errors.Is(err, ErrInvariant) {
			t.Errorf("err = %v, want ErrInvariant", err)
		}
	})

	t.Run("two-CBs-at-once", func(t *testing.T) {
		c := mkChecker()
		c.hostIn(0)
		if err := c.mbIssue(MBRef{}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbDone(MBRef{}, 0, 10); err != nil {
			t.Fatal(err)
		}
		if err := c.cbStart(CBRef{}, 5); err != nil {
			t.Fatal(err)
		}
		if err := c.cbStart(CBRef{}, 5); !errors.Is(err, ErrInvariant) {
			t.Errorf("err = %v, want ErrInvariant", err)
		}
	})

	t.Run("overlapping-fetch-intervals", func(t *testing.T) {
		c := mkChecker()
		if err := c.mbIssue(MBRef{}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbDone(MBRef{}, 0, 10); err != nil {
			t.Fatal(err)
		}
		if err := c.mbIssue(MBRef{Iter: 1}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbDone(MBRef{Iter: 1}, 8, 18); !errors.Is(err, ErrInvariant) {
			t.Errorf("err = %v, want ErrInvariant", err)
		}
	})

	t.Run("SRAM-over-capacity", func(t *testing.T) {
		c := mkChecker()
		if err := c.mbIssue(MBRef{}, cfg.WeightBlocks()+1); !errors.Is(err, ErrInvariant) {
			t.Errorf("err = %v, want ErrInvariant", err)
		}
	})

	t.Run("CB-before-host-input", func(t *testing.T) {
		c := mkChecker()
		if err := c.mbIssue(MBRef{}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbDone(MBRef{}, 0, 10); err != nil {
			t.Fatal(err)
		}
		if err := c.cbStart(CBRef{}, 5); !errors.Is(err, ErrInvariant) {
			t.Errorf("err = %v, want ErrInvariant", err)
		}
	})

	// prime fetches the first sub-layer so a CB may start (invariant 7
	// subtests below share it).
	prime := func(t *testing.T, c *checker) {
		t.Helper()
		c.hostIn(0)
		if err := c.mbIssue(MBRef{}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbDone(MBRef{}, 0, 10); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("resume-without-halt", func(t *testing.T) {
		c := mkChecker()
		prime(t, c)
		// A short start with no outstanding halt is a fabricated resume.
		err := c.cbStart(CBRef{}, 3)
		if !errors.Is(err, ErrInvariant) {
			t.Fatalf("err = %v, want ErrInvariant", err)
		}
		if !strings.Contains(err.Error(), "resume without halt") {
			t.Errorf("err = %v, want the halt/resume pairing family to fire", err)
		}
	})

	t.Run("wrong-resume-remainder", func(t *testing.T) {
		c := mkChecker()
		prime(t, c)
		if err := c.cbStart(CBRef{}, 5); err != nil {
			t.Fatal(err)
		}
		if err := c.cbSplit(CBRef{}, 0, 2, 3); err != nil {
			t.Fatal(err)
		}
		// The resume must carry exactly remainder + refill.
		err := c.cbStart(CBRef{}, 3+c.fill+1)
		if !errors.Is(err, ErrInvariant) {
			t.Fatalf("err = %v, want ErrInvariant", err)
		}
		if !strings.Contains(err.Error(), "want halted remainder") {
			t.Errorf("err = %v, want the halt/resume pairing family to fire", err)
		}
	})

	t.Run("double-resume", func(t *testing.T) {
		c := mkChecker()
		prime(t, c)
		if err := c.cbStart(CBRef{}, 5); err != nil {
			t.Fatal(err)
		}
		if err := c.cbSplit(CBRef{}, 0, 1, 4); err != nil {
			t.Fatal(err)
		}
		// One legitimate resume consumes the halt...
		if err := c.cbStart(CBRef{}, 4+c.fill); err != nil {
			t.Fatalf("legitimate resume rejected: %v", err)
		}
		if err := c.cbDone(CBRef{}, 1, 1+4+c.fill, 1); err != nil {
			t.Fatal(err)
		}
		// ...so a second resume-shaped start on the next sub-layer has
		// no halt left to pair with.
		if err := c.mbIssue(MBRef{Iter: 1}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.mbDone(MBRef{Iter: 1}, 20, 30); err != nil {
			t.Fatal(err)
		}
		err := c.cbStart(CBRef{Iter: 1}, 4+c.fill)
		if !errors.Is(err, ErrInvariant) {
			t.Fatalf("err = %v, want ErrInvariant", err)
		}
		if !strings.Contains(err.Error(), "resume without halt") {
			t.Errorf("err = %v, want the halt/resume pairing family to fire", err)
		}
	})
}
