package sim

import (
	"errors"
	"fmt"

	"aimt/internal/arch"
	"aimt/internal/sram"
)

// Snapshot is a point-in-time copy of one engine's mutable machine
// state. Because the per-layer bookkeeping lives in three flat arena
// slabs (see stateArena), capturing it is three bulk copies plus a
// handful of per-net scalars — O(state), with no per-slice walking —
// cheap enough to take at every contested scheduling decision.
//
// A snapshot is bound to the engine and run it was taken from:
// restoring it into another engine, or after the engine was
// re-initialized for a new workload, is an error. The same Snapshot
// value can be reused across many Snapshot calls; its backing arrays
// are recycled.
type Snapshot struct {
	owner *Engine
	runID uint64

	// Arena slabs: counters, frontier backings, remnants, SRAM chains.
	ints   []int
	cycles []arch.Cycles
	chains []sram.Chain

	// SRAM allocator state: management table and free list.
	sramNext, sramFree []int32

	nets   []netSnap
	active []int

	// Host link and pending-arrival state.
	hostQ        []hostXfer
	hostHead     int
	hostBusy     bool
	hostEnd      arch.Cycles
	curHost      hostXfer
	arrivalOrder []int
	nextArrival  int

	// View scalars.
	outstanding    int
	mbRemaining    int
	availCB        arch.Cycles
	now            arch.Cycles
	memBusy        bool
	curMB          MBRef
	memEnd         arch.Cycles
	peBusy         bool
	curCB          CBRef
	cbStart        arch.Cycles
	peEnd          arch.Cycles
	curCBWork      arch.Cycles
	splitRequested bool

	// Result scalars plus copies of the mutable per-net columns.
	// NetNames never changes mid-run and is not captured.
	res       Result
	resArrive []arch.Cycles
	resFinish []arch.Cycles

	// Invariant-checker shadow state, captured only when the run
	// checks invariants, so a restored run keeps validating.
	chkValid  bool
	chkSnap   checkerSnap
	chkLayers []layerShadow
	chkHostIn []bool

	// Opaque scheduler decision state (StatefulScheduler).
	schedState any
}

// checkerSnap holds the checker's scalar shadow state.
type checkerSnap struct {
	now, memFree, peFree         arch.Cycles
	memInFlight, peInFlight      bool
	used                         int
	mbCount, cbCount, splitCount int
}

// netSnap holds one net's scalar state and frontier lengths. The
// frontier contents live in the ints slab; only the lengths vary.
type netSnap struct {
	arrival, finishAt      arch.Cycles
	mbFrontLen, cbFrontLen int
	layersLeft             int
	arrived                bool
	hostInDone             bool
	finished               bool
}

// ErrSnapshot wraps every snapshot/restore misuse error.
var ErrSnapshot = errors.New("sim: invalid snapshot")

// Snapshot captures the engine's complete mutable state into dst and
// returns it. Pass nil to allocate a fresh Snapshot; pass a previous
// one to reuse its storage (the steady-state speculative path does
// this and allocates nothing).
func (e *Engine) Snapshot(dst *Snapshot) *Snapshot {
	if dst == nil {
		dst = new(Snapshot)
	}
	v := e.v
	dst.owner = e
	dst.runID = e.runID

	dst.ints = append(dst.ints[:0], e.arena.ints...)
	dst.cycles = append(dst.cycles[:0], e.arena.cycles...)
	dst.chains = append(dst.chains[:0], e.arena.chains...)
	dst.sramNext, dst.sramFree = v.buf.SaveState(dst.sramNext, dst.sramFree)

	dst.nets = dst.nets[:0]
	for _, s := range v.nets {
		dst.nets = append(dst.nets, netSnap{
			arrival:    s.arrival,
			finishAt:   s.finishAt,
			mbFrontLen: len(s.mbFront),
			cbFrontLen: len(s.cbFront),
			layersLeft: s.layersLeft,
			arrived:    s.arrived,
			hostInDone: s.hostInDone,
			finished:   s.finished,
		})
	}
	dst.active = append(dst.active[:0], v.active...)

	dst.hostQ = append(dst.hostQ[:0], e.hostQ...)
	dst.hostHead = e.hostHead
	dst.hostBusy = e.hostBusy
	dst.hostEnd = e.hostEnd
	dst.curHost = e.curHost
	dst.arrivalOrder = append(dst.arrivalOrder[:0], e.arrivalOrder...)
	dst.nextArrival = e.nextArrival

	dst.outstanding = v.outstanding
	dst.mbRemaining = v.mbRemaining
	dst.availCB = v.availCB
	dst.now = v.now
	dst.memBusy = v.memBusy
	dst.curMB = v.curMB
	dst.memEnd = v.memEnd
	dst.peBusy = v.peBusy
	dst.curCB = v.curCB
	dst.cbStart = v.cbStart
	dst.peEnd = v.peEnd
	dst.curCBWork = v.curCBWork
	dst.splitRequested = v.splitRequested

	dst.res = e.res
	dst.res.NetNames = nil // immutable mid-run; shared, not captured
	dst.res.NetArrive = nil
	dst.res.NetFinish = nil
	dst.resArrive = append(dst.resArrive[:0], e.res.NetArrive...)
	dst.resFinish = append(dst.resFinish[:0], e.res.NetFinish...)

	dst.chkValid = e.chk != nil
	if e.chk != nil {
		c := e.chk
		dst.chkSnap = checkerSnap{
			now: c.now, memFree: c.memFree, peFree: c.peFree,
			memInFlight: c.memInFlight, peInFlight: c.peInFlight,
			used:    c.used,
			mbCount: c.mbCount, cbCount: c.cbCount, splitCount: c.splitCount,
		}
		dst.chkLayers = append(dst.chkLayers[:0], c.layerSlab...)
		dst.chkHostIn = dst.chkHostIn[:0]
		for i := range c.nets {
			dst.chkHostIn = append(dst.chkHostIn, c.nets[i].hostInDone)
		}
	}

	if ss, ok := e.sch.(StatefulScheduler); ok {
		dst.schedState = ss.SaveState(dst.schedState)
	}
	return dst
}

// Restore rewinds the engine to the state captured in s. The snapshot
// must have been taken from this engine during the current run.
// Afterwards the engine behaves exactly as it did at capture time:
// stepping it replays the identical schedule (given the scheduler's
// state was captured too — see StatefulScheduler).
func (e *Engine) Restore(s *Snapshot) error {
	if s == nil || s.owner != e || s.runID != e.runID {
		return fmt.Errorf("%w: snapshot does not belong to this engine run", ErrSnapshot)
	}
	if len(s.ints) != len(e.arena.ints) || len(s.cycles) != len(e.arena.cycles) ||
		len(s.chains) != len(e.arena.chains) || len(s.nets) != len(e.v.nets) {
		return fmt.Errorf("%w: state shape changed since capture", ErrSnapshot)
	}
	v := e.v

	copy(e.arena.ints, s.ints)
	copy(e.arena.cycles, s.cycles)
	copy(e.arena.chains, s.chains)
	v.buf.RestoreState(s.sramNext, s.sramFree)

	for i, sn := range s.nets {
		st := v.nets[i]
		st.arrival = sn.arrival
		st.finishAt = sn.finishAt
		// The frontier sub-slices share the ints slab just restored;
		// only their lengths need rewinding (capacity is fixed at the
		// net's layer count, so the reslice is always in range).
		st.mbFront = st.mbFront[:sn.mbFrontLen]
		st.cbFront = st.cbFront[:sn.cbFrontLen]
		st.layersLeft = sn.layersLeft
		st.arrived = sn.arrived
		st.hostInDone = sn.hostInDone
		st.finished = sn.finished
	}
	v.active = append(v.active[:0], s.active...)

	e.hostQ = append(e.hostQ[:0], s.hostQ...)
	e.hostHead = s.hostHead
	e.hostBusy = s.hostBusy
	e.hostEnd = s.hostEnd
	e.curHost = s.curHost
	e.arrivalOrder = append(e.arrivalOrder[:0], s.arrivalOrder...)
	e.nextArrival = s.nextArrival

	v.outstanding = s.outstanding
	v.mbRemaining = s.mbRemaining
	v.availCB = s.availCB
	v.now = s.now
	v.memBusy = s.memBusy
	v.curMB = s.curMB
	v.memEnd = s.memEnd
	v.peBusy = s.peBusy
	v.curCB = s.curCB
	v.cbStart = s.cbStart
	v.peEnd = s.peEnd
	v.curCBWork = s.curCBWork
	v.splitRequested = s.splitRequested

	names, arrive, finish := e.res.NetNames, e.res.NetArrive, e.res.NetFinish
	e.res = s.res
	e.res.NetNames = names
	e.res.NetArrive = arrive
	e.res.NetFinish = finish
	copy(e.res.NetArrive, s.resArrive)
	copy(e.res.NetFinish, s.resFinish)

	if e.chk != nil && s.chkValid {
		c := e.chk
		c.now = s.chkSnap.now
		c.memFree = s.chkSnap.memFree
		c.peFree = s.chkSnap.peFree
		c.memInFlight = s.chkSnap.memInFlight
		c.peInFlight = s.chkSnap.peInFlight
		c.used = s.chkSnap.used
		c.mbCount = s.chkSnap.mbCount
		c.cbCount = s.chkSnap.cbCount
		c.splitCount = s.chkSnap.splitCount
		copy(c.layerSlab, s.chkLayers)
		for i := range c.nets {
			c.nets[i].hostInDone = s.chkHostIn[i]
		}
	}

	if ss, ok := e.sch.(StatefulScheduler); ok {
		ss.RestoreState(s.schedState)
	}
	return nil
}
