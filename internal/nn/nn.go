// Package nn models neural networks at the granularity the accelerator
// schedules them: a directed acyclic graph of layers, each with the
// shape information (channels, spatial extent, kernel, stride) needed
// by the compiler's latency model. Weight values are never represented
// — the simulator is shape-driven, exactly like the paper's.
//
// The package ships the model zoo used by the paper's evaluation
// (Table II): ResNet34, ResNet50, VGG16, MobileNetV1 and GNMT, plus a
// builder API for constructing custom networks.
package nn

import (
	"errors"
	"fmt"
)

// LayerType distinguishes the operations the accelerator executes.
type LayerType int

const (
	// Conv is a standard convolution executed on the PE arrays with a
	// broadcast weight mapping (all arrays share the filter set and
	// partition the input feature map).
	Conv LayerType = iota

	// DWConv is a depthwise convolution: each input channel is
	// convolved with a single k x k filter. MobileNet is built from
	// alternating DWConv and 1x1 Conv layers.
	DWConv

	// FC is a fully connected layer (matrix-vector/matrix product),
	// mapped with per-array distinct weights (the paper's FC mapping).
	FC

	// Pool is a pooling layer. It runs on the dedicated pooling unit
	// (paper Fig 2), carries no weights, and is fused into its producer
	// for scheduling: it contributes dependency edges only.
	Pool

	// Attn is one attention matmul against the KV cache: the score
	// product (Q x K^T) or the context product (softmax(scores) x V).
	// Its "weights" are the Ctx x InC cache tile streamed from HBM —
	// per-sequence state that, exactly like FC weights, must be fetched
	// before the compute block can run. Tokens is the number of query
	// positions this pass computes: the prompt length during prefill
	// (compute-heavy), one during autoregressive decode (memory-bound).
	Attn

	// Softmax is the attention-score normalization between the two
	// attention matmuls. Like Pool it runs on a dedicated vector unit,
	// carries no weights, and is fused into its producer: it contributes
	// dependency edges only.
	Softmax
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "CONV"
	case DWConv:
		return "DWCONV"
	case FC:
		return "FC"
	case Pool:
		return "POOL"
	case Attn:
		return "ATTN"
	case Softmax:
		return "SOFTMAX"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// HasWeights reports whether layers of this type fetch weights from
// HBM and therefore produce memory blocks. Attn counts: its KV-cache
// tile plays the role of the stationary operand.
func (t LayerType) HasWeights() bool {
	return t == Conv || t == DWConv || t == FC || t == Attn
}

// Layer is one operation in a network. For Conv/DWConv layers the
// spatial fields are meaningful; FC layers use only InC and OutC
// (treated as ic x 1 x 1 inputs and oc filters, per the paper §II-A);
// Pool layers use Kernel/Stride for shape inference only.
type Layer struct {
	// Name identifies the layer in traces and reports, e.g. "conv3_2".
	Name string

	// Type selects the operation.
	Type LayerType

	// InC, InH, InW are the input feature dimensions (channels,
	// height, width). For FC, InH = InW = 1.
	InC, InH, InW int

	// OutC is the number of output channels (CONV filters or FC output
	// neurons). For Pool and DWConv it equals InC.
	OutC int

	// Kernel is the filter height/width (k in the paper). 1 for FC.
	Kernel int

	// Stride is the convolution or pooling stride. 1 for FC.
	Stride int

	// Pad is the symmetric zero padding applied to each spatial edge.
	Pad int

	// Repeat is the number of times the layer's weights are reused per
	// inference beyond the batch dimension — the timestep count for
	// recurrent layers (GNMT) and the token count for transformer
	// projections streaming a prefill through one weight fetch. Zero
	// means 1.
	Repeat int

	// Heads is the attention head count (Attn layers only). Heads
	// partition the hidden dimension, so the aggregate cache footprint
	// and MAC count are head-independent; the field is kept for
	// validation and reporting.
	Heads int

	// Ctx is the KV-cache length an Attn layer attends over: the prompt
	// length during prefill, the accumulated sequence length during
	// decode.
	Ctx int

	// Tokens is the number of query positions an Attn layer computes:
	// the prompt length for a prefill pass, 1 for one decode iteration.
	Tokens int

	// Inputs lists the indices of the layers whose outputs feed this
	// layer. An empty list marks a network input layer. Residual
	// connections appear as a second entry.
	Inputs []int
}

// OutH returns the output feature height implied by the layer shape.
func (l Layer) OutH() int { return convOut(l.InH, l.Kernel, l.Stride, l.Pad) }

// OutW returns the output feature width implied by the layer shape.
func (l Layer) OutW() int { return convOut(l.InW, l.Kernel, l.Stride, l.Pad) }

func convOut(in, k, stride, pad int) int {
	if in <= 0 {
		return 0
	}
	if k <= 0 {
		k = 1
	}
	if stride <= 0 {
		stride = 1
	}
	n := (in+2*pad-k)/stride + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Reuse returns the per-inference weight-reuse multiplier beyond the
// batch dimension: max(1, Repeat).
func (l Layer) Reuse() int {
	if l.Repeat > 1 {
		return l.Repeat
	}
	return 1
}

// WeightCount returns the number of weight elements the layer loads
// from HBM (excluding biases, which the paper also ignores).
func (l Layer) WeightCount() int64 {
	switch l.Type {
	case Conv:
		return int64(l.InC) * int64(l.Kernel) * int64(l.Kernel) * int64(l.OutC)
	case DWConv:
		return int64(l.InC) * int64(l.Kernel) * int64(l.Kernel)
	case FC:
		return int64(l.InC) * int64(l.OutC)
	case Attn:
		// One half of the KV cache (K for the score matmul, V for the
		// context matmul): Ctx vectors of the hidden width.
		return int64(l.Ctx) * int64(l.InC)
	default:
		return 0
	}
}

// InputCount returns the number of input feature elements.
func (l Layer) InputCount() int64 {
	return int64(l.InC) * int64(l.InH) * int64(l.InW)
}

// OutputCount returns the number of output feature elements.
func (l Layer) OutputCount() int64 {
	return int64(l.OutC) * int64(l.OutH()) * int64(l.OutW())
}

// MACs returns the number of multiply-accumulate operations the layer
// performs for a single input (batch 1).
func (l Layer) MACs() int64 {
	switch l.Type {
	case Conv:
		return int64(l.OutH()) * int64(l.OutW()) * int64(l.OutC) *
			int64(l.InC) * int64(l.Kernel) * int64(l.Kernel)
	case DWConv:
		return int64(l.OutH()) * int64(l.OutW()) * int64(l.InC) *
			int64(l.Kernel) * int64(l.Kernel)
	case FC:
		return int64(l.InC) * int64(l.OutC) * int64(l.Reuse())
	case Attn:
		// Summed over heads the score (and context) product is
		// Tokens x Ctx x hidden MACs, head-count independent.
		return int64(l.Tokens) * int64(l.Ctx) * int64(l.InC)
	default:
		return 0
	}
}

// Network is a DAG of layers. Construct with NewBuilder (or a zoo
// function) and treat as immutable afterwards.
type Network struct {
	// Name identifies the network, e.g. "ResNet50".
	Name string

	// Layers holds the layers in topological order: every layer's
	// inputs have smaller indices.
	Layers []Layer
}

// Validation errors.
var (
	ErrEmptyNetwork = errors.New("nn: network has no layers")
	ErrBadTopology  = errors.New("nn: layer inputs must precede the layer (topological order)")
	ErrBadShape     = errors.New("nn: inconsistent layer shape")
)

// Validate checks topological ordering, shape consistency along every
// edge, and basic sanity of each layer's dimensions.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return ErrEmptyNetwork
	}
	for i, l := range n.Layers {
		if l.InC <= 0 || l.OutC <= 0 || l.InH <= 0 || l.InW <= 0 {
			return fmt.Errorf("%w: layer %d (%s) has non-positive dims %+v", ErrBadShape, i, l.Name, l)
		}
		if l.Type.HasWeights() && l.WeightCount() <= 0 {
			return fmt.Errorf("%w: layer %d (%s) has no weights", ErrBadShape, i, l.Name)
		}
		if l.Type == Attn && (l.Heads <= 0 || l.Ctx <= 0 || l.Tokens <= 0) {
			return fmt.Errorf("%w: layer %d (%s) needs positive Heads/Ctx/Tokens, got %d/%d/%d",
				ErrBadShape, i, l.Name, l.Heads, l.Ctx, l.Tokens)
		}
		for _, in := range l.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("%w: layer %d (%s) input %d", ErrBadTopology, i, l.Name, in)
			}
			p := n.Layers[in]
			if l.Type == FC || l.Type == Attn {
				// FC layers flatten and may follow recurrent or concat
				// topologies (GNMT) whose reshaping the shape model does
				// not represent; attention reshapes the QKV projection
				// into per-head matrices. Edge agreement is not enforced
				// for either.
				continue
			}
			if p.OutC != l.InC {
				return fmt.Errorf("%w: layer %d (%s) expects %d input channels, producer %d (%s) emits %d",
					ErrBadShape, i, l.Name, l.InC, in, p.Name, p.OutC)
			}
			if p.OutH() != l.InH || p.OutW() != l.InW {
				return fmt.Errorf("%w: layer %d (%s) expects %dx%d input, producer %d (%s) emits %dx%d",
					ErrBadShape, i, l.Name, l.InH, l.InW, in, p.Name, p.OutH(), p.OutW())
			}
		}
	}
	return nil
}

// WeightLayers returns the indices of layers that carry weights (the
// layers that appear in the sub-layer scheduling tables).
func (n *Network) WeightLayers() []int {
	var idx []int
	for i, l := range n.Layers {
		if l.Type.HasWeights() {
			idx = append(idx, i)
		}
	}
	return idx
}

// CountByType tallies layers per type, as reported in Table II.
func (n *Network) CountByType() map[LayerType]int {
	m := make(map[LayerType]int)
	for _, l := range n.Layers {
		m[l.Type]++
	}
	return m
}

// TotalWeights returns the number of weight elements across the net.
func (n *Network) TotalWeights() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.WeightCount()
	}
	return sum
}

// TotalMACs returns the multiply-accumulate count for one inference.
func (n *Network) TotalMACs() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.MACs()
	}
	return sum
}

// InputBytes returns the bytes of the network's external input
// (feature elements of layers with no producers), at the given element
// size.
func (n *Network) InputBytes(elemBytes int) int64 {
	var sum int64
	for _, l := range n.Layers {
		if len(l.Inputs) == 0 {
			sum += l.InputCount() * int64(elemBytes)
		}
	}
	return sum
}

// OutputBytes returns the bytes of the network's external output
// (feature elements of layers nothing consumes).
func (n *Network) OutputBytes(elemBytes int) int64 {
	consumed := make([]bool, len(n.Layers))
	for _, l := range n.Layers {
		for _, in := range l.Inputs {
			consumed[in] = true
		}
	}
	var sum int64
	for i, l := range n.Layers {
		if !consumed[i] {
			sum += l.OutputCount() * int64(elemBytes)
		}
	}
	return sum
}
