package nn

import "fmt"

// This file extends the zoo with transformer networks. A transformer
// pass is modeled per block as the paper models GNMT — weight-bearing
// matmuls with everything elementwise fused away — plus the two
// KV-cache attention matmuls that CNNs and GNMT have no analogue for:
//
//	qkv       FC    hidden -> 3*hidden, streamed over SeqLen tokens
//	score     Attn  Q x K^T over Context cached entries
//	softmax   fused (vector unit, dependency edge only)
//	context   Attn  softmax(scores) x V over the same cache
//	proj      FC    hidden -> hidden
//	mlp_up    FC    hidden -> FFN
//	mlp_down  FC    FFN -> hidden
//
// The same topology serves both request phases. A prefill pass sets
// SeqLen = Context = prompt length: each FC fetch is reused across
// SeqLen tokens (Repeat) and each Attn computes SeqLen query positions,
// so compute blocks dwarf memory blocks. A decode pass sets SeqLen = 1
// against a grown Context: every fetch feeds a single token and the
// pass is memory-bound — the MB/CB intensity mismatch the AI-MT
// co-execution exploits across concurrent requests.

// TransformerConfig sizes a transformer pass for the zoo builder.
type TransformerConfig struct {
	// Name labels the network; empty means "transformer".
	Name string

	// Blocks is the encoder/decoder block count.
	Blocks int

	// Hidden is the model width; must be divisible by Heads.
	Hidden int

	// Heads is the attention head count per block.
	Heads int

	// FFN is the feed-forward inner width.
	FFN int

	// OutProj is the width of a final output projection — an LM head
	// over the vocabulary (GPT) or a classifier (BERT). Zero omits it.
	OutProj int

	// SeqLen is the number of query tokens this pass computes: the
	// prompt length for prefill, 1 for one decode iteration.
	SeqLen int

	// Context is the KV-cache length attended over. Prefill uses
	// Context = SeqLen; decode attends over the accumulated sequence,
	// so Context >= SeqLen.
	Context int
}

// Transformer builds the pass described by c.
func Transformer(c TransformerConfig) (*Network, error) {
	if c.Name == "" {
		c.Name = "transformer"
	}
	if c.Blocks <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.FFN <= 0 {
		return nil, fmt.Errorf("%w: transformer %q needs positive Blocks/Hidden/Heads/FFN, got %d/%d/%d/%d",
			ErrBadShape, c.Name, c.Blocks, c.Hidden, c.Heads, c.FFN)
	}
	if c.Hidden%c.Heads != 0 {
		return nil, fmt.Errorf("%w: transformer %q: Hidden %d not divisible by Heads %d",
			ErrBadShape, c.Name, c.Hidden, c.Heads)
	}
	if c.SeqLen <= 0 || c.Context < c.SeqLen {
		return nil, fmt.Errorf("%w: transformer %q needs SeqLen >= 1 and Context >= SeqLen, got %d/%d",
			ErrBadShape, c.Name, c.SeqLen, c.Context)
	}

	b := NewBuilder(c.Name, c.Hidden, 1, 1)
	fc := func(name string, inC, outC int) {
		b.push(Layer{
			Name: name, Type: FC,
			InC: inC, InH: 1, InW: 1,
			OutC: outC, Kernel: 1, Stride: 1,
			Repeat: c.SeqLen,
			Inputs: inputsOf(b),
		})
	}
	for i := 1; i <= c.Blocks; i++ {
		p := func(s string) string { return fmt.Sprintf("blk%d_%s", i, s) }
		fc(p("qkv"), c.Hidden, 3*c.Hidden)
		b.Attn(p("score"), c.Hidden, c.Heads, c.Context, c.SeqLen)
		b.Softmax(p("softmax"))
		b.Attn(p("context"), c.Hidden, c.Heads, c.Context, c.SeqLen)
		fc(p("proj"), c.Hidden, c.Hidden)
		fc(p("mlp_up"), c.Hidden, c.FFN)
		fc(p("mlp_down"), c.FFN, c.Hidden)
	}
	if c.OutProj > 0 {
		// The output projection computes logits for the last position
		// only (next-token prediction / [CLS] head), so no token reuse.
		b.push(Layer{
			Name: "out_proj", Type: FC,
			InC: c.Hidden, InH: 1, InW: 1,
			OutC: c.OutProj, Kernel: 1, Stride: 1,
			Inputs: inputsOf(b),
		})
	}
	return b.Build()
}

// MustTransformer is Transformer for static definitions; it panics on
// error.
func MustTransformer(c TransformerConfig) *Network {
	net, err := Transformer(c)
	if err != nil {
		panic(err)
	}
	return net
}

// BERTBase returns a BERT-base encoder pass (Devlin et al., 2019):
// 12 blocks, hidden 768, 12 heads, FFN 3072, with a 2-way classifier
// head, over a seq-token input.
func BERTBase(seq int) *Network {
	return MustTransformer(TransformerConfig{
		Name: "BERT", Blocks: 12, Hidden: 768, Heads: 12, FFN: 3072,
		OutProj: 2, SeqLen: seq, Context: seq,
	})
}

// GPT2Prefill returns a GPT-2-small prefill pass (Radford et al.,
// 2019): 12 blocks, hidden 768, 12 heads, FFN 3072, with the 50257-way
// LM head, over a seq-token prompt.
func GPT2Prefill(seq int) *Network {
	return MustTransformer(TransformerConfig{
		Name: "GPT2", Blocks: 12, Hidden: 768, Heads: 12, FFN: 3072,
		OutProj: 50257, SeqLen: seq, Context: seq,
	})
}

// GPT2Decode returns one GPT-2-small autoregressive decode iteration:
// a single query token attending over a ctx-entry KV cache. Every
// weight fetch feeds one token, so each sub-layer is memory-bound.
func GPT2Decode(ctx int) *Network {
	return MustTransformer(TransformerConfig{
		Name: "GPT2-decode", Blocks: 12, Hidden: 768, Heads: 12, FFN: 3072,
		OutProj: 50257, SeqLen: 1, Context: ctx,
	})
}
