package nn

import "fmt"

// Builder constructs a Network incrementally while tracking the
// current feature shape, so chain-structured models read naturally:
//
//	b := nn.NewBuilder("tiny", 3, 32, 32)
//	b.Conv("conv1", 16, 3, 1, 1)
//	b.Pool("pool1", 2, 2)
//	b.FC("fc", 10)
//	net, err := b.Build()
//
// Residual topologies use Mark and Add to reference earlier layers.
type Builder struct {
	net  Network
	curC int // channels emitted by the most recent layer
	curH int
	curW int
	last int // index of the most recent layer, -1 before any
	err  error

	// pendingJoin holds residual sources registered with Add, consumed
	// as extra dependency edges by the next layer appended.
	pendingJoin []int
}

// NewBuilder starts a network whose external input has the given
// channel count and spatial extent.
func NewBuilder(name string, inC, inH, inW int) *Builder {
	return &Builder{
		net:  Network{Name: name},
		curC: inC,
		curH: inH,
		curW: inW,
		last: -1,
	}
}

func (b *Builder) push(l Layer) int {
	if b.err != nil {
		return -1
	}
	if b.last >= 0 && len(l.Inputs) == 0 {
		l.Inputs = []int{b.last}
	}
	if len(b.pendingJoin) > 0 {
		l.Inputs = append(append([]int(nil), l.Inputs...), b.pendingJoin...)
		b.pendingJoin = nil
	}
	b.net.Layers = append(b.net.Layers, l)
	b.last = len(b.net.Layers) - 1
	b.curC = l.OutC
	b.curH = l.OutH()
	b.curW = l.OutW()
	return b.last
}

// Conv appends a standard convolution with outC filters of size
// k x k, the given stride, and symmetric padding pad. It returns the
// layer index.
func (b *Builder) Conv(name string, outC, k, stride, pad int) int {
	return b.push(Layer{
		Name: name, Type: Conv,
		InC: b.curC, InH: b.curH, InW: b.curW,
		OutC: outC, Kernel: k, Stride: stride, Pad: pad,
	})
}

// DWConv appends a depthwise convolution (one k x k filter per input
// channel); the channel count is unchanged.
func (b *Builder) DWConv(name string, k, stride, pad int) int {
	return b.push(Layer{
		Name: name, Type: DWConv,
		InC: b.curC, InH: b.curH, InW: b.curW,
		OutC: b.curC, Kernel: k, Stride: stride, Pad: pad,
	})
}

// FC appends a fully connected layer with outC outputs. Whatever the
// current feature shape, it is flattened to ic = C*H*W inputs, per the
// paper's FC-as-1x1-CONV view.
func (b *Builder) FC(name string, outC int) int {
	return b.push(Layer{
		Name: name, Type: FC,
		InC: b.curC * b.curH * b.curW, InH: 1, InW: 1,
		OutC: outC, Kernel: 1, Stride: 1,
	})
}

// Attn appends one attention matmul (score or context product) over a
// KV cache of ctx entries at the given hidden width, computing tokens
// query positions across heads attention heads. The input is whatever
// the chain produced (typically the QKV projection or the softmaxed
// scores); like FC, attention reshapes its input, so no edge agreement
// is enforced.
func (b *Builder) Attn(name string, width, heads, ctx, tokens int) int {
	return b.push(Layer{
		Name: name, Type: Attn,
		InC: width, InH: 1, InW: 1,
		OutC: width, Kernel: 1, Stride: 1,
		Heads: heads, Ctx: ctx, Tokens: tokens,
	})
}

// Softmax appends the attention-score normalization. It carries no
// weights and is fused into its producer for scheduling, contributing
// a dependency edge only; the feature shape passes through unchanged.
func (b *Builder) Softmax(name string) int {
	return b.push(Layer{
		Name: name, Type: Softmax,
		InC: b.curC, InH: b.curH, InW: b.curW,
		OutC: b.curC, Kernel: 1, Stride: 1,
	})
}

// Pool appends a pooling layer with a k x k window, given stride, and
// symmetric padding.
func (b *Builder) Pool(name string, k, stride, pad int) int {
	return b.push(Layer{
		Name: name, Type: Pool,
		InC: b.curC, InH: b.curH, InW: b.curW,
		OutC: b.curC, Kernel: k, Stride: stride, Pad: pad,
	})
}

// GlobalPool appends a pooling layer that reduces the spatial extent
// to 1x1 (global average pooling).
func (b *Builder) GlobalPool(name string) int {
	return b.push(Layer{
		Name: name, Type: Pool,
		InC: b.curC, InH: b.curH, InW: b.curW,
		OutC: b.curC, Kernel: b.curH, Stride: b.curH,
	})
}

// Mark returns the index of the most recently appended layer, for use
// as a residual source with ConvFrom or Add.
func (b *Builder) Mark() int { return b.last }

// ConvFrom appends a convolution reading from the given earlier layer
// instead of the most recent one (e.g. a projection shortcut).
func (b *Builder) ConvFrom(name string, from, outC, k, stride, pad int) int {
	if b.err != nil {
		return -1
	}
	if from < 0 || from >= len(b.net.Layers) {
		b.err = fmt.Errorf("nn: ConvFrom %q: bad source index %d", name, from)
		return -1
	}
	src := b.net.Layers[from]
	return b.push(Layer{
		Name: name, Type: Conv,
		InC: src.OutC, InH: src.OutH(), InW: src.OutW(),
		OutC: outC, Kernel: k, Stride: stride, Pad: pad,
		Inputs: []int{from},
	})
}

// Add records a residual join: the next layer appended will depend on
// both the current chain tip and the layer at index from. The join
// itself is performed by the accumulator unit and costs nothing, so it
// is expressed purely as an extra dependency edge on the next layer.
func (b *Builder) Add(from int) {
	if b.err != nil {
		return
	}
	if from < 0 || from > b.last {
		b.err = fmt.Errorf("nn: Add: bad source index %d", from)
		return
	}
	b.pendingJoin = append(b.pendingJoin, from)
}

// Build validates and returns the constructed network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	net := b.net
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return &net, nil
}

// MustBuild is Build for static model definitions; it panics on error.
func (b *Builder) MustBuild() *Network {
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	return net
}
