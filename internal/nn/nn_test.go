package nn

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLayerTypeString(t *testing.T) {
	cases := map[LayerType]string{
		Conv: "CONV", DWConv: "DWCONV", FC: "FC", Pool: "POOL",
		LayerType(42): "LayerType(42)",
	}
	for lt, want := range cases {
		if got := lt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(lt), got, want)
		}
	}
}

func TestHasWeights(t *testing.T) {
	if !Conv.HasWeights() || !DWConv.HasWeights() || !FC.HasWeights() {
		t.Error("weight layers misclassified")
	}
	if Pool.HasWeights() {
		t.Error("Pool reports weights")
	}
}

func TestConvOutputShape(t *testing.T) {
	cases := []struct {
		in, k, stride, pad int
		want               int
	}{
		{224, 3, 1, 1, 224}, // same-padded 3x3
		{224, 3, 2, 1, 112}, // strided
		{224, 7, 2, 3, 112}, // ResNet stem
		{112, 3, 2, 1, 56},  // ResNet maxpool
		{224, 2, 2, 0, 112}, // VGG pool
		{7, 7, 7, 0, 1},     // global pool
		{5, 7, 1, 0, 1},     // kernel larger than input clamps to 1
	}
	for _, tc := range cases {
		l := Layer{InH: tc.in, InW: tc.in, Kernel: tc.k, Stride: tc.stride, Pad: tc.pad}
		if got := l.OutH(); got != tc.want {
			t.Errorf("out(%d,k=%d,s=%d,p=%d) = %d, want %d", tc.in, tc.k, tc.stride, tc.pad, got, tc.want)
		}
	}
}

func TestWeightCount(t *testing.T) {
	conv := Layer{Type: Conv, InC: 64, OutC: 128, Kernel: 3}
	if got, want := conv.WeightCount(), int64(64*3*3*128); got != want {
		t.Errorf("conv weights = %d, want %d", got, want)
	}
	dw := Layer{Type: DWConv, InC: 64, OutC: 64, Kernel: 3}
	if got, want := dw.WeightCount(), int64(64*3*3); got != want {
		t.Errorf("dw weights = %d, want %d", got, want)
	}
	fc := Layer{Type: FC, InC: 4096, OutC: 1000}
	if got, want := fc.WeightCount(), int64(4096*1000); got != want {
		t.Errorf("fc weights = %d, want %d", got, want)
	}
	pool := Layer{Type: Pool, InC: 64, OutC: 64, Kernel: 2}
	if got := pool.WeightCount(); got != 0 {
		t.Errorf("pool weights = %d, want 0", got)
	}
}

func TestMACs(t *testing.T) {
	conv := Layer{Type: Conv, InC: 3, InH: 224, InW: 224, OutC: 64, Kernel: 3, Stride: 1, Pad: 1}
	want := int64(224*224) * 64 * 3 * 9
	if got := conv.MACs(); got != want {
		t.Errorf("conv MACs = %d, want %d", got, want)
	}
}

// Table II fidelity: layer counts per network.
func TestZooMatchesTable2(t *testing.T) {
	cases := []struct {
		net      *Network
		fc, conv int
	}{
		{ResNet34(), 1, 36},
		{ResNet50(), 1, 53},
		{VGG16(), 3, 13},
		{MobileNet(), 1, 27},
		{GNMT(), 6, 0},
	}
	for _, tc := range cases {
		c := tc.net.CountByType()
		conv := c[Conv] + c[DWConv]
		if c[FC] != tc.fc || conv != tc.conv {
			t.Errorf("%s: FC=%d CONV=%d, want FC=%d CONV=%d",
				tc.net.Name, c[FC], conv, tc.fc, tc.conv)
		}
	}
}

func TestZooValidates(t *testing.T) {
	for name, net := range Zoo() {
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Published parameter counts (weights only, no biases): ResNet-50
// ~25.5M, VGG-16 ~138.3M, MobileNetV1 ~4.2M, ResNet-34 ~21.8M.
func TestZooWeightCounts(t *testing.T) {
	cases := []struct {
		net    *Network
		lo, hi int64
	}{
		{ResNet34(), 21_000_000, 22_000_000},
		{ResNet50(), 25_000_000, 26_000_000},
		{VGG16(), 138_000_000, 139_000_000},
		{MobileNet(), 4_000_000, 4_500_000},
		{GNMT(), 60_000_000, 80_000_000},
	}
	for _, tc := range cases {
		if got := tc.net.TotalWeights(); got < tc.lo || got > tc.hi {
			t.Errorf("%s weights = %d, want within [%d, %d]", tc.net.Name, got, tc.lo, tc.hi)
		}
	}
}

// Published MAC counts for 224x224 inputs: ResNet-50 ~4.1 GMACs,
// VGG-16 ~15.5 GMACs, MobileNetV1 ~0.57 GMACs, ResNet-34 ~3.6 GMACs.
func TestZooMACCounts(t *testing.T) {
	cases := []struct {
		net    *Network
		lo, hi int64
	}{
		{ResNet34(), 3_400_000_000, 3_800_000_000},
		{ResNet50(), 3_800_000_000, 4_300_000_000},
		{VGG16(), 15_000_000_000, 16_000_000_000},
		{MobileNet(), 500_000_000, 650_000_000},
	}
	for _, tc := range cases {
		if got := tc.net.TotalMACs(); got < tc.lo || got > tc.hi {
			t.Errorf("%s MACs = %d, want within [%d, %d]", tc.net.Name, got, tc.lo, tc.hi)
		}
	}
}

func TestResNetFinalShapes(t *testing.T) {
	for _, net := range []*Network{ResNet34(), ResNet50()} {
		last := net.Layers[len(net.Layers)-1]
		if last.Type != FC || last.OutC != 1000 {
			t.Errorf("%s final layer = %v/%d", net.Name, last.Type, last.OutC)
		}
		if last.InC != 512 && last.InC != 2048 {
			t.Errorf("%s classifier input = %d", net.Name, last.InC)
		}
	}
}

func TestResNetHasResidualEdges(t *testing.T) {
	net := ResNet50()
	multi := 0
	for _, l := range net.Layers {
		if len(l.Inputs) > 1 {
			multi++
		}
	}
	// One join per bottleneck block: 3+4+6+3 = 16.
	if multi != 16 {
		t.Errorf("ResNet50 residual joins = %d, want 16", multi)
	}
}

func TestVGG16Shapes(t *testing.T) {
	net := VGG16()
	// fc6 flattens 512x7x7.
	for _, l := range net.Layers {
		if l.Name == "fc6" && l.InC != 512*7*7 {
			t.Errorf("fc6 input = %d, want %d", l.InC, 512*7*7)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"RN34", "ResNet34", "resnet50", "VGG16", "MN", "gnmt"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestBuilderChain(t *testing.T) {
	b := NewBuilder("tiny", 3, 32, 32)
	b.Conv("c1", 16, 3, 1, 1)
	b.Pool("p1", 2, 2, 0)
	b.FC("fc", 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(net.Layers))
	}
	fc := net.Layers[2]
	if fc.InC != 16*16*16 {
		t.Errorf("fc input = %d, want %d (16ch x 16x16)", fc.InC, 16*16*16)
	}
}

func TestBuilderResidual(t *testing.T) {
	b := NewBuilder("res", 8, 16, 16)
	e := b.Conv("a", 8, 3, 1, 1)
	b.Conv("b", 8, 3, 1, 1)
	b.Add(e)
	b.Conv("c", 8, 3, 1, 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := net.Layers[2]
	if len(c.Inputs) != 2 || c.Inputs[0] != 1 || c.Inputs[1] != 0 {
		t.Errorf("residual inputs = %v, want [1 0]", c.Inputs)
	}
}

func TestBuilderConvFrom(t *testing.T) {
	b := NewBuilder("proj", 8, 16, 16)
	e := b.Conv("a", 8, 3, 1, 1)
	b.Conv("b", 16, 3, 2, 1)
	b.ConvFrom("proj", e, 16, 1, 2, 0)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := net.Layers[2]
	if len(p.Inputs) != 1 || p.Inputs[0] != 0 {
		t.Errorf("proj inputs = %v, want [0]", p.Inputs)
	}
	if p.OutH() != net.Layers[1].OutH() {
		t.Errorf("proj output %d != branch output %d", p.OutH(), net.Layers[1].OutH())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", 3, 8, 8)
	b.Conv("c", 8, 3, 1, 1)
	b.ConvFrom("x", 99, 8, 1, 1, 0)
	if _, err := b.Build(); err == nil {
		t.Error("ConvFrom with bad index built successfully")
	}
	b2 := NewBuilder("bad2", 3, 8, 8)
	b2.Conv("c", 8, 3, 1, 1)
	b2.Add(5)
	if _, err := b2.Build(); err == nil {
		t.Error("Add with bad index built successfully")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on empty network did not panic")
		}
	}()
	NewBuilder("empty", 3, 8, 8).MustBuild()
}

func TestValidateRejects(t *testing.T) {
	empty := &Network{Name: "empty"}
	if err := empty.Validate(); !errors.Is(err, ErrEmptyNetwork) {
		t.Errorf("empty: %v", err)
	}
	fwd := &Network{Name: "fwd", Layers: []Layer{
		{Name: "a", Type: Conv, InC: 3, InH: 8, InW: 8, OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Inputs: []int{1}},
		{Name: "b", Type: Conv, InC: 8, InH: 8, InW: 8, OutC: 8, Kernel: 3, Stride: 1, Pad: 1},
	}}
	if err := fwd.Validate(); !errors.Is(err, ErrBadTopology) {
		t.Errorf("forward edge: %v", err)
	}
	mismatch := &Network{Name: "mm", Layers: []Layer{
		{Name: "a", Type: Conv, InC: 3, InH: 8, InW: 8, OutC: 8, Kernel: 3, Stride: 1, Pad: 1},
		{Name: "b", Type: Conv, InC: 16, InH: 8, InW: 8, OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Inputs: []int{0}},
	}}
	if err := mismatch.Validate(); !errors.Is(err, ErrBadShape) {
		t.Errorf("channel mismatch: %v", err)
	}
}

func TestInputOutputBytes(t *testing.T) {
	net := VGG16()
	if got, want := net.InputBytes(1), int64(3*224*224); got != want {
		t.Errorf("VGG input bytes = %d, want %d", got, want)
	}
	if got, want := net.OutputBytes(1), int64(1000); got != want {
		t.Errorf("VGG output bytes = %d, want %d", got, want)
	}
}

func TestWeightLayers(t *testing.T) {
	net := VGG16()
	wl := net.WeightLayers()
	if len(wl) != 16 {
		t.Errorf("VGG weight layers = %d, want 16", len(wl))
	}
	for _, i := range wl {
		if !net.Layers[i].Type.HasWeights() {
			t.Errorf("layer %d is not a weight layer", i)
		}
	}
}

// Shape inference is consistent across random chain networks: every
// produced network validates.
func TestPropertyBuilderChainsValidate(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func(n uint32) int { r = r*1664525 + 1013904223; return int(r % n) }
		b := NewBuilder("rand", 1+next(8), 16+next(64), 16+next(64))
		layers := 1 + next(12)
		for i := 0; i < layers; i++ {
			switch next(4) {
			case 0:
				b.Conv("c", 1+next(64), 1+2*next(3), 1+next(2), next(2))
			case 1:
				b.DWConv("d", 3, 1, 1)
			case 2:
				b.Pool("p", 2, 2, 0)
			default:
				b.FC("f", 1+next(256))
			}
		}
		net, err := b.Build()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return net.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
