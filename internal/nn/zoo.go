package nn

import "fmt"

// This file defines the evaluation networks of the paper's Table II:
//
//	Name       FC  CONV  Batch
//	ResNet34    1    36   1-32
//	ResNet50    1    53   1-32
//	VGG16       3    13   1-32
//	MobileNet   1    27   1-32
//	GNMT        6     -   1-32
//
// The definitions follow the published architectures; depthwise
// convolutions in MobileNet count as CONV layers, matching Table II.

// VGG16 returns the VGG-16 network (Simonyan & Zisserman, 2014) for
// 224x224x3 inputs: 13 convolutions in five stages and 3 FC layers.
func VGG16() *Network {
	b := NewBuilder("VGG16", 3, 224, 224)
	stage := func(s int, convs, outC int) {
		for i := 1; i <= convs; i++ {
			b.Conv(fmt.Sprintf("conv%d_%d", s, i), outC, 3, 1, 1)
		}
		b.Pool(fmt.Sprintf("pool%d", s), 2, 2, 0)
	}
	stage(1, 2, 64)
	stage(2, 2, 128)
	stage(3, 3, 256)
	stage(4, 3, 512)
	stage(5, 3, 512)
	b.FC("fc6", 4096)
	b.FC("fc7", 4096)
	b.FC("fc8", 1000)
	return b.MustBuild()
}

// ResNet34 returns the ResNet-34 network (He et al., 2016): an initial
// 7x7 convolution, four stages of basic blocks (3, 4, 6, 3 blocks of
// two 3x3 convolutions), projection shortcuts at stage transitions,
// global average pooling, and one FC classifier. 36 CONV + 1 FC.
func ResNet34() *Network {
	b := NewBuilder("ResNet34", 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3)
	b.Pool("pool1", 3, 2, 1)

	basicBlock := func(name string, outC, stride int) {
		entry := b.Mark()
		a := b.Conv(name+"a", outC, 3, stride, 1)
		_ = a
		main := b.Conv(name+"b", outC, 3, 1, 1)
		if stride != 1 || b.net.Layers[entry].OutC != outC {
			b.ConvFrom(name+"_proj", entry, outC, 1, stride, 0)
			b.Add(main)
		} else {
			b.Add(entry)
		}
	}
	stage := func(s, blocks, outC, stride int) {
		for i := 1; i <= blocks; i++ {
			st := 1
			if i == 1 {
				st = stride
			}
			basicBlock(fmt.Sprintf("conv%d_%d", s, i), outC, st)
		}
	}
	stage(2, 3, 64, 1)
	stage(3, 4, 128, 2)
	stage(4, 6, 256, 2)
	stage(5, 3, 512, 2)
	b.GlobalPool("avgpool")
	b.FC("fc", 1000)
	return b.MustBuild()
}

// ResNet50 returns the ResNet-50 network (He et al., 2016): an initial
// 7x7 convolution, four stages of bottleneck blocks (3, 4, 6, 3 blocks
// of 1x1-3x3-1x1 convolutions), projection shortcuts on every stage
// entry, global average pooling, and one FC classifier. 53 CONV + 1 FC.
func ResNet50() *Network {
	b := NewBuilder("ResNet50", 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3)
	b.Pool("pool1", 3, 2, 1)

	bottleneck := func(name string, midC, stride int) {
		outC := 4 * midC
		entry := b.Mark()
		b.Conv(name+"a", midC, 1, stride, 0)
		b.Conv(name+"b", midC, 3, 1, 1)
		main := b.Conv(name+"c", outC, 1, 1, 0)
		if stride != 1 || b.net.Layers[entry].OutC != outC {
			b.ConvFrom(name+"_proj", entry, outC, 1, stride, 0)
			b.Add(main)
		} else {
			b.Add(entry)
		}
	}
	stage := func(s, blocks, midC, stride int) {
		for i := 1; i <= blocks; i++ {
			st := 1
			if i == 1 {
				st = stride
			}
			bottleneck(fmt.Sprintf("conv%d_%d", s, i), midC, st)
		}
	}
	stage(2, 3, 64, 1)
	stage(3, 4, 128, 2)
	stage(4, 6, 256, 2)
	stage(5, 3, 512, 2)
	b.GlobalPool("avgpool")
	b.FC("fc", 1000)
	return b.MustBuild()
}

// MobileNet returns MobileNetV1 (Howard et al., 2017) at width
// multiplier 1.0 for 224x224x3 inputs: one standard convolution
// followed by 13 depthwise-separable blocks (depthwise 3x3 + pointwise
// 1x1), global average pooling, and one FC classifier. Counting
// depthwise and pointwise convolutions as CONV layers gives the
// paper's 27 CONV + 1 FC.
func MobileNet() *Network {
	b := NewBuilder("MobileNet", 3, 224, 224)
	b.Conv("conv1", 32, 3, 2, 1)
	sep := func(i, outC, stride int) {
		b.DWConv(fmt.Sprintf("conv_dw%d", i), 3, stride, 1)
		b.Conv(fmt.Sprintf("conv_pw%d", i), outC, 1, 1, 0)
	}
	sep(1, 64, 1)
	sep(2, 128, 2)
	sep(3, 128, 1)
	sep(4, 256, 2)
	sep(5, 256, 1)
	sep(6, 512, 2)
	for i := 7; i <= 11; i++ {
		sep(i, 512, 1)
	}
	sep(12, 1024, 2)
	sep(13, 1024, 1)
	b.GlobalPool("avgpool")
	b.FC("fc", 1000)
	return b.MustBuild()
}

// GNMT returns the 6-FC-layer abstraction of Google's neural machine
// translation model used by the paper's Table II: bidirectional
// encoder LSTM, two stacked encoder LSTMs, decoder LSTM, attention,
// and the vocabulary projection. LSTM layers compute the four gate
// matrices as one (2*hidden) x (4*hidden) matrix product; hidden size
// is 1024 and the vocabulary is 32k. Following Table II, each FC layer
// executes once per inference (the paper schedules GNMT as six FC
// layer executions; the embedding lookup stays on the CPU, §V-A), so
// every layer is memory-intensive at any batch size — the property the
// co-location studies rely on.
func GNMT() *Network {
	const hidden = 1024
	b := NewBuilder("GNMT", 2*hidden, 1, 1)
	lstm := func(name string) {
		b.push(Layer{
			Name: name, Type: FC,
			InC: 2 * hidden, InH: 1, InW: 1,
			OutC: 4 * hidden, Kernel: 1, Stride: 1,
			Inputs: inputsOf(b),
		})
	}
	lstm("enc_bi_lstm")
	lstm("enc_lstm1")
	lstm("enc_lstm2")
	lstm("dec_lstm")
	b.push(Layer{
		Name: "attention", Type: FC,
		InC: 2 * hidden, InH: 1, InW: 1,
		OutC: hidden, Kernel: 1, Stride: 1,
		Inputs: inputsOf(b),
	})
	b.push(Layer{
		Name: "projection", Type: FC,
		InC: hidden, InH: 1, InW: 1,
		OutC: 32768, Kernel: 1, Stride: 1,
		Inputs: inputsOf(b),
	})
	return b.MustBuild()
}

// inputsOf returns the chain edge for a hand-pushed layer: the current
// builder tip, or none for the first layer.
func inputsOf(b *Builder) []int {
	if b.last < 0 {
		return nil
	}
	return []int{b.last}
}

// Zoo returns the five evaluation networks of Table II, keyed by the
// short names used throughout the paper's figures.
func Zoo() map[string]*Network {
	return map[string]*Network{
		"RN34":  ResNet34(),
		"RN50":  ResNet50(),
		"VGG16": VGG16(),
		"MN":    MobileNet(),
		"GNMT":  GNMT(),
	}
}

// ByName returns the zoo network with the given short or long name.
func ByName(name string) (*Network, error) {
	bert := func() *Network { return BERTBase(128) }
	gptPrefill := func() *Network { return GPT2Prefill(128) }
	gptDecode := func() *Network { return GPT2Decode(128) }
	alias := map[string]func() *Network{
		"RN34": ResNet34, "ResNet34": ResNet34, "resnet34": ResNet34,
		"RN50": ResNet50, "ResNet50": ResNet50, "resnet50": ResNet50,
		"VGG16": VGG16, "vgg16": VGG16,
		"MN": MobileNet, "MobileNet": MobileNet, "mobilenet": MobileNet,
		"GNMT": GNMT, "gnmt": GNMT,
		"BERT": bert, "bert": bert,
		"GPT2": gptPrefill, "gpt2": gptPrefill,
		"GPT2-decode": gptDecode, "gpt2-decode": gptDecode,
	}
	if f, ok := alias[name]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("nn: unknown network %q", name)
}
