// Package isa defines the accelerator's instruction set: TPU-like
// CISC instructions at sub-layer granularity, the representation the
// paper's compile step assumes ("Google's TPU-like CISC instructions
// which utilize sub-layer granularity operations", §IV). A compiled
// network lowers to one program per inference; the sub-layer
// scheduling table the runtime uses is exactly the metadata of this
// program, so the package also serves as the on-disk exchange format
// between the compiler and the accelerator.
package isa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"aimt/internal/arch"
	"aimt/internal/compiler"
)

// Opcode selects an instruction's operation.
type Opcode uint8

// The instruction set, modeled on the TPU's CISC operations (Jouppi
// et al., ISCA 2017) at the paper's sub-layer granularity.
const (
	// OpReadHost streams input features from host memory into the
	// input buffer. Arg0 is the byte count.
	OpReadHost Opcode = iota + 1

	// OpReadWeights fetches one memory block (one PE-array weight
	// mapping) from HBM into the weight SRAM. Arg0 is the byte count,
	// Arg1 the estimated HBM occupancy in cycles.
	OpReadWeights

	// OpMatMul executes one compute block: streams the input features
	// through the weights loaded by the matching OpReadWeights. Arg1
	// is the estimated PE occupancy in cycles.
	OpMatMul

	// OpActivate runs the layer's fused post-processing (activation,
	// normalization, pooling) on the dedicated units.
	OpActivate

	// OpWriteHost streams output features back to host memory. Arg0 is
	// the byte count.
	OpWriteHost

	// OpSync is a layer barrier: all preceding operations of the layer
	// must retire before successors of the layer may start.
	OpSync

	opMax = OpSync
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpReadHost:
		return "READ_HOST"
	case OpReadWeights:
		return "READ_WEIGHTS"
	case OpMatMul:
		return "MATMUL"
	case OpActivate:
		return "ACTIVATE"
	case OpWriteHost:
		return "WRITE_HOST"
	case OpSync:
		return "SYNC"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Instruction is one fixed-size CISC operation.
type Instruction struct {
	// Op is the operation.
	Op Opcode

	// Layer is the compiled-layer index the instruction belongs to
	// (-1 as 0xFFFF is not used; host transfers carry layer 0).
	Layer uint16

	// Iter is the sub-layer index within the layer.
	Iter uint32

	// Arg0 is operation-specific: byte counts for transfers.
	Arg0 uint64

	// Arg1 is operation-specific: estimated occupancy cycles.
	Arg1 uint64
}

// Program is a compiled network's instruction stream plus its
// identifying header fields.
type Program struct {
	// Name is the source network name.
	Name string

	// Batch is the batch size the program was compiled for.
	Batch int

	// Instructions holds the stream in program order.
	Instructions []Instruction
}

// Lower translates a compiled network into its instruction stream:
// READ_HOST, then per layer a double-buffered interleave of
// READ_WEIGHTS and MATMUL per sub-layer, ACTIVATE and SYNC per layer,
// and a final WRITE_HOST.
func Lower(cn *compiler.CompiledNetwork) *Program {
	p := &Program{Name: cn.Name, Batch: cn.Batch}
	p.emit(Instruction{Op: OpReadHost, Arg0: uint64(cn.HostInBytes)})
	for li, l := range cn.Layers {
		for it := 0; it < l.Iters; it++ {
			p.emit(Instruction{
				Op: OpReadWeights, Layer: uint16(li), Iter: uint32(it),
				Arg0: uint64(l.MBBytes), Arg1: uint64(l.MBCycles),
			})
			p.emit(Instruction{
				Op: OpMatMul, Layer: uint16(li), Iter: uint32(it),
				Arg1: uint64(l.CBCycles),
			})
		}
		p.emit(Instruction{Op: OpActivate, Layer: uint16(li)})
		p.emit(Instruction{Op: OpSync, Layer: uint16(li)})
	}
	p.emit(Instruction{Op: OpWriteHost, Arg0: uint64(cn.HostOutBytes)})
	return p
}

func (p *Program) emit(i Instruction) { p.Instructions = append(p.Instructions, i) }

// Stats summarizes a program.
type Stats struct {
	// PerOp counts instructions per opcode.
	PerOp map[Opcode]int
	// WeightBytes is the total HBM weight traffic.
	WeightBytes arch.Bytes
	// MemCycles and PECycles are the estimated engine occupancies.
	MemCycles, PECycles arch.Cycles
}

// Stats computes the program's summary.
func (p *Program) Stats() Stats {
	s := Stats{PerOp: make(map[Opcode]int)}
	for _, i := range p.Instructions {
		s.PerOp[i.Op]++
		switch i.Op {
		case OpReadWeights:
			s.WeightBytes += arch.Bytes(i.Arg0)
			s.MemCycles += arch.Cycles(i.Arg1)
		case OpMatMul:
			s.PECycles += arch.Cycles(i.Arg1)
		}
	}
	return s
}

// Binary format: a fixed header followed by fixed 24-byte records,
// little-endian throughout.
//
//	magic   [4]byte "AIMT"
//	version uint16  (1)
//	batch   uint16
//	nameLen uint16
//	count   uint32
//	name    [nameLen]byte
//	records count x { op u8, _ u8, layer u16, iter u32, arg0 u64, arg1 u64 }
const (
	formatVersion = 1
	recordSize    = 24
)

var magic = [4]byte{'A', 'I', 'M', 'T'}

// Encoding errors.
var (
	ErrBadMagic   = errors.New("isa: bad magic")
	ErrBadVersion = errors.New("isa: unsupported format version")
	ErrBadOpcode  = errors.New("isa: invalid opcode")
	ErrTruncated  = errors.New("isa: truncated program")
)

// Encode writes the program in the binary format.
func (p *Program) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	name := []byte(p.Name)
	if len(name) > 0xFFFF {
		name = name[:0xFFFF]
	}
	hdr := []any{
		uint16(formatVersion),
		uint16(p.Batch),
		uint16(len(name)),
		uint32(len(p.Instructions)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, i := range p.Instructions {
		rec[0] = byte(i.Op)
		rec[1] = 0
		binary.LittleEndian.PutUint16(rec[2:], i.Layer)
		binary.LittleEndian.PutUint32(rec[4:], i.Iter)
		binary.LittleEndian.PutUint64(rec[8:], i.Arg0)
		binary.LittleEndian.PutUint64(rec[16:], i.Arg1)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a program in the binary format, validating the header
// and every opcode.
func Decode(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var version, batch, nameLen uint16
	var count uint32
	for _, v := range []any{&version, &batch, &nameLen, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	p := &Program{Name: string(name), Batch: int(batch)}
	var rec [recordSize]byte
	for n := uint32(0); n < count; n++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrTruncated, n, err)
		}
		op := Opcode(rec[0])
		if op == 0 || op > opMax {
			return nil, fmt.Errorf("%w: %d at record %d", ErrBadOpcode, rec[0], n)
		}
		p.emit(Instruction{
			Op:    op,
			Layer: binary.LittleEndian.Uint16(rec[2:]),
			Iter:  binary.LittleEndian.Uint32(rec[4:]),
			Arg0:  binary.LittleEndian.Uint64(rec[8:]),
			Arg1:  binary.LittleEndian.Uint64(rec[16:]),
		})
	}
	return p, nil
}

// Disassemble writes a human-readable listing of the program.
func (p *Program) Disassemble(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; program %s, batch %d, %d instructions\n", p.Name, p.Batch, len(p.Instructions))
	for pc, i := range p.Instructions {
		switch i.Op {
		case OpReadHost, OpWriteHost:
			fmt.Fprintf(bw, "%6d  %-13s bytes=%d\n", pc, i.Op, i.Arg0)
		case OpReadWeights:
			fmt.Fprintf(bw, "%6d  %-13s layer=%d iter=%d bytes=%d cycles=%d\n", pc, i.Op, i.Layer, i.Iter, i.Arg0, i.Arg1)
		case OpMatMul:
			fmt.Fprintf(bw, "%6d  %-13s layer=%d iter=%d cycles=%d\n", pc, i.Op, i.Layer, i.Iter, i.Arg1)
		default:
			fmt.Fprintf(bw, "%6d  %-13s layer=%d\n", pc, i.Op, i.Layer)
		}
	}
	return bw.Flush()
}

// ToCompiledNetwork reconstructs a runnable sub-layer scheduling table
// from a program, so a .aimt file round-trips into the simulator. The
// instruction stream encodes layer order through SYNC barriers but not
// the source DAG, so the reconstruction uses the conservative
// sequential interpretation: each layer depends on the one before it.
// For chain networks (VGG16, GNMT, MobileNet) this is exact; for
// residual networks it is a legal refinement (strictly more ordered).
// block is the SRAM block size used to recover MBBlocks from the
// encoded byte counts.
func (p *Program) ToCompiledNetwork(block arch.Bytes) (*compiler.CompiledNetwork, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if block <= 0 {
		return nil, errors.New("isa: non-positive block size")
	}
	cn := &compiler.CompiledNetwork{Name: p.Name, Batch: p.Batch}
	layerOf := map[uint16]int{}
	for _, i := range p.Instructions {
		switch i.Op {
		case OpReadHost:
			cn.HostInBytes = arch.Bytes(i.Arg0)
		case OpWriteHost:
			cn.HostOutBytes = arch.Bytes(i.Arg0)
		case OpReadWeights:
			idx, ok := layerOf[i.Layer]
			if !ok {
				idx = len(cn.Layers)
				layerOf[i.Layer] = idx
				l := compiler.CompiledLayer{
					Name:     fmt.Sprintf("layer%d", i.Layer),
					MBCycles: arch.Cycles(i.Arg1),
					MBBytes:  arch.Bytes(i.Arg0),
					MBBlocks: int((arch.Bytes(i.Arg0) + block - 1) / block),
				}
				if idx > 0 {
					l.Deps = []int{idx - 1}
					cn.Layers[idx-1].Posts = append(cn.Layers[idx-1].Posts, idx)
				}
				cn.Layers = append(cn.Layers, l)
			}
			cn.Layers[idx].Iters++
		case OpMatMul:
			idx, ok := layerOf[i.Layer]
			if !ok {
				return nil, fmt.Errorf("isa: MATMUL for unknown layer %d", i.Layer)
			}
			cn.Layers[idx].CBCycles = arch.Cycles(i.Arg1)
		}
	}
	if err := cn.Validate(); err != nil {
		return nil, fmt.Errorf("isa: reconstructed table invalid: %w", err)
	}
	return cn, nil
}

// Validate checks the program's structural invariants: every MATMUL is
// preceded by its READ_WEIGHTS, sub-layer indices are dense per layer,
// and the stream is bracketed by host transfers.
func (p *Program) Validate() error {
	if len(p.Instructions) < 2 {
		return errors.New("isa: program too short")
	}
	if p.Instructions[0].Op != OpReadHost {
		return errors.New("isa: program must start with READ_HOST")
	}
	if p.Instructions[len(p.Instructions)-1].Op != OpWriteHost {
		return errors.New("isa: program must end with WRITE_HOST")
	}
	type key struct {
		layer uint16
		iter  uint32
	}
	fetched := map[key]bool{}
	for pc, i := range p.Instructions {
		switch i.Op {
		case OpReadWeights:
			fetched[key{i.Layer, i.Iter}] = true
		case OpMatMul:
			if !fetched[key{i.Layer, i.Iter}] {
				return fmt.Errorf("isa: MATMUL at %d before its READ_WEIGHTS (layer %d iter %d)", pc, i.Layer, i.Iter)
			}
		}
	}
	return nil
}
