package isa

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/nn"
)

func lowerVGG(t *testing.T, batch int) (*Program, *compiler.CompiledNetwork) {
	t.Helper()
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cn, err := compiler.Compile(nn.VGG16(), cfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	return Lower(cn), cn
}

func TestLowerShape(t *testing.T) {
	p, cn := lowerVGG(t, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	subs := cn.Stats().SubLayers
	if s.PerOp[OpReadWeights] != subs || s.PerOp[OpMatMul] != subs {
		t.Errorf("fetch/matmul counts = %d/%d, want %d sub-layers each",
			s.PerOp[OpReadWeights], s.PerOp[OpMatMul], subs)
	}
	if s.PerOp[OpSync] != len(cn.Layers) || s.PerOp[OpActivate] != len(cn.Layers) {
		t.Errorf("per-layer ops = %d/%d, want %d", s.PerOp[OpSync], s.PerOp[OpActivate], len(cn.Layers))
	}
	if s.PerOp[OpReadHost] != 1 || s.PerOp[OpWriteHost] != 1 {
		t.Errorf("host ops = %d/%d", s.PerOp[OpReadHost], s.PerOp[OpWriteHost])
	}
	// The program's estimated occupancies equal the scheduling table's.
	cs := cn.Stats()
	if s.MemCycles != cs.MBCycles || s.PECycles != cs.CBCycles {
		t.Errorf("program cycles %d/%d != table %d/%d", s.MemCycles, s.PECycles, cs.MBCycles, cs.CBCycles)
	}
	if s.WeightBytes != cs.WeightBytes {
		t.Errorf("program weights %d != table %d", s.WeightBytes, cs.WeightBytes)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p, _ := lowerVGG(t, 4)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Batch != p.Batch {
		t.Errorf("header = %q/%d, want %q/%d", got.Name, got.Batch, p.Name, p.Batch)
	}
	if len(got.Instructions) != len(p.Instructions) {
		t.Fatalf("count = %d, want %d", len(got.Instructions), len(p.Instructions))
	}
	for i := range p.Instructions {
		if got.Instructions[i] != p.Instructions[i] {
			t.Fatalf("instruction %d = %+v, want %+v", i, got.Instructions[i], p.Instructions[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	p, _ := lowerVGG(t, 1)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := Decode(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) {
		t.Errorf("bad magic: %v", err)
	}
	bad := append([]byte(nil), full...)
	bad[0] = 'X'
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt magic: %v", err)
	}
	ver := append([]byte(nil), full...)
	ver[4] = 99
	if _, err := Decode(bytes.NewReader(ver)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	trunc := full[:len(full)-5]
	if _, err := Decode(bytes.NewReader(trunc)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	// Corrupt an opcode in the first record (header is 4+2+2+2+4 +
	// nameLen bytes).
	nameLen := int(full[8]) | int(full[9])<<8
	opOff := 14 + nameLen
	op := append([]byte(nil), full...)
	op[opOff] = 0xEE
	if _, err := Decode(bytes.NewReader(op)); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("bad opcode: %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	p, _ := lowerVGG(t, 1)
	var buf bytes.Buffer
	if err := p.Disassemble(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"READ_HOST", "READ_WEIGHTS", "MATMUL", "ACTIVATE", "SYNC", "WRITE_HOST", "program VGG16"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != len(p.Instructions)+1 {
		t.Errorf("listing lines = %d, want %d", lines, len(p.Instructions)+1)
	}
}

func TestValidateCatchesReorderedProgram(t *testing.T) {
	p, _ := lowerVGG(t, 1)
	// Swap a READ_WEIGHTS/MATMUL pair so the matmul comes first.
	for i := 0; i < len(p.Instructions)-1; i++ {
		if p.Instructions[i].Op == OpReadWeights && p.Instructions[i+1].Op == OpMatMul {
			p.Instructions[i], p.Instructions[i+1] = p.Instructions[i+1], p.Instructions[i]
			break
		}
	}
	if err := p.Validate(); err == nil {
		t.Error("reordered program validated")
	}
}

func TestOpcodeString(t *testing.T) {
	if OpMatMul.String() != "MATMUL" || Opcode(200).String() != "Opcode(200)" {
		t.Error("opcode strings wrong")
	}
}

// Property: arbitrary instruction streams survive an encode/decode
// round trip bit-exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(name string, batch uint8, ops []byte) bool {
		p := &Program{Name: name, Batch: int(batch)}
		for _, b := range ops {
			p.emit(Instruction{
				Op:    Opcode(b%uint8(opMax)) + 1,
				Layer: uint16(b) * 3,
				Iter:  uint32(b) * 7,
				Arg0:  uint64(b) * 11,
				Arg1:  uint64(b) * 13,
			})
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.Name != p.Name || got.Batch != p.Batch || len(got.Instructions) != len(p.Instructions) {
			return false
		}
		for i := range p.Instructions {
			if got.Instructions[i] != p.Instructions[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// A chain network's scheduling table survives lowering, binary
// encoding, decoding, and reconstruction — and simulates identically.
func TestRoundTripToSimulator(t *testing.T) {
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"VGG16", "GNMT", "MN"} {
		net, err := nn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := compiler.Compile(net, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Lower(orig).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		prog, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := prog.ToCompiledNetwork(cfg.BlockBytes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back.Layers) != len(orig.Layers) {
			t.Fatalf("%s: %d layers, want %d", name, len(back.Layers), len(orig.Layers))
		}
		for i := range orig.Layers {
			o, b := orig.Layers[i], back.Layers[i]
			if o.MBCycles != b.MBCycles || o.CBCycles != b.CBCycles ||
				o.Iters != b.Iters || o.MBBlocks != b.MBBlocks || o.MBBytes != b.MBBytes {
				t.Fatalf("%s layer %d: %+v != %+v", name, i, b, o)
			}
		}
		so, sb := orig.Stats(), back.Stats()
		if so != sb {
			t.Errorf("%s: stats %+v != %+v", name, sb, so)
		}
		if back.HostInBytes != orig.HostInBytes || back.HostOutBytes != orig.HostOutBytes {
			t.Errorf("%s: host bytes changed", name)
		}
	}
}

func TestToCompiledNetworkRejects(t *testing.T) {
	p, _ := lowerVGG(t, 1)
	if _, err := p.ToCompiledNetwork(0); err == nil {
		t.Error("zero block size accepted")
	}
	bad := &Program{Name: "x", Batch: 1}
	if _, err := bad.ToCompiledNetwork(16); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestLowerAllZooPrograms(t *testing.T) {
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, net := range nn.Zoo() {
		cn, err := compiler.Compile(net, cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := Lower(cn)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
