// Package arch describes the hardware organization of the simulated
// accelerator: a TPU-like core with multiple weight-stationary systolic
// PE arrays, an HBM channel for weight traffic, physically decoupled
// on-chip SRAM buffers, and a host link (PCIe) for feature movement.
//
// All other packages derive their timing and capacity constants from a
// Config value; nothing else in the repository hard-codes hardware
// parameters. The default configuration, PaperConfig, reproduces
// Table I of the AI-MT paper (ISCA 2020).
package arch

import (
	"errors"
	"fmt"
)

// Cycles counts clock cycles of the accelerator core.
type Cycles int64

// Bytes counts storage or transferred data in bytes.
type Bytes int64

// Common byte quantities.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// Config captures the hardware parameters of one accelerator core.
// The zero value is not usable; construct via PaperConfig or fill every
// field and call Validate.
type Config struct {
	// PEDim is the height and width of each square PE array
	// (Table I: 128).
	PEDim int

	// NumArrays is the number of PE arrays in the core (Table I: 16).
	NumArrays int

	// FreqHz is the core clock frequency in hertz (Table I: 1 GHz).
	FreqHz int64

	// MemBandwidth is the sustained HBM bandwidth available for weight
	// traffic, in bytes per second (Table I: 450 GB/s).
	MemBandwidth int64

	// WeightSRAM is the capacity of the on-chip buffer used to stage
	// prefetched weights (Table I: 1 MB).
	WeightSRAM Bytes

	// IOSRAM is the capacity of the on-chip buffers holding input and
	// output features (Table I: 18 MB). The simulator treats it as a
	// constraint on feature residency, not a scheduled resource.
	IOSRAM Bytes

	// WeightBytes is the storage size of one weight element. The paper
	// evaluates 8-bit integer inference (1 byte).
	WeightBytes int

	// HostBandwidth is the PCIe bandwidth, in bytes per second, used to
	// move input and output features between host and accelerator.
	// Fig 15 attributes the speedup reduction at large batch sizes to
	// this link becoming dominant.
	HostBandwidth int64

	// FillLatency is the pipeline fill time of one PE array: cycles from
	// the first input injected until the first output emerges. If zero,
	// Validate sets it to 2*PEDim (a diagonal wavefront must traverse
	// the array twice: once down the rows, once across the columns).
	FillLatency Cycles
}

// PaperConfig returns the hardware configuration of Table I:
// 16 PE arrays of 128x128 MACs at 1 GHz, 450 GB/s HBM, 1 MB weight
// SRAM, 18 MB input/output SRAM, 8-bit weights, 16 GB/s host link.
func PaperConfig() Config {
	return Config{
		PEDim:         128,
		NumArrays:     16,
		FreqHz:        1_000_000_000,
		MemBandwidth:  450_000_000_000,
		WeightSRAM:    1 * MiB,
		IOSRAM:        18 * MiB,
		WeightBytes:   1,
		HostBandwidth: 16_000_000_000,
		FillLatency:   0, // derived: 2*PEDim
	}
}

// TPUv2Config returns the unscaled baseline the paper starts from
// (§II-B): two 128x128 PE arrays per core with 16-bit weights and
// 300 GB/s HBM. The paper scales this to PaperConfig for server-scale
// 8-bit inference.
func TPUv2Config() Config {
	return Config{
		PEDim:         128,
		NumArrays:     2,
		FreqHz:        1_000_000_000,
		MemBandwidth:  300_000_000_000,
		WeightSRAM:    1 * MiB,
		IOSRAM:        18 * MiB,
		WeightBytes:   2,
		HostBandwidth: 16_000_000_000,
	}
}

// Validation errors.
var (
	ErrBadPEDim     = errors.New("arch: PEDim must be positive")
	ErrBadArrays    = errors.New("arch: NumArrays must be positive")
	ErrBadFreq      = errors.New("arch: FreqHz must be positive")
	ErrBadBandwidth = errors.New("arch: MemBandwidth must be positive")
	ErrBadSRAM      = errors.New("arch: WeightSRAM must hold at least one weight block")
	ErrBadWeight    = errors.New("arch: WeightBytes must be positive")
)

// Validate checks the configuration for consistency and fills derived
// defaults (FillLatency). It returns the first problem found.
func (c *Config) Validate() error {
	if c.PEDim <= 0 {
		return ErrBadPEDim
	}
	if c.NumArrays <= 0 {
		return ErrBadArrays
	}
	if c.FreqHz <= 0 {
		return ErrBadFreq
	}
	if c.MemBandwidth <= 0 {
		return ErrBadBandwidth
	}
	if c.WeightBytes <= 0 {
		return ErrBadWeight
	}
	if c.FillLatency == 0 {
		c.FillLatency = Cycles(2 * c.PEDim)
	}
	if c.WeightSRAM < c.BlockBytes() {
		return fmt.Errorf("%w: have %d, need >= %d", ErrBadSRAM, c.WeightSRAM, c.BlockBytes())
	}
	return nil
}

// BytesPerCycle is the HBM bandwidth expressed per core cycle.
func (c Config) BytesPerCycle() float64 {
	return float64(c.MemBandwidth) / float64(c.FreqHz)
}

// HostBytesPerCycle is the PCIe bandwidth expressed per core cycle.
// It returns 0 when no host link is configured (infinite bandwidth).
func (c Config) HostBytesPerCycle() float64 {
	if c.HostBandwidth <= 0 {
		return 0
	}
	return float64(c.HostBandwidth) / float64(c.FreqHz)
}

// BlockBytes is the weight footprint of a fully loaded PE array —
// the unit of SRAM allocation ("weight block") and the payload of a
// CONV memory block: PEDim^2 weights.
func (c Config) BlockBytes() Bytes {
	return Bytes(c.PEDim) * Bytes(c.PEDim) * Bytes(c.WeightBytes)
}

// ReadCyclesPerArray is the paper's read_cyc_per_array: the cycles
// needed to stream one PE array's weight block from HBM into SRAM at
// full bandwidth. It is always at least 1.
func (c Config) ReadCyclesPerArray() Cycles {
	cyc := Cycles(ceilDiv(int64(c.BlockBytes()), int64(c.BytesPerCycle())))
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// WeightBlocks is the number of whole weight blocks that fit in the
// weight SRAM; this bounds how many CONV MBs can be resident at once.
func (c Config) WeightBlocks() int {
	return int(c.WeightSRAM / c.BlockBytes())
}

// TotalColumns is the number of PE columns across all arrays: the
// number of FC filters the core can hold simultaneously.
func (c Config) TotalColumns() int {
	return c.PEDim * c.NumArrays
}

// MemCycles converts a byte count into cycles of HBM occupancy at full
// bandwidth, rounding up and never returning less than 1 for a
// positive transfer.
func (c Config) MemCycles(n Bytes) Cycles {
	if n <= 0 {
		return 0
	}
	bpc := c.BytesPerCycle()
	cyc := Cycles(ceilDiv(int64(n), int64(bpc)))
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// HostCycles converts a byte count into cycles of PCIe occupancy. A
// zero-bandwidth (unconfigured) host link transfers instantly.
func (c Config) HostCycles(n Bytes) Cycles {
	if n <= 0 || c.HostBandwidth <= 0 {
		return 0
	}
	cyc := Cycles(ceilDiv(int64(n), int64(c.HostBytesPerCycle())))
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// String renders the configuration in the style of Table I.
func (c Config) String() string {
	return fmt.Sprintf(
		"PE %dx%d x%d arrays, %.1f GHz, HBM %.0f GB/s, weight SRAM %s, I/O SRAM %s",
		c.PEDim, c.PEDim, c.NumArrays,
		float64(c.FreqHz)/1e9, float64(c.MemBandwidth)/1e9,
		FormatBytes(c.WeightSRAM), FormatBytes(c.IOSRAM),
	)
}

// FormatBytes renders a byte count using binary units (KiB/MiB/GiB).
func FormatBytes(n Bytes) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%d GiB", n/GiB)
	case n >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(GiB))
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%d MiB", n/MiB)
	case n >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(MiB))
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%d KiB", n/KiB)
	case n >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("arch: ceilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}
