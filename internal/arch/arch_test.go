package arch

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func validPaper(t *testing.T) Config {
	t.Helper()
	cfg := PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	return cfg
}

func TestPaperConfigMatchesTable1(t *testing.T) {
	cfg := validPaper(t)
	if cfg.PEDim != 128 {
		t.Errorf("PEDim = %d, want 128", cfg.PEDim)
	}
	if cfg.NumArrays != 16 {
		t.Errorf("NumArrays = %d, want 16", cfg.NumArrays)
	}
	if cfg.FreqHz != 1_000_000_000 {
		t.Errorf("FreqHz = %d, want 1 GHz", cfg.FreqHz)
	}
	if cfg.MemBandwidth != 450_000_000_000 {
		t.Errorf("MemBandwidth = %d, want 450 GB/s", cfg.MemBandwidth)
	}
	if cfg.WeightSRAM != 1*MiB {
		t.Errorf("WeightSRAM = %d, want 1 MiB", cfg.WeightSRAM)
	}
	if cfg.IOSRAM != 18*MiB {
		t.Errorf("IOSRAM = %d, want 18 MiB", cfg.IOSRAM)
	}
}

func TestTPUv2Config(t *testing.T) {
	cfg := TPUv2Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumArrays != 2 || cfg.WeightBytes != 2 || cfg.MemBandwidth != 300_000_000_000 {
		t.Errorf("TPUv2 preset wrong: %+v", cfg)
	}
	// 16-bit 128x128 block = 32 KiB; at 300 B/cycle that is 110 cycles.
	if got := cfg.BlockBytes(); got != 32*KiB {
		t.Errorf("block = %d, want 32 KiB", got)
	}
	if got := cfg.ReadCyclesPerArray(); got != 110 {
		t.Errorf("read cycles = %d, want 110", got)
	}
}

func TestValidateDerivesFillLatency(t *testing.T) {
	cfg := validPaper(t)
	if want := Cycles(2 * 128); cfg.FillLatency != want {
		t.Errorf("FillLatency = %d, want %d", cfg.FillLatency, want)
	}
	// An explicit value is preserved.
	cfg2 := PaperConfig()
	cfg2.FillLatency = 99
	if err := cfg2.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg2.FillLatency != 99 {
		t.Errorf("explicit FillLatency overwritten to %d", cfg2.FillLatency)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"zero PEDim", func(c *Config) { c.PEDim = 0 }, ErrBadPEDim},
		{"negative arrays", func(c *Config) { c.NumArrays = -1 }, ErrBadArrays},
		{"zero freq", func(c *Config) { c.FreqHz = 0 }, ErrBadFreq},
		{"zero bandwidth", func(c *Config) { c.MemBandwidth = 0 }, ErrBadBandwidth},
		{"zero weight bytes", func(c *Config) { c.WeightBytes = 0 }, ErrBadWeight},
		{"SRAM below one block", func(c *Config) { c.WeightSRAM = 100 }, ErrBadSRAM},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := PaperConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestBlockBytes(t *testing.T) {
	cfg := validPaper(t)
	if want := Bytes(128 * 128); cfg.BlockBytes() != want {
		t.Errorf("BlockBytes = %d, want %d (128x128 int8)", cfg.BlockBytes(), want)
	}
	cfg.WeightBytes = 2
	if want := Bytes(2 * 128 * 128); cfg.BlockBytes() != want {
		t.Errorf("BlockBytes at 16-bit = %d, want %d", cfg.BlockBytes(), want)
	}
}

func TestReadCyclesPerArray(t *testing.T) {
	cfg := validPaper(t)
	// 16384 bytes at 450 B/cycle -> ceil = 37.
	if got := cfg.ReadCyclesPerArray(); got != 37 {
		t.Errorf("ReadCyclesPerArray = %d, want 37", got)
	}
}

func TestWeightBlocks(t *testing.T) {
	cfg := validPaper(t)
	if got := cfg.WeightBlocks(); got != 64 {
		t.Errorf("WeightBlocks = %d, want 64 (1 MiB / 16 KiB)", got)
	}
}

func TestTotalColumns(t *testing.T) {
	cfg := validPaper(t)
	if got := cfg.TotalColumns(); got != 2048 {
		t.Errorf("TotalColumns = %d, want 2048", got)
	}
}

func TestMemCycles(t *testing.T) {
	cfg := validPaper(t)
	cases := []struct {
		bytes Bytes
		want  Cycles
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{450, 1},
		{451, 2},
		{45_000, 100},
	}
	for _, tc := range cases {
		if got := cfg.MemCycles(tc.bytes); got != tc.want {
			t.Errorf("MemCycles(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestHostCycles(t *testing.T) {
	cfg := validPaper(t)
	if got := cfg.HostCycles(16_000); got != 1000 {
		t.Errorf("HostCycles(16000) = %d, want 1000 at 16 GB/s", got)
	}
	cfg.HostBandwidth = 0
	if got := cfg.HostCycles(1 << 30); got != 0 {
		t.Errorf("HostCycles with no link = %d, want 0", got)
	}
}

func TestMemCyclesMonotonic(t *testing.T) {
	cfg := validPaper(t)
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return cfg.MemCycles(x) <= cfg.MemCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{1 * KiB, "1 KiB"},
		{3 * KiB, "3 KiB"},
		{1536, "1.50 KiB"},
		{1 * MiB, "1 MiB"},
		{1*MiB + 512*KiB, "1.50 MiB"},
		{4 * GiB, "4 GiB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := validPaper(t).String()
	for _, want := range []string{"128x128", "x16", "450 GB/s", "1 MiB", "18 MiB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Config.String() = %q, missing %q", s, want)
		}
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ceilDiv(1, 0) did not panic")
		}
	}()
	ceilDiv(1, 0)
}
