package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
	"aimt/internal/sim"
)

func TestSpeedup(t *testing.T) {
	base := &sim.Result{Makespan: 1000}
	fast := &sim.Result{Makespan: 500}
	if got := Speedup(base, fast); got != 2 {
		t.Errorf("Speedup = %f, want 2", got)
	}
	if got := Speedup(base, base); got != 1 {
		t.Errorf("self speedup = %f, want 1", got)
	}
	if got := Speedup(base, &sim.Result{}); got != 0 {
		t.Errorf("zero makespan speedup = %f, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 2, 2}, 2},
		{[]float64{1, 0, 4}, 0},
		{[]float64{1, -1}, 0},
	}
	for _, tc := range cases {
		if got := GeoMean(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("GeoMean(%v) = %f, want %f", tc.in, got, tc.want)
		}
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSTPAndANTT(t *testing.T) {
	alone := []arch.Cycles{100, 200}
	shared := &sim.Result{NetFinish: []arch.Cycles{200, 400}}
	// Each net took 2x its alone time: STP = 0.5 + 0.5 = 1, ANTT = 2.
	if got := STP(alone, shared); math.Abs(got-1) > 1e-9 {
		t.Errorf("STP = %f, want 1", got)
	}
	if got := ANTT(alone, shared); math.Abs(got-2) > 1e-9 {
		t.Errorf("ANTT = %f, want 2", got)
	}
	// Perfect sharing: STP = n, ANTT = 1.
	perfect := &sim.Result{NetFinish: []arch.Cycles{100, 200}}
	if got := STP(alone, perfect); math.Abs(got-2) > 1e-9 {
		t.Errorf("perfect STP = %f, want 2", got)
	}
	if got := ANTT(alone, perfect); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect ANTT = %f, want 1", got)
	}
	if got := ANTT(nil, perfect); got != 0 {
		t.Errorf("empty ANTT = %f", got)
	}
}

func TestPercentile(t *testing.T) {
	vals := []arch.Cycles{50, 10, 40, 20, 30}
	cases := []struct {
		p    float64
		want arch.Cycles
	}{
		{0, 10}, {20, 10}, {50, 30}, {99, 50}, {100, 50},
	}
	for _, tc := range cases {
		if got := Percentile(vals, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	// The input must not be mutated.
	if vals[0] != 50 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestLatencies(t *testing.T) {
	r := &sim.Result{
		NetArrive: []arch.Cycles{0, 100},
		NetFinish: []arch.Cycles{50, 400},
	}
	lat := Latencies(r)
	if lat[0] != 50 || lat[1] != 300 {
		t.Errorf("latencies = %v, want [50 300]", lat)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("mix", "speedup")
	tbl.AddRow("RN34+GNMT", "1.366")
	tbl.AddRow("short")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "mix") || !strings.Contains(lines[0], "speedup") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: all lines equal width.
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[0]) {
			t.Errorf("line %d width %d != header width %d", i, len(lines[i]), len(lines[0]))
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := F(1.23456); got != "1.235" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.1234); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"balanced", []float64{3, 3, 3, 3}, 0},
		{"all zero", []float64{0, 0, 0}, 0},
		{"one hot", []float64{2, 0, 0, 0}, 3},
		{"mild skew", []float64{2, 1, 1}, 0.5},
	}
	for _, tc := range cases {
		if got := Imbalance(tc.vals); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Imbalance(%v) = %v, want %v", tc.name, tc.vals, got, tc.want)
		}
	}
}
