package metrics

import (
	"testing"

	"aimt/internal/arch"
	"aimt/internal/sim"
)

// TestEmptyInputGuards sweeps the derived-metric helpers with empty or
// zero-valued inputs: none may panic and all must return zeros.
func TestEmptyInputGuards(t *testing.T) {
	empty := &sim.Result{}
	if Speedup(empty, empty) != 0 {
		t.Error("Speedup on empty results != 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if STP(nil, empty) != 0 {
		t.Error("STP with no networks != 0")
	}
	if ANTT(nil, empty) != 0 {
		t.Error("ANTT with no networks != 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if got := Latencies(empty); len(got) != 0 {
		t.Errorf("Latencies(empty) = %v, want empty", got)
	}
}

// TestHistogramAlias pins that metrics.Histogram is the shared hdr
// implementation: call sites that migrated from the latency-slice
// Percentile keep their answers.
func TestHistogramAlias(t *testing.T) {
	vals := []arch.Cycles{5, 10, 15, 20, 25}
	var h Histogram
	for _, v := range vals {
		h.Record(v)
	}
	if h.Count() != len(vals) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	for _, p := range []float64{0, 50, 100} {
		if got, want := h.Quantile(p), Percentile(vals, p); got != want {
			t.Errorf("p%v: Histogram %d != Percentile %d", p, got, want)
		}
	}
}
