package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/sim"
)

func TestHistogramExactBelow64(t *testing.T) {
	var h Histogram
	for v := arch.Cycles(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Count() != 64 {
		t.Fatalf("count = %d, want 64", h.Count())
	}
	// Every value below histSub occupies its own bucket, so quantiles
	// are exact: nearest-rank of p over 0..63.
	for _, p := range []float64{1, 25, 50, 75, 100} {
		want := Percentile([]arch.Cycles{
			0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
			16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31,
			32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47,
			48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63,
		}, p)
		if got := h.Quantile(p); got != want {
			t.Errorf("Quantile(%v) = %d, want exact %d", p, got, want)
		}
	}
}

// TestHistogramQuantileError checks the advertised relative error bound
// of 1/64 against exact nearest-rank percentiles over random values.
func TestHistogramQuantileError(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var h Histogram
	var vals []arch.Cycles
	for i := 0; i < 20000; i++ {
		v := arch.Cycles(r.Int63n(1 << uint(4+r.Intn(40))))
		vals = append(vals, v)
		h.Record(v)
	}
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 99.9, 100} {
		exact := Percentile(vals, p)
		got := h.Quantile(p)
		if exact == 0 {
			if got != 0 {
				t.Errorf("p%v: got %d, want 0", p, got)
			}
			continue
		}
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 1.0/64+1e-9 {
			t.Errorf("p%v: got %d, exact %d, relative error %.4f > 1/64", p, got, exact, relErr)
		}
	}
	if h.Max() != Percentile(vals, 100) || h.Min() != Percentile(vals, 0) {
		t.Errorf("extremes drifted: [%d,%d] vs exact [%d,%d]",
			h.Min(), h.Max(), Percentile(vals, 0), Percentile(vals, 100))
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to the same bucket, and
	// indices must be monotone in the value.
	last := -1
	for _, v := range []arch.Cycles{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345} {
		idx := histIndex(v)
		if idx < last {
			t.Errorf("histIndex(%d) = %d is below an earlier smaller value's bucket", v, idx)
		}
		last = idx
		if u := histUpper(idx); histIndex(u) != idx || u < v {
			t.Errorf("histUpper(%d) = %d does not bound bucket of %d", idx, u, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := arch.Cycles(r.Int63n(1 << 30))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() || a.Mean() != all.Mean() {
		t.Fatalf("merge disagrees with direct recording: count %d/%d max %d/%d",
			a.Count(), all.Count(), a.Max(), all.Max())
	}
	for _, p := range []float64{50, 99} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("p%v: merged %d != direct %d", p, a.Quantile(p), all.Quantile(p))
		}
	}
}

// TestEmptyInputGuards pins the zero-value behaviour of every metric
// helper: empty or zero-length inputs must yield 0, never panic.
func TestEmptyInputGuards(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %d", got)
	}
	if got := Percentile([]arch.Cycles{1, 2}, math.NaN()); got != 0 {
		t.Errorf("Percentile(NaN) = %d", got)
	}
	if got := Percentile([]arch.Cycles{5, 7}, -3); got != 5 {
		t.Errorf("Percentile(p<0) = %d, want min", got)
	}
	if got := Percentile([]arch.Cycles{5, 7}, 200); got != 7 {
		t.Errorf("Percentile(p>100) = %d, want max", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}

	var empty sim.Result
	if u := empty.PEUtilization(); u != 0 {
		t.Errorf("PEUtilization of zero Result = %v", u)
	}
	if u := empty.MemUtilization(); u != 0 {
		t.Errorf("MemUtilization of zero Result = %v", u)
	}
	if got := Speedup(&empty, &empty); got != 0 {
		t.Errorf("Speedup of zero Results = %v", got)
	}
	if got := STP(nil, &empty); got != 0 {
		t.Errorf("STP(nil) = %v", got)
	}
	if got := ANTT(nil, &empty); got != 0 {
		t.Errorf("ANTT(nil) = %v", got)
	}
	if got := Latencies(&empty); len(got) != 0 {
		t.Errorf("Latencies of zero Result = %v", got)
	}
	// A partially populated Result (finish recorded, arrivals missing)
	// must not panic.
	partial := sim.Result{NetFinish: []arch.Cycles{10, 20}}
	if got := Latencies(&partial); len(got) != 0 {
		t.Errorf("Latencies with short NetArrive = %v", got)
	}

	var h Histogram
	if h.Quantile(50) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty Histogram is not all-zero")
	}
	if h.Quantile(math.NaN()) != 0 {
		t.Error("Histogram.Quantile(NaN) != 0")
	}
	h.Record(-5) // clamps, must not panic
	if h.Quantile(50) != 0 {
		t.Errorf("negative record did not clamp to 0")
	}
}

// TestHistogramMatchesSortedPercentileSmall cross-checks the histogram
// against the exact estimator on a small latency set, the way serving
// reports replace collect-all-latencies.
func TestHistogramMatchesSortedPercentileSmall(t *testing.T) {
	vals := []arch.Cycles{3, 9, 27, 81, 243, 729}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var h Histogram
	for _, v := range vals {
		h.Record(v)
	}
	for _, p := range []float64{0, 50, 100} {
		exact := Percentile(vals, p)
		got := h.Quantile(p)
		if relErr := math.Abs(float64(got)-float64(exact)) / float64(exact); relErr > 1.0/64 {
			t.Errorf("p%v: %d vs exact %d", p, got, exact)
		}
	}
}
