// Package metrics derives the quantities the paper reports from raw
// simulation results — speedups, utilizations, SRAM high-water marks —
// and renders them as aligned text tables matching the figures' rows
// and series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"aimt/internal/arch"
	"aimt/internal/sim"
)

// Speedup returns baseline.Makespan / x.Makespan: how much faster x
// completed the same workload than the baseline run.
func Speedup(baseline, x *sim.Result) float64 {
	if x.Makespan <= 0 {
		return 0
	}
	return float64(baseline.Makespan) / float64(x.Makespan)
}

// GeoMean returns the geometric mean of the values; it returns 0 when
// the slice is empty or any value is non-positive.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// STP returns the system throughput of a shared run: the sum over
// networks of alone-time / shared-completion-time (Eyerman &
// Eeckhout's multi-program throughput metric; n would mean n networks
// ran as fast co-located as alone). alone[i] is network i's makespan
// when simulated solo; shared supplies the co-located per-network
// completion times.
func STP(alone []arch.Cycles, shared *sim.Result) float64 {
	var stp float64
	for i, a := range alone {
		if i < len(shared.NetFinish) && shared.NetFinish[i] > 0 {
			stp += float64(a) / float64(shared.NetFinish[i])
		}
	}
	return stp
}

// ANTT returns the average normalized turnaround time of a shared
// run: the mean over networks of shared-completion-time / alone-time
// (lower is better; 1 means sharing cost nothing). It is the fairness
// metric PREMA optimizes for.
func ANTT(alone []arch.Cycles, shared *sim.Result) float64 {
	var sum float64
	n := 0
	for i, a := range alone {
		if i < len(shared.NetFinish) && a > 0 {
			sum += float64(shared.NetFinish[i]) / float64(a)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Imbalance quantifies how unevenly a quantity is spread over a set of
// servers: the maximum share over the mean share, minus one. 0 means
// perfectly balanced; 1 means the busiest server carries double the
// average. Empty, single-element and all-zero inputs return 0.
func Imbalance(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	var top, sum float64
	for _, v := range vals {
		if v > top {
			top = v
		}
		sum += v
	}
	if sum <= 0 {
		return 0
	}
	return top*float64(len(vals))/sum - 1
}

// Percentile returns the p-th percentile (0..100) of the values using
// nearest-rank on a sorted copy; it returns 0 for an empty slice or a
// NaN p. Out-of-range p clamps to the extremes. For streams too long
// to hold a latency slice, use Histogram instead.
func Percentile(vals []arch.Cycles, p float64) arch.Cycles {
	if len(vals) == 0 || math.IsNaN(p) {
		return 0
	}
	sorted := append([]arch.Cycles(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Latencies returns per-network turnaround times (finish - arrival)
// of a shared run. Entries beyond the shorter of the two slices are
// skipped, so a partially filled Result cannot panic here.
func Latencies(r *sim.Result) []arch.Cycles {
	n := len(r.NetFinish)
	if len(r.NetArrive) < n {
		n = len(r.NetArrive)
	}
	out := make([]arch.Cycles, n)
	for i := range out {
		out[i] = r.NetFinish[i] - r.NetArrive[i]
	}
	return out
}

// Table renders rows as an aligned, pipe-separated text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.headers) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	var sep []string
	for _, w := range width {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.rows {
		line(r[:len(t.headers)])
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a fraction as a percentage for table cells.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
