package metrics

import "aimt/internal/hdr"

// Histogram is the streaming latency estimator with HDR-style
// log-linear buckets; see internal/hdr for the implementation. It is
// re-exported here (the implementation moved to a leaf package so the
// observability registry can share it) — existing call sites keep
// using metrics.Histogram unchanged.
type Histogram = hdr.Histogram
