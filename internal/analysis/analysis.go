// Package analysis implements the paper's static (pre-simulation)
// characterizations: Fig 5's per-layer compute-vs-memory latency split
// and Fig 10's required prefetch SRAM capacity per layer.
package analysis

import (
	"aimt/internal/arch"
	"aimt/internal/compiler"
)

// LayerRatio is one bar of Fig 5: how a layer's execution divides
// between computation and memory prefetching.
type LayerRatio struct {
	// Name is the layer name.
	Name string

	// ComputeCycles is the layer's total compute-block latency.
	ComputeCycles arch.Cycles

	// MemoryCycles is the layer's total memory-block (weight prefetch)
	// latency.
	MemoryCycles arch.Cycles
}

// ComputeFraction returns compute latency over total latency, the
// quantity plotted per layer in Fig 5.
func (r LayerRatio) ComputeFraction() float64 {
	tot := r.ComputeCycles + r.MemoryCycles
	if tot == 0 {
		return 0
	}
	return float64(r.ComputeCycles) / float64(tot)
}

// LatencyRatios returns Fig 5's series for a compiled network: each
// layer's computation and memory-prefetching latency.
func LatencyRatios(cn *compiler.CompiledNetwork) []LayerRatio {
	out := make([]LayerRatio, 0, len(cn.Layers))
	for _, l := range cn.Layers {
		out = append(out, LayerRatio{
			Name:          l.Name,
			ComputeCycles: l.TotalCBCycles(),
			MemoryCycles:  l.TotalMBCycles(),
		})
	}
	return out
}

// PrefetchDemand is one bar of Fig 10: the SRAM capacity needed to
// keep the memory bandwidth fully utilized while a layer computes.
type PrefetchDemand struct {
	// Name is the layer name.
	Name string

	// Bytes is the weight-buffer occupancy after the layer's compute
	// blocks finish, assuming later layers' weights stream in at full
	// bandwidth throughout (the paper's estimation method: accumulate
	// CB latency and prefetch MBs from later layers during it).
	Bytes arch.Bytes
}

// PrefetchDemands reproduces Fig 10's estimate for one network. The
// model walks layers in order: while layer i's compute blocks run for
// T_i cycles, the HBM channel delivers BW*T_i bytes of not-yet-fetched
// weights (its own first, then later layers'); when layer i finishes,
// its weights are consumed. The reported value per layer is the
// occupancy high-water mark reached during that layer's execution.
func PrefetchDemands(cn *compiler.CompiledNetwork, cfg arch.Config) []PrefetchDemand {
	n := len(cn.Layers)
	weights := make([]arch.Bytes, n)
	var total arch.Bytes
	for i, l := range cn.Layers {
		weights[i] = l.TotalWeightBytes()
		total += weights[i]
	}

	bpc := cfg.BytesPerCycle()
	out := make([]PrefetchDemand, 0, n)
	var fetched arch.Bytes  // cumulative bytes delivered by the channel
	var consumed arch.Bytes // cumulative bytes of executed layers
	for i, l := range cn.Layers {
		// The layer cannot start before its own weights are resident.
		need := consumed + weights[i]
		if fetched < need {
			fetched = need
		}
		// During its compute time, the channel keeps streaming.
		delivered := arch.Bytes(float64(l.TotalCBCycles()) * bpc)
		fetched += delivered
		if fetched > total {
			fetched = total
		}
		// Peak occupancy while this layer runs: everything fetched so
		// far minus everything consumed before it.
		peak := fetched - consumed
		out = append(out, PrefetchDemand{Name: l.Name, Bytes: peak})
		consumed += weights[i]
	}
	return out
}

// MaxDemand returns the largest per-layer prefetch demand, the summary
// statistic quoted in §III-C ("even a single batch layer execution can
// require over 10 MB SRAM").
func MaxDemand(d []PrefetchDemand) arch.Bytes {
	var m arch.Bytes
	for _, x := range d {
		if x.Bytes > m {
			m = x.Bytes
		}
	}
	return m
}
