package analysis

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// WaterfallSegment is one colored slice of a waterfall bar, in the
// row's own time coordinates.
type WaterfallSegment struct {
	// Kind picks the color: its index in the chart's Kinds order.
	Kind string
	// Start and End bound the slice.
	Start, End float64
}

// WaterfallRow is one horizontal bar of a waterfall chart.
type WaterfallRow struct {
	Label    string
	Segments []WaterfallSegment
}

// Waterfall describes one waterfall chart: rows of segmented
// horizontal bars sharing an x axis starting at zero, with a legend
// mapping segment kinds to palette slots.
type Waterfall struct {
	// Title names the chart; XLabel names the x unit.
	Title  string
	XLabel string
	// Kinds fixes the legend order and color assignment; segments
	// with kinds beyond the palette share the last slot.
	Kinds []string
	// W is the outer pixel width; zero means 640. Height follows the
	// row count.
	W int
}

// WaterfallSVG renders rows as one inline SVG waterfall chart, in the
// same zero-dependency deterministic style as LineChartSVG. An empty
// row set renders a placeholder frame.
func WaterfallSVG(c Waterfall, rows []WaterfallRow) string {
	w := c.W
	if w <= 0 {
		w = 640
	}
	const padL, padR, padT, rowH, rowGap = 170, 16, 34, 14, 6
	legendRows := (len(c.Kinds) + 3) / 4
	padB := 34 + 16*legendRows
	h := padT + len(rows)*(rowH+rowGap) + padB
	if len(rows) == 0 {
		h = padT + 40 + padB
	}
	pw := w - padL - padR

	color := func(kind string) string {
		for i, k := range c.Kinds {
			if k == kind {
				if i >= len(chartPalette) {
					break
				}
				return chartPalette[i]
			}
		}
		return chartPalette[len(chartPalette)-1]
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="%s">`,
		w, h, w, h, html.EscapeString(c.Title))
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect x="0.5" y="0.5" width="%d" height="%d" rx="6" fill="%s" stroke="%s"/>`, w-1, h-1, svgSurface, svgGridline)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<text x="14" y="22" fill="%s" font-family="system-ui,sans-serif" font-size="13" font-weight="600">%s</text>`,
		svgInk, html.EscapeString(c.Title))
	b.WriteString("\n")

	xmax := math.Inf(-1)
	for _, r := range rows {
		for _, s := range r.Segments {
			xmax = math.Max(xmax, s.End)
		}
	}
	if len(rows) == 0 || xmax <= 0 || pw <= 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="12" text-anchor="middle">no data yet</text>`,
			w/2, h/2, svgMuted)
		b.WriteString("\n</svg>\n")
		return b.String()
	}
	px := func(x float64) float64 { return float64(padL) + x/xmax*float64(pw) }

	// Vertical gridlines + x tick labels at 4 even steps.
	baseY := padT + len(rows)*(rowH+rowGap)
	for i := 0; i <= 4; i++ {
		x := xmax * float64(i) / 4
		xx := px(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s"/>`, xx, padT, xx, baseY, svgGridline)
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			xx, baseY+14, svgMuted, svgNum(x))
		b.WriteString("\n")
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="10">%s</text>`,
			padL, padT-6, svgMuted, html.EscapeString(c.XLabel))
		b.WriteString("\n")
	}

	for ri, r := range rows {
		y := padT + ri*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="10" text-anchor="end">%s</text>`,
			padL-6, y+rowH-3, svgInk2, html.EscapeString(r.Label))
		b.WriteString("\n")
		for _, s := range r.Segments {
			if s.End <= s.Start {
				continue
			}
			x0, x1 := px(s.Start), px(s.End)
			// Keep every nonzero slice visible at narrow widths.
			if x1-x0 < 0.5 {
				x1 = x0 + 0.5
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s</title></rect>`,
				x0, y, x1-x0, rowH, color(s.Kind), html.EscapeString(s.Kind))
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`,
		padL, baseY, w-padR, baseY, svgBaseline)
	b.WriteString("\n")

	// Legend: swatch + kind in text ink, four items per row.
	for ki, k := range c.Kinds {
		lx := padL + (ki%4)*(pw/4)
		ly := baseY + 24 + 16*(ki/4)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" rx="2" fill="%s"/>`, lx, ly, color(k))
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="11">%s</text>`,
			lx+14, ly+9, svgInk2, html.EscapeString(k))
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}
