package analysis

import (
	"aimt/internal/arch"
	"aimt/internal/nn"
)

// This file quantifies the paper's §VI-B observation: AI-MT exploits
// the temporal dimension of the PE arrays, but layers whose dimensions
// do not fill a 128x128 array waste MACs spatially — headroom a
// spatial co-execution extension could reclaim. The analysis computes,
// per layer, the fraction of MAC slots a weight-stationary mapping
// actually occupies across the layer's sub-layer iterations.

// SpatialUtil is one layer's spatial mapping efficiency.
type SpatialUtil struct {
	// Name is the layer name.
	Name string

	// Type is the layer type.
	Type nn.LayerType

	// Rows and Cols are the average occupied PE rows (contraction
	// depth) and columns (filters) per mapped array.
	Rows, Cols float64

	// MACUtil is occupied MAC slots over total MAC slots across the
	// layer's iterations: Rows*Cols / PEDim^2 aggregated per tile.
	MACUtil float64
}

// SpatialUtilization computes per-layer spatial MAC occupancy for the
// given network on the given PE geometry. Pooling layers are skipped
// (they use the dedicated units).
func SpatialUtilization(net *nn.Network, cfg arch.Config) []SpatialUtil {
	dim := cfg.PEDim
	var out []SpatialUtil
	for _, l := range net.Layers {
		if !l.Type.HasWeights() {
			continue
		}
		rows, cols := contraction(l)
		su := tileOccupancy(rows, cols, dim)
		su.Name = l.Name
		su.Type = l.Type
		out = append(out, su)
	}
	return out
}

// contraction returns the weight matrix a layer maps onto the arrays:
// rows = contraction depth per filter, cols = number of filters.
func contraction(l nn.Layer) (rows, cols int) {
	switch l.Type {
	case nn.Conv:
		return l.InC * l.Kernel * l.Kernel, l.OutC
	case nn.DWConv:
		return l.Kernel * l.Kernel, l.OutC
	case nn.FC:
		return l.InC, l.OutC
	default:
		return 0, 0
	}
}

// tileOccupancy averages the occupied fraction over the ceil-division
// tiling of a rows x cols weight matrix onto dim x dim arrays.
func tileOccupancy(rows, cols, dim int) SpatialUtil {
	if rows <= 0 || cols <= 0 || dim <= 0 {
		return SpatialUtil{}
	}
	tilesR := (rows + dim - 1) / dim
	tilesC := (cols + dim - 1) / dim
	var occ, totRows, totCols float64
	for r := 0; r < tilesR; r++ {
		h := dim
		if r == tilesR-1 {
			h = rows - r*dim
		}
		for c := 0; c < tilesC; c++ {
			w := dim
			if c == tilesC-1 {
				w = cols - c*dim
			}
			occ += float64(h * w)
			totRows += float64(h)
			totCols += float64(w)
		}
	}
	tiles := float64(tilesR * tilesC)
	return SpatialUtil{
		Rows:    totRows / tiles,
		Cols:    totCols / tiles,
		MACUtil: occ / (tiles * float64(dim) * float64(dim)),
	}
}

// MeanSpatialUtil returns the unweighted average spatial utilization
// across the layers — the single number summarizing a network's §VI-B
// headroom.
func MeanSpatialUtil(u []SpatialUtil) float64 {
	if len(u) == 0 {
		return 0
	}
	var sum float64
	for _, x := range u {
		sum += x.MACUtil
	}
	return sum / float64(len(u))
}
