package analysis

import (
	"strings"
	"testing"
)

func TestLineChartSVGBasics(t *testing.T) {
	series := []ChartSeries{
		{Name: "AI-MT", Points: []ChartPoint{{0, 100}, {1, 140}, {2, 400}}},
		{Name: "FIFO <x>", Points: []ChartPoint{{0, 120}, {1, 260}, {2, 900}}},
	}
	svg := LineChartSVG(Chart{Title: "p99 vs load", YLabel: "cycles", XTicks: []string{"0.5", "0.8", "1.1"}}, series)

	for _, want := range []string{
		"<svg ", "</svg>", "p99 vs load", "polyline", "AI-MT",
		"FIFO &lt;x&gt;", // series names are escaped
		"#2a78d6", "#eb6834",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "FIFO <x>") {
		t.Error("unescaped series name in SVG")
	}
	// Deterministic output: byte-identical on re-render.
	if again := LineChartSVG(Chart{Title: "p99 vs load", YLabel: "cycles", XTicks: []string{"0.5", "0.8", "1.1"}}, series); again != svg {
		t.Error("LineChartSVG is not deterministic")
	}
}

func TestLineChartSVGEmptyAndOverflow(t *testing.T) {
	if svg := LineChartSVG(Chart{Title: "empty"}, nil); !strings.Contains(svg, "no data yet") {
		t.Error("empty chart missing placeholder")
	}
	var many []ChartSeries
	for i := 0; i < 11; i++ {
		many = append(many, ChartSeries{Name: "s", Points: []ChartPoint{{0, 1}, {1, 2}}})
	}
	svg := LineChartSVG(Chart{Title: "crowded"}, many)
	if !strings.Contains(svg, "+3 series omitted") {
		t.Error("overflowing series not reported as omitted")
	}
	if strings.Count(svg, "<polyline") != 8 {
		t.Errorf("rendered %d polylines, want the 8 palette slots", strings.Count(svg, "<polyline"))
	}
}

func TestSVGNum(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		1790000:    "1.79M",
		2_500:      "2.5k",
		3.14159:    "3.142",
		42:         "42",
		7.5e9:      "7.5G",
		0.05:       "0.05",
		1000000000: "1G",
	}
	for v, want := range cases {
		if got := svgNum(v); got != want {
			t.Errorf("svgNum(%v) = %q, want %q", v, got, want)
		}
	}
}
