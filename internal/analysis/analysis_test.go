package analysis

import (
	"testing"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/nn"
)

func cfg(t *testing.T) arch.Config {
	t.Helper()
	c := arch.PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func compileVGG(t *testing.T) *compiler.CompiledNetwork {
	t.Helper()
	cn, err := compiler.Compile(nn.VGG16(), cfg(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	return cn
}

// Fig 5's qualitative shape: VGG16's early conv layers are dominated
// by computation, the trailing FC layers by memory prefetch.
func TestFig5Shape(t *testing.T) {
	ratios := LatencyRatios(compileVGG(t))
	if len(ratios) != 16 {
		t.Fatalf("layers = %d, want 16", len(ratios))
	}
	first := ratios[0]
	if first.ComputeFraction() < 0.9 {
		t.Errorf("%s compute fraction = %f, want > 0.9", first.Name, first.ComputeFraction())
	}
	fc6 := ratios[13]
	if fc6.Name != "fc6" {
		t.Fatalf("layer 13 = %s, want fc6", fc6.Name)
	}
	if fc6.ComputeFraction() > 0.5 {
		t.Errorf("fc6 compute fraction = %f, want < 0.5", fc6.ComputeFraction())
	}
}

func TestComputeFractionBounds(t *testing.T) {
	for _, r := range LatencyRatios(compileVGG(t)) {
		f := r.ComputeFraction()
		if f < 0 || f > 1 {
			t.Errorf("%s fraction %f out of range", r.Name, f)
		}
	}
	var zero LayerRatio
	if zero.ComputeFraction() != 0 {
		t.Error("zero ratio fraction != 0")
	}
}

// Fig 10's headline: single-batch layer execution can demand over
// 10 MB of prefetch SRAM.
func TestFig10ExceedsTenMB(t *testing.T) {
	c := cfg(t)
	found := false
	for _, net := range []*nn.Network{nn.VGG16(), nn.ResNet50(), nn.ResNet34()} {
		cn, err := compiler.Compile(net, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		if MaxDemand(PrefetchDemands(cn, c)) > 10*arch.MiB {
			found = true
		}
	}
	if !found {
		t.Error("no network demands more than 10 MiB of prefetch SRAM (paper §III-C)")
	}
}

func TestPrefetchDemandsProperties(t *testing.T) {
	c := cfg(t)
	cn := compileVGG(t)
	d := PrefetchDemands(cn, c)
	if len(d) != len(cn.Layers) {
		t.Fatalf("demands = %d, want %d", len(d), len(cn.Layers))
	}
	var total arch.Bytes
	for _, l := range cn.Layers {
		total += l.TotalWeightBytes()
	}
	for i, x := range d {
		if x.Bytes < 0 {
			t.Errorf("layer %d demand negative", i)
		}
		if x.Bytes > total {
			t.Errorf("layer %d demand %d exceeds total weights %d", i, x.Bytes, total)
		}
		// Occupancy while a layer runs always covers at least that
		// layer's own weights.
		if own := cn.Layers[i].TotalWeightBytes(); x.Bytes < own {
			t.Errorf("layer %d demand %d below its own weights %d", i, x.Bytes, own)
		}
	}
}

// More bandwidth means more prefetched bytes pile up: demand is
// monotone in bandwidth.
func TestDemandGrowsWithBandwidth(t *testing.T) {
	cn := compileVGG(t)
	slow := cfg(t)
	slow.MemBandwidth = 100_000_000_000
	fast := cfg(t)
	fast.MemBandwidth = 900_000_000_000
	if MaxDemand(PrefetchDemands(cn, slow)) > MaxDemand(PrefetchDemands(cn, fast)) {
		t.Error("demand not monotone in bandwidth")
	}
}

func TestMaxDemandEmpty(t *testing.T) {
	if MaxDemand(nil) != 0 {
		t.Error("MaxDemand(nil) != 0")
	}
}

func TestTileOccupancy(t *testing.T) {
	cases := []struct {
		rows, cols, dim int
		want            float64
	}{
		{128, 128, 128, 1.0},               // perfect fit
		{256, 256, 128, 1.0},               // exact multi-tile
		{64, 128, 128, 0.5},                // half rows
		{64, 64, 128, 0.25},                // quarter
		{129, 128, 128, (128.0 + 1) / 256}, // one spill row tile
	}
	for _, tc := range cases {
		got := tileOccupancy(tc.rows, tc.cols, tc.dim).MACUtil
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("tileOccupancy(%d,%d,%d) = %f, want %f", tc.rows, tc.cols, tc.dim, got, tc.want)
		}
	}
	if tileOccupancy(0, 4, 4).MACUtil != 0 {
		t.Error("degenerate tile occupancy nonzero")
	}
}

// §VI-B shape: depthwise convolutions map terribly onto 128x128
// arrays (their contraction depth is k*k = 9), so MobileNet's spatial
// utilization must be far below the dense CNNs'.
func TestSpatialUtilizationShape(t *testing.T) {
	c := cfg(t)
	mean := func(net *nn.Network) float64 {
		return MeanSpatialUtil(SpatialUtilization(net, c))
	}
	mn, rn := mean(nn.MobileNet()), mean(nn.ResNet50())
	if mn >= rn {
		t.Errorf("MobileNet spatial util %f not below ResNet50 %f", mn, rn)
	}
	if mn > 0.5 {
		t.Errorf("MobileNet spatial util %f, want < 0.5 (depthwise headroom)", mn)
	}
	for _, u := range SpatialUtilization(nn.VGG16(), c) {
		if u.MACUtil <= 0 || u.MACUtil > 1 {
			t.Errorf("%s spatial util %f out of range", u.Name, u.MACUtil)
		}
	}
	gnmt := SpatialUtilization(nn.GNMT(), c)
	for _, u := range gnmt {
		if u.Type != nn.FC {
			t.Errorf("GNMT produced non-FC entry %v", u.Type)
		}
	}
	if MeanSpatialUtil(nil) != 0 {
		t.Error("empty mean nonzero")
	}
}
