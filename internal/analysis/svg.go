package analysis

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// The /runs dashboard renders charts as inline SVG with no JavaScript
// or external assets, so the admin surface stays zero-dependency and
// curl-able. Output is byte-deterministic for a given input: golden
// tests pin entire pages.

// ChartPoint is one (x, y) sample of a series.
type ChartPoint struct{ X, Y float64 }

// ChartSeries is one named line of a chart. Series colors are
// assigned by slot in fixed order; identity is also carried by the
// legend and (for up to four series) a direct end-of-line label, so
// color is never the only channel.
type ChartSeries struct {
	Name   string
	Points []ChartPoint
}

// Chart describes one line chart.
type Chart struct {
	// Title names the chart; YLabel names the y unit.
	Title  string
	YLabel string
	// XTicks, when set, are categorical labels for integer x positions
	// 0..len-1 (run IDs, load points). When empty the x axis is numeric.
	XTicks []string
	// W and H are the outer pixel dimensions; zero means 640x300.
	W, H int
}

// chartPalette is the fixed categorical hue order (slot 1..8); a 9th
// series is never a new hue — extras are dropped with a visible
// "omitted" note rather than cycling colors.
var chartPalette = []string{
	"#2a78d6", "#eb6834", "#1baf7a", "#eda100",
	"#e87ba4", "#008300", "#4a3aa7", "#e34948",
}

// Ink and surface tokens (light mode).
const (
	svgSurface  = "#fcfcfb"
	svgInk      = "#0b0b0b"
	svgInk2     = "#52514e"
	svgMuted    = "#898781"
	svgGridline = "#e1e0d9"
	svgBaseline = "#c3c2b7"
)

const maxChartSeries = len("12345678") // 8: the palette's slot count

// LineChartSVG renders the series as one inline SVG line chart.
// An empty series set renders a placeholder frame saying so.
func LineChartSVG(c Chart, series []ChartSeries) string {
	w, h := c.W, c.H
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 300
	}
	omitted := 0
	if len(series) > maxChartSeries {
		omitted = len(series) - maxChartSeries
		series = series[:maxChartSeries]
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="%s">`,
		w, h, w, h, html.EscapeString(c.Title))
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect x="0.5" y="0.5" width="%d" height="%d" rx="6" fill="%s" stroke="%s"/>`, w-1, h-1, svgSurface, svgGridline)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<text x="14" y="22" fill="%s" font-family="system-ui,sans-serif" font-size="13" font-weight="600">%s</text>`,
		svgInk, html.EscapeString(c.Title))
	b.WriteString("\n")

	// Plot frame: title band on top, legend band at the bottom.
	const padL, padR, padT = 64, 16, 34
	legendRows := (len(series) + 3) / 4
	padB := 34 + 16*legendRows
	pw, ph := w-padL-padR, h-padT-padB

	empty := true
	for _, s := range series {
		if len(s.Points) > 0 {
			empty = false
		}
	}
	if empty || pw <= 0 || ph <= 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="12" text-anchor="middle">no data yet</text>`,
			w/2, h/2, svgMuted)
		b.WriteString("\n</svg>\n")
		return b.String()
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	// Anchor magnitude axes at zero unless the data lives far from it.
	if ymin > 0 && ymin < 0.5*ymax {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	px := func(x float64) float64 { return float64(padL) + (x-xmin)/(xmax-xmin)*float64(pw) }
	py := func(y float64) float64 { return float64(padT) + (1-(y-ymin)/(ymax-ymin))*float64(ph) }

	// Recessive horizontal gridlines + y tick labels at 4 even steps.
	for i := 0; i <= 4; i++ {
		y := ymin + (ymax-ymin)*float64(i)/4
		yy := py(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s"/>`, padL, yy, w-padR, yy, svgGridline)
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" fill="%s" font-family="system-ui,sans-serif" font-size="10" text-anchor="end">%s</text>`,
			padL-6, yy+3, svgMuted, svgNum(y))
		b.WriteString("\n")
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="10">%s</text>`,
			padL, padT-6, svgMuted, html.EscapeString(c.YLabel))
		b.WriteString("\n")
	}
	// Baseline axis.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s"/>`,
		padL, float64(padT+ph), w-padR, float64(padT+ph), svgBaseline)
	b.WriteString("\n")

	// X tick labels: categorical labels thinned to at most 8, or the
	// numeric extremes.
	if len(c.XTicks) > 0 {
		step := (len(c.XTicks) + 7) / 8
		for i := 0; i < len(c.XTicks); i += step {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s" font-family="system-ui,sans-serif" font-size="10" text-anchor="middle">%s</text>`,
				px(float64(i)), float64(padT+ph+14), svgMuted, html.EscapeString(c.XTicks[i]))
			b.WriteString("\n")
		}
	} else {
		for _, x := range []float64{xmin, (xmin + xmax) / 2, xmax} {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s" font-family="system-ui,sans-serif" font-size="10" text-anchor="middle">%s</text>`,
				px(x), float64(padT+ph+14), svgMuted, svgNum(x))
			b.WriteString("\n")
		}
	}

	// Series: 2px lines, >=3px markers when sparse, direct end labels
	// in text ink for up to four series.
	for si, s := range series {
		color := chartPalette[si]
		if len(s.Points) == 0 {
			continue
		}
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p.X), py(p.Y)))
		}
		if len(s.Points) == 1 {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`, px(s.Points[0].X), py(s.Points[0].Y), color)
			b.WriteString("\n")
		} else {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`,
				strings.Join(pts, " "), color)
			b.WriteString("\n")
			if len(s.Points) <= 32 {
				for _, p := range s.Points {
					fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s" stroke="%s" stroke-width="2"/>`,
						px(p.X), py(p.Y), color, svgSurface)
					b.WriteString("\n")
				}
			}
		}
		if len(series) >= 2 && len(series) <= 4 {
			// Direct label just inside the frame, above the line's end,
			// so it can never overflow the right edge.
			last := s.Points[len(s.Points)-1]
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s" font-family="system-ui,sans-serif" font-size="10" text-anchor="end">%s</text>`,
				px(last.X)-4, py(last.Y)-6, svgInk2, html.EscapeString(s.Name))
			b.WriteString("\n")
		}
	}

	// Legend: swatch + name in text ink, four items per row.
	for si, s := range series {
		lx := padL + (si%4)*(pw/4)
		ly := padT + ph + 24 + 16*(si/4)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" rx="2" fill="%s"/>`, lx, ly, chartPalette[si])
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="11">%s</text>`,
			lx+14, ly+9, svgInk2, html.EscapeString(s.Name))
		b.WriteString("\n")
	}
	if omitted > 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-family="system-ui,sans-serif" font-size="10">+%d series omitted</text>`,
			w-padR-90, padT-6, svgMuted, omitted)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// svgNum formats an axis value compactly and deterministically:
// SI-suffixed above 10^3 (1.79M), trimmed decimals below.
func svgNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return trimZeros(fmt.Sprintf("%.2f", v/1e9)) + "G"
	case av >= 1e6:
		return trimZeros(fmt.Sprintf("%.2f", v/1e6)) + "M"
	case av >= 1e3:
		return trimZeros(fmt.Sprintf("%.2f", v/1e3)) + "k"
	case av >= 10 || av == 0:
		return trimZeros(fmt.Sprintf("%.1f", v))
	default:
		return trimZeros(fmt.Sprintf("%.3f", v))
	}
}

func trimZeros(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
