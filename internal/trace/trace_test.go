package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"aimt/internal/arch"
)

func sample() *Recorder {
	r := &Recorder{}
	r.Event("mem", "MB:a", 0, 0, 0, 0, 10)
	r.Event("pe", "CB:a", 0, 0, 0, 10, 40)
	r.Event("mem", "MB:b", 1, 0, 0, 10, 30)
	r.Event("pe", "CB:b", 1, 0, 0, 40, 50)
	r.Event("host", "host-in", 1, -1, -1, 0, 5)
	return r
}

func TestRecorderCollects(t *testing.T) {
	r := sample()
	if len(r.Events) != 5 {
		t.Fatalf("events = %d", len(r.Events))
	}
	e := r.Events[1]
	if e.Engine != "pe" || e.Net != 0 || e.Start != 10 || e.End != 40 {
		t.Errorf("event = %+v", e)
	}
}

func TestChromeTraceRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(evs) != 5 {
		t.Fatalf("JSON events = %d", len(evs))
	}
	first := evs[0]
	if first["ph"] != "X" || first["name"] != "MB:a" || first["dur"] != float64(10) {
		t.Errorf("first event = %v", first)
	}
	// Engines map to distinct tids.
	tids := map[float64]bool{}
	for _, e := range evs {
		tids[e["tid"].(float64)] = true
	}
	if len(tids) != 3 {
		t.Errorf("distinct tids = %d, want 3", len(tids))
	}
}

func TestGanttRendersRows(t *testing.T) {
	g := sample().Gantt(50, 50)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.HasPrefix(lines[1], "mem") || !strings.HasPrefix(lines[2], "pe") || !strings.HasPrefix(lines[3], "host") {
		t.Errorf("row order wrong:\n%s", g)
	}
	// mem row: net 0 occupies the first fifth, net 1 next.
	mem := lines[1][6:]
	if mem[0] != '0' {
		t.Errorf("mem row start = %q", mem[:10])
	}
	if !strings.Contains(mem, "1") {
		t.Errorf("mem row missing net 1: %q", mem)
	}
	// pe row has idle dots at the very start.
	pe := lines[2][6:]
	if pe[0] != '.' {
		t.Errorf("pe row start = %q, want idle", pe[:5])
	}
}

func TestGanttInfersMakespan(t *testing.T) {
	g := sample().Gantt(0, 40)
	if !strings.Contains(g, "cycles 0..50") {
		t.Errorf("inferred makespan missing: %q", strings.SplitN(g, "\n", 2)[0])
	}
	if sample().Gantt(0, 0) == "" {
		t.Error("default width produced empty chart")
	}
	empty := &Recorder{}
	if got := empty.Gantt(0, 10); got != "" {
		t.Errorf("empty recorder chart = %q", got)
	}
}

func TestGanttOverlapMarker(t *testing.T) {
	r := &Recorder{}
	// Two nets sharing one cell of the pe row.
	r.Event("pe", "CB", 0, 0, 0, 0, 10)
	r.Event("pe", "CB", 1, 0, 0, 5, 10)
	g := r.Gantt(10, 2)
	lines := strings.Split(g, "\n")
	pe := lines[2][6:]
	if !strings.Contains(pe, "*") {
		t.Errorf("overlapping nets not marked with '*': %q", pe)
	}
}

func TestGanttManyNetsWrapDigits(t *testing.T) {
	r := &Recorder{}
	r.Event("pe", "CB", 12, 0, 0, 0, 10) // net 12 renders as digit 2
	g := r.Gantt(10, 10)
	if !strings.Contains(g, "2") {
		t.Errorf("net index not rendered modulo 10:\n%s", g)
	}
}

func TestUtilizationSeries(t *testing.T) {
	r := sample()
	pts := r.UtilizationSeries(50, 10)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	// Window 0 (0-10): mem fully busy (MB:a), pe idle.
	if pts[0].Mem != 1.0 || pts[0].PE != 0.0 {
		t.Errorf("window 0 = %+v", pts[0])
	}
	// Window 1 (10-20): mem busy with MB:b, pe busy with CB:a.
	if pts[1].Mem != 1.0 || pts[1].PE != 1.0 {
		t.Errorf("window 1 = %+v", pts[1])
	}
	// Window 3 (30-40): mem idle, pe busy.
	if pts[3].Mem != 0.0 || pts[3].PE != 1.0 {
		t.Errorf("window 3 = %+v", pts[3])
	}
	for _, p := range pts {
		if p.Mem < 0 || p.Mem > 1 || p.PE < 0 || p.PE > 1 {
			t.Errorf("window %d out of range: %+v", p.Start, p)
		}
	}
	if got := r.UtilizationSeries(0, 10); got != nil {
		t.Error("zero makespan series != nil")
	}
	if got := r.UtilizationSeries(50, 0); got != nil {
		t.Error("zero window series != nil")
	}
}

func TestPartialWindowAccounting(t *testing.T) {
	r := &Recorder{}
	r.Event("pe", "CB", 0, 0, 0, 5, 15) // straddles two windows
	pts := r.UtilizationSeries(20, 10)
	if pts[0].PE != 0.5 || pts[1].PE != 0.5 {
		t.Errorf("straddling event split = %f/%f, want 0.5/0.5", pts[0].PE, pts[1].PE)
	}
}

func TestEventTypeFields(t *testing.T) {
	e := Event{Engine: "mem", Name: "MB:x", Net: 2, Layer: 3, Iter: 4, Start: arch.Cycles(1), End: arch.Cycles(9)}
	if e.End-e.Start != 8 {
		t.Error("cycle arithmetic broken")
	}
}
