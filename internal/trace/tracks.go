package trace

import (
	"encoding/json"
	"io"
)

// Track is one named timeline in a merged Chrome/Perfetto export: a
// (process, thread) pair plus its occupancy events. Merged exports
// overlay engine occupancy (one process per chip, one thread per
// engine) with request tracks (one thread per tail exemplar).
type Track struct {
	// PID and TID place the track; Perfetto groups threads under
	// their process.
	PID, TID int

	// Process and Thread name the track. The first track of each PID
	// names the process.
	Process, Thread string

	// Events holds the track's intervals.
	Events []Event
}

// EngineTracks splits a recorder's events into one track per engine
// ("mem", "pe", "host", in that order) under the given process.
func (r *Recorder) EngineTracks(pid int, process string) []Track {
	var out []Track
	for _, eng := range []string{"mem", "pe", "host"} {
		var evs []Event
		for _, e := range r.Events {
			if e.Engine == eng {
				evs = append(evs, e)
			}
		}
		if len(evs) == 0 {
			continue
		}
		out = append(out, Track{
			PID: pid, TID: engineTID[eng],
			Process: process, Thread: eng,
			Events: evs,
		})
	}
	return out
}

// WriteChromeTracks emits the tracks as one Chrome trace_event JSON
// array: "M" metadata records naming each process and thread, then
// every event as a "X" complete slice. Output is byte-deterministic
// for a given track list.
func WriteChromeTracks(w io.Writer, tracks []Track) error {
	var evs []chromeEvent
	named := map[int]bool{}
	for _, t := range tracks {
		if t.Process != "" && !named[t.PID] {
			named[t.PID] = true
			evs = append(evs, chromeEvent{
				Name: "process_name", Ph: "M", PID: t.PID,
				Args: map[string]any{"name": t.Process},
			})
		}
		if t.Thread != "" {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", PID: t.PID, TID: t.TID,
				Args: map[string]any{"name": t.Thread},
			})
		}
	}
	for _, t := range tracks {
		for _, e := range t.Events {
			evs = append(evs, chromeEvent{
				Name: e.Name,
				Cat:  e.Engine,
				Ph:   "X",
				TS:   int64(e.Start),
				Dur:  int64(e.End - e.Start),
				PID:  t.PID,
				TID:  t.TID,
				Args: map[string]any{"net": e.Net, "layer": e.Layer, "iter": e.Iter},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
