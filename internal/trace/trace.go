// Package trace captures per-engine occupancy intervals from the
// simulator and renders them: as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto), as an ASCII Gantt chart like the
// paper's timeline figures (Figs 4, 6, 9, 12, 13), and as windowed
// utilization series for Fig 7-style plots.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"aimt/internal/arch"
)

// Event is one recorded occupancy interval.
type Event struct {
	// Engine is "mem", "pe" or "host".
	Engine string
	// Name labels the block, e.g. "MB:conv3_2".
	Name string
	// Net, Layer and Iter identify the block; Layer and Iter are -1
	// for host transfers.
	Net, Layer, Iter int
	// Start and End bound the interval in cycles.
	Start, End arch.Cycles
}

// Recorder collects events; it implements sim.Tracer.
type Recorder struct {
	// Events holds the recorded intervals in completion order.
	Events []Event
}

// Event implements sim.Tracer.
func (r *Recorder) Event(engine, name string, net, layer, iter int, start, end arch.Cycles) {
	r.Events = append(r.Events, Event{
		Engine: engine, Name: name,
		Net: net, Layer: layer, Iter: iter,
		Start: start, End: end,
	})
}

// chromeEvent is the trace_event "complete" (ph=X) record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

var engineTID = map[string]int{"mem": 1, "pe": 2, "host": 3}

// WriteChromeTrace emits the events as a Chrome trace_event JSON
// array; timestamps are cycles interpreted as microseconds.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(r.Events))
	for _, e := range r.Events {
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Cat:  e.Engine,
			Ph:   "X",
			TS:   int64(e.Start),
			Dur:  int64(e.End - e.Start),
			PID:  1,
			TID:  engineTID[e.Engine],
			Args: map[string]any{"net": e.Net, "layer": e.Layer, "iter": e.Iter},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// Gantt renders the events as an ASCII timeline with one row per
// engine, width columns wide, covering [0, makespan]. Each cell shows
// the network index occupying the engine ('.' when idle, '*' when
// several nets share the cell).
func (r *Recorder) Gantt(makespan arch.Cycles, width int) string {
	if width <= 0 {
		width = 80
	}
	if makespan <= 0 {
		for _, e := range r.Events {
			if e.End > makespan {
				makespan = e.End
			}
		}
	}
	if makespan <= 0 {
		return ""
	}
	rows := map[string][]byte{}
	for _, eng := range []string{"mem", "pe", "host"} {
		rows[eng] = []byte(strings.Repeat(".", width))
	}
	cell := func(c arch.Cycles) int {
		i := int(int64(c) * int64(width) / int64(makespan))
		if i >= width {
			i = width - 1
		}
		return i
	}
	for _, e := range r.Events {
		row, ok := rows[e.Engine]
		if !ok {
			continue
		}
		mark := byte('0' + e.Net%10)
		for i := cell(e.Start); i <= cell(e.End-1) && i < width; i++ {
			switch row[i] {
			case '.':
				row[i] = mark
			case mark:
			default:
				row[i] = '*'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles 0..%d, one column = %d cycles\n", makespan, int64(makespan)/int64(width))
	for _, eng := range []string{"mem", "pe", "host"} {
		fmt.Fprintf(&b, "%-5s %s\n", eng, rows[eng])
	}
	return b.String()
}

// UtilizationPoint is one window of a utilization time series.
type UtilizationPoint struct {
	// Start is the window's first cycle.
	Start arch.Cycles
	// Mem and PE are the busy fractions of the window.
	Mem, PE float64
}

// UtilizationSeries computes windowed busy fractions for the mem and
// pe engines over [0, makespan] using the given window size.
func (r *Recorder) UtilizationSeries(makespan, window arch.Cycles) []UtilizationPoint {
	if window <= 0 || makespan <= 0 {
		return nil
	}
	n := int((makespan + window - 1) / window)
	memBusy := make([]arch.Cycles, n)
	peBusy := make([]arch.Cycles, n)
	for _, e := range r.Events {
		var acc []arch.Cycles
		switch e.Engine {
		case "mem":
			acc = memBusy
		case "pe":
			acc = peBusy
		default:
			continue
		}
		for w := int(e.Start / window); w < n; w++ {
			lo := arch.Cycles(w) * window
			hi := lo + window
			if e.Start > lo {
				lo = e.Start
			}
			if e.End < hi {
				hi = e.End
			}
			if hi <= lo {
				break
			}
			acc[w] += hi - lo
		}
	}
	out := make([]UtilizationPoint, n)
	for i := range out {
		out[i] = UtilizationPoint{
			Start: arch.Cycles(i) * window,
			Mem:   float64(memBusy[i]) / float64(window),
			PE:    float64(peBusy[i]) / float64(window),
		}
	}
	return out
}
