// Package hdr holds the streaming HDR-style histogram. It lives in a
// leaf package (importing only internal/arch) so that both the
// metrics/report layer and the observability registry can share one
// implementation: metrics re-exports it as metrics.Histogram, and
// internal/obs wraps it behind a mutex — without obs→metrics→sim
// import cycles.
package hdr

import (
	"math"
	"math/bits"

	"aimt/internal/arch"
)

// Histogram is a streaming latency estimator with HDR-style log-linear
// buckets: values below 64 cycles are recorded exactly, larger values
// land in one of 64 linear sub-buckets per power of two, bounding the
// relative quantile error at 1/64 (~1.6%). State is O(buckets) — about
// 64 counters per occupied octave — regardless of how many values are
// recorded, which is what lets serving sweeps of hundreds of thousands
// of requests report p50/p99/p99.9 without retaining a latency slice.
//
// The zero value is an empty histogram ready for use.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    float64
	min    arch.Cycles
	max    arch.Cycles
}

// histSub is the number of linear sub-buckets per power of two; values
// below histSub are recorded exactly.
const histSub = 64

// histIndex maps a non-negative value to its bucket.
func histIndex(v arch.Cycles) int {
	if v < histSub {
		return int(v)
	}
	// Shift v into [64, 128); each extra shift is one further octave.
	exp := bits.Len64(uint64(v)) - 7
	top := int(uint64(v) >> exp)
	return (exp+1)*histSub + (top - histSub)
}

// histUpper returns the largest value mapping to bucket idx.
func histUpper(idx int) arch.Cycles {
	if idx < histSub {
		return arch.Cycles(idx)
	}
	exp := idx/histSub - 1
	sub := idx % histSub
	return arch.Cycles((uint64(histSub+sub+1) << exp) - 1)
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v arch.Cycles) {
	if v < 0 {
		v = 0
	}
	idx := histIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
}

// Merge folds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int { return int(h.count) }

// Mean returns the exact mean of the recorded values, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Sum returns the exact sum of the recorded values, 0 when empty.
// Together with Count it lets exposition layers emit Prometheus
// summary _sum/_count pairs without re-walking the buckets.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest recorded value, 0 when empty.
func (h *Histogram) Max() arch.Cycles { return h.max }

// Min returns the smallest recorded value, 0 when empty.
func (h *Histogram) Min() arch.Cycles {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the p-th percentile (0..100) using nearest-rank over
// the buckets, reported as the bucket's upper bound clamped to the
// observed extremes. It returns 0 for an empty histogram or NaN p.
func (h *Histogram) Quantile(p float64) arch.Cycles {
	if h.count == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := histUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}
