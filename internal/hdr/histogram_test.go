package hdr

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"aimt/internal/arch"
)

// percentile is an exact nearest-rank reference estimator (the
// metrics package's Percentile; duplicated here because metrics sits
// above the simulator in the import graph).
func percentile(vals []arch.Cycles, p float64) arch.Cycles {
	if len(vals) == 0 || math.IsNaN(p) {
		return 0
	}
	sorted := append([]arch.Cycles(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

func TestHistogramExactBelow64(t *testing.T) {
	var h Histogram
	var vals []arch.Cycles
	for v := arch.Cycles(0); v < 64; v++ {
		h.Record(v)
		vals = append(vals, v)
	}
	if h.Count() != 64 {
		t.Fatalf("count = %d, want 64", h.Count())
	}
	// Every value below histSub occupies its own bucket, so quantiles
	// are exact: nearest-rank of p over 0..63.
	for _, p := range []float64{1, 25, 50, 75, 100} {
		want := percentile(vals, p)
		if got := h.Quantile(p); got != want {
			t.Errorf("Quantile(%v) = %d, want exact %d", p, got, want)
		}
	}
}

// TestHistogramQuantileError checks the advertised relative error bound
// of 1/64 against exact nearest-rank percentiles over random values.
func TestHistogramQuantileError(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var h Histogram
	var vals []arch.Cycles
	for i := 0; i < 20000; i++ {
		v := arch.Cycles(r.Int63n(1 << uint(4+r.Intn(40))))
		vals = append(vals, v)
		h.Record(v)
	}
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 99.9, 100} {
		exact := percentile(vals, p)
		got := h.Quantile(p)
		if exact == 0 {
			if got != 0 {
				t.Errorf("p%v: got %d, want 0", p, got)
			}
			continue
		}
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 1.0/64+1e-9 {
			t.Errorf("p%v: got %d, exact %d, relative error %.4f > 1/64", p, got, exact, relErr)
		}
	}
	if h.Max() != percentile(vals, 100) || h.Min() != percentile(vals, 0) {
		t.Errorf("extremes drifted: [%d,%d] vs exact [%d,%d]",
			h.Min(), h.Max(), percentile(vals, 0), percentile(vals, 100))
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to the same bucket, and
	// indices must be monotone in the value.
	last := -1
	for _, v := range []arch.Cycles{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345} {
		idx := histIndex(v)
		if idx < last {
			t.Errorf("histIndex(%d) = %d is below an earlier smaller value's bucket", v, idx)
		}
		last = idx
		if u := histUpper(idx); histIndex(u) != idx || u < v {
			t.Errorf("histUpper(%d) = %d does not bound bucket of %d", idx, u, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := arch.Cycles(r.Int63n(1 << 30))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() || a.Mean() != all.Mean() {
		t.Fatalf("merge disagrees with direct recording: count %d/%d max %d/%d",
			a.Count(), all.Count(), a.Max(), all.Max())
	}
	for _, p := range []float64{50, 99} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("p%v: merged %d != direct %d", p, a.Quantile(p), all.Quantile(p))
		}
	}
}

// TestHistogramZeroValue pins the zero-value behaviour: an empty
// histogram yields zeros everywhere and negative records clamp.
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Quantile(50) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Sum() != 0 {
		t.Error("empty Histogram is not all-zero")
	}
	if h.Quantile(math.NaN()) != 0 {
		t.Error("Histogram.Quantile(NaN) != 0")
	}
	h.Record(-5) // clamps, must not panic
	if h.Quantile(50) != 0 {
		t.Errorf("negative record did not clamp to 0")
	}
}

// TestHistogramSum pins the Sum accessor the exposition layers use
// for Prometheus summary _sum/_count pairs.
func TestHistogramSum(t *testing.T) {
	var h Histogram
	for _, v := range []arch.Cycles{3, 9, 27} {
		h.Record(v)
	}
	if h.Sum() != 39 {
		t.Errorf("Sum = %v, want 39", h.Sum())
	}
	if h.Mean() != 13 {
		t.Errorf("Mean = %v, want 13", h.Mean())
	}
}

// TestHistogramMatchesSortedPercentileSmall cross-checks the histogram
// against the exact estimator on a small latency set, the way serving
// reports replace collect-all-latencies.
func TestHistogramMatchesSortedPercentileSmall(t *testing.T) {
	vals := []arch.Cycles{3, 9, 27, 81, 243, 729}
	var h Histogram
	for _, v := range vals {
		h.Record(v)
	}
	for _, p := range []float64{0, 50, 100} {
		exact := percentile(vals, p)
		got := h.Quantile(p)
		if relErr := math.Abs(float64(got)-float64(exact)) / float64(exact); relErr > 1.0/64 {
			t.Errorf("p%v: %d vs exact %d", p, got, exact)
		}
	}
}
