package cluster

import (
	"bytes"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/core"
	"aimt/internal/serve"
	"aimt/internal/sim"
)

func testConfig(t *testing.T) arch.Config {
	t.Helper()
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func testStream(t *testing.T, cfg arch.Config, requests int, seed int64) *serve.Stream {
	t.Helper()
	s, err := serve.NewStream(cfg, serve.DefaultClasses(), serve.StreamOptions{
		Requests: requests,
		MeanGap:  5_000,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func aimtSpec() serve.SchedulerSpec {
	return serve.SchedulerSpec{
		Name: "AI-MT",
		New:  func(cfg arch.Config, _ *serve.Stream) sim.Scheduler { return core.New(cfg, core.All()) },
	}
}

// TestDispatchConservesRequests is the dispatcher's conservation
// property: over seeded random streams, every routing policy at every
// cluster size assigns each request to exactly one valid chip — the
// per-chip sub-streams partition the stream with no drops and no
// duplicates.
func TestDispatchConservesRequests(t *testing.T) {
	cfg := testConfig(t)
	for seed := int64(1); seed <= 4; seed++ {
		s := testStream(t, cfg, 40+int(seed)*17, seed)
		for _, chips := range []int{1, 2, 3, 5, 8, 64} {
			for _, pspec := range Policies() {
				assign, err := Dispatch(s, pspec.New(), chips)
				if err != nil {
					t.Fatalf("seed %d %s x%d: %v", seed, pspec.Name, chips, err)
				}
				if len(assign) != len(s.Nets) {
					t.Fatalf("seed %d %s x%d: %d assignments for %d requests",
						seed, pspec.Name, chips, len(assign), len(s.Nets))
				}
				counts := make([]int, chips)
				for i, c := range assign {
					if c < 0 || c >= chips {
						t.Fatalf("seed %d %s x%d: request %d on invalid chip %d", seed, pspec.Name, chips, i, c)
					}
					counts[c]++
				}
				total := 0
				for _, n := range counts {
					total += n
				}
				if total != len(s.Nets) {
					t.Errorf("seed %d %s x%d: chip counts sum to %d, want %d",
						seed, pspec.Name, chips, total, len(s.Nets))
				}
			}
		}
	}
}

// TestServeConservesRequests runs full cluster simulations and checks
// the merged reports cover every request exactly once: aggregate and
// per-chip request counts add up, every request finishes after its
// arrival, and the aggregate latency histogram holds one sample per
// request. Cluster sizes above the request count exercise empty chips.
func TestServeConservesRequests(t *testing.T) {
	cfg := testConfig(t)
	s := testStream(t, cfg, 60, 3)
	for _, chips := range []int{1, 2, 4, 7} {
		for _, pspec := range Policies() {
			res, err := Serve(cfg, s, aimtSpec(), pspec.New(), Options{Chips: chips})
			if err != nil {
				t.Fatalf("%s x%d: %v", pspec.Name, chips, err)
			}
			if res.Agg.Requests != len(s.Nets) {
				t.Errorf("%s x%d: aggregate covers %d of %d requests", pspec.Name, chips, res.Agg.Requests, len(s.Nets))
			}
			if got := res.Agg.Latency.Count(); got != len(s.Nets) {
				t.Errorf("%s x%d: aggregate histogram holds %d samples, want %d", pspec.Name, chips, got, len(s.Nets))
			}
			perChip := 0
			for c, rep := range res.PerChip {
				perChip += rep.Requests
				if rep.Requests == 0 && res.ChipResults[c] != nil {
					t.Errorf("%s x%d: chip %d has a result but no requests", pspec.Name, chips, c)
				}
			}
			if perChip != len(s.Nets) {
				t.Errorf("%s x%d: per-chip requests sum to %d, want %d", pspec.Name, chips, perChip, len(s.Nets))
			}
			for c, cres := range res.ChipResults {
				if cres == nil {
					continue
				}
				for li, fin := range cres.NetFinish {
					if fin <= cres.NetArrive[li] {
						t.Errorf("%s x%d: chip %d request %d finished at %d, arrival %d",
							pspec.Name, chips, c, li, fin, cres.NetArrive[li])
					}
				}
			}
		}
	}
	// More chips than requests: the tail chips stay empty but the
	// cluster still serves everything.
	small := testStream(t, cfg, 5, 9)
	res, err := Serve(cfg, small, aimtSpec(), &RoundRobin{}, Options{Chips: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Requests != 5 {
		t.Errorf("8-chip cluster over 5 requests covers %d", res.Agg.Requests)
	}
	empty := 0
	for _, rep := range res.PerChip {
		if rep.Requests == 0 {
			empty++
		}
	}
	if empty != 3 {
		t.Errorf("expected 3 empty chips, got %d", empty)
	}
}

// TestClassAffinityPinsClasses verifies the affinity partition: with
// the chip count a multiple of the class count, every request lands on
// a chip owned by its class.
func TestClassAffinityPinsClasses(t *testing.T) {
	cfg := testConfig(t)
	s := testStream(t, cfg, 80, 5)
	classes := len(s.Classes)
	for _, chips := range []int{classes, 2 * classes} {
		assign, err := Dispatch(s, ClassAffinity{}, chips)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range assign {
			if c%classes != s.ClassOf[i] {
				t.Fatalf("chips=%d: request %d of class %d routed to chip %d (owner class %d)",
					chips, i, s.ClassOf[i], c, c%classes)
			}
		}
	}
}

// TestLeastWorkBalances checks that least-work spreads a saturating
// stream more evenly than a degenerate all-to-one assignment would:
// no chip stays idle on a 4-chip cluster under heavy load.
func TestLeastWorkBalances(t *testing.T) {
	cfg := testConfig(t)
	s, err := serve.NewStream(cfg, serve.DefaultClasses(), serve.StreamOptions{
		Requests: 64,
		MeanGap:  1, // everything arrives nearly at once: maximum pressure
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := Dispatch(s, LeastWork{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, c := range assign {
		counts[c]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("chip %d received no requests under least-work at saturation (counts %v)", c, counts)
		}
	}
}

// TestLoadCurveShapes runs a small cluster sweep end to end and checks
// its dimensions and rendering.
func TestLoadCurveShapes(t *testing.T) {
	cfg := testConfig(t)
	points, err := LoadCurve(cfg, serve.DefaultClasses(), aimtSpec(), nil, CurveOptions{
		Stream: serve.StreamOptions{Requests: 40, Seed: 1},
		Gaps:   []arch.Cycles{4000, 1000},
		Chips:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, pt := range points {
		if len(pt.Results) != len(Policies()) {
			t.Errorf("gap %d: %d results, want %d", pt.MeanGap, len(pt.Results), len(Policies()))
		}
		for _, r := range pt.Results {
			if r.Chips != 3 || len(r.PerChip) != 3 {
				t.Errorf("gap %d %s: chips %d, per-chip reports %d", pt.MeanGap, r.Policy, r.Chips, len(r.PerChip))
			}
		}
	}
	var buf bytes.Buffer
	if err := PrintCurve(&buf, points); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("PrintCurve produced no output")
	}
	buf.Reset()
	if err := PrintChips(&buf, points[0].Results[0]); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("PrintChips produced no output")
	}
}

// TestDispatchRejectsBadPolicy covers the dispatcher's guard against a
// policy returning an out-of-range chip.
func TestDispatchRejectsBadPolicy(t *testing.T) {
	cfg := testConfig(t)
	s := testStream(t, cfg, 4, 1)
	if _, err := Dispatch(s, badPolicy{}, 2); err == nil {
		t.Error("out-of-range pick accepted")
	}
	if _, err := Dispatch(s, LeastWork{}, 0); err == nil {
		t.Error("zero-chip cluster accepted")
	}
}

type badPolicy struct{}

func (badPolicy) Name() string                { return "bad" }
func (badPolicy) Pick(v *View, _ Request) int { return v.Chips() }

// TestPolicyNamesResolve keeps ByName and Policies in sync.
func TestPolicyNamesResolve(t *testing.T) {
	for _, pspec := range Policies() {
		got, err := ByName(pspec.Name)
		if err != nil {
			t.Errorf("ByName(%q): %v", pspec.Name, err)
			continue
		}
		if got.New().Name() != pspec.Name {
			t.Errorf("spec %q builds policy named %q", pspec.Name, got.New().Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown policy name accepted")
	}
	// Stateful policies must come out fresh per dispatch pass.
	a, b := Policies()[0].New().(*RoundRobin), Policies()[0].New().(*RoundRobin)
	if a == b {
		t.Error("round-robin spec returned the same instance twice")
	}
}
