package cluster

import (
	"fmt"

	"aimt/internal/arch"
)

// Request is the dispatcher's view of one stream entry at routing
// time: everything a front-door router can know about a request before
// any chip has executed a cycle of it.
type Request struct {
	// Index is the request's position in the front-door stream.
	Index int

	// Class is the request's index into the stream's class list.
	Class int

	// Arrival is the request's arrival cycle.
	Arrival arch.Cycles

	// Deadline is the request's absolute deadline.
	Deadline arch.Cycles

	// Service is the class's isolated service estimate — the unit of
	// outstanding work the dispatcher accounts per routed request.
	Service arch.Cycles

	// Priority is the request class's scheduling priority (higher is
	// more urgent; see serve.Class.Priority). Routing policies ignore
	// it; the control plane's admission check sheds only the lowest
	// band.
	Priority int
}

// View is the dispatcher state a routing policy may consult: per-chip
// outstanding-work estimates maintained from the service estimates of
// previously routed requests. A real front door has exactly this
// information — it sees arrivals and its own routing decisions, never
// the chips' internal schedules.
type View struct {
	chips   int
	classes int
	freeAt  []arch.Cycles // estimated cycle each chip drains its queue
	counts  []int         // requests routed to each chip so far

	// pred, when the control plane enables prediction, refines ETA
	// queries by bounded forward simulation of the chip's recent
	// workload on the real machine model. Nil keeps every estimate
	// static, bit-identical to the plain dispatcher.
	pred *predictor
}

// Chips returns the cluster size.
func (v *View) Chips() int { return v.chips }

// Classes returns the number of request classes in the stream.
func (v *View) Classes() int { return v.classes }

// Backlog returns chip's estimated outstanding work at cycle now: the
// service estimates of its routed, not-yet-drained requests.
func (v *View) Backlog(chip int, now arch.Cycles) arch.Cycles {
	if b := v.freeAt[chip] - now; b > 0 {
		return b
	}
	return 0
}

// ETA returns the estimated completion cycle of r if routed to chip:
// the chip drains its backlog (or the request arrives, whichever is
// later), then serves the request.
func (v *View) ETA(chip int, r Request) arch.Cycles {
	start := v.freeAt[chip]
	if r.Arrival > start {
		start = r.Arrival
	}
	return start + r.Service
}

// PredictETA returns the best completion estimate available for
// routing r to chip: the static drain-then-serve arithmetic when the
// dispatcher has no predictor, or the bounded forward simulation of
// the chip's recent workload plus r when the control plane enabled
// prediction (Control.Predictive, or the "predictive" policy). The
// deadline policy and admission control query this seam, so turning
// prediction on upgrades both without changing their logic.
func (v *View) PredictETA(chip int, r Request) arch.Cycles {
	static := v.ETA(chip, r)
	if v.pred == nil {
		return static
	}
	return v.pred.eta(chip, r, static)
}

// Routed returns how many requests chip has received so far.
func (v *View) Routed(chip int) int { return v.counts[chip] }

// route records the dispatch of r to chip.
func (v *View) route(chip int, r Request) {
	start := v.freeAt[chip]
	if r.Arrival > start {
		start = r.Arrival
	}
	v.freeAt[chip] = start + r.Service
	v.counts[chip]++
	if v.pred != nil {
		v.pred.record(chip, r.Index)
	}
}

// Policy routes each request of a stream to one chip. Policies are
// consulted in arrival order and must be deterministic functions of
// the view and request; they may carry state across picks (e.g. a
// round-robin cursor), so one Policy value serves one dispatch pass.
type Policy interface {
	// Name labels the policy in results and flags.
	Name() string

	// Pick returns the chip for r, in [0, v.Chips()).
	Pick(v *View, r Request) int
}

// RoundRobin cycles through the chips in request order, ignoring load.
type RoundRobin struct{ next int }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(v *View, _ Request) int {
	c := p.next % v.Chips()
	p.next++
	return c
}

// LeastWork routes to the chip with the smallest estimated backlog at
// the request's arrival; ties resolve to the lowest chip index.
type LeastWork struct{}

// Name implements Policy.
func (LeastWork) Name() string { return "least-work" }

// Pick implements Policy.
func (LeastWork) Pick(v *View, r Request) int {
	best := 0
	bestB := v.Backlog(0, r.Arrival)
	for c := 1; c < v.Chips(); c++ {
		if b := v.Backlog(c, r.Arrival); b < bestB {
			best, bestB = c, b
		}
	}
	return best
}

// ClassAffinity pins each request class to a chip subset — the CNN /
// RNN partitioning that keeps one class's weight working set hot on
// its chips. Class k owns the chips whose index is congruent to k
// modulo the class count (so with 4 chips and 2 classes, chips 0 and 2
// serve class 0). When the cluster is smaller than the class count the
// class folds onto chip k mod chips. Within its subset a request is
// routed by least backlog.
type ClassAffinity struct{}

// Name implements Policy.
func (ClassAffinity) Name() string { return "class-affinity" }

// Pick implements Policy.
func (ClassAffinity) Pick(v *View, r Request) int {
	classes := v.Classes()
	if classes <= 0 || v.Chips() <= classes {
		// Degenerate partitions: one chip per class at most.
		if classes <= 0 {
			return 0
		}
		return r.Class % v.Chips()
	}
	best, bestB := -1, arch.Cycles(0)
	for c := r.Class; c < v.Chips(); c += classes {
		if b := v.Backlog(c, r.Arrival); best < 0 || b < bestB {
			best, bestB = c, b
		}
	}
	return best
}

// Deadline routes to the chip with the earliest feasible completion:
// the one whose backlog-drain-then-serve estimate finishes soonest,
// which is also the chip most likely to meet the request's deadline.
// Ties resolve to the lowest chip index.
type Deadline struct{}

// Name implements Policy.
func (Deadline) Name() string { return "deadline" }

// Pick implements Policy. It routes through the PredictETA seam, so
// with the control plane's predictor attached the "earliest feasible
// completion" is a forward-simulated one; without it the behaviour is
// the original static estimate, bit for bit.
func (Deadline) Pick(v *View, r Request) int {
	best := 0
	bestETA := v.PredictETA(0, r)
	for c := 1; c < v.Chips(); c++ {
		if eta := v.PredictETA(c, r); eta < bestETA {
			best, bestETA = c, eta
		}
	}
	return best
}

// Predictive is the deadline policy with the forward-simulation
// predictor always on: selecting it (cluster.ByName("predictive") or
// aimt-serve -route predictive) makes Serve attach the predictor even
// when the rest of the control plane is off. Each routing decision
// simulates the candidate chips' recent workload plus the request on
// the real machine model and picks the chip whose simulation finishes
// the request soonest.
type Predictive struct{}

// Name implements Policy.
func (Predictive) Name() string { return "predictive" }

// Pick implements Policy.
func (Predictive) Pick(v *View, r Request) int {
	best := 0
	bestETA := v.PredictETA(0, r)
	for c := 1; c < v.Chips(); c++ {
		if eta := v.PredictETA(c, r); eta < bestETA {
			best, bestETA = c, eta
		}
	}
	return best
}

// Spec names a routing policy and builds a fresh instance per dispatch
// pass (policies may carry cursor state).
type Spec struct {
	// Name labels the policy.
	Name string
	// New constructs a fresh policy value.
	New func() Policy
}

// Policies returns every built-in routing policy, in comparison order.
func Policies() []Spec {
	return []Spec{
		{Name: "round-robin", New: func() Policy { return &RoundRobin{} }},
		{Name: "least-work", New: func() Policy { return LeastWork{} }},
		{Name: "class-affinity", New: func() Policy { return ClassAffinity{} }},
		{Name: "deadline", New: func() Policy { return Deadline{} }},
	}
}

// ByName resolves a routing policy spec from its name. The
// "predictive" policy resolves here but is not part of Policies():
// every routing decision costs chip-count forward simulations, so it
// is compared only when asked for.
func ByName(name string) (Spec, error) {
	if name == "predictive" {
		return Spec{Name: "predictive", New: func() Policy { return Predictive{} }}, nil
	}
	for _, s := range Policies() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("cluster: unknown routing policy %q (have round-robin, least-work, class-affinity, deadline, predictive)", name)
}
