// Package cluster models a multi-chip AI-MT deployment: N independent
// chip engines — each a full instance of the single-accelerator
// machine model (own HBM channel, PE complex, weight SRAM, host link
// and scheduler) — behind a request dispatcher with pluggable routing
// policies.
//
// The dispatcher is a front door, not an oracle: it routes each
// request at its arrival using only arrival times, class service
// estimates and its own previous routing decisions, exactly the
// information a production load balancer has. Once the assignment is
// fixed, every chip's schedule is simulated by the unmodified
// single-chip engine over the chip's sub-stream; chips share nothing,
// so the per-chip simulations fan out over the sweep worker pool.
//
// A one-chip cluster is, by construction, the single-engine serve
// path: every policy routes all requests to chip 0, the sub-stream is
// the stream, and the chip simulation is the same sim.Run call —
// enforced bit-for-bit by the differential tests.
package cluster

import (
	"fmt"
	"io"
	"strconv"

	"aimt/internal/arch"
	"aimt/internal/metrics"
	"aimt/internal/obs"
	"aimt/internal/rtrace"
	"aimt/internal/serve"
	"aimt/internal/sim"
	"aimt/internal/sweep"
)

// Options tune one cluster serving run.
type Options struct {
	// Chips is the number of chip engines; <= 0 means 1.
	Chips int

	// Workers caps the per-chip simulation parallelism; <= 0 means
	// GOMAXPROCS.
	Workers int

	// CheckInvariants turns the machine-model invariant checker on for
	// every chip's simulation.
	CheckInvariants bool

	// Metrics, when non-nil, receives live engine series from every
	// chip simulation plus per-chip and imbalance series published
	// when the run completes. Counters aggregate across runs sharing
	// the registry; gauges are last-writer-wins.
	Metrics *obs.Registry

	// Ledger, when non-nil, records every chip scheduler's decisions
	// (interleaved across chips; entries carry chip-local network
	// indices) plus the control plane's shed and scale decisions.
	Ledger *obs.Ledger

	// Control configures the overload control plane (admission
	// shedding, elastic autoscaling). The zero value disables it and
	// Serve takes the plain Dispatch path unchanged.
	Control Control

	// Trace, when non-nil, collects attributed per-request spans for
	// the whole cluster run: each chip simulation gets an
	// rtrace.Collector, the collectors are merged back into stream
	// coordinates, and the spans (chip choice, predicted ETA and shed
	// verdict included) land in Result.Spans and the store. Nil
	// attaches no tracer.
	Trace *rtrace.Store

	// EngineTrace, when non-nil, supplies an occupancy tracer per chip
	// (nil return skips that chip), e.g. a trace.Recorder per chip for
	// a merged Perfetto export. Independent of Trace; when both are
	// set the chip engines fan events out to both.
	EngineTrace func(chip int) sim.Tracer
}

// Result is one policy's cluster serving outcome.
type Result struct {
	// Policy and Scheduler label the routing policy and the per-chip
	// scheduler.
	Policy    string
	Scheduler string

	// Chips is the cluster size.
	Chips int

	// Assignment maps each request index to its chip.
	Assignment []int

	// PerChip holds one report per chip over that chip's sub-stream;
	// chips that received no requests get zero-valued reports.
	PerChip []*serve.Report

	// ChipResults holds the raw per-chip simulation results (request
	// indices are chip-local; see Assignment), nil for empty chips.
	ChipResults []*sim.Result

	// Agg is the aggregate report over every request of the stream:
	// latency quantiles and miss rates across all chips, throughput
	// over the cluster makespan, and engine utilizations averaged over
	// the chips.
	Agg *serve.Report

	// Imbalance is the PE-load imbalance across chips: the busiest
	// chip's share of PE work over the mean share, minus one
	// (metrics.Imbalance; 0 = perfectly balanced).
	Imbalance float64

	// Shed marks requests dropped by admission control (Assignment -1);
	// nil when the control plane is off. ShedCount totals them.
	Shed      []bool
	ShedCount int

	// ScaleUps and ScaleDowns count the elastic autoscaler's active-set
	// changes during dispatch; ActiveChips is the active set size when
	// dispatch finished (== Chips with the control plane off).
	ScaleUps, ScaleDowns int
	ActiveChips          int

	// Spans holds the attributed per-request traces when Options.Trace
	// was set (request-granular, stream request ids); nil otherwise.
	Spans []rtrace.RequestSpan
}

// Dispatch routes every request of the stream to a chip under the
// policy, in arrival order, and returns the entry-to-chip assignment.
// The dispatcher's backlog estimates advance with each routed entry's
// service estimate. Routing is request-granular: a decode entry
// inherits its predecessor's chip without consulting the policy — its
// KV cache lives there — but still advances that chip's backlog by the
// decode service estimate.
func Dispatch(s *serve.Stream, pol Policy, chips int) ([]int, error) {
	return dispatch(s, pol, chips, nil)
}

// dispatch is Dispatch with an optional etas sink: when non-nil (and
// stream-length), each entry's dispatcher completion estimate at
// routing time is recorded for the request tracer.
func dispatch(s *serve.Stream, pol Policy, chips int, etas []arch.Cycles) ([]int, error) {
	if chips <= 0 {
		return nil, fmt.Errorf("cluster: chips must be positive, got %d", chips)
	}
	v := &View{
		chips:   chips,
		classes: len(s.Classes),
		freeAt:  make([]arch.Cycles, chips),
		counts:  make([]int, chips),
	}
	out := make([]int, len(s.Nets))
	for i := range s.Nets {
		r := Request{
			Index:    i,
			Class:    s.ClassOf[i],
			Arrival:  s.Arrivals[i],
			Deadline: s.Deadlines[i],
			Service:  s.EntryService(i),
		}
		if r.Class < len(s.ClassPriority) {
			r.Priority = s.ClassPriority[r.Class]
		}
		if s.ChainAfter != nil && s.ChainAfter[i] >= 0 {
			c := out[s.ChainAfter[i]]
			out[i] = c
			if etas != nil {
				etas[i] = v.ETA(c, r)
			}
			v.route(c, r)
			continue
		}
		c := pol.Pick(v, r)
		if c < 0 || c >= chips {
			return nil, fmt.Errorf("cluster: policy %s routed request %d to chip %d, want [0,%d)", pol.Name(), i, c, chips)
		}
		out[i] = c
		if etas != nil {
			etas[i] = v.ETA(c, r)
		}
		v.route(c, r)
	}
	return out, nil
}

// Serve routes the stream across the cluster under the policy, runs
// every chip's sub-stream on its own engine (one scheduler instance
// per chip, built by spec), and merges per-chip and aggregate reports.
func Serve(cfg arch.Config, s *serve.Stream, spec serve.SchedulerSpec, pol Policy, opts Options) (*Result, error) {
	chips := opts.Chips
	if chips <= 0 {
		chips = 1
	}
	var (
		assign []int
		shed   []bool
		st     ctlStats
		err    error
	)
	ctl := opts.Control
	if pol.Name() == "predictive" {
		// The predictive policy is meaningless without the predictor;
		// selecting it opts into forward-simulated ETAs implicitly.
		ctl.Predictive = true
	}
	var etas []arch.Cycles
	if opts.Trace != nil {
		etas = make([]arch.Cycles, len(s.Nets))
	}
	if ctl.enabled() {
		assign, shed, st, err = dispatchControlled(cfg, s, pol, chips, ctl, opts.Ledger, etas)
	} else {
		assign, err = dispatch(s, pol, chips, etas)
		st.active = chips
	}
	if err != nil {
		return nil, err
	}

	perChip := make([][]int, chips)
	for i, c := range assign {
		if c < 0 {
			continue // shed at the front door, never reached a chip
		}
		perChip[c] = append(perChip[c], i)
	}

	subs := make([]*serve.Stream, chips)
	var jobs []sweep.Job
	var jobChip []int
	var jobCols []*rtrace.Collector // parallel to jobs when tracing
	for c := 0; c < chips; c++ {
		if len(perChip[c]) == 0 {
			continue
		}
		sub := s.SubStream(fmt.Sprintf("%s-chip%d", s.Name, c), perChip[c])
		subs[c] = sub
		var netClasses []string
		if opts.Metrics != nil {
			netClasses = sub.NetClasses()
		}
		var tracers []sim.Tracer
		var col *rtrace.Collector
		if opts.Trace != nil {
			col = rtrace.NewCollector(len(sub.Nets))
			tracers = append(tracers, col)
		}
		jobCols = append(jobCols, col)
		if opts.EngineTrace != nil {
			if t := opts.EngineTrace(c); t != nil {
				tracers = append(tracers, t)
			}
		}
		var tracer sim.Tracer
		switch len(tracers) {
		case 1:
			tracer = tracers[0]
		case 2:
			tracer = sim.MultiTracer(tracers)
		}
		jobs = append(jobs, sweep.Job{
			Mix:       sub.Name,
			Scheduler: spec.Name,
			Cfg:       cfg,
			Nets:      sub.Nets,
			New:       func() sim.Scheduler { return spec.New(cfg, sub) },
			Opts: sim.Options{
				Arrivals:        sub.Arrivals,
				ChainAfter:      sub.ChainAfter,
				CheckInvariants: opts.CheckInvariants,
				Metrics:         opts.Metrics,
				Ledger:          opts.Ledger,
				NetClasses:      netClasses,
				Tracer:          tracer,
			},
		})
		jobChip = append(jobChip, c)
	}
	outs := sweep.Run(jobs, sweep.Options{Workers: opts.Workers})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}

	res := &Result{
		Policy:      pol.Name(),
		Scheduler:   spec.Name,
		Chips:       chips,
		Assignment:  assign,
		PerChip:     make([]*serve.Report, chips),
		ChipResults: make([]*sim.Result, chips),
		Shed:        shed,
		ShedCount:   st.shedCount,
		ScaleUps:    st.scaleUps,
		ScaleDowns:  st.scaleDowns,
		ActiveChips: st.active,
	}

	// Merge the chip results into one stream-indexed result so the
	// aggregate report is built by the same fold as the single-chip
	// path. The merged engine-busy totals are sums over chips; the
	// cluster makespan is the latest chip makespan.
	merged := &sim.Result{
		Scheduler: spec.Name,
		NetNames:  make([]string, len(s.Nets)),
		NetArrive: append([]arch.Cycles(nil), s.Arrivals...),
		NetFinish: make([]arch.Cycles, len(s.Nets)),
	}
	for ji, o := range outs {
		c := jobChip[ji]
		res.ChipResults[c] = o.Res
		rep := serve.BuildReport(subs[c], o.Res)
		rep.Scheduler = spec.Name
		res.PerChip[c] = rep
		if o.Res.Makespan > merged.Makespan {
			merged.Makespan = o.Res.Makespan
		}
		merged.MemBusy += o.Res.MemBusy
		merged.PEBusy += o.Res.PEBusy
		merged.HostBusy += o.Res.HostBusy
		merged.MBCount += o.Res.MBCount
		merged.CBCount += o.Res.CBCount
		merged.Splits += o.Res.Splits
		for li, gi := range perChip[c] {
			merged.NetFinish[gi] = o.Res.NetFinish[li]
			// The chip result's arrival is the effective one (a decode
			// phase arrives when its predecessor finishes); for unchained
			// entries it equals the stream arrival, so this copy is an
			// identity on single-phase streams.
			merged.NetArrive[gi] = o.Res.NetArrive[li]
			merged.NetNames[gi] = o.Res.NetNames[li]
		}
	}
	for c := 0; c < chips; c++ {
		if res.PerChip[c] == nil {
			res.PerChip[c] = &serve.Report{Scheduler: spec.Name}
		}
	}

	if opts.Trace != nil {
		// Merge the per-chip collectors into stream coordinates and
		// attribute every request against the merged result; shed
		// requests keep their failed admission prediction as the ETA.
		gcol := rtrace.NewCollector(len(s.Nets))
		for ji, col := range jobCols {
			if col != nil {
				gcol.Merge(col, perChip[jobChip[ji]])
			}
		}
		in := serve.TraceInput(s, merged, fmt.Sprintf("%s/%s", spec.Name, pol.Name()))
		in.Chip = assign
		in.ETA = etas
		in.Shed = shed
		res.Spans = rtrace.Build(in, gcol)
		opts.Trace.AddRun(res.Spans)
		opts.Trace.Publish(opts.Metrics)
	}

	agg := serve.BuildReportShed(s, merged, shed)
	agg.Scheduler = spec.Name
	if merged.Makespan > 0 {
		// Aggregate utilization is total busy work over chips x cluster
		// makespan, so an idle chip drags the average down. With one
		// chip this reduces to the single-engine busy fraction.
		agg.PEUtil = float64(merged.PEBusy) / (float64(chips) * float64(merged.Makespan))
		agg.MemUtil = float64(merged.MemBusy) / (float64(chips) * float64(merged.Makespan))
	}
	res.Agg = agg

	utils := make([]float64, chips)
	for c := 0; c < chips; c++ {
		if r := res.ChipResults[c]; r != nil && merged.Makespan > 0 {
			utils[c] = float64(r.PEBusy) / float64(merged.Makespan)
		}
	}
	res.Imbalance = metrics.Imbalance(utils)
	res.publish(opts.Metrics, utils)
	return res, nil
}

// publish folds the cluster outcome into an observability registry:
// routed-request and SLA-miss counters plus imbalance per policy, and
// per-chip request, PE-utilization and p99 gauges. A nil registry is
// a no-op.
func (r *Result) publish(reg *obs.Registry, utils []float64) {
	if reg == nil {
		return
	}
	pl := func(name string) string { return obs.Label(name, "policy", r.Policy) }
	reg.Counter(pl("aimt_cluster_requests_total")).Add(int64(len(r.Assignment)))
	reg.Counter(pl("aimt_cluster_sla_misses_total")).Add(int64(r.Agg.Misses))
	reg.Gauge(pl("aimt_cluster_imbalance")).Set(r.Imbalance)
	if r.Agg.PerPhase != nil && r.Chips > 0 {
		// The transformer serving headline: generated tokens per million
		// cycles, normalized per chip.
		reg.Gauge(pl("aimt_cluster_tokens_per_mcycle_per_chip")).Set(r.Agg.TokensPerMcycle / float64(r.Chips))
	}
	if r.Shed != nil {
		reg.Counter(pl("aimt_cluster_shed_total")).Add(int64(r.ShedCount))
		reg.Counter(pl("aimt_cluster_scale_ups_total")).Add(int64(r.ScaleUps))
		reg.Counter(pl("aimt_cluster_scale_downs_total")).Add(int64(r.ScaleDowns))
		reg.Gauge(pl("aimt_cluster_active_chips")).Set(float64(r.ActiveChips))
	}
	for c, rep := range r.PerChip {
		ch := func(name string) string { return obs.Label(name, "chip", strconv.Itoa(c)) }
		reg.Gauge(ch("aimt_cluster_chip_requests")).Set(float64(rep.Requests))
		reg.Gauge(ch("aimt_cluster_chip_p99_cycles")).Set(float64(rep.P99))
		if c < len(utils) {
			reg.Gauge(ch("aimt_cluster_chip_pe_util")).Set(utils[c])
		}
	}
}

// CurveOptions tune a cluster load sweep.
type CurveOptions struct {
	// Stream is the per-point stream shape; its MeanGap field is
	// ignored in favor of Gaps.
	Stream serve.StreamOptions

	// Gaps lists the mean inter-arrival times to sweep; empty means
	// serve.DefaultGapFactors interpreted as per-chip offered loads
	// (the cluster absorbs chips x the single-chip rate at the same
	// factor).
	Gaps []arch.Cycles

	// Chips is the cluster size; <= 0 means 1.
	Chips int

	// Workers caps per-point simulation parallelism.
	Workers int

	// CheckInvariants turns the machine-model invariant checker on for
	// every chip simulation.
	CheckInvariants bool

	// Metrics and Ledger, when non-nil, are threaded into every
	// cluster run of the sweep; see Options.
	Metrics *obs.Registry
	Ledger  *obs.Ledger

	// Control configures the overload control plane for every run of
	// the sweep; the zero value disables it.
	Control Control

	// Trace, when non-nil, collects attributed per-request spans from
	// every cluster run of the sweep; see Options.Trace.
	Trace *rtrace.Store
}

// CurvePoint is one offered-load point of a cluster load sweep: the
// same request sequence routed and simulated under every policy.
type CurvePoint struct {
	// MeanGap is the mean inter-arrival time at this point.
	MeanGap arch.Cycles

	// ChipLoad is the per-chip offered load: the stream's aggregate
	// demand divided by the chip count. Past ~1 the whole cluster is
	// oversubscribed.
	ChipLoad float64

	// Results holds one cluster result per routing policy, in policy
	// order.
	Results []*Result
}

// LoadCurve sweeps offered load against the cluster: at each gap the
// identical request sequence (same seed) is routed under every policy
// and simulated, so points and policies are directly comparable.
func LoadCurve(cfg arch.Config, classes []serve.Class, spec serve.SchedulerSpec, policies []Spec, opts CurveOptions) ([]CurvePoint, error) {
	chips := opts.Chips
	if chips <= 0 {
		chips = 1
	}
	if len(policies) == 0 {
		policies = Policies()
	}
	gaps := opts.Gaps
	if len(gaps) == 0 {
		probeOpts := opts.Stream
		probeOpts.Requests = 1
		probeOpts.MeanGap = 1
		probe, err := serve.NewStream(cfg, classes, probeOpts)
		if err != nil {
			return nil, err
		}
		for _, f := range serve.DefaultGapFactors {
			g := arch.Cycles(probe.MeanService / (f * float64(chips)))
			if g < 1 {
				g = 1
			}
			gaps = append(gaps, g)
		}
	}

	points := make([]CurvePoint, 0, len(gaps))
	for _, gap := range gaps {
		sopts := opts.Stream
		sopts.MeanGap = gap
		s, err := serve.NewStream(cfg, classes, sopts)
		if err != nil {
			return nil, err
		}
		pt := CurvePoint{MeanGap: gap, ChipLoad: s.OfferedLoad() / float64(chips)}
		for _, pspec := range policies {
			r, err := Serve(cfg, s, spec, pspec.New(), Options{
				Chips:           chips,
				Workers:         opts.Workers,
				CheckInvariants: opts.CheckInvariants,
				Metrics:         opts.Metrics,
				Ledger:          opts.Ledger,
				Control:         opts.Control,
				Trace:           opts.Trace,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: %s at gap %d: %w", pspec.Name, gap, err)
			}
			pt.Results = append(pt.Results, r)
		}
		points = append(points, pt)
	}
	return points, nil
}

// PrintCurve renders a cluster load sweep as one aggregate table per
// offered-load point: tail latency, SLA miss rate, cluster throughput
// and load imbalance per routing policy.
func PrintCurve(w io.Writer, points []CurvePoint) error {
	for _, pt := range points {
		t := metrics.NewTable("policy", "p50", "p99", "p99.9", "miss rate", "req/Mcyc", "PE util", "imbalance")
		for _, r := range pt.Results {
			t.AddRow(r.Policy,
				fmt.Sprint(r.Agg.P50), fmt.Sprint(r.Agg.P99), fmt.Sprint(r.Agg.P999),
				metrics.Pct(r.Agg.MissRate), metrics.F(r.Agg.Throughput),
				metrics.Pct(r.Agg.PEUtil), metrics.F(r.Imbalance))
		}
		chips := 1
		if len(pt.Results) > 0 {
			chips = pt.Results[0].Chips
		}
		if _, err := fmt.Fprintf(w, "chips %d, per-chip offered load %.2f (mean gap %d)\n%s\n",
			chips, pt.ChipLoad, pt.MeanGap, t); err != nil {
			return err
		}
	}
	return nil
}

// PrintChips renders one cluster result's per-chip breakdown.
func PrintChips(w io.Writer, r *Result) error {
	t := metrics.NewTable("chip", "requests", "p50", "p99", "miss rate", "PE util")
	for c, rep := range r.PerChip {
		t.AddRow(fmt.Sprint(c), fmt.Sprint(rep.Requests),
			fmt.Sprint(rep.P50), fmt.Sprint(rep.P99),
			metrics.Pct(rep.MissRate), metrics.Pct(rep.PEUtil))
	}
	_, err := fmt.Fprintf(w, "policy %s, %d chips\n%s", r.Policy, r.Chips, t)
	return err
}
