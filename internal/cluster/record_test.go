package cluster

import (
	"testing"
	"time"

	"aimt/internal/runstore"
	"aimt/internal/serve"
)

// TestRecordCurve pins the cluster→runstore mapping: one run per
// (point, policy) built from the aggregate report, with the
// cluster-only imbalance row and the routing labels attached.
func TestRecordCurve(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

	agg := func(p99 float64) *serve.Report {
		return &serve.Report{Scheduler: "AI-MT", P99: 2000, MissRate: 0.1, Throughput: p99, PEUtil: 0.7}
	}
	points := []CurvePoint{
		{ChipLoad: 0.8, Results: []*Result{
			{Policy: "least-loaded", Scheduler: "AI-MT", Chips: 4, Agg: agg(20), Imbalance: 0.05},
			{Policy: "round-robin", Scheduler: "AI-MT", Chips: 4, Agg: agg(18), Imbalance: 0.30},
		}},
	}
	stored, err := RecordCurve(st, "mixed", "bursty", "def5678", points)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 2 {
		t.Fatalf("stored %d runs, want 2", len(stored))
	}
	r := stored[1]
	if r.Source != "cluster" {
		t.Errorf("source = %q, want cluster", r.Source)
	}
	for k, want := range map[string]string{
		"mix": "mixed", "sched": "AI-MT", "policy": "round-robin",
		"process": "bursty", "chips": "4", "load": "0.80",
	} {
		if got := r.Label(k); got != want {
			t.Errorf("label %s = %q, want %q", k, got, want)
		}
	}
	v, ok := r.Metric("imbalance frac")
	if !ok || v != 0.30 {
		t.Errorf("imbalance metric = %v (ok=%v), want 0.30", v, ok)
	}
	if _, ok := r.Metric("p99 cycles"); !ok {
		t.Error("aggregate report rows missing from cluster run")
	}
}
