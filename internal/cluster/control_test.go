package cluster

import (
	"reflect"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/obs"
	"aimt/internal/serve"
)

// prioStream builds a two-band stream (cnn premium at priority 1, rnn
// batch at priority 0) at the given per-chip offered load.
func prioStream(t *testing.T, cfg arch.Config, requests int, seed int64, load float64, chips int) *serve.Stream {
	t.Helper()
	classes := serve.DefaultClasses()
	classes[0].Priority = 1
	probe, err := serve.NewStream(cfg, classes, serve.StreamOptions{Requests: 1, MeanGap: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gap := arch.Cycles(probe.MeanService / (load * float64(chips)))
	if gap < 1 {
		gap = 1
	}
	s, err := serve.NewStream(cfg, classes, serve.StreamOptions{Requests: requests, MeanGap: gap, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdmissionShedsOnlyLowestClass: at sustained saturation the
// admission check drops requests, every drop is in the lowest priority
// band, and conservation (routed + shed == offered) holds.
func TestAdmissionShedsOnlyLowestClass(t *testing.T) {
	cfg := testConfig(t)
	s := prioStream(t, cfg, 300, 9, 4.0, 2)
	assign, shed, st, err := dispatchControlled(cfg, s, LeastWork{}, 2, Control{Admission: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for i := range assign {
		if shed[i] {
			if assign[i] != -1 {
				t.Errorf("request %d shed but assigned to chip %d", i, assign[i])
			}
			if p := s.ClassPriority[s.ClassOf[i]]; p != 0 {
				t.Errorf("request %d of priority %d shed; only the lowest band may shed", i, p)
			}
			continue
		}
		if assign[i] < 0 || assign[i] >= 2 {
			t.Errorf("request %d on invalid chip %d", i, assign[i])
		}
		routed++
	}
	if routed+st.shedCount != len(s.Nets) {
		t.Errorf("routed %d + shed %d != offered %d", routed, st.shedCount, len(s.Nets))
	}
	if st.shedCount == 0 {
		t.Error("no sheds at 4x saturation")
	}
}

// TestAutoscalerHysteresis: sustained overload grows the active set
// (recorded in the ledger), light load never leaves the floor, and a
// pinned autoscaler (MinChips == Chips) routes identically to the
// plain dispatcher with zero scale events.
func TestAutoscalerHysteresis(t *testing.T) {
	cfg := testConfig(t)
	hot := prioStream(t, cfg, 300, 9, 4.0, 4)
	led := obs.NewLedger(0)
	_, _, st, err := dispatchControlled(cfg, hot, LeastWork{}, 4, Control{Autoscale: true}, led, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.scaleUps == 0 {
		t.Error("no scale-ups under sustained 4x overload")
	}
	if st.active < 1 || st.active > 4 {
		t.Errorf("active chips %d out of [1,4]", st.active)
	}
	if got := led.CountKind(obs.KindScaleUp); got != int64(st.scaleUps) {
		t.Errorf("ledger scale-ups %d != stats %d", got, st.scaleUps)
	}
	if got := led.CountKind(obs.KindScaleDown); got != int64(st.scaleDowns) {
		t.Errorf("ledger scale-downs %d != stats %d", got, st.scaleDowns)
	}

	light := prioStream(t, cfg, 300, 9, 0.1, 4)
	_, _, lst, err := dispatchControlled(cfg, light, LeastWork{}, 4, Control{Autoscale: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lst.scaleUps != 0 || lst.active != 1 {
		t.Errorf("light load scaled: %d ups, %d active, want 0 and 1", lst.scaleUps, lst.active)
	}

	ref, err := Dispatch(hot, LeastWork{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pin, pinShed, pst, err := dispatchControlled(cfg, hot, LeastWork{}, 4, Control{Autoscale: true, MinChips: 4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pst.scaleUps != 0 || pst.scaleDowns != 0 || pst.active != 4 {
		t.Errorf("pinned autoscaler moved: %+v", pst)
	}
	if !reflect.DeepEqual(pin, ref) {
		t.Error("pinned autoscaler routed differently from plain Dispatch")
	}
	for i, sh := range pinShed {
		if sh {
			t.Fatalf("pinned autoscaler shed request %d with admission off", i)
		}
	}
}

// TestControlledServeConservation runs the full controlled serve path
// and checks the end-to-end accounting: no admitted request is lost,
// shed requests never reach a chip's completion set, the aggregate
// report and the ledger agree with the dispatch stats.
func TestControlledServeConservation(t *testing.T) {
	cfg := testConfig(t)
	led := obs.NewLedger(0)
	s := prioStream(t, cfg, 240, 11, 4.0, 2)
	res, err := Serve(cfg, s, aimtSpec(), LeastWork{}, Options{
		Chips:           2,
		CheckInvariants: true,
		Ledger:          led,
		Control:         Control{Admission: true, Autoscale: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedCount == 0 {
		t.Fatal("no sheds at 4x saturation")
	}
	if res.Agg.Shed != res.ShedCount {
		t.Errorf("aggregate shed %d != dispatch shed %d", res.Agg.Shed, res.ShedCount)
	}
	if got := int(res.Agg.Latency.Count()) + res.Agg.Shed; got != len(s.Nets) {
		t.Errorf("served %d + shed %d != offered %d", res.Agg.Latency.Count(), res.Agg.Shed, len(s.Nets))
	}
	admitted := 0
	for c, cr := range res.ChipResults {
		if cr == nil {
			continue
		}
		admitted += len(cr.NetFinish)
		for li, fin := range cr.NetFinish {
			if fin <= 0 {
				t.Errorf("chip %d local request %d never finished", c, li)
			}
		}
	}
	if admitted+res.ShedCount != len(s.Nets) {
		t.Errorf("chip completions %d + shed %d != offered %d", admitted, res.ShedCount, len(s.Nets))
	}
	if got := led.CountKind(obs.KindShed); got != int64(res.ShedCount) {
		t.Errorf("ledger sheds %d != result %d", got, res.ShedCount)
	}
	if got := led.CountKind(obs.KindScaleUp); got != int64(res.ScaleUps) {
		t.Errorf("ledger scale-ups %d != result %d", got, res.ScaleUps)
	}
	var offered int
	for _, cs := range res.Agg.PerClass {
		offered += cs.Requests
		if cs.Shed > 0 && cs.Class != "rnn" {
			t.Errorf("class %s shed %d requests; only the lowest band may shed", cs.Class, cs.Shed)
		}
	}
	if offered != len(s.Nets) {
		t.Errorf("per-class requests sum to %d, want %d", offered, len(s.Nets))
	}
}
