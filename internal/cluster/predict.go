package cluster

import (
	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sched"
	"aimt/internal/serve"
	"aimt/internal/sim"
)

// predictor replaces the dispatcher's static drain-then-serve ETA
// arithmetic with a bounded forward simulation: for an ETA query it
// takes the chip's most recently routed requests (a sliding window of
// PredictWindow entries), adds the candidate, and runs the actual
// machine model over those networks from their true arrival cycles.
// The candidate's simulated finish cycle is the prediction.
//
// The static estimate serially sums isolated service estimates, so it
// cannot see multi-tenant overlap — the very effect the accelerator
// is built for. The simulation runs the real engine (pooled, so a
// query is allocation-light) under FIFO, the policy-neutral baseline:
// the point is to model the machine's pipelining, not to guess the
// chip scheduler's reordering.
//
// The window bounds each query's cost: simulating W small networks is
// microseconds, and requests older than the window are almost surely
// drained. A request the simulation cannot place (engine error) falls
// back to the static estimate, so prediction can degrade but never
// fail a dispatch.
type predictor struct {
	cfg    arch.Config
	s      *serve.Stream
	window int

	// recent holds, per chip, the indices of the last window entries
	// routed there (oldest first).
	recent [][]int

	// Scratch for assembling each query's sub-workload.
	nets     []*compiler.CompiledNetwork
	arrivals []arch.Cycles
}

// defaultPredictWindow is the forward-simulation window when
// Control.PredictWindow is unset.
const defaultPredictWindow = 8

func newPredictor(cfg arch.Config, s *serve.Stream, chips, window int) *predictor {
	if window <= 0 {
		window = defaultPredictWindow
	}
	return &predictor{
		cfg:    cfg,
		s:      s,
		window: window,
		recent: make([][]int, chips),
	}
}

// record notes that entry idx was routed to chip, sliding the chip's
// window.
func (p *predictor) record(chip, idx int) {
	h := p.recent[chip]
	if len(h) == p.window {
		copy(h, h[1:])
		h[len(h)-1] = idx
	} else {
		h = append(h, idx)
	}
	p.recent[chip] = h
}

// eta forward-simulates routing r to chip and returns r's simulated
// finish cycle. static is the caller's drain-then-serve estimate,
// returned unchanged when there is nothing to simulate against or the
// simulation fails.
func (p *predictor) eta(chip int, r Request, static arch.Cycles) arch.Cycles {
	hist := p.recent[chip]
	if len(hist) == 0 {
		// An empty chip pipelines nothing; the isolated service
		// estimate already is the simulation's answer.
		return static
	}
	p.nets = p.nets[:0]
	p.arrivals = p.arrivals[:0]
	for _, idx := range hist {
		p.nets = append(p.nets, p.s.Nets[idx])
		p.arrivals = append(p.arrivals, p.s.Arrivals[idx])
	}
	p.nets = append(p.nets, p.s.Nets[r.Index])
	p.arrivals = append(p.arrivals, r.Arrival)
	res, err := sim.Run(p.cfg, p.nets, sched.NewFIFO(), sim.Options{Arrivals: p.arrivals})
	if err != nil {
		return static
	}
	return res.NetFinish[len(res.NetFinish)-1]
}
