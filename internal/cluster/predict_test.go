package cluster

import (
	"reflect"
	"testing"

	"aimt/internal/arch"
)

// TestPredictETAStaticFallbacks: PredictETA equals the static ETA
// exactly both when no predictor is attached (the legacy dispatcher —
// this is what keeps the pre-predictive paths bit-identical) and when
// the predictor exists but the chip has no routed history to simulate
// against.
func TestPredictETAStaticFallbacks(t *testing.T) {
	cfg := testConfig(t)
	s := prioStream(t, cfg, 50, 9, 2.0, 2)
	r := Request{Index: 3, Class: s.ClassOf[3], Arrival: s.Arrivals[3], Service: s.EntryService(3)}
	v := &View{chips: 2, classes: len(s.Classes), freeAt: make([]arch.Cycles, 2), counts: make([]int, 2)}
	v.freeAt[0] = r.Arrival + 500
	if got, want := v.PredictETA(0, r), v.ETA(0, r); got != want {
		t.Errorf("no predictor: PredictETA %d != static ETA %d", got, want)
	}
	v.pred = newPredictor(cfg, s, 2, 0)
	if got, want := v.PredictETA(1, r), v.ETA(1, r); got != want {
		t.Errorf("empty history: PredictETA %d != static ETA %d", got, want)
	}
	if v.pred.window != defaultPredictWindow {
		t.Errorf("unset window defaulted to %d, want %d", v.pred.window, defaultPredictWindow)
	}
}

// TestPredictiveDeadlineDiffersFromStatic routes one saturated stream
// with the deadline policy twice — static ETAs versus the
// forward-simulation predictor — and checks (a) both dispatches are
// valid, (b) the predictor actually changed at least one routing
// decision. The static estimate serially sums isolated service times;
// the simulation sees fetch/compute overlap between co-resident
// requests, so at load the two must disagree somewhere.
func TestPredictiveDeadlineDiffersFromStatic(t *testing.T) {
	cfg := testConfig(t)
	s := prioStream(t, cfg, 200, 9, 3.0, 2)
	static, err := Dispatch(s, Deadline{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, _, err := dispatchControlled(cfg, s, Deadline{}, 2, Control{Predictive: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range pred {
		if c < 0 || c >= 2 {
			t.Fatalf("predictive dispatch routed request %d to chip %d", i, c)
		}
	}
	if reflect.DeepEqual(static, pred) {
		t.Error("predictor never changed a routing decision at 3x saturation; the simulation path looks dead")
	}
}

// TestPredictiveDispatchDeterministic: the predictor is a pure
// function of the dispatch state, so two controlled dispatches over
// the same stream agree exactly.
func TestPredictiveDispatchDeterministic(t *testing.T) {
	cfg := testConfig(t)
	s := prioStream(t, cfg, 150, 5, 3.0, 2)
	a, _, _, err := dispatchControlled(cfg, s, Predictive{}, 2, Control{Predictive: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := dispatchControlled(cfg, s, Predictive{}, 2, Control{Predictive: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("predictive dispatch is not deterministic")
	}
}

// TestPredictivePolicyServes runs the full Serve path under the
// predictive policy — which must attach the predictor implicitly,
// without any explicit Control setting — and checks every request is
// served and accounted.
func TestPredictivePolicyServes(t *testing.T) {
	cfg := testConfig(t)
	s := prioStream(t, cfg, 120, 7, 2.0, 2)
	res, err := Serve(cfg, s, aimtSpec(), Predictive{}, Options{Chips: 2, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "predictive" {
		t.Errorf("result policy %q, want predictive", res.Policy)
	}
	served := 0
	for _, cr := range res.ChipResults {
		if cr != nil {
			served += len(cr.NetFinish)
		}
	}
	if served != len(s.Nets) {
		t.Errorf("served %d of %d requests", served, len(s.Nets))
	}
	if res.ShedCount != 0 {
		t.Errorf("predictive routing shed %d requests with admission off", res.ShedCount)
	}
}

// TestPredictiveByName: the predictive policy resolves by name (the
// aimt-serve -route path) without joining the default comparison set.
func TestPredictiveByName(t *testing.T) {
	spec, err := ByName("predictive")
	if err != nil {
		t.Fatal(err)
	}
	if spec.New().Name() != "predictive" {
		t.Errorf("ByName(predictive) built %q", spec.New().Name())
	}
	for _, s := range Policies() {
		if s.Name == "predictive" {
			t.Error("predictive must not be in the default Policies() comparison set")
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown policy")
	}
}

// TestPredictorWindowSlides: the per-chip history is bounded by the
// window, oldest-out.
func TestPredictorWindowSlides(t *testing.T) {
	cfg := testConfig(t)
	s := prioStream(t, cfg, 20, 3, 1.0, 1)
	p := newPredictor(cfg, s, 1, 4)
	for i := 0; i < 10; i++ {
		p.record(0, i)
	}
	want := []int{6, 7, 8, 9}
	if !reflect.DeepEqual(p.recent[0], want) {
		t.Errorf("window holds %v, want %v", p.recent[0], want)
	}
}
