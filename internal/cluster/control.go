package cluster

import (
	"fmt"

	"aimt/internal/arch"
	"aimt/internal/obs"
	"aimt/internal/serve"
)

// Control configures the cluster's overload control plane: SLO-aware
// admission control and elastic autoscaling, both acting at dispatch
// time with exactly the information a production front door has —
// arrivals, class service estimates and its own routing decisions.
// The zero value disables everything; Serve then takes the plain
// Dispatch path and is bit-identical to the uncontrolled cluster.
type Control struct {
	// Admission enables SLO-aware shedding: a request of the lowest
	// priority band whose best predicted completion (per-chip
	// outstanding-work estimate drained, then served) exceeds its
	// deadline is dropped at the front door instead of routed. Higher
	// bands are never shed — overload degrades the cheap traffic
	// first, predictably.
	Admission bool

	// Autoscale enables elastic sizing of the active chip set: the
	// dispatcher starts at MinChips and grows toward Options.Chips
	// when the mean backlog depth per active chip stays above UpDepth
	// for Patience consecutive arrivals, shrinking symmetrically below
	// DownDepth. Hysteresis comes from the gap between the two
	// thresholds plus the patience run length.
	Autoscale bool

	// MinChips is the autoscaler's floor; <= 0 means 1. It is clamped
	// to Options.Chips, so MinChips == Chips pins the active set (the
	// autoscaler becomes a recorded no-op).
	MinChips int

	// UpDepth and DownDepth are backlog depths in units of mean
	// request service per active chip: grow above UpDepth (<= 0 means
	// 3), shrink below DownDepth (<= 0 means 0.5). DownDepth is forced
	// below UpDepth.
	UpDepth, DownDepth float64

	// Patience is how many consecutive arrivals must cross a threshold
	// before the active set changes; <= 0 means 8.
	Patience int

	// Predictive replaces the dispatcher's static drain-then-serve ETA
	// arithmetic with a bounded forward simulation of each candidate
	// chip's recent workload plus the request on the real machine
	// model (see View.PredictETA). It upgrades the deadline routing
	// policy and the admission check; routing policies that never
	// consult ETAs are unaffected. Serve turns it on implicitly for
	// the "predictive" policy.
	Predictive bool

	// PredictWindow bounds each prediction to the chip's most recent
	// routed requests; <= 0 means 8. The window is what keeps a
	// per-request simulation cheap and is also the model's horizon:
	// requests older than the window are assumed drained.
	PredictWindow int
}

// enabled reports whether any control-plane mechanism is on.
func (c Control) enabled() bool { return c.Admission || c.Autoscale || c.Predictive }

// ctlStats carries the dispatch-time control-plane outcome into the
// cluster result.
type ctlStats struct {
	shedCount  int
	scaleUps   int
	scaleDowns int
	active     int // active chip count at end of dispatch
}

// note records one control-plane decision in the ledger (nil ledger is
// a no-op). The dispatcher has no SRAM or AVL_CB context, so those
// fields stay zero; Cycle is the arrival the decision fired at.
func ctlNote(led *obs.Ledger, cycle arch.Cycles, kind string, net int, detail arch.Cycles) {
	if led == nil {
		return
	}
	led.Record(obs.Decision{
		Cycle:  cycle,
		Kind:   kind,
		Net:    net,
		Layer:  -1,
		Iter:   -1,
		Stall:  obs.StallNone,
		Detail: detail,
	})
}

// dispatchControlled is Dispatch with the control plane in the loop:
// per arrival it first lets the autoscaler adjust the active chip set,
// then applies admission control, then routes via the policy within
// the active set. It returns the assignment (-1 for shed requests),
// the shed mask, and the control-plane stats. With admission off and
// the active set pinned at the full cluster it routes identically to
// Dispatch.
func dispatchControlled(cfg arch.Config, s *serve.Stream, pol Policy, chips int, ctl Control, led *obs.Ledger, etas []arch.Cycles) ([]int, []bool, ctlStats, error) {
	if chips <= 0 {
		return nil, nil, ctlStats{}, fmt.Errorf("cluster: chips must be positive, got %d", chips)
	}
	minChips := ctl.MinChips
	if minChips <= 0 {
		minChips = 1
	}
	if minChips > chips {
		minChips = chips
	}
	up := ctl.UpDepth
	if up <= 0 {
		up = 3
	}
	down := ctl.DownDepth
	if down <= 0 {
		down = 0.5
	}
	if down >= up {
		down = up / 2
	}
	patience := ctl.Patience
	if patience <= 0 {
		patience = 8
	}

	active := chips
	if ctl.Autoscale {
		active = minChips
	}

	// The lowest priority band is the only sheddable one. With uniform
	// priorities (including the all-zero default) every class is in the
	// lowest band, so admission may shed any class — priorities are what
	// make degradation selective.
	minPrio := 0
	if len(s.ClassPriority) > 0 {
		minPrio = s.ClassPriority[0]
		for _, p := range s.ClassPriority[1:] {
			if p < minPrio {
				minPrio = p
			}
		}
	}

	v := &View{
		chips:   active,
		classes: len(s.Classes),
		freeAt:  make([]arch.Cycles, chips),
		counts:  make([]int, chips),
	}
	if ctl.Predictive {
		v.pred = newPredictor(cfg, s, chips, ctl.PredictWindow)
	}
	assign := make([]int, len(s.Nets))
	shed := make([]bool, len(s.Nets))
	var st ctlStats
	var upRun, downRun int
	for i := range s.Nets {
		r := Request{
			Index:    i,
			Class:    s.ClassOf[i],
			Arrival:  s.Arrivals[i],
			Deadline: s.Deadlines[i],
			Service:  s.EntryService(i),
		}
		if r.Class < len(s.ClassPriority) {
			r.Priority = s.ClassPriority[r.Class]
		}

		// Control decisions fire at request granularity: a decode phase
		// follows its request head — shed with it, or routed to the same
		// chip (its KV cache lives there) while still advancing that
		// chip's backlog — and never triggers autoscaling or admission
		// on its own.
		if s.ChainAfter != nil && s.ChainAfter[i] >= 0 {
			p := s.ChainAfter[i]
			if shed[p] {
				assign[i] = -1
				shed[i] = true
				st.shedCount++
				continue
			}
			c := assign[p]
			assign[i] = c
			if etas != nil {
				etas[i] = v.ETA(c, r)
			}
			v.route(c, r)
			continue
		}

		if ctl.Autoscale && s.MeanService > 0 {
			var backlog arch.Cycles
			for c := 0; c < active; c++ {
				backlog += v.Backlog(c, r.Arrival)
			}
			depth := float64(backlog) / (float64(active) * s.MeanService)
			switch {
			case depth > up:
				upRun++
				downRun = 0
			case depth < down:
				downRun++
				upRun = 0
			default:
				upRun, downRun = 0, 0
			}
			if upRun >= patience && active < chips {
				active++
				upRun, downRun = 0, 0
				st.scaleUps++
				ctlNote(led, r.Arrival, obs.KindScaleUp, -1, arch.Cycles(active))
			} else if downRun >= patience && active > minChips {
				active--
				upRun, downRun = 0, 0
				st.scaleDowns++
				ctlNote(led, r.Arrival, obs.KindScaleDown, -1, arch.Cycles(active))
			}
			v.chips = active
		}

		if ctl.Admission && r.Priority == minPrio {
			// The admission check reads the PredictETA seam: static
			// arithmetic normally, the forward-simulated completion
			// when the predictor is on — shedding decisions then see
			// the multi-tenant overlap the serial sum cannot.
			best := v.PredictETA(0, r)
			for c := 1; c < active; c++ {
				if eta := v.PredictETA(c, r); eta < best {
					best = eta
				}
			}
			if best > r.Deadline {
				assign[i] = -1
				shed[i] = true
				st.shedCount++
				if etas != nil {
					etas[i] = best // the prediction that broke the deadline
				}
				ctlNote(led, r.Arrival, obs.KindShed, i, best-r.Deadline)
				continue
			}
		}

		c := pol.Pick(v, r)
		if c < 0 || c >= active {
			return nil, nil, ctlStats{}, fmt.Errorf("cluster: policy %s routed request %d to chip %d, want [0,%d)", pol.Name(), i, c, active)
		}
		assign[i] = c
		if etas != nil {
			etas[i] = v.ETA(c, r)
		}
		v.route(c, r)
	}
	st.active = active
	return assign, shed, st, nil
}
