package cluster

import (
	"fmt"

	"aimt/internal/arch"
	"aimt/internal/rtrace"
	"aimt/internal/serve"
	"aimt/internal/sim"
	"aimt/internal/trace"
)

// TraceRun is the outcome of TraceRequests: the cluster result (spans
// included), the bounded span store backing the attribution report,
// and the merged Perfetto track set — per-chip engine occupancy
// overlaid with one track per tail exemplar.
type TraceRun struct {
	Stream *serve.Stream
	Result *Result
	Store  *rtrace.Store
	Tracks []trace.Track
}

// TraceRequests runs one fixed-seed serving stream across a cluster
// with both request tracing and engine tracing on, and assembles the
// merged track set. load is the per-chip offered load (>1 means
// overload); the routing policy is least-work. The run is
// deterministic for fixed inputs, so goldens can pin the merged
// export byte-exactly.
func TraceRequests(cfg arch.Config, classes []serve.Class, spec serve.SchedulerSpec, requests, chips int, load float64, seed int64) (*TraceRun, error) {
	if chips <= 0 {
		chips = 1
	}
	if load <= 0 {
		load = 1
	}
	probeOpts := serve.StreamOptions{Requests: 1, MeanGap: 1, Seed: seed}
	probe, err := serve.NewStream(cfg, classes, probeOpts)
	if err != nil {
		return nil, err
	}
	gap := arch.Cycles(probe.MeanService / (load * float64(chips)))
	if gap < 1 {
		gap = 1
	}
	s, err := serve.NewStream(cfg, classes, serve.StreamOptions{Requests: requests, MeanGap: gap, Seed: seed})
	if err != nil {
		return nil, err
	}

	pol, err := ByName("least-work")
	if err != nil {
		return nil, err
	}
	st := rtrace.NewStore(rtrace.Options{SampleEvery: 1, WorstN: 4})
	recs := make([]*trace.Recorder, chips)
	res, err := Serve(cfg, s, spec, pol.New(), Options{
		Chips: chips,
		Trace: st,
		EngineTrace: func(c int) sim.Tracer {
			recs[c] = &trace.Recorder{}
			return recs[c]
		},
	})
	if err != nil {
		return nil, err
	}

	var tracks []trace.Track
	for c := 0; c < chips; c++ {
		if recs[c] == nil {
			continue
		}
		tracks = append(tracks, recs[c].EngineTracks(c+1, fmt.Sprintf("chip %d", c))...)
	}
	tracks = append(tracks, rtrace.Tracks(chips+1, st.Exemplars())...)
	return &TraceRun{Stream: s, Result: res, Store: st, Tracks: tracks}, nil
}
