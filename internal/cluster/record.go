package cluster

import (
	"fmt"

	"aimt/internal/runstore"
	"aimt/internal/serve"
)

// RecordCurve appends one run per (load point, routing policy) of a
// cluster sweep to the store. The aggregate report supplies the
// metric rows plus the cluster-only imbalance summary; labels carry
// the routing policy, per-chip scheduler and chip count so cross-run
// dashboards can compare policies across dynamic workload mixes.
// It returns the stored runs.
func RecordCurve(st *runstore.Store, mix, process, commit string, points []CurvePoint) ([]runstore.Run, error) {
	var out []runstore.Run
	for _, pt := range points {
		for _, r := range pt.Results {
			ms := append(serve.ReportMetrics(r.Agg),
				runstore.Metric{Name: "imbalance frac", Value: r.Imbalance, Unit: "frac"})
			stored, err := st.Append(runstore.Run{
				Source: "cluster",
				Commit: commit,
				Labels: map[string]string{
					"mix":     mix,
					"sched":   r.Scheduler,
					"policy":  r.Policy,
					"process": process,
					"chips":   fmt.Sprint(r.Chips),
					"load":    fmt.Sprintf("%.2f", pt.ChipLoad),
				},
				Metrics: ms,
			})
			if err != nil {
				return out, err
			}
			out = append(out, stored)
		}
	}
	return out, nil
}
