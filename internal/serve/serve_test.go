package serve

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/sched"
	"aimt/internal/sim"
)

func testConfig(t testing.TB) arch.Config {
	t.Helper()
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestStreamReproducible: identical options yield identical streams,
// and changing only MeanGap preserves the request/class sequence while
// scaling the gaps — the property that makes load-curve points
// comparable.
func TestStreamReproducible(t *testing.T) {
	cfg := testConfig(t)
	opts := StreamOptions{Requests: 200, MeanGap: 10_000, Seed: 42}
	a, err := NewStream(cfg, DefaultClasses(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg, DefaultClasses(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nets {
		if a.ClassOf[i] != b.ClassOf[i] || a.Arrivals[i] != b.Arrivals[i] || a.Deadlines[i] != b.Deadlines[i] {
			t.Fatalf("request %d differs between identically seeded streams", i)
		}
	}

	opts.MeanGap = 40_000
	c, err := NewStream(cfg, DefaultClasses(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nets {
		if a.ClassOf[i] != c.ClassOf[i] {
			t.Fatalf("request %d: class changed with MeanGap (%d vs %d)", i, a.ClassOf[i], c.ClassOf[i])
		}
	}
	// 4x the gap means 4x the arrival time, up to per-gap truncation.
	last := len(a.Arrivals) - 1
	if c.Arrivals[last] < 3*a.Arrivals[last] {
		t.Errorf("4x MeanGap stretched span only from %d to %d", a.Arrivals[last], c.Arrivals[last])
	}
	if got := a.OfferedLoad(); got <= 0 {
		t.Errorf("OfferedLoad = %v, want positive", got)
	}
	if a.OfferedLoad() < 3.9*c.OfferedLoad() {
		t.Errorf("load did not scale with rate: %v vs %v", a.OfferedLoad(), c.OfferedLoad())
	}
}

// TestStreamShape: arrivals are non-decreasing, deadlines sit strictly
// after arrivals, and the weighted mix is respected on average.
func TestStreamShape(t *testing.T) {
	cfg := testConfig(t)
	s, err := NewStream(cfg, DefaultClasses(), StreamOptions{Requests: 2000, MeanGap: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(s.Classes))
	for i := range s.Nets {
		if i > 0 && s.Arrivals[i] < s.Arrivals[i-1] {
			t.Fatalf("arrivals decrease at %d", i)
		}
		if s.Deadlines[i] <= s.Arrivals[i] {
			t.Fatalf("request %d: deadline %d not after arrival %d", i, s.Deadlines[i], s.Arrivals[i])
		}
		counts[s.ClassOf[i]]++
	}
	// cnn:rnn weights are 3:1; allow generous sampling noise.
	frac := float64(counts[0]) / float64(len(s.Nets))
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("cnn fraction %.2f, want ~0.75", frac)
	}
}

// TestBurstyKeepsMeanRate: the bursty process must offer the same mean
// load as Poisson at the same MeanGap, just less evenly.
func TestBurstyKeepsMeanRate(t *testing.T) {
	cfg := testConfig(t)
	base := StreamOptions{Requests: 5000, MeanGap: 10_000, Seed: 9}
	pois, err := NewStream(cfg, DefaultClasses(), base)
	if err != nil {
		t.Fatal(err)
	}
	burst := base
	burst.Process = Bursty
	b, err := NewStream(cfg, DefaultClasses(), burst)
	if err != nil {
		t.Fatal(err)
	}
	pSpan := float64(pois.Arrivals[len(pois.Arrivals)-1])
	bSpan := float64(b.Arrivals[len(b.Arrivals)-1])
	if ratio := bSpan / pSpan; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("bursty span is %.2fx the Poisson span, want ~1x", ratio)
	}
	// Bursts mean many back-to-back arrivals (zero gaps).
	zero := 0
	for i := 1; i < len(b.Arrivals); i++ {
		if b.Arrivals[i] == b.Arrivals[i-1] {
			zero++
		}
	}
	if zero < len(b.Arrivals)/2 {
		t.Errorf("only %d/%d zero gaps — arrivals are not bursty", zero, len(b.Arrivals))
	}
}

// TestServeReportConsistency: a served report's counters must agree
// with each other and with the stream, with invariants checked.
func TestServeReportConsistency(t *testing.T) {
	cfg := testConfig(t)
	s, err := NewStream(cfg, DefaultClasses(), StreamOptions{Requests: 64, MeanGap: 30_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Serve(cfg, s, sched.NewFIFO(), sim.Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 64 || rep.Latency.Count() != 64 {
		t.Fatalf("requests %d, recorded %d, want 64", rep.Requests, rep.Latency.Count())
	}
	if rep.MissRate < 0 || rep.MissRate > 1 {
		t.Errorf("miss rate %v out of range", rep.MissRate)
	}
	if rep.Attainment() != 1-rep.MissRate {
		t.Errorf("attainment %v != 1 - miss rate %v", rep.Attainment(), rep.MissRate)
	}
	var reqs, misses int
	for _, c := range rep.PerClass {
		reqs += c.Requests
		misses += c.Misses
	}
	if reqs != rep.Requests || misses != rep.Misses {
		t.Errorf("per-class sums (%d req, %d miss) disagree with totals (%d, %d)",
			reqs, misses, rep.Requests, rep.Misses)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.P999 {
		t.Errorf("quantiles not monotone: p50 %d p99 %d p99.9 %d", rep.P50, rep.P99, rep.P999)
	}
	if rep.Makespan <= 0 || rep.Throughput <= 0 {
		t.Errorf("degenerate makespan %d / throughput %v", rep.Makespan, rep.Throughput)
	}
}

// TestLoadCurveAcceptance is the issue's acceptance sweep: >= 10,000
// requests of the default mixed CNN/RNN stream through FIFO, PREMA,
// AI-MT and EDF at a light and a saturated load point. Memory stays
// bounded (reports hold histograms, never latency slices), every
// point reports tail quantiles and miss rates, and EDF's deadline-miss
// rate beats FIFO's at saturation.
func TestLoadCurveAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request saturation sweep")
	}
	cfg := testConfig(t)
	probe, err := NewStream(cfg, DefaultClasses(), StreamOptions{Requests: 1, MeanGap: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	light := arch.Cycles(probe.MeanService / 0.4)
	saturated := arch.Cycles(probe.MeanService / 1.3)
	points, err := LoadCurve(cfg, DefaultClasses(), StandardSchedulers(), CurveOptions{
		Stream: StreamOptions{Requests: 10_000, Seed: 3},
		Gaps:   []arch.Cycles{light, saturated},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	byName := func(pt CurvePoint, name string) *Report {
		for _, r := range pt.Reports {
			if r.Scheduler == name {
				return r
			}
		}
		t.Fatalf("no %s report at load %.2f", name, pt.OfferedLoad)
		return nil
	}
	for _, pt := range points {
		if len(pt.Reports) != 4 {
			t.Fatalf("load %.2f: %d reports, want 4", pt.OfferedLoad, len(pt.Reports))
		}
		for _, r := range pt.Reports {
			if r.Latency.Count() != 10_000 {
				t.Errorf("load %.2f %s: recorded %d latencies, want 10000", pt.OfferedLoad, r.Scheduler, r.Latency.Count())
			}
			if r.P50 <= 0 || r.P999 < r.P99 || r.P99 < r.P50 {
				t.Errorf("load %.2f %s: bad quantiles p50=%d p99=%d p99.9=%d",
					pt.OfferedLoad, r.Scheduler, r.P50, r.P99, r.P999)
			}
		}
	}
	sat := points[1]
	fifo, edf := byName(sat, "FIFO"), byName(sat, "EDF")
	if fifo.MissRate <= 0 {
		t.Fatalf("saturation point is not saturated: FIFO miss rate %v", fifo.MissRate)
	}
	if edf.MissRate >= fifo.MissRate {
		t.Errorf("EDF miss rate %.3f does not beat FIFO's %.3f at saturation", edf.MissRate, fifo.MissRate)
	}
	var sb strings.Builder
	if err := PrintCurve(&sb, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EDF") || !strings.Contains(sb.String(), "miss rate") {
		t.Errorf("PrintCurve output missing expected columns:\n%s", sb.String())
	}
	t.Logf("saturation: FIFO miss %.3f p99 %d | EDF miss %.3f p99 %d",
		fifo.MissRate, fifo.P99, edf.MissRate, edf.P99)
}

// TestLoadCurveDefaults: with no explicit gaps or schedulers the curve
// walks DefaultGapFactors with the standard scheduler set.
func TestLoadCurveDefaults(t *testing.T) {
	cfg := testConfig(t)
	points, err := LoadCurve(cfg, DefaultClasses(), nil, CurveOptions{
		Stream:          StreamOptions{Requests: 50, Seed: 2},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultGapFactors) {
		t.Fatalf("got %d points, want %d", len(points), len(DefaultGapFactors))
	}
	for i, pt := range points {
		if len(pt.Reports) != len(StandardSchedulers()) {
			t.Fatalf("point %d has %d reports", i, len(pt.Reports))
		}
		if i > 0 && pt.OfferedLoad <= points[i-1].OfferedLoad {
			t.Errorf("offered load not increasing: %v then %v", points[i-1].OfferedLoad, pt.OfferedLoad)
		}
	}
}

// TestSubStream: slicing a stream by index preserves per-request data,
// arrival order and class metadata, and partitions reassemble the
// parent exactly.
func TestSubStream(t *testing.T) {
	cfg := testConfig(t)
	s, err := NewStream(cfg, DefaultClasses(), StreamOptions{Requests: 31, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ClassService) != len(s.Classes) {
		t.Fatalf("ClassService has %d entries for %d classes", len(s.ClassService), len(s.Classes))
	}
	var even, odd []int
	for i := range s.Nets {
		if i%2 == 0 {
			even = append(even, i)
		} else {
			odd = append(odd, i)
		}
	}
	se, so := s.SubStream("even", even), s.SubStream("odd", odd)
	if len(se.Nets)+len(so.Nets) != len(s.Nets) {
		t.Fatalf("partition sizes %d+%d != %d", len(se.Nets), len(so.Nets), len(s.Nets))
	}
	for k, gi := range even {
		if se.Nets[k] != s.Nets[gi] || se.Arrivals[k] != s.Arrivals[gi] ||
			se.Deadlines[k] != s.Deadlines[gi] || se.ClassOf[k] != s.ClassOf[gi] {
			t.Fatalf("sub request %d does not mirror parent request %d", k, gi)
		}
		if k > 0 && se.Arrivals[k] < se.Arrivals[k-1] {
			t.Fatalf("sub arrivals not monotonic at %d", k)
		}
	}
	if se.MeanGap != s.MeanGap || se.MeanService != s.MeanService {
		t.Error("sub-stream did not inherit gap/service metadata")
	}
	// A sub-stream must be servable as-is.
	if _, err := Serve(cfg, so, sched.NewFIFO(), sim.Options{CheckInvariants: true}); err != nil {
		t.Fatalf("serving sub-stream: %v", err)
	}
}

// TestReportFullyShedClassZeroRow is the regression test for the
// empty-class guard: a class whose requests were all shed by admission
// control must get a zero-valued per-class row (no NaN miss rate from
// a zero served count), and shed requests must stay out of the latency
// distribution while conservation (served + shed == offered) holds.
func TestReportFullyShedClassZeroRow(t *testing.T) {
	cfg := testConfig(t)
	s, err := NewStream(cfg, DefaultClasses(), StreamOptions{Requests: 64, MeanGap: 30_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, s.Nets, sched.NewFIFO(), sim.Options{Arrivals: s.Arrivals, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	shed := make([]bool, len(s.Nets))
	for i, ci := range s.ClassOf {
		if s.Classes[ci] == "rnn" {
			shed[i] = true
		}
	}
	rep := BuildReportShed(s, res, shed)
	var sawRNN bool
	for _, c := range rep.PerClass {
		if math.IsNaN(c.MissRate) {
			t.Errorf("class %s: miss rate is NaN", c.Class)
		}
		if c.Class != "rnn" {
			continue
		}
		sawRNN = true
		if c.Requests == 0 || c.Shed != c.Requests {
			t.Errorf("rnn row: %d/%d shed, want a fully shed non-empty class", c.Shed, c.Requests)
		}
		if c.Misses != 0 || c.MissRate != 0 || c.P99 != 0 {
			t.Errorf("fully shed class row not zero-valued: %+v", c)
		}
	}
	if !sawRNN {
		t.Fatal("no rnn row in the report")
	}
	if got := rep.Shed + int(rep.Latency.Count()); got != rep.Requests {
		t.Errorf("served %d + shed %d != offered %d", rep.Latency.Count(), rep.Shed, rep.Requests)
	}
	// A nil shed slice is exactly the plain report.
	if !reflect.DeepEqual(BuildReportShed(s, res, nil), BuildReport(s, res)) {
		t.Error("BuildReportShed(nil) differs from BuildReport")
	}
}
