// Package serve is the streaming serving subsystem: open-loop request
// generation (Poisson and bursty arrivals over a weighted model mix,
// with per-request deadlines), SLA-tracking reports built on the
// streaming quantile estimator, and a load-sweep driver that walks
// offered load from light traffic to saturation and emits a
// latency-vs-throughput curve per scheduler.
//
// Memory stays bounded in the stream length: a report holds an
// O(buckets) metrics.Histogram plus a handful of counters, never the
// per-request latency slice, so sweeps of hundreds of thousands of
// requests are routine.
package serve

import (
	"fmt"
	"math/rand"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/nn"
)

// Phase identifies a request phase in a stream. Single-phase classes
// (the CNN/RNN default) emit one PhaseSingle entry per request;
// transformer classes emit one PhasePrefill entry followed by
// Class.Decode chained PhaseDecode entries.
type Phase uint8

const (
	// PhaseSingle is the whole of an ordinary one-shot request.
	PhaseSingle Phase = iota

	// PhasePrefill is a transformer request's prompt pass.
	PhasePrefill

	// PhaseDecode is one autoregressive decode iteration (one generated
	// token per sequence in the batch).
	PhaseDecode
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseSingle:
		return "single"
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Class is one request population in a serving mix: a model, how often
// it is requested, and how tight its latency SLA is.
type Class struct {
	// Name labels the class in reports; empty means the network name.
	Name string

	// Net is the model served for this class. For a transformer class
	// (DecodeNet set) this is the prefill pass.
	Net *nn.Network

	// DecodeNet, when non-nil, makes this a two-phase transformer
	// class: each request runs Net once (prefill) and then DecodeNet
	// Decode times, every iteration chained after the previous phase.
	DecodeNet *nn.Network

	// Decode is the decode iteration count per request — the number of
	// generated tokens per sequence. Only meaningful with DecodeNet;
	// zero emits a prefill-only request (useful as a differential
	// anchor against the equivalent single-phase class).
	Decode int

	// TokenSlack scales each decode iteration's deadline budget: decode
	// k of a request must finish by the prefill deadline plus
	// k x TokenSlack x (isolated decode service estimate) — a per-token
	// SLA, as user-facing text generation requires. Zero or negative
	// means the class Slack.
	TokenSlack float64

	// Weight is the class's relative request frequency; zero or
	// negative means 1.
	Weight float64

	// Slack scales the class's deadline: a request arriving at cycle t
	// must finish by t + Slack x (isolated service estimate). Zero or
	// negative means DefaultSlack.
	Slack float64

	// Batch is the per-request batch size; zero means 1.
	Batch int

	// Priority is the class's scheduling priority for the overload
	// control plane: higher is more urgent. Requests of a strictly
	// higher class may preempt executing lower-class work on chip, and
	// admission control sheds only the lowest band when saturated.
	// Uniform priorities (including the zero default everywhere)
	// disable priority effects entirely.
	Priority int
}

// DefaultSlack is the deadline multiplier applied to a class's
// isolated service estimate when the class does not set its own.
const DefaultSlack = 8

// DefaultClasses returns the default mixed CNN/RNN serving mix: a
// small convolutional vision model (three requests out of four, tight
// SLA) alongside a stacked fully connected recurrent-style model (one
// in four, memory-intensive, looser SLA). The models are deliberately
// small so saturation sweeps of tens of thousands of requests finish
// in seconds.
func DefaultClasses() []Class {
	cnn := nn.NewBuilder("serve-cnn", 3, 32, 32)
	cnn.Conv("conv1", 32, 3, 1, 1)
	cnn.Pool("pool1", 2, 2, 0)
	cnn.Conv("conv2", 64, 3, 1, 1)
	cnn.GlobalPool("gap")
	cnn.FC("fc", 10)

	rnn := nn.NewBuilder("serve-rnn", 256, 1, 1)
	rnn.FC("cell1", 512)
	rnn.FC("cell2", 512)
	rnn.FC("proj", 256)

	return []Class{
		{Name: "cnn", Net: cnn.MustBuild(), Weight: 3, Slack: 6},
		{Name: "rnn", Net: rnn.MustBuild(), Weight: 1, Slack: 10},
	}
}

// TransformerChatClass returns a GPT-style "chat" class sized for fast
// sweeps: a 2-block, 64-wide transformer whose requests run one
// 16-token prefill pass and then decode generated tokens one at a
// time, each against the full KV cache (prompt plus generation) and
// each with its own per-token deadline. The compute-heavy prefill and
// memory-bound decode phases are the transformer half of the MB/CB
// intensity-mismatch story.
func TransformerChatClass(decode, batch int) Class {
	const (
		hidden = 64
		heads  = 4
		ffn    = 128
		vocab  = 128
		prompt = 16
	)
	prefill := nn.MustTransformer(nn.TransformerConfig{
		Name: "chat-prefill", Blocks: 2, Hidden: hidden, Heads: heads,
		FFN: ffn, OutProj: vocab, SeqLen: prompt, Context: prompt,
	})
	dec := nn.MustTransformer(nn.TransformerConfig{
		Name: "chat-decode", Blocks: 2, Hidden: hidden, Heads: heads,
		FFN: ffn, OutProj: vocab, SeqLen: 1, Context: prompt + decode,
	})
	return Class{
		Name: "chat", Net: prefill, DecodeNet: dec, Decode: decode,
		Batch: batch, Slack: 6, TokenSlack: 8,
	}
}

// TransformerClasses returns the transformer-vs-CNN serving mix: the
// chat class (8 generated tokens per request) alongside the default
// CNN vision class, weighted toward chat.
func TransformerClasses() []Class {
	cnn := DefaultClasses()[0]
	cnn.Weight = 1
	chat := TransformerChatClass(8, 1)
	chat.Weight = 2
	return []Class{chat, cnn}
}

// Process selects the arrival process of a stream.
type Process int

const (
	// Poisson draws independent exponential inter-arrival gaps.
	Poisson Process = iota

	// Bursty emits geometric back-to-back bursts separated by long
	// exponential silences, with the same mean rate as Poisson at the
	// same MeanGap.
	Bursty
)

func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("process(%d)", int(p))
}

// StreamOptions tune NewStream.
type StreamOptions struct {
	// Requests is the stream length; zero means 1024.
	Requests int

	// Process is the arrival process; the zero value is Poisson.
	Process Process

	// MeanGap is the mean inter-arrival time in cycles; zero means
	// 20000 (20 us at 1 GHz). Offered load scales inversely with it.
	MeanGap arch.Cycles

	// BurstLen is the mean burst size for the Bursty process; zero
	// means 8. Ignored under Poisson.
	BurstLen int

	// Seed makes the stream reproducible. Streams built from the same
	// classes and seed contain the same request sequence at every
	// MeanGap — only the gaps scale — so load-curve points are
	// directly comparable.
	Seed int64
}

// compiledClass is a Class lowered to the target config.
type compiledClass struct {
	name    string
	net     *compiler.CompiledNetwork
	slack   float64
	service arch.Cycles // isolated service estimate (prefill for two-phase)
	prio    int
	batch   int

	// Two-phase (transformer) classes only.
	decode      *compiler.CompiledNetwork
	decodeIters int
	decodeSvc   arch.Cycles // isolated service estimate of one iteration
	tokenBudget arch.Cycles // per-token deadline increment
}

// Stream is a generated open-loop request stream ready to simulate.
// Each entry is one simulated network instance — a whole request for
// single-phase classes, one phase for transformer classes — with
// arrival cycles and absolute deadlines indexed alike. A request's
// phases share its arrival; the simulator's phase chaining
// (sim.Options.ChainAfter) delays each decode entry until its
// predecessor finishes.
type Stream struct {
	// Name labels the stream.
	Name string

	// Nets holds each entry's compiled network in arrival order.
	Nets []*compiler.CompiledNetwork

	// Arrivals gives each entry's arrival cycle (non-decreasing).
	Arrivals []arch.Cycles

	// Deadlines gives each entry's absolute deadline. Single-phase and
	// prefill entries get arrival + slack x isolated service estimate;
	// decode entry k of a request gets the request's prefill deadline
	// plus k x TokenSlack x isolated decode estimate (a per-token SLA).
	Deadlines []arch.Cycles

	// ClassOf gives each entry's index into Classes.
	ClassOf []int

	// ReqOf gives each entry's request id (dense, 0-based, ascending);
	// nil for streams without transformer classes, where entry index
	// and request id coincide.
	ReqOf []int

	// PhaseOf gives each entry's phase; nil for streams without
	// transformer classes (every entry PhaseSingle).
	PhaseOf []Phase

	// ChainAfter gives each entry's predecessor entry index (-1 for
	// request heads), in the shape sim.Options.ChainAfter expects; nil
	// for streams without transformer classes.
	ChainAfter []int

	// Requests is the request count; len(Nets) for single-phase
	// streams, smaller than len(Nets) when decode phases are present.
	Requests int

	// Classes names the request classes, in Class order.
	Classes []string

	// ClassService gives each class's isolated service estimate
	// (prefill estimate for transformer classes), indexed like
	// Classes — the unit of outstanding work a cluster dispatcher
	// accounts per routed request head.
	ClassService []arch.Cycles

	// ClassDecodeService gives each class's isolated decode-iteration
	// service estimate, indexed like Classes; zero for single-phase
	// classes.
	ClassDecodeService []arch.Cycles

	// ClassBatch gives each class's compiled batch size, indexed like
	// Classes — the tokens generated per completed decode entry.
	ClassBatch []int

	// ClassPriority gives each class's scheduling priority, indexed
	// like Classes (higher is more urgent; see Class.Priority).
	ClassPriority []int

	// MeanService is the weight-averaged isolated service estimate of
	// one whole request (prefill plus all decode iterations), the
	// numerator of offered load.
	MeanService float64

	// MeanGap echoes the generating option after defaulting.
	MeanGap arch.Cycles
}

// OfferedLoad returns the stream's nominal utilization demand: the
// mean per-request service estimate over the mean inter-arrival gap.
// Values past ~1 mean the bottleneck engine cannot keep up and queues
// grow without bound — saturation.
func (s *Stream) OfferedLoad() float64 {
	if s.MeanGap <= 0 {
		return 0
	}
	return s.MeanService / float64(s.MeanGap)
}

// NetClasses returns the per-request class names, indexed like Nets —
// the shape sim.Options.NetClasses expects for live per-class
// in-flight gauges.
func (s *Stream) NetClasses() []string {
	out := make([]string, len(s.ClassOf))
	for i, ci := range s.ClassOf {
		out[i] = s.Classes[ci]
	}
	return out
}

// NetPriorities returns the per-request class priorities, indexed like
// Nets — the shape core.AIMT.SetPreemptPriorities expects for
// cross-request preemption.
func (s *Stream) NetPriorities() []int {
	out := make([]int, len(s.ClassOf))
	for i, ci := range s.ClassOf {
		if ci < len(s.ClassPriority) {
			out[i] = s.ClassPriority[ci]
		}
	}
	return out
}

// EntryService returns entry i's isolated service estimate: the class
// decode estimate for decode entries, the class (prefill) estimate
// otherwise — the unit of outstanding work a dispatcher accounts for
// routing entry i.
func (s *Stream) EntryService(i int) arch.Cycles {
	ci := s.ClassOf[i]
	if s.PhaseOf != nil && s.PhaseOf[i] == PhaseDecode && ci < len(s.ClassDecodeService) {
		return s.ClassDecodeService[ci]
	}
	if ci < len(s.ClassService) {
		return s.ClassService[ci]
	}
	return 0
}

// SubStream returns the stream restricted to the given entry indices,
// which must be ascending and in range. Arrival order (and therefore
// the non-decreasing arrival invariant) is preserved, so the result is
// itself a valid stream — this is how a cluster dispatcher turns one
// front-door stream into per-chip streams. For streams with phases the
// indices must be request-closed: every decode entry's predecessor
// must be included too (a dispatcher routes whole requests), and
// SubStream panics otherwise. Class metadata, MeanService and MeanGap
// are inherited from the parent; per-entry slices are fresh copies
// (ReqOf keeps the parent's request ids; ChainAfter is remapped to
// local indices).
func (s *Stream) SubStream(name string, indices []int) *Stream {
	sub := &Stream{
		Name:               name,
		Classes:            s.Classes,
		ClassService:       s.ClassService,
		ClassDecodeService: s.ClassDecodeService,
		ClassBatch:         s.ClassBatch,
		ClassPriority:      s.ClassPriority,
		MeanService:        s.MeanService,
		MeanGap:            s.MeanGap,
		Requests:           len(indices),
		Nets:               make([]*compiler.CompiledNetwork, len(indices)),
		Arrivals:           make([]arch.Cycles, len(indices)),
		Deadlines:          make([]arch.Cycles, len(indices)),
		ClassOf:            make([]int, len(indices)),
	}
	for i, gi := range indices {
		sub.Nets[i] = s.Nets[gi]
		sub.Arrivals[i] = s.Arrivals[gi]
		sub.Deadlines[i] = s.Deadlines[gi]
		sub.ClassOf[i] = s.ClassOf[gi]
	}
	if s.ChainAfter != nil {
		sub.ReqOf = make([]int, len(indices))
		sub.PhaseOf = make([]Phase, len(indices))
		sub.ChainAfter = make([]int, len(indices))
		sub.Requests = 0
		local := make(map[int]int, len(indices))
		for i, gi := range indices {
			local[gi] = i
			sub.ReqOf[i] = s.ReqOf[gi]
			sub.PhaseOf[i] = s.PhaseOf[gi]
			if p := s.ChainAfter[gi]; p >= 0 {
				lp, ok := local[p]
				if !ok {
					panic(fmt.Sprintf("serve: SubStream %q: entry %d chained after %d, which is not included", name, gi, p))
				}
				sub.ChainAfter[i] = lp
			} else {
				sub.ChainAfter[i] = -1
				sub.Requests++
			}
		}
	}
	return sub
}

// serviceEstimate approximates a request's isolated latency: the
// occupancy of the bottleneck engine plus host feature movement. It
// only anchors deadlines, so a coarse estimate is fine.
func serviceEstimate(cfg arch.Config, cn *compiler.CompiledNetwork) arch.Cycles {
	s := cn.Stats()
	est := s.CBCycles
	if s.MBCycles > est {
		est = s.MBCycles
	}
	return est + cfg.HostCycles(cn.HostInBytes) + cfg.HostCycles(cn.HostOutBytes)
}

// NewStream compiles the classes for cfg and draws a reproducible
// open-loop request stream: weighted class picks, arrival gaps from
// the chosen process, and per-request deadlines.
func NewStream(cfg arch.Config, classes []Class, opts StreamOptions) (*Stream, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("serve: empty class list")
	}
	if opts.Requests <= 0 {
		opts.Requests = 1024
	}
	if opts.MeanGap <= 0 {
		opts.MeanGap = 20000
	}
	if opts.BurstLen <= 0 {
		opts.BurstLen = 8
	}

	compiled := make([]compiledClass, 0, len(classes))
	var weights []float64
	var totalW, meanService float64
	phased := false
	for i, c := range classes {
		if c.Net == nil {
			return nil, fmt.Errorf("serve: class %d has no network", i)
		}
		batch := c.Batch
		if batch <= 0 {
			batch = 1
		}
		cn, err := compiler.Compile(c.Net, cfg, batch)
		if err != nil {
			return nil, fmt.Errorf("serve: class %q: %w", c.Net.Name, err)
		}
		cc := compiledClass{name: c.Name, net: cn, slack: c.Slack, prio: c.Priority, batch: batch}
		if cc.name == "" {
			cc.name = c.Net.Name
		}
		if cc.slack <= 0 {
			cc.slack = DefaultSlack
		}
		cc.service = serviceEstimate(cfg, cn)
		if c.DecodeNet != nil {
			phased = true
			dn, err := compiler.Compile(c.DecodeNet, cfg, batch)
			if err != nil {
				return nil, fmt.Errorf("serve: class %q decode: %w", c.DecodeNet.Name, err)
			}
			cc.decode = dn
			if c.Decode > 0 {
				cc.decodeIters = c.Decode
			}
			cc.decodeSvc = serviceEstimate(cfg, dn)
			ts := c.TokenSlack
			if ts <= 0 {
				ts = cc.slack
			}
			cc.tokenBudget = arch.Cycles(ts * float64(cc.decodeSvc))
		}
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		compiled = append(compiled, cc)
		weights = append(weights, w)
		totalW += w
		meanService += w * float64(cc.service+arch.Cycles(cc.decodeIters)*cc.decodeSvc)
	}
	meanService /= totalW

	rng := rand.New(rand.NewSource(opts.Seed))
	s := &Stream{
		Name:        fmt.Sprintf("%s-load%.2f", opts.Process, meanService/float64(opts.MeanGap)),
		MeanService: meanService,
		MeanGap:     opts.MeanGap,
		Requests:    opts.Requests,
	}
	for _, cc := range compiled {
		s.Classes = append(s.Classes, cc.name)
		s.ClassService = append(s.ClassService, cc.service)
		s.ClassDecodeService = append(s.ClassDecodeService, cc.decodeSvc)
		s.ClassBatch = append(s.ClassBatch, cc.batch)
		s.ClassPriority = append(s.ClassPriority, cc.prio)
	}

	var t arch.Cycles
	for i := 0; i < opts.Requests; i++ {
		// Weighted class pick.
		pick := rng.Float64() * totalW
		ci := 0
		for ci < len(weights)-1 && pick >= weights[ci] {
			pick -= weights[ci]
			ci++
		}
		cc := compiled[ci]
		head := len(s.Nets)
		headDeadline := t + arch.Cycles(cc.slack*float64(cc.service))
		s.Nets = append(s.Nets, cc.net)
		s.Arrivals = append(s.Arrivals, t)
		s.Deadlines = append(s.Deadlines, headDeadline)
		s.ClassOf = append(s.ClassOf, ci)
		if phased {
			phase := PhaseSingle
			if cc.decode != nil {
				phase = PhasePrefill
			}
			s.ReqOf = append(s.ReqOf, i)
			s.PhaseOf = append(s.PhaseOf, phase)
			s.ChainAfter = append(s.ChainAfter, -1)
			// Decode iterations share the request's arrival cycle; the
			// simulator chains each one after its predecessor, and the
			// deadline ladder gives every token its own budget on top of
			// the prefill deadline.
			for k := 1; k <= cc.decodeIters; k++ {
				s.Nets = append(s.Nets, cc.decode)
				s.Arrivals = append(s.Arrivals, t)
				s.Deadlines = append(s.Deadlines, headDeadline+arch.Cycles(k)*cc.tokenBudget)
				s.ClassOf = append(s.ClassOf, ci)
				s.ReqOf = append(s.ReqOf, i)
				s.PhaseOf = append(s.PhaseOf, PhaseDecode)
				s.ChainAfter = append(s.ChainAfter, head+k-1)
			}
		}

		// Next gap. Both processes have mean MeanGap so offered load is
		// process-independent; Bursty concentrates it into geometric
		// back-to-back trains separated by long silences.
		switch opts.Process {
		case Bursty:
			if rng.Float64() < 1/float64(opts.BurstLen) {
				t += arch.Cycles(rng.ExpFloat64() * float64(opts.MeanGap) * float64(opts.BurstLen))
			}
		default:
			t += arch.Cycles(rng.ExpFloat64() * float64(opts.MeanGap))
		}
	}
	return s, nil
}
