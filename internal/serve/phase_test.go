package serve

import (
	"math"
	"strings"
	"testing"

	"aimt/internal/core"
	"aimt/internal/obs"
	"aimt/internal/sim"
)

// phaseStream builds a small transformer stream for phase tests.
func phaseStream(t *testing.T, decode, requests int) *Stream {
	t.Helper()
	cfg := testConfig(t)
	classes := []Class{TransformerChatClass(decode, 1)}
	s, err := NewStream(cfg, classes, StreamOptions{Requests: requests, MeanGap: 200_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamPhases pins the multi-phase stream shape: each request is
// one prefill entry plus Decode chained decode entries sharing the
// arrival, with a strictly increasing per-token deadline ladder.
func TestStreamPhases(t *testing.T) {
	const decode, requests = 4, 16
	s := phaseStream(t, decode, requests)
	if s.Requests != requests {
		t.Fatalf("Requests = %d, want %d", s.Requests, requests)
	}
	if got, want := len(s.Nets), requests*(1+decode); got != want {
		t.Fatalf("entries = %d, want %d", got, want)
	}
	for i := range s.Nets {
		switch {
		case i%(1+decode) == 0: // request head
			if s.PhaseOf[i] != PhasePrefill || s.ChainAfter[i] != -1 {
				t.Errorf("entry %d: phase/chain = %v/%d, want prefill/-1", i, s.PhaseOf[i], s.ChainAfter[i])
			}
		default:
			if s.PhaseOf[i] != PhaseDecode || s.ChainAfter[i] != i-1 {
				t.Errorf("entry %d: phase/chain = %v/%d, want decode/%d", i, s.PhaseOf[i], s.ChainAfter[i], i-1)
			}
			if s.Arrivals[i] != s.Arrivals[i-1] {
				t.Errorf("entry %d: arrival %d differs from head %d", i, s.Arrivals[i], s.Arrivals[i-1])
			}
			if s.Deadlines[i] <= s.Deadlines[i-1] {
				t.Errorf("entry %d: deadline ladder not increasing (%d <= %d)", i, s.Deadlines[i], s.Deadlines[i-1])
			}
			if s.ReqOf[i] != s.ReqOf[i-1] {
				t.Errorf("entry %d: request id %d differs from predecessor %d", i, s.ReqOf[i], s.ReqOf[i-1])
			}
		}
	}
	if s.ClassDecodeService[0] <= 0 {
		t.Errorf("ClassDecodeService = %v, want positive", s.ClassDecodeService)
	}
	if s.EntryService(0) != s.ClassService[0] || s.EntryService(1) != s.ClassDecodeService[0] {
		t.Errorf("EntryService head/decode = %d/%d, want %d/%d",
			s.EntryService(0), s.EntryService(1), s.ClassService[0], s.ClassDecodeService[0])
	}
}

// TestServePhaseReport runs a transformer stream end to end and checks
// the phase rows and token metric of the report.
func TestServePhaseReport(t *testing.T) {
	cfg := testConfig(t)
	const decode, requests = 4, 16
	s := phaseStream(t, decode, requests)
	reg := obs.NewRegistry()
	rep, err := Serve(cfg, s, core.New(cfg, core.All()), sim.Options{CheckInvariants: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerPhase) != 2 {
		t.Fatalf("PerPhase rows = %d, want 2", len(rep.PerPhase))
	}
	pre, dec := rep.PerPhase[0], rep.PerPhase[1]
	if pre.Phase != PhasePrefill || pre.Entries != requests {
		t.Errorf("prefill row = %+v, want %d entries", pre, requests)
	}
	if dec.Phase != PhaseDecode || dec.Entries != requests*decode {
		t.Errorf("decode row = %+v, want %d entries", dec, requests*decode)
	}
	if pre.P99 <= 0 || dec.P99 <= 0 {
		t.Errorf("phase p99s = %d/%d, want positive", pre.P99, dec.P99)
	}
	if rep.Tokens != requests*decode {
		t.Errorf("Tokens = %d, want %d", rep.Tokens, requests*decode)
	}
	if rep.TokensPerMcycle <= 0 || math.IsNaN(rep.TokensPerMcycle) {
		t.Errorf("TokensPerMcycle = %v, want positive", rep.TokensPerMcycle)
	}
	var dump strings.Builder
	if err := reg.WritePrometheus(&dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aimt_serve_tokens_per_mcycle", `phase="decode"`, `phase="prefill"`} {
		if !strings.Contains(dump.String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestReportEmptyPhaseRegression covers the empty-phase edge: a
// transformer class with zero decode iterations still reports a decode
// row, zero-valued, with no NaN miss rate and zero tokens.
func TestReportEmptyPhaseRegression(t *testing.T) {
	cfg := testConfig(t)
	s := phaseStream(t, 0, 8)
	if len(s.Nets) != 8 {
		t.Fatalf("entries = %d, want 8 (prefill only)", len(s.Nets))
	}
	rep, err := Serve(cfg, s, core.New(cfg, core.All()), sim.Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerPhase) != 2 {
		t.Fatalf("PerPhase rows = %d, want 2 even with no decode entries", len(rep.PerPhase))
	}
	dec := rep.PerPhase[1]
	if dec.Phase != PhaseDecode {
		t.Fatalf("second row phase = %v, want decode", dec.Phase)
	}
	if dec.Entries != 0 || dec.Misses != 0 || dec.P50 != 0 || dec.P99 != 0 {
		t.Errorf("empty decode row not zero-valued: %+v", dec)
	}
	if math.IsNaN(dec.MissRate) || dec.MissRate != 0 {
		t.Errorf("empty decode row miss rate = %v, want 0", dec.MissRate)
	}
	if rep.Tokens != 0 || rep.TokensPerMcycle != 0 {
		t.Errorf("tokens = %d (%v/Mcyc), want 0", rep.Tokens, rep.TokensPerMcycle)
	}
}
