package serve

import (
	"fmt"

	"aimt/internal/runstore"
)

// ReportMetrics flattens a report into run-store metric rows. Units
// drive regression direction in diffs: cycles and rate read
// lower-is-better, req/Mcyc and tok/Mcyc higher-is-better, frac is
// directionless.
func ReportMetrics(rep *Report) []runstore.Metric {
	ms := []runstore.Metric{
		{Name: "p50 cycles", Value: float64(rep.P50), Unit: "cycles"},
		{Name: "p99 cycles", Value: float64(rep.P99), Unit: "cycles"},
		{Name: "p99.9 cycles", Value: float64(rep.P999), Unit: "cycles"},
		{Name: "miss rate", Value: rep.MissRate, Unit: "rate"},
		{Name: "tput req/Mcyc", Value: rep.Throughput, Unit: "req/Mcyc"},
		{Name: "pe util frac", Value: rep.PEUtil, Unit: "frac"},
	}
	if rep.Shed > 0 {
		ms = append(ms, runstore.Metric{Name: "shed count", Value: float64(rep.Shed), Unit: "count"})
	}
	if rep.Tokens > 0 {
		ms = append(ms,
			runstore.Metric{Name: "tokens count", Value: float64(rep.Tokens), Unit: "count"},
			runstore.Metric{Name: "tokens tok/Mcyc", Value: rep.TokensPerMcycle, Unit: "tok/Mcyc"})
	}
	return ms
}

// RecordCurve appends one run per (load point, scheduler) of a load
// sweep to the store: labels identify the mix, scheduler, arrival
// process and offered load; metrics are the report's headline rows.
// It returns the stored runs.
func RecordCurve(st *runstore.Store, mix, process, commit string, points []CurvePoint) ([]runstore.Run, error) {
	var out []runstore.Run
	for _, pt := range points {
		for _, rep := range pt.Reports {
			stored, err := st.Append(runstore.Run{
				Source: "serve",
				Commit: commit,
				Labels: map[string]string{
					"mix":     mix,
					"sched":   rep.Scheduler,
					"process": process,
					"load":    fmt.Sprintf("%.2f", pt.OfferedLoad),
				},
				Metrics: ReportMetrics(rep),
			})
			if err != nil {
				return out, err
			}
			out = append(out, stored)
		}
	}
	return out, nil
}
