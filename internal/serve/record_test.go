package serve

import (
	"testing"
	"time"

	"aimt/internal/runstore"
)

func testStore(t *testing.T) *runstore.Store {
	t.Helper()
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	return st
}

// TestRecordCurve pins the serve→runstore mapping: one run per
// (point, scheduler), labels carrying mix/sched/process/load, and the
// shed/token rows present only when the report has them.
func TestRecordCurve(t *testing.T) {
	st := testStore(t)
	points := []CurvePoint{
		{OfferedLoad: 0.5, Reports: []*Report{
			{Scheduler: "AI-MT", P50: 100, P99: 300, P999: 400, MissRate: 0.01, Throughput: 12.5, PEUtil: 0.4},
			{Scheduler: "FIFO", P50: 150, P99: 900, P999: 1200, MissRate: 0.05, Throughput: 11.0, PEUtil: 0.38},
		}},
		{OfferedLoad: 1.1, Reports: []*Report{
			{Scheduler: "AI-MT", P50: 400, P99: 2000, P999: 3000, MissRate: 0.2, Throughput: 18.0, PEUtil: 0.9,
				Shed: 7, Tokens: 640, TokensPerMcycle: 55},
			{Scheduler: "FIFO", P50: 600, P99: 4000, P999: 9000, MissRate: 0.4, Throughput: 15.0, PEUtil: 0.88},
		}},
	}
	stored, err := RecordCurve(st, "heavy", "poisson", "abc1234", points)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 4 {
		t.Fatalf("stored %d runs, want 4", len(stored))
	}
	r := stored[2] // load 1.1, AI-MT, the one with shed + tokens
	if r.Source != "serve" || r.Commit != "abc1234" {
		t.Errorf("source/commit = %q/%q", r.Source, r.Commit)
	}
	for k, want := range map[string]string{"mix": "heavy", "sched": "AI-MT", "process": "poisson", "load": "1.10"} {
		if got := r.Label(k); got != want {
			t.Errorf("label %s = %q, want %q", k, got, want)
		}
	}
	for name, want := range map[string]float64{
		"p99 cycles": 2000, "miss rate": 0.2, "tput req/Mcyc": 18.0,
		"shed count": 7, "tokens count": 640, "tokens tok/Mcyc": 55,
	} {
		v, ok := r.Metric(name)
		if !ok || v != want {
			t.Errorf("metric %s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}
	if _, ok := stored[0].Metric("shed count"); ok {
		t.Error("shed count recorded for a report with no shedding")
	}
	if _, ok := stored[0].Metric("tokens count"); ok {
		t.Error("tokens recorded for a single-phase report")
	}

	// The rows must round-trip through the JSONL file.
	re, err := runstore.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Runs()); got != 4 {
		t.Fatalf("reopened store has %d runs, want 4", got)
	}
}
