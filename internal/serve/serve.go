package serve

import (
	"fmt"
	"io"

	"aimt/internal/arch"
	"aimt/internal/core"
	"aimt/internal/metrics"
	"aimt/internal/obs"
	"aimt/internal/rtrace"
	"aimt/internal/sched"
	"aimt/internal/sim"
	"aimt/internal/sweep"
)

// ClassStats aggregates one request class's outcomes within a report.
type ClassStats struct {
	// Class is the class name.
	Class string
	// Requests is the number of requests of this class in the stream,
	// shed ones included.
	Requests int
	// Shed is how many were dropped by admission control before
	// reaching a chip.
	Shed int
	// Misses is how many served requests finished after their deadline.
	Misses int
	// MissRate is Misses over served (admitted) requests. A class that
	// is entirely shed has no served requests; its row is zero-valued
	// rather than dividing by zero.
	MissRate float64
	// P99 is the class's 99th-percentile latency over served requests.
	P99 arch.Cycles
}

// PhaseStats aggregates one request phase's outcomes within a report.
// A phase with no entries in the stream gets a zero-valued row rather
// than dividing by its zero served count.
type PhaseStats struct {
	// Phase is the phase this row aggregates.
	Phase Phase
	// Entries is the number of stream entries of this phase, shed ones
	// included.
	Entries int
	// Shed is how many were dropped by admission control.
	Shed int
	// Misses is how many served entries finished after their deadline.
	Misses int
	// MissRate is Misses over served entries.
	MissRate float64
	// P50 and P99 are latency quantiles over served entries. Decode
	// latency is measured from the phase's effective arrival (its
	// predecessor's finish), so it is a per-token latency.
	P50, P99 arch.Cycles
}

// Report summarizes one scheduler's run over a stream. It is built by
// streaming over the result once — per-request latencies live only in
// the histogram, so its size is O(buckets), not O(requests).
type Report struct {
	// Scheduler is the policy name.
	Scheduler string

	// Requests is the stream entry count (phases count individually for
	// multi-phase streams).
	Requests int

	// Makespan is the cycle the last request completed.
	Makespan arch.Cycles

	// Throughput is completed requests per million cycles.
	Throughput float64

	// Latency is the streaming latency distribution; query it for
	// quantiles beyond the pre-extracted ones below.
	Latency metrics.Histogram

	// P50, P95, P99 and P999 are request-latency quantiles.
	P50, P95, P99, P999 arch.Cycles

	// Misses counts requests that finished after their deadline;
	// MissRate is Misses over served requests.
	Misses   int
	MissRate float64

	// Shed counts requests dropped by admission control; they are
	// excluded from the latency distribution and the miss counts.
	Shed int

	// PEUtil and MemUtil are engine busy fractions over the makespan.
	PEUtil, MemUtil float64

	// PerClass breaks requests and misses down by request class.
	PerClass []ClassStats

	// PerPhase breaks entries down by request phase (one prefill row
	// and one decode row); nil for single-phase streams, so reports
	// over the existing mixes are unchanged.
	PerPhase []PhaseStats

	// Tokens counts generated tokens: completed decode entries times
	// their class batch size. TokensPerMcycle is Tokens per million
	// cycles of makespan — the transformer serving headline
	// (tokens/sec at the configured clock). Zero for single-phase
	// streams.
	Tokens          int
	TokensPerMcycle float64
}

// Attainment returns the SLA attainment: the fraction of requests that
// met their deadline.
func (r *Report) Attainment() float64 { return 1 - r.MissRate }

// BuildReport folds a simulation result into a Report without
// materializing a latency slice. res must come from a run over s's
// requests (Serve does this internally; the cluster layer calls it on
// per-chip sub-streams and on the merged cluster result).
func BuildReport(s *Stream, res *sim.Result) *Report {
	return BuildReportShed(s, res, nil)
}

// BuildReportShed is BuildReport for a run where admission control
// dropped some requests: shed[i], when true, marks request i as shed —
// it counts toward its class's offered requests and the shed totals,
// but contributes no latency sample and no SLA miss. A nil shed is
// equivalent to BuildReport. A class whose requests were all shed gets
// a zero-valued row (no miss rate, no quantiles) rather than dividing
// by its zero served count.
func BuildReportShed(s *Stream, res *sim.Result, shed []bool) *Report {
	r := &Report{
		Scheduler: res.Scheduler,
		Requests:  len(s.Nets),
		Makespan:  res.Makespan,
		PEUtil:    res.PEUtilization(),
		MemUtil:   res.MemUtilization(),
	}
	perClass := make([]ClassStats, len(s.Classes))
	classHist := make([]metrics.Histogram, len(s.Classes))
	for i := range perClass {
		perClass[i].Class = s.Classes[i]
	}
	// Multi-phase streams additionally get one prefill and one decode
	// row (PhaseSingle entries of a mixed stream are covered by their
	// class row).
	var perPhase []PhaseStats
	var phaseHist []metrics.Histogram
	phaseRow := func(i int) *PhaseStats {
		if perPhase == nil {
			return nil
		}
		switch s.PhaseOf[i] {
		case PhasePrefill:
			return &perPhase[0]
		case PhaseDecode:
			return &perPhase[1]
		}
		return nil
	}
	if s.PhaseOf != nil {
		perPhase = []PhaseStats{{Phase: PhasePrefill}, {Phase: PhaseDecode}}
		phaseHist = make([]metrics.Histogram, len(perPhase))
	}
	for i := range s.Nets {
		ci := s.ClassOf[i]
		if i < len(shed) && shed[i] {
			r.Shed++
			perClass[ci].Requests++
			perClass[ci].Shed++
			if ps := phaseRow(i); ps != nil {
				ps.Entries++
				ps.Shed++
			}
			continue
		}
		if i >= len(res.NetFinish) || i >= len(res.NetArrive) {
			break
		}
		lat := res.NetFinish[i] - res.NetArrive[i]
		r.Latency.Record(lat)
		perClass[ci].Requests++
		classHist[ci].Record(lat)
		miss := res.NetFinish[i] > s.Deadlines[i]
		if miss {
			r.Misses++
			perClass[ci].Misses++
		}
		if ps := phaseRow(i); ps != nil {
			ps.Entries++
			phaseHist[ps.Phase-PhasePrefill].Record(lat)
			if miss {
				ps.Misses++
			}
			if s.PhaseOf[i] == PhaseDecode && ci < len(s.ClassBatch) {
				r.Tokens += s.ClassBatch[ci]
			}
		}
	}
	for i := range perClass {
		perClass[i].P99 = classHist[i].Quantile(99)
		if served := perClass[i].Requests - perClass[i].Shed; served > 0 {
			perClass[i].MissRate = float64(perClass[i].Misses) / float64(served)
		}
	}
	for i := range perPhase {
		perPhase[i].P50 = phaseHist[i].Quantile(50)
		perPhase[i].P99 = phaseHist[i].Quantile(99)
		if served := perPhase[i].Entries - perPhase[i].Shed; served > 0 {
			perPhase[i].MissRate = float64(perPhase[i].Misses) / float64(served)
		}
	}
	r.PerClass = perClass
	r.PerPhase = perPhase
	if r.Makespan > 0 {
		r.TokensPerMcycle = float64(r.Tokens) / float64(r.Makespan) * 1e6
	}
	r.P50 = r.Latency.Quantile(50)
	r.P95 = r.Latency.Quantile(95)
	r.P99 = r.Latency.Quantile(99)
	r.P999 = r.Latency.Quantile(99.9)
	if n := r.Latency.Count(); n > 0 {
		r.MissRate = float64(r.Misses) / float64(n)
	}
	if r.Makespan > 0 {
		r.Throughput = float64(r.Latency.Count()) / float64(r.Makespan) * 1e6
	}
	return r
}

// Publish folds the report into an observability registry: request
// and SLA-violation counters (total and per class) plus headline
// latency, miss-rate and utilization gauges, all labeled by
// scheduler. Counters accumulate across publishes — over a load sweep
// they total the whole sweep — while gauges reflect the last
// published report. A nil registry is a no-op.
func (r *Report) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sl := func(name string) string { return obs.Label(name, "scheduler", r.Scheduler) }
	reg.Counter(sl("aimt_serve_requests_total")).Add(int64(r.Requests))
	reg.Counter(sl("aimt_serve_sla_misses_total")).Add(int64(r.Misses))
	if r.Shed > 0 {
		reg.Counter(sl("aimt_serve_shed_total")).Add(int64(r.Shed))
	}
	for _, cs := range r.PerClass {
		cl := func(name string) string { return obs.Label(sl(name), "class", cs.Class) }
		reg.Counter(cl("aimt_serve_class_requests_total")).Add(int64(cs.Requests))
		reg.Counter(cl("aimt_serve_class_sla_misses_total")).Add(int64(cs.Misses))
		if cs.Shed > 0 {
			reg.Counter(cl("aimt_serve_class_shed_total")).Add(int64(cs.Shed))
		}
		reg.Gauge(cl("aimt_serve_class_p99_cycles")).Set(float64(cs.P99))
	}
	reg.Gauge(sl("aimt_serve_p50_cycles")).Set(float64(r.P50))
	reg.Gauge(sl("aimt_serve_p99_cycles")).Set(float64(r.P99))
	reg.Gauge(sl("aimt_serve_p999_cycles")).Set(float64(r.P999))
	reg.Gauge(sl("aimt_serve_miss_rate")).Set(r.MissRate)
	reg.Gauge(sl("aimt_serve_throughput_per_mcycle")).Set(r.Throughput)
	reg.Gauge(sl("aimt_serve_pe_util")).Set(r.PEUtil)
	reg.Gauge(sl("aimt_serve_mem_util")).Set(r.MemUtil)
	for _, ps := range r.PerPhase {
		pl := func(name string) string { return obs.Label(sl(name), "phase", ps.Phase.String()) }
		reg.Counter(pl("aimt_serve_phase_requests_total")).Add(int64(ps.Entries))
		reg.Counter(pl("aimt_serve_phase_sla_misses_total")).Add(int64(ps.Misses))
		if ps.Shed > 0 {
			reg.Counter(pl("aimt_serve_phase_shed_total")).Add(int64(ps.Shed))
		}
		reg.Gauge(pl("aimt_serve_phase_p99_cycles")).Set(float64(ps.P99))
	}
	if r.PerPhase != nil {
		reg.Gauge(sl("aimt_serve_tokens_per_mcycle")).Set(r.TokensPerMcycle)
	}
}

// Serve runs one stream under one scheduler and reports SLA
// attainment and tail latency. opts.Arrivals is overwritten with the
// stream's arrival times. When opts.Metrics is set the run emits live
// engine series (per-class in-flight included) and the report is
// published on completion.
func Serve(cfg arch.Config, s *Stream, sch sim.Scheduler, opts sim.Options) (*Report, error) {
	opts.Arrivals = s.Arrivals
	opts.ChainAfter = s.ChainAfter
	if opts.Metrics != nil && opts.NetClasses == nil {
		opts.NetClasses = s.NetClasses()
	}
	res, err := sim.Run(cfg, s.Nets, sch, opts)
	if err != nil {
		return nil, err
	}
	rep := BuildReport(s, res)
	rep.Publish(opts.Metrics)
	return rep, nil
}

// SchedulerSpec names a scheduler and builds a fresh instance per run.
// The factory receives the stream so deadline-aware policies can read
// its deadlines.
type SchedulerSpec struct {
	// Name labels the scheduler in curves and reports.
	Name string
	// New constructs a fresh scheduler for one run over the stream.
	New func(cfg arch.Config, s *Stream) sim.Scheduler
}

// StandardSchedulers returns the serving comparison set: FIFO and
// PREMA baselines, the full AI-MT mechanism stack, and deadline-aware
// EDF.
func StandardSchedulers() []SchedulerSpec {
	return []SchedulerSpec{
		{Name: "FIFO", New: func(arch.Config, *Stream) sim.Scheduler { return sched.NewFIFO() }},
		{Name: "PREMA", New: func(arch.Config, *Stream) sim.Scheduler { return sched.NewPREMA(nil) }},
		{Name: "AI-MT", New: func(cfg arch.Config, _ *Stream) sim.Scheduler { return core.New(cfg, core.All()) }},
		{Name: "EDF", New: func(_ arch.Config, s *Stream) sim.Scheduler { return sched.NewEDF(s.Deadlines) }},
	}
}

// LookaheadAIMT returns the speculative lookahead scheduler wrapped
// around the full AI-MT mechanism stack: contested fetch decisions
// (a memory-intensive and a compute-heavy block both issuable) are
// resolved by snapshotting the engine and simulating both branches a
// horizon ahead instead of by AI-MT's static load-matching heuristic.
// horizon <= 0 uses the lookahead default. It is not part of
// StandardSchedulers: speculation multiplies simulated cycles by the
// number of forks, so it is opt-in (aimt-serve -sched lookahead).
func LookaheadAIMT(horizon arch.Cycles) SchedulerSpec {
	return SchedulerSpec{
		Name: "Lookahead",
		New: func(cfg arch.Config, _ *Stream) sim.Scheduler {
			return sched.NewLookahead(core.New(cfg, core.All()), horizon)
		},
	}
}

// PreemptiveAIMT returns the full AI-MT mechanism stack with the
// stream's class priorities driving cross-request preemption: a
// higher-priority request's ready compute blocks displace a
// lower-priority executing one via the CB-split path. With uniform
// class priorities the scheduler is bit-identical to the plain AI-MT
// spec.
func PreemptiveAIMT() SchedulerSpec {
	return SchedulerSpec{
		Name: "AI-MT+Prio",
		New: func(cfg arch.Config, s *Stream) sim.Scheduler {
			return core.New(cfg, core.All()).SetPreemptPriorities(s.NetPriorities())
		},
	}
}

// CurvePoint is one offered-load point of a load sweep: the same
// request sequence at one inter-arrival scale, under every scheduler.
type CurvePoint struct {
	// MeanGap is the mean inter-arrival time at this point.
	MeanGap arch.Cycles

	// OfferedLoad is mean service estimate / MeanGap; >~1 means the
	// bottleneck engine is oversubscribed.
	OfferedLoad float64

	// Reports holds one report per scheduler, in scheduler order.
	Reports []*Report
}

// CurveOptions tune LoadCurve.
type CurveOptions struct {
	// Stream is the per-point stream shape; its MeanGap field is
	// ignored in favor of Gaps.
	Stream StreamOptions

	// Gaps lists the mean inter-arrival times to sweep, typically
	// descending (load ascending); empty means DefaultGaps applied to
	// the mix's mean service estimate.
	Gaps []arch.Cycles

	// Workers caps sweep parallelism; <= 0 means GOMAXPROCS.
	Workers int

	// CheckInvariants turns the machine-model invariant checker on for
	// every run.
	CheckInvariants bool

	// Metrics, when non-nil, receives live engine series from every
	// run of the sweep plus the published per-scheduler reports.
	// Counters aggregate across the whole sweep; gauges are
	// last-writer-wins across the parallel runs.
	Metrics *obs.Registry

	// Ledger, when non-nil, records every scheduler decision of every
	// run of the sweep (interleaved across parallel runs; entries
	// carry per-run network indices).
	Ledger *obs.Ledger

	// Trace, when non-nil, receives attributed per-request spans from
	// every run of the sweep: each run gets its own rtrace.Collector
	// as the engine tracer, and its spans (labelled "scheduler@load")
	// are folded into the store in job order after the sweep. Nil
	// attaches no tracer, keeping the hot path allocation-free.
	Trace *rtrace.Store
}

// DefaultGapFactors are the offered loads walked when CurveOptions
// does not list explicit gaps: from light traffic to past saturation.
var DefaultGapFactors = []float64{0.2, 0.5, 0.8, 1.1, 1.5}

// LoadCurve sweeps offered load over the given gaps, running every
// scheduler on an identical request sequence at each point (same seed;
// only the arrival gaps scale), and returns one CurvePoint per gap in
// ascending-load (descending-gap) order as listed.
func LoadCurve(cfg arch.Config, classes []Class, schedulers []SchedulerSpec, opts CurveOptions) ([]CurvePoint, error) {
	if len(schedulers) == 0 {
		schedulers = StandardSchedulers()
	}
	gaps := opts.Gaps
	if len(gaps) == 0 {
		// Probe the mix's mean service estimate with a one-request
		// stream, then place gaps at the default load factors.
		probeOpts := opts.Stream
		probeOpts.Requests = 1
		probeOpts.MeanGap = 1
		probe, err := NewStream(cfg, classes, probeOpts)
		if err != nil {
			return nil, err
		}
		for _, f := range DefaultGapFactors {
			g := arch.Cycles(probe.MeanService / f)
			if g < 1 {
				g = 1
			}
			gaps = append(gaps, g)
		}
	}

	streams := make([]*Stream, len(gaps))
	var jobs []sweep.Job
	var cols []*rtrace.Collector // parallel to jobs when tracing
	for gi, gap := range gaps {
		sopts := opts.Stream
		sopts.MeanGap = gap
		s, err := NewStream(cfg, classes, sopts)
		if err != nil {
			return nil, err
		}
		streams[gi] = s
		var netClasses []string
		if opts.Metrics != nil {
			netClasses = s.NetClasses()
		}
		for _, spec := range schedulers {
			spec := spec
			s := s
			var tracer sim.Tracer
			if opts.Trace != nil {
				col := rtrace.NewCollector(len(s.Nets))
				cols = append(cols, col)
				tracer = col
			}
			jobs = append(jobs, sweep.Job{
				Mix:       s.Name,
				Scheduler: spec.Name,
				Cfg:       cfg,
				Nets:      s.Nets,
				New:       func() sim.Scheduler { return spec.New(cfg, s) },
				Opts: sim.Options{
					Arrivals:   s.Arrivals,
					ChainAfter: s.ChainAfter,
					Metrics:    opts.Metrics,
					Ledger:     opts.Ledger,
					NetClasses: netClasses,
					Tracer:     tracer,
				},
			})
		}
	}
	outs := sweep.Run(jobs, sweep.Options{Workers: opts.Workers, CheckInvariants: opts.CheckInvariants})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}

	points := make([]CurvePoint, len(gaps))
	for gi, gap := range gaps {
		points[gi] = CurvePoint{MeanGap: gap, OfferedLoad: streams[gi].OfferedLoad()}
	}
	for _, o := range outs {
		gi := o.Index / len(schedulers)
		rep := BuildReport(streams[gi], o.Res)
		rep.Scheduler = o.Scheduler
		rep.Publish(opts.Metrics)
		points[gi].Reports = append(points[gi].Reports, rep)
		if opts.Trace != nil {
			run := fmt.Sprintf("%s@%.2f", o.Scheduler, points[gi].OfferedLoad)
			opts.Trace.AddRun(rtrace.Build(TraceInput(streams[gi], o.Res, run), cols[o.Index]))
		}
	}
	if opts.Trace != nil {
		opts.Trace.Publish(opts.Metrics)
	}
	return points, nil
}

// TraceInput adapts a stream plus its finished result to the
// request-span builder (rtrace.Build). The caller fills the cluster
// fields (Chip, ETA, Shed) when they apply.
func TraceInput(s *Stream, res *sim.Result, run string) rtrace.Input {
	in := rtrace.Input{
		Run:          run,
		Classes:      s.Classes,
		ClassOf:      s.ClassOf,
		ReqOf:        s.ReqOf,
		StreamArrive: s.Arrivals,
		Deadlines:    s.Deadlines,
		Arrive:       res.NetArrive,
		Finish:       res.NetFinish,
	}
	if s.PhaseOf != nil {
		ph := make([]string, len(s.PhaseOf))
		for i, p := range s.PhaseOf {
			ph[i] = p.String()
		}
		in.Phases = ph
	}
	return in
}

// PrintCurve renders a load sweep as one table per offered-load point.
// Points whose reports carry phase rows (transformer mixes) get
// per-phase p99/miss and tokens-per-Mcycle columns; single-phase
// sweeps render exactly as before.
func PrintCurve(w io.Writer, points []CurvePoint) error {
	for _, pt := range points {
		phased := false
		for _, r := range pt.Reports {
			if r.PerPhase != nil {
				phased = true
			}
		}
		var t *metrics.Table
		if phased {
			t = metrics.NewTable("scheduler", "p50", "p99", "miss rate",
				"prefill p99", "prefill miss", "decode p99", "decode miss", "tok/Mcyc", "PE util")
		} else {
			t = metrics.NewTable("scheduler", "p50", "p99", "p99.9", "miss rate", "req/Mcyc", "PE util")
		}
		for _, r := range pt.Reports {
			if phased {
				var pre, dec PhaseStats
				if len(r.PerPhase) == 2 {
					pre, dec = r.PerPhase[0], r.PerPhase[1]
				}
				t.AddRow(r.Scheduler,
					fmt.Sprint(r.P50), fmt.Sprint(r.P99), metrics.Pct(r.MissRate),
					fmt.Sprint(pre.P99), metrics.Pct(pre.MissRate),
					fmt.Sprint(dec.P99), metrics.Pct(dec.MissRate),
					metrics.F(r.TokensPerMcycle), metrics.Pct(r.PEUtil))
			} else {
				t.AddRow(r.Scheduler,
					fmt.Sprint(r.P50), fmt.Sprint(r.P99), fmt.Sprint(r.P999),
					metrics.Pct(r.MissRate), metrics.F(r.Throughput), metrics.Pct(r.PEUtil))
			}
		}
		if _, err := fmt.Fprintf(w, "offered load %.2f (mean gap %d)\n%s\n", pt.OfferedLoad, pt.MeanGap, t); err != nil {
			return err
		}
	}
	return nil
}
