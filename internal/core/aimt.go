// Package core implements the paper's contribution: the AI-MT
// hardware sub-layer scheduler. AI-MT overlaps compute- and
// memory-intensive sub-layers from different networks using three
// mechanisms, each independently switchable to reproduce the paper's
// ablation (Fig 14):
//
//   - MB prefetching (§IV-B1): fetch dependency-free memory blocks
//     whenever SRAM capacity allows, regardless of sub-layer
//     boundaries. Candidates are visited round-robin across networks
//     (the paper evaluates prefetching on top of the RR baseline).
//   - CB merging (§IV-B2, Algorithm 2): whenever a memory block is
//     scheduled, claim compute blocks into the CB selected queue until
//     the claimed backlog covers the fetch, and steer MB selection
//     with the AVL_CB counter: while available compute coverage is
//     low, prefer blocks whose compute outlasts their fetch.
//   - Early MB eviction (§IV-C): give capacity-critical memory blocks
//     (fetch longer than compute — FC sub-layers) head-of-line
//     priority, waiting for SRAM space rather than letting small
//     blocks steal it; run the smallest compute blocks first when free
//     space is short; and halt an executing long compute block
//     (CB split) so small compute blocks can recover capacity quickly.
package core

import (
	"aimt/internal/arch"
	"aimt/internal/sim"
	"sort"
)

// AIMT is the AI-MT scheduler. Construct with New; the zero value is
// not usable.
type AIMT struct {
	name  string
	merge bool
	evict bool
	split bool

	// mergeThreshold is the AVL_CB level below which MB selection
	// prefers blocks whose compute is longer than their fetch
	// (Algorithm 2 line 5).
	mergeThreshold arch.Cycles

	// pressureBlocks is the free-block level below which the smallest
	// compute blocks run first (§IV-C: "when the SRAM is short of the
	// free region").
	pressureBlocks int

	// splitMinRemaining is the smallest remaining compute time worth
	// halting for; it amortizes the PE refill penalty.
	splitMinRemaining arch.Cycles

	// avlMode selects the coverage metric steering MB selection.
	// avlLeaky is the paper's Algorithm 2 accounting: AVL_CB as a
	// decaying counter — credited with the corresponding CB at each MB
	// selection, debited by the MB at selection and by finished CBs
	// during stalls. The decay makes the scheduler re-pick
	// coverage-building blocks at a steady pace, which is what keeps
	// compute- and memory-intensive fetches alternating when eviction
	// is not pacing them. avlExact measures the resident unconsumed
	// compute work instead, which eviction's capacity reservation
	// needs (the decaying counter's frequent steering would leak the
	// SRAM windows reservation holds open). avlAuto — the default —
	// follows whether eviction is active for the run.
	avlMode avlMode

	// avlCB is the decaying AVL_CB counter (used unless exactAVL).
	avlCB arch.Cycles

	// stalled notes that the memory engine declined work at the last
	// PickMB, so completed CBs drain AVL_CB (Algorithm 2 line 12).
	stalled bool

	// sq is the CB selected queue: claimed compute blocks in execution
	// order. sqCycles is the total work they represent.
	sq       []sim.CBRef
	sqCycles arch.Cycles

	// rrMB and rrCB rotate candidate scanning across networks for
	// fairness, like the RR baseline the paper builds on.
	rrMB, rrCB int

	// weights, when set, replaces the uniform rotation with weighted
	// credit scheduling: each network accrues credit at its weight
	// while waiting, and candidate scanning starts from the network
	// with the most credit. This gives latency-sensitive tenants a
	// larger service share while still co-executing blocks — unlike
	// PREMA's time multiplexing, priority here costs no overlap.
	weights    []float64
	credits    []float64
	lastAccrue arch.Cycles

	// deadlines, when set, replaces the uniform rotation with
	// earliest-deadline-first ordering (serving SLAs): candidate
	// scanning starts from the network with the nearest absolute
	// deadline, while prefetching, merging and eviction keep working
	// unchanged — deadline priority costs no overlap.
	deadlines []arch.Cycles

	// prios, when set, enables strict priority classes with
	// cross-request preemption (the serving control plane): candidate
	// scanning prefers higher-priority networks, ready compute blocks
	// of a higher class run before lower ones, and a high-priority
	// arrival may halt a low-priority executing block by reusing the
	// CB-split mechanism (the halt/resume path eviction already
	// exercises). Uniform priorities are normalized to nil at
	// SetPreemptPriorities so the control plane is a strict no-op when
	// every class is equal.
	prios []int

	// reserving notes that a capacity-critical memory block is blocked
	// on SRAM space and the scheduler is holding capacity for it:
	// non-critical blocks stop issuing and the smallest compute blocks
	// run first until the window opens (§IV-C, Fig 13b/c).
	reserving bool

	// evictActive caches whether eviction applies to this workload:
	// eviction trades channel idle time for SRAM windows, which only
	// pays when compute is the abundant resource. For memory-bound
	// mixes (total MB cycles exceed total CB cycles) the channel must
	// never idle, so eviction is disabled adaptively. Computed on
	// first use; -1 until then.
	evictActive int

	// scratch buffers reused across picks.
	mbs []sim.MBRef
	cbs []sim.CBRef
	ord []sim.MBRef
}

// Mechanisms selects which AI-MT mechanisms are active.
type Mechanisms struct {
	// Merge enables CB merging on top of MB prefetching.
	Merge bool
	// Evict enables early MB eviction (capacity-critical priority and
	// smallest-CB-first under pressure).
	Evict bool
	// Split enables halting long compute blocks under SRAM pressure;
	// only meaningful with Evict.
	Split bool
}

// Prefetch returns the MB-prefetching-only configuration
// (Fig 14 "AI-MT (Prefetch)").
func Prefetch() Mechanisms { return Mechanisms{} }

// PrefetchMerge returns prefetching plus CB merging
// (Fig 14 "AI-MT (Prefetch+Merge)").
func PrefetchMerge() Mechanisms { return Mechanisms{Merge: true} }

// All returns the full design: prefetching, merging and early MB
// eviction with CB split (Fig 14 "AI-MT (All)").
func All() Mechanisms { return Mechanisms{Merge: true, Evict: true, Split: true} }

// New returns an AI-MT scheduler for the given hardware configuration.
// Thresholds default from the configuration: the merge threshold is
// two FC memory-block durations, eviction pressure is one FC memory
// block of free space, and splits require at least four PE fill times
// of remaining work.
func New(cfg arch.Config, m Mechanisms) *AIMT {
	fcMB := cfg.ReadCyclesPerArray() * arch.Cycles(cfg.NumArrays)
	name := "AI-MT(PF)"
	switch {
	case m.Merge && m.Evict:
		name = "AI-MT(All)"
	case m.Merge:
		name = "AI-MT(PF+Merge)"
	case m.Evict:
		name = "AI-MT(PF+Evict)"
	}
	return &AIMT{
		name:              name,
		merge:             m.Merge,
		evict:             m.Evict,
		evictActive:       -1,
		split:             m.Evict && m.Split,
		mergeThreshold:    2 * fcMB,
		pressureBlocks:    cfg.NumArrays,
		splitMinRemaining: 4 * cfg.FillLatency,
	}
}

// avlMode selects the AVL_CB accounting; see the field comment.
type avlMode int

const (
	avlAuto avlMode = iota
	avlLeaky
	avlExact
)

// SetMergeThreshold overrides the AVL_CB threshold (for sensitivity
// studies). It returns the scheduler for chaining.
func (a *AIMT) SetMergeThreshold(t arch.Cycles) *AIMT {
	a.mergeThreshold = t
	return a
}

// SetPressureBlocks overrides the eviction-pressure level in blocks.
func (a *AIMT) SetPressureBlocks(n int) *AIMT {
	a.pressureBlocks = n
	return a
}

// SetPriorities enables weighted tenant scheduling: weights[i] is
// network i's service weight (missing entries default to 1; nil
// restores uniform rotation). Higher-weight networks are scanned
// first in candidate order, so their blocks issue and execute sooner
// without sacrificing co-execution. It returns the scheduler for
// chaining.
func (a *AIMT) SetPriorities(weights []float64) *AIMT {
	a.weights = weights
	a.credits = nil
	return a
}

// SetDeadlines enables earliest-deadline-first tenant ordering on top
// of the active mechanisms: deadlines[i] is network instance i's
// absolute deadline in cycles (missing or non-positive entries mean no
// deadline and sort last). Unlike a standalone EDF policy, merging and
// eviction continue to steer which blocks overlap — only the tie-break
// between networks changes. It returns the scheduler for chaining.
func (a *AIMT) SetDeadlines(deadlines []arch.Cycles) *AIMT {
	a.deadlines = deadlines
	if deadlines != nil {
		a.name += "+EDF"
	}
	return a
}

// SetPreemptPriorities enables strict priority classes with
// cross-request preemption: prios[i] is network instance i's priority
// (higher is more urgent; missing entries default to 0). Higher
// classes are scanned first, their ready compute blocks run first,
// and an arrival of a strictly higher class may halt a lower class's
// executing compute block via the CB-split mechanism — the halted
// remainder resumes later with the usual PE refill penalty. Nil or
// uniform priorities restore the fair rotation exactly (the control
// plane is a strict no-op when off). It returns the scheduler for
// chaining.
func (a *AIMT) SetPreemptPriorities(prios []int) *AIMT {
	uniform := true
	for _, p := range prios {
		if p != prios[0] {
			uniform = false
			break
		}
	}
	if len(prios) == 0 || uniform {
		a.prios = nil
		return a
	}
	a.prios = prios
	a.name += "+Prio"
	return a
}

func (a *AIMT) prio(net int) int {
	if net < len(a.prios) {
		return a.prios[net]
	}
	return 0
}

func (a *AIMT) deadline(net int) arch.Cycles {
	if net < len(a.deadlines) && a.deadlines[net] > 0 {
		return a.deadlines[net]
	}
	return arch.Cycles(1)<<62 - 1
}

func (a *AIMT) weight(net int) float64 {
	if net < len(a.weights) && a.weights[net] > 0 {
		return a.weights[net]
	}
	return 1
}

// accrueCredits advances every unfinished network's credit to now and
// returns the credit slice.
func (a *AIMT) accrueCredits(v *sim.View) []float64 {
	if a.credits == nil {
		a.credits = make([]float64, v.NumNets())
	}
	dt := float64(v.Now() - a.lastAccrue)
	a.lastAccrue = v.Now()
	if dt > 0 {
		for i := range a.credits {
			if !v.NetFinished(i) {
				a.credits[i] += dt * a.weight(i)
			}
		}
	}
	return a.credits
}

// serviced charges a network for receiving service: its credit resets
// so others catch up.
func (a *AIMT) serviced(net int) {
	if a.credits != nil && net < len(a.credits) {
		a.credits[net] = 0
	}
}

// SetExactAVL forces the coverage metric: true pins the exact
// measurement of resident unconsumed compute work, false pins the
// paper's decaying AVL_CB counter (for the ablation study; the
// default follows eviction).
func (a *AIMT) SetExactAVL(on bool) *AIMT {
	if on {
		a.avlMode = avlExact
	} else {
		a.avlMode = avlLeaky
	}
	return a
}

// coverage returns the AVL_CB value steering MB selection.
func (a *AIMT) coverage(v *sim.View) arch.Cycles {
	mode := a.avlMode
	if mode == avlAuto {
		if a.evictOn(v) {
			mode = avlExact
		} else {
			mode = avlLeaky
		}
	}
	if mode == avlExact {
		return v.AvailableCBCycles()
	}
	return a.avlCB
}

// Name implements sim.Scheduler.
func (a *AIMT) Name() string { return a.name }

// evictOn reports whether eviction applies to this run; see
// evictActive.
func (a *AIMT) evictOn(v *sim.View) bool {
	if !a.evict {
		return false
	}
	if a.evictActive < 0 {
		cb, mb := v.MixTotals()
		if mb > cb {
			a.evictActive = 0
		} else {
			a.evictActive = 1
		}
	}
	return a.evictActive == 1
}

// underPressure reports whether the machine is in capacity-recovery
// mode: a capacity-critical memory block is blocked on SRAM space.
// Only then does eviction run the smallest compute blocks first —
// engaging it whenever free space is merely low would starve long
// compute blocks and idle the PE complex while the channel still
// flows.
func (a *AIMT) underPressure(v *sim.View) bool {
	return a.reserving
}

// PickMB implements Algorithm 2's memory-block selection plus the
// eviction priority of §IV-C.
func (a *AIMT) PickMB(v *sim.View) (sim.MBRef, bool) {
	// Cross-request preemption first: the engine applies a granted
	// split request immediately after this pick returns, so this is
	// the spot where a high-priority arrival can displace a
	// low-priority executing block.
	a.maybePreempt(v)
	a.mbs = v.MBCandidates(a.mbs[:0])
	if len(a.mbs) == 0 {
		a.reserving = false
		a.stalled = false
		return sim.MBRef{}, false
	}
	a.rotateMBs(v)

	target, reserve, ok := a.chooseTarget(v)
	wasReserving := a.reserving
	a.reserving = !ok && reserve
	a.stalled = !ok
	if !ok {
		// Nothing preferred fits. When reserving capacity for a blocked
		// capacity-critical block, consider halting a long compute
		// block so small ones can free SRAM sooner (Fig 13c).
		if a.reserving {
			if !wasReserving {
				// Attribute the reservation's onset in the decision
				// ledger (no-op unless the run carries one). target is
				// the blocked capacity-critical block.
				v.NoteEviction(target)
			}
			a.maybeSplit(v)
		}
		return sim.MBRef{}, false
	}

	a.rrMB = (target.Net + 1) % v.NumNets()
	l := v.Layer(target.Net, target.Layer)
	// Algorithm 2 lines 16-17: the selected MB consumes coverage and
	// its corresponding CB becomes available.
	a.avlCB -= l.MBCycles
	if a.avlCB < 0 {
		a.avlCB = 0
	}
	a.avlCB += l.CBCycles
	if a.merge {
		a.mergeCBs(v, l.MBCycles)
	}
	return target, true
}

// rotateMBs reorders the candidate buffer so scanning starts at the
// round-robin pointer, and pushes candidates of networks whose input
// features have not yet arrived to the back: their compute blocks
// cannot start, so their weights would only hog SRAM that runnable
// networks need.
func (a *AIMT) rotateMBs(v *sim.View) {
	if len(a.mbs) < 2 {
		return
	}
	if a.prios != nil {
		sort.SliceStable(a.mbs, func(i, j int) bool {
			hi, hj := !v.HostInputDone(a.mbs[i].Net), !v.HostInputDone(a.mbs[j].Net)
			if hi != hj {
				return hj // arrived inputs first
			}
			return a.prio(a.mbs[i].Net) > a.prio(a.mbs[j].Net)
		})
		return
	}
	if a.deadlines != nil {
		sort.SliceStable(a.mbs, func(i, j int) bool {
			hi, hj := !v.HostInputDone(a.mbs[i].Net), !v.HostInputDone(a.mbs[j].Net)
			if hi != hj {
				return hj // arrived inputs first
			}
			return a.deadline(a.mbs[i].Net) < a.deadline(a.mbs[j].Net)
		})
		return
	}
	if a.weights != nil {
		credits := a.accrueCredits(v)
		sort.SliceStable(a.mbs, func(i, j int) bool {
			hi, hj := !v.HostInputDone(a.mbs[i].Net), !v.HostInputDone(a.mbs[j].Net)
			if hi != hj {
				return hj // arrived inputs first
			}
			return credits[a.mbs[i].Net] > credits[a.mbs[j].Net]
		})
		return
	}
	rank := func(m sim.MBRef) int {
		r := 0
		if m.Net < a.rrMB {
			r++
		}
		if !v.HostInputDone(m.Net) {
			r += 2
		}
		return r
	}
	a.ord = a.ord[:0]
	for pri := 0; pri <= 3; pri++ {
		for _, m := range a.mbs {
			if rank(m) == pri {
				a.ord = append(a.ord, m)
			}
		}
	}
	// Swap the rank-ordered scratch in as the candidate buffer; the old
	// buffer becomes next pick's scratch, so steady state allocates
	// nothing.
	a.mbs, a.ord = a.ord, a.mbs
}

// chooseTarget picks the next memory block. The reserve result, valid
// when ok is false, reports that a capacity-critical block exists but
// lacks SRAM space, so the memory engine holds capacity for it instead
// of letting small blocks steal the window (§IV-C).
func (a *AIMT) chooseTarget(v *sim.View) (target sim.MBRef, reserve, ok bool) {
	// Algorithm 2 lines 5-7: while the available compute coverage is
	// low, prefer blocks whose compute outlasts their fetch so the PE
	// complex does not run dry. Coverage is measured exactly from
	// machine state (resident, unconsumed compute work).
	if a.merge && a.coverage(v) < a.mergeThreshold {
		for _, m := range a.mbs {
			l := v.Layer(m.Net, m.Layer)
			if l.CBCycles > l.MBCycles && v.IsMBIssuable(m) {
				return m, false, true
			}
		}
		// No coverage-building block exists (or fits). Fall through
		// rather than idling the memory engine: an idle channel can
		// never raise the coverage either.
	}
	if a.evictOn(v) {
		// §IV-C: capacity-critical blocks (fetch longer than compute —
		// FC sub-layers) get head-of-line priority. If the first one is
		// blocked on SRAM space, reserve — issuing small blocks now
		// would leak the very window it is waiting for — but only while
		// the PE complex has resident work to chew through; idling the
		// channel with no compute runway just moves the bottleneck.
		for _, m := range a.mbs {
			if !v.Layer(m.Net, m.Layer).MemoryIntensive() {
				continue
			}
			if v.IsMBIssuable(m) {
				return m, false, true
			}
			if v.AvailableCBCycles() >= a.mergeThreshold {
				// Reserve for this blocked critical block; return it so
				// the caller can attribute the reservation.
				return m, true, false
			}
			break
		}
	}
	for _, m := range a.mbs {
		if v.IsMBIssuable(m) {
			return m, false, true
		}
	}
	return sim.MBRef{}, false, false
}

// mergeCBs claims compute blocks until the claimed backlog (selected
// queue plus the executing block's remainder) covers the fetch now
// occupying the memory engine (Algorithm 2 lines 18-22, with the
// "already enough to cover" case of Fig 12c).
func (a *AIMT) mergeCBs(v *sim.View, mbCycles arch.Cycles) {
	backlog := a.sqCycles
	if _, rem, ok := v.ExecutingCB(); ok {
		backlog += rem
	}
	for backlog < mbCycles {
		a.cbs = v.SelectableCBs(a.cbs[:0])
		if len(a.cbs) == 0 {
			return
		}
		pick := a.cbs[0]
		if a.underPressure(v) {
			// Eviction: smallest CB first recovers capacity fastest.
			for _, c := range a.cbs[1:] {
				if v.CBCycles(c) < v.CBCycles(pick) {
					pick = c
				}
			}
		} else {
			// Claim fairly across networks, like the candidate queues.
			for _, c := range a.cbs {
				if c.Net >= a.rrCB {
					pick = c
					break
				}
			}
		}
		if err := v.SelectCB(pick); err != nil {
			return
		}
		c := v.CBCycles(pick)
		a.sq = append(a.sq, pick)
		a.sqCycles += c
		backlog += c
	}
}

// maybeSplit halts the executing compute block when eviction with
// split is enabled, the block has substantial work left, and another
// executable compute block exists to run in its place.
func (a *AIMT) maybeSplit(v *sim.View) {
	if !a.split {
		return
	}
	cur, remaining, ok := v.ExecutingCB()
	if !ok || remaining < a.splitMinRemaining {
		return
	}
	a.cbs = v.ReadyCBs(a.cbs[:0])
	for _, c := range a.cbs {
		if (c.Net != cur.Net || c.Layer != cur.Layer) && v.CBCycles(c) < remaining {
			v.RequestSplit()
			return
		}
	}
}

// maybePreempt requests a CB split when a strictly higher-priority
// network has a ready compute block while a lower-priority one
// executes with substantial work left — the serving control plane's
// cross-request preemption, reusing the halt/resume path. The split
// the engine applies is recorded as usual; the preemption decision
// itself is attributed through NotePreemption.
func (a *AIMT) maybePreempt(v *sim.View) {
	if a.prios == nil {
		return
	}
	cur, remaining, ok := v.ExecutingCB()
	if !ok || remaining < a.splitMinRemaining {
		return
	}
	curP := a.prio(cur.Net)
	a.cbs = v.ReadyCBs(a.cbs[:0])
	for _, c := range a.cbs {
		if c.Net != cur.Net && a.prio(c.Net) > curP {
			if v.RequestSplit() {
				v.NotePreemption(cur)
			}
			return
		}
	}
}

// PickCB implements the compute side: the CB selected queue executes
// in order (the engine waits on its head if the weights are still in
// flight); when it is empty, ready compute blocks run directly —
// smallest first under SRAM pressure, round-robin otherwise. With
// priority classes active, the highest-priority ready block runs
// first, falling back to the selected queue's discipline on ties.
func (a *AIMT) PickCB(v *sim.View) (sim.CBRef, bool) {
	if a.prios != nil {
		a.cbs = v.ReadyCBs(a.cbs[:0])
		var pick sim.CBRef
		found := false
		for _, c := range a.cbs {
			if !found || a.prio(c.Net) > a.prio(pick.Net) {
				pick, found = c, true
			}
		}
		if len(a.sq) > 0 && (!found || a.prio(a.sq[0].Net) >= a.prio(pick.Net)) {
			return a.sq[0], true
		}
		if found {
			return pick, true
		}
		return sim.CBRef{}, false
	}
	if len(a.sq) > 0 {
		return a.sq[0], true
	}
	// With the selected queue empty, run ready compute blocks
	// directly; idling the PE until the in-flight fetch tops the queue
	// up would only move its work later.
	a.cbs = v.ReadyCBs(a.cbs[:0])
	if len(a.cbs) == 0 {
		return sim.CBRef{}, false
	}
	pick, found := a.cbs[0], false
	if a.underPressure(v) {
		for _, c := range a.cbs {
			if !found || v.CBCycles(c) < v.CBCycles(pick) {
				pick, found = c, true
			}
		}
		return pick, true
	}
	if a.deadlines != nil {
		for _, c := range a.cbs {
			if !found || a.deadline(c.Net) < a.deadline(pick.Net) {
				pick, found = c, true
			}
		}
		return pick, true
	}
	if a.weights != nil {
		credits := a.accrueCredits(v)
		for _, c := range a.cbs {
			if !found || credits[c.Net] > credits[pick.Net] {
				pick, found = c, true
			}
		}
		return pick, true
	}
	for _, c := range a.cbs {
		if c.Net >= a.rrCB {
			pick, found = c, true
			break
		}
	}
	if !found {
		pick = a.cbs[0]
	}
	return pick, true
}

// OnMBDone implements sim.Scheduler.
func (a *AIMT) OnMBDone(v *sim.View, r sim.MBRef) {}

// OnCBStart pops the selected queue when its head begins execution,
// advances the compute round-robin pointer, and charges the serviced
// tenant's credit.
func (a *AIMT) OnCBStart(v *sim.View, r sim.CBRef) {
	if len(a.sq) > 0 && a.sq[0] == r {
		// Shift in place rather than reslicing the front: a walking
		// window would force every later append to grow a new backing
		// array, allocating on each merge for the rest of the run.
		a.sq = a.sq[:copy(a.sq, a.sq[1:])]
		a.sqCycles -= v.CBCycles(r)
		if a.sqCycles < 0 {
			a.sqCycles = 0
		}
	}
	a.rrCB = (r.Net + 1) % v.NumNets()
	a.serviced(r.Net)
}

// OnCBDone drains the decaying AVL_CB counter while the memory engine
// is stalled (Algorithm 2 line 12).
func (a *AIMT) OnCBDone(v *sim.View, r sim.CBRef) {
	if a.stalled {
		a.avlCB -= v.Layer(r.Net, r.Layer).CBCycles
		if a.avlCB < 0 {
			a.avlCB = 0
		}
	}
}

// OnCBSplit releases claims on the halted layer: the engine has
// already rolled back its selection counter, so matching selected-
// queue entries are dropped and their cycles refunded.
func (a *AIMT) OnCBSplit(v *sim.View, r sim.CBRef, remaining arch.Cycles) {
	kept := a.sq[:0]
	for _, c := range a.sq {
		if c.Net == r.Net && c.Layer == r.Layer {
			a.sqCycles -= v.Layer(c.Net, c.Layer).CBCycles
			continue
		}
		kept = append(kept, c)
	}
	if a.sqCycles < 0 {
		a.sqCycles = 0
	}
	a.sq = kept
}
