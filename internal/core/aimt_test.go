package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/sim"
)

func testConfig(t testing.TB) arch.Config {
	t.Helper()
	cfg := arch.Config{
		PEDim:        4,
		NumArrays:    4,
		FreqHz:       1_000_000_000,
		MemBandwidth: 1_000_000_000,
		WeightSRAM:   8 * 16, // 8 blocks
		IOSRAM:       1 << 20,
		WeightBytes:  1,
		FillLatency:  2,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func oneLayer(name string, cfg arch.Config, mb, cb arch.Cycles, iters, blocks int) *compiler.CompiledNetwork {
	return &compiler.CompiledNetwork{
		Name: name, Batch: 1,
		Layers: []compiler.CompiledLayer{{
			Name: name + "0", MBCycles: mb, CBCycles: cb, Iters: iters,
			MBBlocks: blocks, MBBytes: cfg.BlockBytes() * arch.Bytes(blocks),
		}},
	}
}

// mixedLoad returns a compute-heavy net and a memory-heavy net whose
// totals are balanced: total CB 600 vs total MB 620, so the workload
// is (barely) memory-... compute decided per shape below.
func mixedLoad(cfg arch.Config) []*compiler.CompiledNetwork {
	return []*compiler.CompiledNetwork{
		// compute-intensive: MB 2, CB 60, 10 sub-layers (CB total 600).
		oneLayer("comp", cfg, 2, 60, 10, 1),
		// memory-intensive: MB 50, CB 10, 10 sub-layers (MB total 500).
		oneLayer("mem", cfg, 50, 10, 10, 4),
	}
}

func runWith(t *testing.T, cfg arch.Config, nets []*compiler.CompiledNetwork, s sim.Scheduler) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg, nets, s, sim.Options{CheckInvariants: true})
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return res
}

func TestNames(t *testing.T) {
	cfg := testConfig(t)
	cases := map[string]Mechanisms{
		"AI-MT(PF)":       Prefetch(),
		"AI-MT(PF+Merge)": PrefetchMerge(),
		"AI-MT(All)":      All(),
		"AI-MT(PF+Evict)": {Evict: true},
	}
	for want, m := range cases {
		if got := New(cfg, m).Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", m, got, want)
		}
	}
}

func TestMechanismPresets(t *testing.T) {
	if m := Prefetch(); m.Merge || m.Evict || m.Split {
		t.Errorf("Prefetch() = %+v", m)
	}
	if m := PrefetchMerge(); !m.Merge || m.Evict {
		t.Errorf("PrefetchMerge() = %+v", m)
	}
	if m := All(); !m.Merge || !m.Evict || !m.Split {
		t.Errorf("All() = %+v", m)
	}
}

func TestAllVariantsCompleteAndRespectBound(t *testing.T) {
	cfg := testConfig(t)
	nets := mixedLoad(cfg)
	var mb, cb arch.Cycles
	for _, cn := range nets {
		s := cn.Stats()
		mb += s.MBCycles
		cb += s.CBCycles
	}
	lower := mb
	if cb > lower {
		lower = cb
	}
	for _, m := range []Mechanisms{Prefetch(), PrefetchMerge(), All(), {Evict: true, Split: true}} {
		res := runWith(t, cfg, nets, New(cfg, m))
		if res.Makespan < lower {
			t.Errorf("%+v: makespan %d below bound %d", m, res.Makespan, lower)
		}
		if res.CBCount != 20 {
			t.Errorf("%+v: executed %d CBs, want 20", m, res.CBCount)
		}
	}
}

func TestPrefetchBeatsDoubleBuffering(t *testing.T) {
	cfg := testConfig(t)
	nets := mixedLoad(cfg)
	pf := runWith(t, cfg, nets, New(cfg, Prefetch()))
	// A depth-2 serial reference: same candidate order but bounded
	// prefetch. Use the simulator's outstanding counter via a local
	// policy to avoid importing the sched package (cycle).
	serial := runWith(t, cfg, nets, &depth2{})
	if pf.Makespan > serial.Makespan {
		t.Errorf("prefetch (%d) slower than double buffering (%d)", pf.Makespan, serial.Makespan)
	}
	if pf.MemUtilization() < serial.MemUtilization() {
		t.Errorf("prefetch memory utilization %f below baseline %f",
			pf.MemUtilization(), serial.MemUtilization())
	}
}

// depth2 is a minimal double-buffered FIFO used as a local reference.
type depth2 struct {
	sim.NopHooks
	q []sim.CBRef
}

func (*depth2) Name() string { return "depth2" }

func (d *depth2) PickMB(v *sim.View) (sim.MBRef, bool) {
	if v.OutstandingMBs() >= 2 {
		return sim.MBRef{}, false
	}
	for _, m := range v.MBCandidates(nil) {
		if v.IsMBIssuable(m) {
			d.q = append(d.q, sim.CBRef{Net: m.Net, Layer: m.Layer, Iter: m.Iter})
			return m, true
		}
	}
	return sim.MBRef{}, false
}

func (d *depth2) PickCB(v *sim.View) (sim.CBRef, bool) {
	if len(d.q) == 0 {
		return sim.CBRef{}, false
	}
	return d.q[0], true
}

func (d *depth2) OnCBStart(v *sim.View, r sim.CBRef) {
	if len(d.q) > 0 && d.q[0] == r {
		d.q = d.q[1:]
	}
}

func TestMergeCoversFetches(t *testing.T) {
	cfg := testConfig(t)
	nets := mixedLoad(cfg)
	pf := runWith(t, cfg, nets, New(cfg, Prefetch()))
	// The decaying AVL_CB counter (the paper's accounting) trades a
	// bounded small-scale pacing overhead for robustness on real
	// mixes; allow it up to 20% here.
	mg := runWith(t, cfg, nets, New(cfg, PrefetchMerge()))
	if mg.Makespan > pf.Makespan*12/10 {
		t.Errorf("merge (%d) much slower than prefetch alone (%d)", mg.Makespan, pf.Makespan)
	}
	// With exact coverage accounting, the steering never fires on this
	// workload and merge matches plain prefetching.
	exact := runWith(t, cfg, nets, New(cfg, PrefetchMerge()).SetExactAVL(true))
	if exact.Makespan != pf.Makespan {
		t.Errorf("exact-AVL merge = %d, want %d (same as prefetch)", exact.Makespan, pf.Makespan)
	}
}

func TestEvictionHelpsUnderCapacityPressure(t *testing.T) {
	cfg := testConfig(t) // 8 blocks only
	// Compute-bound mix with capacity-critical 4-block fetches: the
	// memory net's blocks can only flow if windows are protected.
	nets := []*compiler.CompiledNetwork{
		oneLayer("comp", cfg, 2, 80, 12, 1),
		oneLayer("mem", cfg, 60, 8, 12, 4),
	}
	mg := runWith(t, cfg, nets, New(cfg, PrefetchMerge()))
	all := runWith(t, cfg, nets, New(cfg, All()))
	if all.Makespan > mg.Makespan {
		t.Errorf("eviction hurt: All %d vs Merge %d", all.Makespan, mg.Makespan)
	}
}

func TestAdaptiveEvictionDisabledWhenMemoryBound(t *testing.T) {
	cfg := testConfig(t)
	// Memory-bound mix: total MB 1200 >> total CB 300. Eviction must
	// deactivate, making All behave like Merge.
	nets := []*compiler.CompiledNetwork{
		oneLayer("mem", cfg, 100, 10, 12, 4),
		oneLayer("comp", cfg, 2, 15, 12, 1),
	}
	mg := runWith(t, cfg, nets, New(cfg, PrefetchMerge()))
	all := runWith(t, cfg, nets, New(cfg, All()))
	if all.Makespan != mg.Makespan {
		t.Errorf("memory-bound mix: All %d != Merge %d (eviction should be inactive)",
			all.Makespan, mg.Makespan)
	}
}

func TestSplitTriggersUnderPressure(t *testing.T) {
	cfg := testConfig(t) // 8 blocks
	// One very long compute block holds the PE while the memory net's
	// 4-block fetches need windows: without split the channel starves
	// behind it.
	nets := []*compiler.CompiledNetwork{
		oneLayer("comp", cfg, 2, 2000, 4, 1),
		oneLayer("mem", cfg, 60, 8, 20, 4),
	}
	noSplit := runWith(t, cfg, nets, New(cfg, Mechanisms{Merge: true, Evict: true}))
	withSplit := runWith(t, cfg, nets, New(cfg, All()))
	if withSplit.Splits == 0 {
		t.Error("no splits under sustained capacity pressure")
	}
	if withSplit.Makespan > noSplit.Makespan {
		t.Errorf("split hurt: %d vs %d without", withSplit.Makespan, noSplit.Makespan)
	}
}

func TestSettersChain(t *testing.T) {
	cfg := testConfig(t)
	a := New(cfg, All()).SetMergeThreshold(123).SetPressureBlocks(7).SetExactAVL(false)
	if a.mergeThreshold != 123 || a.pressureBlocks != 7 || a.avlMode != avlLeaky {
		t.Errorf("setters did not apply: %+v", a)
	}
	a.SetExactAVL(true)
	if a.avlMode != avlExact {
		t.Error("SetExactAVL(true) did not pin exact mode")
	}
}

func TestHostBlockedNetsDeprioritized(t *testing.T) {
	cfg := testConfig(t)
	cfg.HostBandwidth = 1_000_000_000
	// net0's input transfer takes 500 cycles; net1's is instant. With
	// tiny SRAM, AI-MT must fetch net1's weights first even though
	// net0 comes first in arrival order.
	a := oneLayer("blocked", cfg, 10, 10, 4, 4)
	a.HostInBytes = 500
	b := oneLayer("ready", cfg, 10, 10, 4, 4)
	rec := &order{}
	if _, err := sim.Run(cfg, []*compiler.CompiledNetwork{a, b}, New(cfg, All()), sim.Options{Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	if rec.first("mem") != 1 {
		t.Errorf("first fetch went to host-blocked net %d", rec.first("mem"))
	}
}

type order struct{ mem []int }

func (o *order) Event(engine, name string, net, layer, iter int, start, end arch.Cycles) {
	if engine == "mem" {
		o.mem = append(o.mem, net)
	}
}

func (o *order) first(engine string) int {
	if len(o.mem) == 0 {
		return -1
	}
	return o.mem[0]
}

// TestWeightedPriorities: with weighted tenant scheduling, the
// high-weight network must finish earlier than an identical
// low-weight peer, and overall throughput must not collapse.
func TestWeightedPriorities(t *testing.T) {
	cfg := testConfig(t)
	mk := func() []*compiler.CompiledNetwork {
		return []*compiler.CompiledNetwork{
			oneLayer("a", cfg, 5, 25, 12, 1),
			oneLayer("b", cfg, 5, 25, 12, 1),
		}
	}
	uniform := runWith(t, cfg, mk(), New(cfg, All()))
	weighted := runWith(t, cfg, mk(), New(cfg, All()).SetPriorities([]float64{1, 8}))
	if weighted.NetFinish[1] >= weighted.NetFinish[0] {
		t.Errorf("high-weight net finished at %d, low-weight at %d", weighted.NetFinish[1], weighted.NetFinish[0])
	}
	if weighted.NetFinish[1] >= uniform.NetFinish[1] {
		t.Errorf("priority did not improve the tenant: %d vs uniform %d",
			weighted.NetFinish[1], uniform.NetFinish[1])
	}
	if float64(weighted.Makespan) > 1.1*float64(uniform.Makespan) {
		t.Errorf("weighted makespan %d far above uniform %d", weighted.Makespan, uniform.Makespan)
	}
}

// TestPreemptPriorities: a high-priority arrival halts a low-priority
// net's long compute block through the CB-split path and finishes far
// sooner than under fair rotation, while uniform priorities leave the
// scheduler a strict no-op.
func TestPreemptPriorities(t *testing.T) {
	cfg := testConfig(t)
	mk := func() []*compiler.CompiledNetwork {
		return []*compiler.CompiledNetwork{
			oneLayer("low", cfg, 2, 2000, 4, 1),
			oneLayer("high", cfg, 5, 20, 6, 1),
		}
	}
	opts := sim.Options{CheckInvariants: true, Arrivals: []arch.Cycles{0, 100}}
	fair, err := sim.Run(cfg, mk(), New(cfg, All()), opts)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sim.Run(cfg, mk(), New(cfg, All()).SetPreemptPriorities([]int{0, 5}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Splits == 0 {
		t.Error("no splits: the high-priority arrival never preempted the executing block")
	}
	if pre.NetFinish[1] >= fair.NetFinish[1] {
		t.Errorf("preemption did not help the high class: finish %d vs fair %d",
			pre.NetFinish[1], fair.NetFinish[1])
	}
	// Work is conserved: the low class still completes everything.
	if pre.CBCount != fair.CBCount {
		t.Errorf("CB count %d != fair %d", pre.CBCount, fair.CBCount)
	}
	// Uniform priorities must be bit-identical to the plain scheduler —
	// the control plane is a strict no-op when every class is equal.
	uni, err := sim.Run(cfg, mk(), New(cfg, All()).SetPreemptPriorities([]int{3, 3}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uni, fair) {
		t.Errorf("uniform priorities changed the run:\n got %+v\nwant %+v", uni, fair)
	}
	if got := New(cfg, All()).SetPreemptPriorities([]int{3, 3}).Name(); got != "AI-MT(All)" {
		t.Errorf("uniform priorities changed the name to %q", got)
	}
	if got := New(cfg, All()).SetPreemptPriorities([]int{0, 5}).Name(); got != "AI-MT(All)+Prio" {
		t.Errorf("Name() = %q, want AI-MT(All)+Prio", got)
	}
}

// TestPropertyAIMTNeverDeadlocks drives every mechanism set over
// random multi-network workloads — including capacity-critical blocks
// larger than half the buffer — checking completion, the makespan
// lower bound, and SRAM invariants.
func TestPropertyAIMTNeverDeadlocks(t *testing.T) {
	cfg := testConfig(t) // 8 blocks
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var nets []*compiler.CompiledNetwork
		var mbTot, cbTot, subs arch.Cycles
		for n := 0; n < 1+rng.Intn(3); n++ {
			cn := &compiler.CompiledNetwork{Name: "n", Batch: 1}
			layers := 1 + rng.Intn(4)
			for l := 0; l < layers; l++ {
				blocks := 1 + rng.Intn(5) // up to 5 of 8 blocks
				cl := compiler.CompiledLayer{
					Name:     "l",
					MBCycles: arch.Cycles(1 + rng.Intn(60)),
					CBCycles: arch.Cycles(1 + rng.Intn(80)),
					Iters:    1 + rng.Intn(6),
					MBBlocks: blocks,
					MBBytes:  cfg.BlockBytes() * arch.Bytes(blocks),
				}
				if l > 0 {
					cl.Deps = []int{l - 1}
					cn.Layers[l-1].Posts = append(cn.Layers[l-1].Posts, l)
				}
				mbTot += cl.MBCycles * arch.Cycles(cl.Iters)
				cbTot += cl.CBCycles * arch.Cycles(cl.Iters)
				subs += arch.Cycles(cl.Iters)
				cn.Layers = append(cn.Layers, cl)
			}
			nets = append(nets, cn)
		}
		lower := mbTot
		if cbTot > lower {
			lower = cbTot
		}
		for _, m := range []Mechanisms{Prefetch(), PrefetchMerge(), All()} {
			res, err := sim.Run(cfg, nets, New(cfg, m), sim.Options{CheckInvariants: true})
			if err != nil {
				t.Logf("seed %d %+v: %v", seed, m, err)
				return false
			}
			if res.Makespan < lower {
				t.Logf("seed %d %+v: makespan %d below bound %d", seed, m, res.Makespan, lower)
				return false
			}
			if arch.Cycles(res.CBCount) != subs {
				t.Logf("seed %d %+v: %d CBs, want %d", seed, m, res.CBCount, subs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The full design on the synthetic mixed load must beat FIFO-like
// serial execution by a clear margin — the paper's qualitative claim
// at miniature scale.
func TestAIMTBeatsSerialOnMixedLoad(t *testing.T) {
	cfg := testConfig(t)
	nets := mixedLoad(cfg)
	serial := runWith(t, cfg, nets, &depth2{})
	all := runWith(t, cfg, nets, New(cfg, All()))
	if sp := float64(serial.Makespan) / float64(all.Makespan); sp < 1.2 {
		t.Errorf("AI-MT speedup = %.3f over serial, want >= 1.2", sp)
	}
}
