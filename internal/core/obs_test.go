package core

import (
	"testing"

	"aimt/internal/compiler"
	"aimt/internal/obs"
	"aimt/internal/sim"
)

// TestLedgerMatchesResult replays a capacity-pressured mix with the
// full mechanism stack and reconciles the decision ledger and metric
// counters against the simulator's Result: every prefetch, split and
// eviction the engine counted must appear in the ledger with a cycle
// inside the run and a coherent stall attribution.
func TestLedgerMatchesResult(t *testing.T) {
	cfg := testConfig(t) // 8 SRAM blocks
	// The split-triggering mix from TestSplitTriggersUnderPressure:
	// one long compute block holds the PE while 4-block fetches need
	// protected windows, so evictions and splits both fire.
	nets := []*compiler.CompiledNetwork{
		oneLayer("comp", cfg, 2, 2000, 4, 1),
		oneLayer("mem", cfg, 60, 8, 20, 4),
	}
	reg := obs.NewRegistry()
	led := obs.NewLedger(0)
	res, err := sim.Run(cfg, nets, New(cfg, All()), sim.Options{
		CheckInvariants: true, Metrics: reg, Ledger: led,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ledger decision counts reconcile with the Result.
	if got := led.CountKind(obs.KindMBPrefetch); got != int64(res.MBCount) {
		t.Errorf("ledger prefetches = %d, Result.MBCount = %d", got, res.MBCount)
	}
	if res.Splits == 0 {
		t.Fatal("mix produced no splits; the reconciliation test needs them")
	}
	if got := led.CountKind(obs.KindCBSplit); got != int64(res.Splits) {
		t.Errorf("ledger splits = %d, Result.Splits = %d", got, res.Splits)
	}

	// Metric counters agree with both the Result and the ledger.
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	if got := counter("aimt_sim_mb_prefetch_total"); got != int64(res.MBCount) {
		t.Errorf("prefetch counter = %d, want %d", got, res.MBCount)
	}
	if got := counter("aimt_sim_mb_completed_total"); got != int64(res.MBCount) {
		t.Errorf("mb completed counter = %d, want %d", got, res.MBCount)
	}
	if got := counter("aimt_sim_cb_completed_total"); got != int64(res.CBCount) {
		t.Errorf("cb completed counter = %d, want %d", got, res.CBCount)
	}
	if got := counter("aimt_sim_cb_splits_total"); got != int64(res.Splits) {
		t.Errorf("split counter = %d, want %d", got, res.Splits)
	}
	if got := counter("aimt_sim_evictions_total"); got != led.CountKind(obs.KindEarlyEvict) {
		t.Errorf("eviction counter = %d, ledger = %d", got, led.CountKind(obs.KindEarlyEvict))
	}
	if got := counter("aimt_sim_mem_busy_cycles_total"); got != int64(res.MemBusy) {
		t.Errorf("mem busy counter = %d, Result.MemBusy = %d", got, res.MemBusy)
	}
	if got := counter("aimt_sim_pe_busy_cycles_total"); got != int64(res.PEBusy) {
		t.Errorf("pe busy counter = %d, Result.PEBusy = %d", got, res.PEBusy)
	}
	if got := counter("aimt_sim_nets_finished_total"); got != int64(len(nets)) {
		t.Errorf("nets finished counter = %d, want %d", got, len(nets))
	}

	// Every decision is attributed to a cycle inside the run, a valid
	// block, and a coherent stall cause; evictions and splits are
	// pe-bound by construction (both recover SRAM capacity).
	led.Each(func(d obs.Decision) bool {
		if d.Cycle < 0 || d.Cycle > res.Makespan {
			t.Errorf("decision %d (%s) at cycle %d outside run [0,%d]", d.Seq, d.Kind, d.Cycle, res.Makespan)
		}
		if d.Net < 0 || d.Net >= len(nets) || d.Layer != 0 {
			t.Errorf("decision %d (%s) names net %d layer %d", d.Seq, d.Kind, d.Net, d.Layer)
		}
		if d.SRAMUsed < 0 || d.SRAMUsed > d.SRAMTotal || d.SRAMTotal != cfg.WeightBlocks() {
			t.Errorf("decision %d: SRAM %d/%d", d.Seq, d.SRAMUsed, d.SRAMTotal)
		}
		switch d.Kind {
		case obs.KindEarlyEvict, obs.KindCBSplit:
			if d.Stall != obs.StallPE {
				t.Errorf("decision %d (%s) attributed to %q, want %q", d.Seq, d.Kind, d.Stall, obs.StallPE)
			}
		case obs.KindMBPrefetch, obs.KindCBMerge:
			if d.Stall != obs.StallNone && d.Stall != obs.StallHBM && d.Stall != obs.StallPE {
				t.Errorf("decision %d (%s) has unknown stall %q", d.Seq, d.Kind, d.Stall)
			}
		default:
			t.Errorf("decision %d has unknown kind %q", d.Seq, d.Kind)
		}
		if d.Detail <= 0 {
			t.Errorf("decision %d (%s) has non-positive detail %d", d.Seq, d.Kind, d.Detail)
		}
		return true
	})
	if led.CountKind(obs.KindEarlyEvict) == 0 {
		t.Error("mix produced no early-eviction reservations; expected capacity pressure to trigger them")
	}
}

// TestObsDisabledMatchesEnabled pins that attaching observability
// cannot change scheduling: the same mix with and without a registry
// and ledger produces identical results.
func TestObsDisabledMatchesEnabled(t *testing.T) {
	cfg := testConfig(t)
	nets := mixedLoad(cfg)
	plain, err := sim.Run(cfg, nets, New(cfg, All()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nets2 := mixedLoad(cfg)
	instr, err := sim.Run(cfg, nets2, New(cfg, All()), sim.Options{
		Metrics: obs.NewRegistry(), Ledger: obs.NewLedger(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != instr.Makespan || plain.MBCount != instr.MBCount ||
		plain.CBCount != instr.CBCount || plain.Splits != instr.Splits {
		t.Errorf("observability changed the run: %+v vs %+v", plain, instr)
	}
}
