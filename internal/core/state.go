package core

import (
	"aimt/internal/arch"
	"aimt/internal/sim"
)

// aimtState captures every field of the AI-MT scheduler that decisions
// depend on across picks: the AVL_CB counter and stall flag, the CB
// selected queue, both round-robin pointers, the weighted-credit
// ledger, and the eviction/reservation mode latches. The configuration
// (mechanism switches, thresholds, priority tables) is immutable per
// run and not captured.
type aimtState struct {
	avlCB       arch.Cycles
	stalled     bool
	sq          []sim.CBRef
	sqCycles    arch.Cycles
	rrMB, rrCB  int
	hasCredits  bool
	credits     []float64
	lastAccrue  arch.Cycles
	reserving   bool
	evictActive int
}

// SaveState implements sim.StatefulScheduler, so engine snapshots can
// rewind AI-MT's decision state and replay bit-identically.
func (a *AIMT) SaveState(prev any) any {
	st, _ := prev.(*aimtState)
	if st == nil {
		st = &aimtState{}
	}
	st.avlCB = a.avlCB
	st.stalled = a.stalled
	st.sq = append(st.sq[:0], a.sq...)
	st.sqCycles = a.sqCycles
	st.rrMB, st.rrCB = a.rrMB, a.rrCB
	st.hasCredits = a.credits != nil
	st.credits = append(st.credits[:0], a.credits...)
	st.lastAccrue = a.lastAccrue
	st.reserving = a.reserving
	st.evictActive = a.evictActive
	return st
}

// RestoreState implements sim.StatefulScheduler.
func (a *AIMT) RestoreState(stAny any) {
	st := stAny.(*aimtState)
	a.avlCB = st.avlCB
	a.stalled = st.stalled
	a.sq = append(a.sq[:0], st.sq...)
	a.sqCycles = st.sqCycles
	a.rrMB, a.rrCB = st.rrMB, st.rrCB
	if st.hasCredits {
		a.credits = append(a.credits[:0], st.credits...)
	} else {
		a.credits = nil // lazily allocated on first accrue; keep it so
	}
	a.lastAccrue = st.lastAccrue
	a.reserving = st.reserving
	a.evictActive = st.evictActive
}
