// Package power estimates static power and area of the on-chip memory
// structures AI-MT adds, reproducing the paper's Table III. The paper
// used CACTI 7.0 at 28 nm; offline, we substitute an analytical model
// calibrated to the paper's four published (size, power, area) data
// points and interpolate between them on a log-log scale, which
// preserves CACTI's approximately power-law capacity scaling.
package power

import (
	"fmt"
	"math"
	"sort"

	"aimt/internal/arch"
)

// anchor is one calibrated CACTI data point.
type anchor struct {
	bytes   float64
	powerMW float64
	areaMM2 float64
}

// anchors are derived from Table III: 64 B structures, the 3 KB
// sub-layer scheduling table, the 1 MB weight buffer, and the 18 MB
// input/output buffer (per-instance values).
var anchors = []anchor{
	{bytes: 64, powerMW: 0.0172, areaMM2: 0.000261},
	{bytes: 3 * 1024, powerMW: 2.897 / 5, areaMM2: 0.0592 / 5},
	{bytes: 1 << 20, powerMW: 170.408, areaMM2: 3.843},
	{bytes: 18 << 20, powerMW: 3575.872, areaMM2: 119.399},
}

// interp performs log-log piecewise-linear interpolation through the
// anchors, extrapolating with the slope of the end segments.
func interp(bytes float64, value func(anchor) float64) float64 {
	if bytes <= 0 {
		return 0
	}
	x := math.Log(bytes)
	i := sort.Search(len(anchors), func(i int) bool { return anchors[i].bytes >= bytes })
	var lo, hi anchor
	switch {
	case i == 0:
		lo, hi = anchors[0], anchors[1]
	case i >= len(anchors):
		lo, hi = anchors[len(anchors)-2], anchors[len(anchors)-1]
	default:
		lo, hi = anchors[i-1], anchors[i]
	}
	x0, x1 := math.Log(lo.bytes), math.Log(hi.bytes)
	y0, y1 := math.Log(value(lo)), math.Log(value(hi))
	t := (x - x0) / (x1 - x0)
	return math.Exp(y0 + t*(y1-y0))
}

// SRAMPowerMW estimates the static power, in milliwatts, of an SRAM
// of the given capacity.
func SRAMPowerMW(size arch.Bytes) float64 {
	return interp(float64(size), func(a anchor) float64 { return a.powerMW })
}

// SRAMAreaMM2 estimates the area, in square millimetres, of an SRAM
// of the given capacity.
func SRAMAreaMM2(size arch.Bytes) float64 {
	return interp(float64(size), func(a anchor) float64 { return a.areaMM2 })
}

// Row is one line of Table III.
type Row struct {
	// Name is the memory block's label.
	Name string
	// Size is its capacity.
	Size arch.Bytes
	// Count is the number of instances (scheduling tables scale with
	// the number of co-resident networks).
	Count int
	// PowerMW and AreaMM2 cover all Count instances.
	PowerMW float64
	AreaMM2 float64
}

// SchedulingTableBytes is the size of one per-network sub-layer
// scheduling table (Table III: 3 KB).
const SchedulingTableBytes arch.Bytes = 3 * arch.KiB

// QueueBytes is the size of the candidate queues, the selected queue,
// the weight management table and the free list (Table III: 64 B).
const QueueBytes arch.Bytes = 64

// Table3 reproduces Table III for the given hardware configuration
// and number of concurrently resident networks (the paper uses five).
func Table3(cfg arch.Config, networks int) []Row {
	mk := func(name string, size arch.Bytes, count int) Row {
		return Row{
			Name:    name,
			Size:    size,
			Count:   count,
			PowerMW: SRAMPowerMW(size) * float64(count),
			AreaMM2: SRAMAreaMM2(size) * float64(count),
		}
	}
	return []Row{
		mk("Input/Output buffer", cfg.IOSRAM, 1),
		mk("Weight buffer", cfg.WeightSRAM, 1),
		mk("Sub-layer scheduling table", SchedulingTableBytes, networks),
		mk("CQs and SQ", QueueBytes, 1),
		mk("Weight management table", QueueBytes, 1),
		mk("Free list", QueueBytes, 1),
	}
}

// OverheadFraction returns the power fraction of the AI-MT-specific
// structures (everything but the feature and weight buffers) relative
// to the total — the paper's "negligible overhead" claim.
func OverheadFraction(rows []Row) float64 {
	var total, overhead float64
	for _, r := range rows {
		total += r.PowerMW
		if r.Name != "Input/Output buffer" && r.Name != "Weight buffer" {
			overhead += r.PowerMW
		}
	}
	if total == 0 {
		return 0
	}
	return overhead / total
}

// String renders a row like Table III.
func (r Row) String() string {
	label := r.Name
	if r.Count > 1 {
		label = fmt.Sprintf("%s (%s * %d)", r.Name, arch.FormatBytes(r.Size), r.Count)
	} else {
		label = fmt.Sprintf("%s (%s)", r.Name, arch.FormatBytes(r.Size))
	}
	return fmt.Sprintf("%-45s %12.4f mW %12.6f mm2", label, r.PowerMW, r.AreaMM2)
}
