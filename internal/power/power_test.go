package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"aimt/internal/arch"
)

// The model must reproduce the paper's Table III anchors exactly.
func TestAnchorsReproduceTable3(t *testing.T) {
	cases := []struct {
		size    arch.Bytes
		powerMW float64
		areaMM2 float64
	}{
		{18 * arch.MiB, 3575.872, 119.399},
		{1 * arch.MiB, 170.408, 3.843},
		{3 * arch.KiB, 2.897 / 5, 0.0592 / 5},
		{64, 0.0172, 0.000261},
	}
	for _, tc := range cases {
		if got := SRAMPowerMW(tc.size); math.Abs(got-tc.powerMW)/tc.powerMW > 1e-6 {
			t.Errorf("power(%d) = %f, want %f", tc.size, got, tc.powerMW)
		}
		if got := SRAMAreaMM2(tc.size); math.Abs(got-tc.areaMM2)/tc.areaMM2 > 1e-6 {
			t.Errorf("area(%d) = %f, want %f", tc.size, got, tc.areaMM2)
		}
	}
}

func TestModelMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := arch.Bytes(a)+1, arch.Bytes(b)+1
		if x > y {
			x, y = y, x
		}
		return SRAMPowerMW(x) <= SRAMPowerMW(y)+1e-12 &&
			SRAMAreaMM2(x) <= SRAMAreaMM2(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelExtrapolates(t *testing.T) {
	if SRAMPowerMW(64*arch.MiB) <= SRAMPowerMW(18*arch.MiB) {
		t.Error("no extrapolation above the largest anchor")
	}
	if SRAMPowerMW(16) <= 0 || SRAMPowerMW(16) >= SRAMPowerMW(64) {
		t.Error("extrapolation below the smallest anchor broken")
	}
	if SRAMPowerMW(0) != 0 {
		t.Error("zero size has nonzero power")
	}
}

func TestTable3Rows(t *testing.T) {
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := Table3(cfg, 5)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].Name != "Input/Output buffer" || rows[0].Size != 18*arch.MiB {
		t.Errorf("row 0 = %+v", rows[0])
	}
	// The scheduling-table row scales with the network count.
	if rows[2].Count != 5 {
		t.Errorf("scheduling tables count = %d, want 5", rows[2].Count)
	}
	if math.Abs(rows[2].PowerMW-2.897)/2.897 > 1e-6 {
		t.Errorf("scheduling tables power = %f, want 2.897", rows[2].PowerMW)
	}
	ten := Table3(cfg, 10)
	if ten[2].PowerMW <= rows[2].PowerMW {
		t.Error("scheduling-table power does not scale with networks")
	}
}

// The paper's claim: AI-MT's structures are a negligible fraction of
// on-chip memory power.
func TestOverheadNegligible(t *testing.T) {
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := Table3(cfg, 5)
	if f := OverheadFraction(rows); f <= 0 || f > 0.01 {
		t.Errorf("overhead fraction = %f, want (0, 1%%]", f)
	}
	if OverheadFraction(nil) != 0 {
		t.Error("empty rows overhead != 0")
	}
}

func TestRowString(t *testing.T) {
	r := Row{Name: "Weight buffer", Size: arch.MiB, Count: 1, PowerMW: 170.4, AreaMM2: 3.84}
	s := r.String()
	for _, want := range []string{"Weight buffer", "1 MiB", "mW", "mm2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Row.String() = %q missing %q", s, want)
		}
	}
	multi := Row{Name: "Tables", Size: 3 * arch.KiB, Count: 5}
	if !strings.Contains(multi.String(), "* 5") {
		t.Errorf("multi-instance row %q missing count", multi.String())
	}
}
