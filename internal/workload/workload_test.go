package workload

import (
	"strings"
	"testing"

	"aimt/internal/arch"
)

func cfg(t *testing.T) arch.Config {
	t.Helper()
	c := arch.PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperMixesShape(t *testing.T) {
	mixes := PaperMixes()
	if len(mixes) != 8 {
		t.Fatalf("mixes = %d, want 8", len(mixes))
	}
	gnmt, vgg := 0, 0
	for _, m := range mixes {
		if len(m.Compute) == 0 || len(m.Memory) != 1 {
			t.Errorf("%s: compute=%v memory=%v", m.Name, m.Compute, m.Memory)
		}
		switch m.Memory[0] {
		case "GNMT":
			gnmt++
		case "VGG16":
			vgg++
		}
	}
	if gnmt != 4 || vgg != 4 {
		t.Errorf("memory sides = %d GNMT + %d VGG16, want 4+4", gnmt, vgg)
	}
}

func TestGNMTMixes(t *testing.T) {
	for _, m := range GNMTMixes() {
		if m.Memory[0] != "GNMT" {
			t.Errorf("%s in GNMT mixes", m.Name)
		}
	}
	if len(GNMTMixes()) != 4 {
		t.Errorf("GNMT mixes = %d, want 4", len(GNMTMixes()))
	}
}

func TestBuildBalancesLoads(t *testing.T) {
	c := cfg(t)
	mix, err := Build(c, Spec{Name: "t", Compute: []string{"RN34"}, Memory: []string{"GNMT"}},
		BuildOptions{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Replication < 1 {
		t.Fatalf("replication = %d", mix.Replication)
	}
	// The memory side's total MB cycles must be within one instance of
	// the compute side's CB cycles (the paper's balancing).
	var compCB, memMB, oneMB arch.Cycles
	for i, cn := range mix.Nets {
		s := cn.Stats()
		if mix.MemHeavy[i] {
			memMB += s.MBCycles
			oneMB = s.MBCycles
		} else {
			compCB += s.CBCycles
		}
	}
	if diff := compCB - memMB; diff > oneMB || diff < -oneMB {
		t.Errorf("imbalance: compute CB %d vs memory MB %d (one instance = %d)", compCB, memMB, oneMB)
	}
}

func TestBuildAnnotatesName(t *testing.T) {
	c := cfg(t)
	mix, err := Build(c, PaperMixes()[0], BuildOptions{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Replication > 1 && !strings.Contains(mix.Name, "x") {
		t.Errorf("name %q missing replication annotation", mix.Name)
	}
}

func TestBuildIterations(t *testing.T) {
	c := cfg(t)
	one, err := Build(c, PaperMixes()[0], BuildOptions{Batch: 1, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	three, err := Build(c, PaperMixes()[0], BuildOptions{Batch: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(three.Nets) != 3*len(one.Nets) {
		t.Errorf("iterated nets = %d, want %d", len(three.Nets), 3*len(one.Nets))
	}
	if len(three.MemHeavy) != len(three.Nets) {
		t.Error("MemHeavy length mismatch")
	}
}

func TestBuildMaxReplicationCap(t *testing.T) {
	c := cfg(t)
	mix, err := Build(c, Spec{Name: "t", Compute: []string{"RN34"}, Memory: []string{"GNMT"}},
		BuildOptions{Batch: 32, MaxReplication: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Replication > 3 {
		t.Errorf("replication = %d, cap 3", mix.Replication)
	}
}

func TestBuildRejectsUnknownNetwork(t *testing.T) {
	c := cfg(t)
	if _, err := Build(c, Spec{Name: "t", Compute: []string{"nope"}, Memory: []string{"GNMT"}}, BuildOptions{}); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := Build(c, Spec{Name: "t", Compute: nil, Memory: []string{"GNMT"}}, BuildOptions{}); err == nil {
		t.Error("empty compute side accepted")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("RN34,RN50/GNMT")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Compute) != 2 || s.Compute[1] != "RN50" || len(s.Memory) != 1 {
		t.Errorf("parsed %+v", s)
	}
	for _, bad := range []string{"RN34", "RN34/GNMT/extra", "/GNMT", "RN34/", " , / ,"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", bad)
		}
	}
}

func TestOpenLoopStream(t *testing.T) {
	c := cfg(t)
	s, err := OpenLoop(c, []string{"MN", "GNMT"}, StreamOptions{Requests: 10, MeanGap: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nets) != 10 || len(s.Arrivals) != 10 {
		t.Fatalf("stream = %d nets, %d arrivals", len(s.Nets), len(s.Arrivals))
	}
	for i := 1; i < len(s.Arrivals); i++ {
		if s.Arrivals[i] < s.Arrivals[i-1] {
			t.Fatalf("arrivals not monotone: %v", s.Arrivals)
		}
	}
	// Reproducible for the same seed, different for another.
	s2, err := OpenLoop(c, []string{"MN", "GNMT"}, StreamOptions{Requests: 10, MeanGap: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Arrivals {
		if s.Arrivals[i] != s2.Arrivals[i] || s.Nets[i].Name != s2.Nets[i].Name {
			t.Fatal("stream not reproducible for equal seeds")
		}
	}
	s3, err := OpenLoop(c, []string{"MN", "GNMT"}, StreamOptions{Requests: 10, MeanGap: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range s.Arrivals {
		if s.Arrivals[i] != s3.Arrivals[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical arrivals")
	}
	if _, err := OpenLoop(c, []string{"nope"}, StreamOptions{}); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := OpenLoop(c, nil, StreamOptions{}); err == nil {
		t.Error("empty network list accepted")
	}
}

func TestMemHeavyFlags(t *testing.T) {
	c := cfg(t)
	mix, err := Build(c, PaperMixes()[3], BuildOptions{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, cn := range mix.Nets {
		isGNMT := cn.Name == "GNMT"
		if mix.MemHeavy[i] != isGNMT {
			t.Errorf("net %d (%s): MemHeavy = %v", i, cn.Name, mix.MemHeavy[i])
		}
	}
}
