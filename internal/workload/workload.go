// Package workload synthesizes the multi-network co-location scenarios
// of the paper's evaluation (§V-A): compute-intensive CNNs combined
// with memory-intensive networks (GNMT, VGG16 with its large FC
// layers), with the memory-intensive side iterated so that the total
// memory-block load roughly matches the compute-block load the CNNs
// produce.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"aimt/internal/arch"
	"aimt/internal/compiler"
	"aimt/internal/nn"
)

// Spec names a co-location scenario: which networks are the compute-
// intensive side and which the memory-intensive side.
type Spec struct {
	// Name labels the mix in figures, e.g. "RN34+GNMT".
	Name string

	// Compute lists zoo names of the compute-intensive networks.
	Compute []string

	// Memory lists zoo names of the memory-intensive networks.
	Memory []string
}

// PaperMixes returns the eight co-location mixes evaluated in
// Figs 7, 8 and 14: each CNN (and the three combined) against GNMT
// and against VGG16.
func PaperMixes() []Spec {
	return []Spec{
		{Name: "RN34+GNMT", Compute: []string{"RN34"}, Memory: []string{"GNMT"}},
		{Name: "RN50+GNMT", Compute: []string{"RN50"}, Memory: []string{"GNMT"}},
		{Name: "MN+GNMT", Compute: []string{"MN"}, Memory: []string{"GNMT"}},
		{Name: "RN34+RN50+MN+GNMT", Compute: []string{"RN34", "RN50", "MN"}, Memory: []string{"GNMT"}},
		{Name: "RN34+VGG16", Compute: []string{"RN34"}, Memory: []string{"VGG16"}},
		{Name: "RN50+VGG16", Compute: []string{"RN50"}, Memory: []string{"VGG16"}},
		{Name: "MN+VGG16", Compute: []string{"MN"}, Memory: []string{"VGG16"}},
		{Name: "RN34+RN50+MN+VGG16", Compute: []string{"RN34", "RN50", "MN"}, Memory: []string{"VGG16"}},
	}
}

// GNMTMixes returns the CNN+GNMT subset used by the batch-size
// sensitivity study (Fig 15).
func GNMTMixes() []Spec {
	all := PaperMixes()
	var out []Spec
	for _, s := range all {
		if len(s.Memory) == 1 && s.Memory[0] == "GNMT" {
			out = append(out, s)
		}
	}
	return out
}

// Mix is a compiled co-location scenario ready to simulate.
type Mix struct {
	// Name is the spec name, possibly annotated with the replication
	// factor, e.g. "RN34+GNMT(x3)".
	Name string

	// Nets holds the compiled network instances in arrival order:
	// compute-intensive first, then the replicated memory-intensive
	// instances (interleaved round-robin when several).
	Nets []*compiler.CompiledNetwork

	// MemHeavy flags, per instance, the memory-intensive networks
	// (used by the ComputeFirst baseline).
	MemHeavy []bool

	// Replication is the factor applied to the memory-intensive side.
	Replication int
}

// BuildOptions tune mix construction.
type BuildOptions struct {
	// Batch is the batch size for every network; zero means 1.
	Batch int

	// MaxReplication caps the memory-side iteration factor; zero
	// means 32.
	MaxReplication int

	// Iterations replicates the whole balanced mix, modelling the
	// continuous-arrival cloud scenario of Fig 16; zero means 1.
	Iterations int
}

// Build compiles and balances a co-location spec: the memory-intensive
// networks are replicated so their total memory-block cycles
// approximate the compute-block cycles produced by the whole mix
// (paper §III-B: "we iteratively run memory-intensive workloads to
// properly match the amount of CBs produced by compute-intensive
// workloads").
func Build(cfg arch.Config, spec Spec, opts BuildOptions) (*Mix, error) {
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.MaxReplication <= 0 {
		opts.MaxReplication = 32
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}

	compile := func(names []string) ([]*compiler.CompiledNetwork, error) {
		var out []*compiler.CompiledNetwork
		for _, name := range names {
			net, err := nn.ByName(name)
			if err != nil {
				return nil, err
			}
			cn, err := compiler.Compile(net, cfg, opts.Batch)
			if err != nil {
				return nil, err
			}
			out = append(out, cn)
		}
		return out, nil
	}

	comp, err := compile(spec.Compute)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	mem, err := compile(spec.Memory)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	if len(comp) == 0 || len(mem) == 0 {
		return nil, fmt.Errorf("workload %s: both sides must be non-empty", spec.Name)
	}

	var compCB, memMB arch.Cycles
	for _, cn := range comp {
		s := cn.Stats()
		compCB += s.CBCycles
	}
	for _, cn := range mem {
		s := cn.Stats()
		memMB += s.MBCycles
	}
	rep := 1
	if memMB > 0 {
		rep = int((compCB + memMB/2) / memMB)
	}
	if rep < 1 {
		rep = 1
	}
	if rep > opts.MaxReplication {
		rep = opts.MaxReplication
	}

	m := &Mix{Replication: rep}
	m.Name = spec.Name
	if rep > 1 {
		m.Name = fmt.Sprintf("%s(x%d)", spec.Name, rep)
	}
	for it := 0; it < opts.Iterations; it++ {
		for _, cn := range comp {
			m.Nets = append(m.Nets, cn)
			m.MemHeavy = append(m.MemHeavy, false)
		}
		for r := 0; r < rep; r++ {
			for _, cn := range mem {
				m.Nets = append(m.Nets, cn)
				m.MemHeavy = append(m.MemHeavy, true)
			}
		}
	}
	return m, nil
}

// Stream is an open-loop request stream for the cloud serving
// scenario: network instances with staggered arrival times.
type Stream struct {
	// Name labels the stream.
	Name string
	// Nets holds the compiled instances in arrival order.
	Nets []*compiler.CompiledNetwork
	// Arrivals gives each instance's arrival cycle.
	Arrivals []arch.Cycles
}

// StreamOptions tune OpenLoop.
type StreamOptions struct {
	// Batch is the per-request batch size; zero means 1.
	Batch int
	// Requests is the stream length; zero means 32.
	Requests int
	// MeanGap is the mean inter-arrival time in cycles; zero means
	// 20000 (20 us at 1 GHz).
	MeanGap arch.Cycles
	// Seed makes the stream reproducible.
	Seed int64
}

// OpenLoop generates a reproducible request stream drawing uniformly
// from the given zoo networks with exponential inter-arrival gaps —
// the continuous-arrival cloud scenario of the paper's introduction.
func OpenLoop(cfg arch.Config, networks []string, opts StreamOptions) (*Stream, error) {
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.Requests <= 0 {
		opts.Requests = 32
	}
	if opts.MeanGap <= 0 {
		opts.MeanGap = 20000
	}
	var compiled []*compiler.CompiledNetwork
	for _, name := range networks {
		net, err := nn.ByName(name)
		if err != nil {
			return nil, err
		}
		cn, err := compiler.Compile(net, cfg, opts.Batch)
		if err != nil {
			return nil, err
		}
		compiled = append(compiled, cn)
	}
	if len(compiled) == 0 {
		return nil, fmt.Errorf("workload: empty network list")
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	s := &Stream{Name: strings.Join(networks, "+") + "-stream"}
	var t arch.Cycles
	for i := 0; i < opts.Requests; i++ {
		s.Nets = append(s.Nets, compiled[rng.Intn(len(compiled))])
		s.Arrivals = append(s.Arrivals, t)
		gap := arch.Cycles(rng.ExpFloat64() * float64(opts.MeanGap))
		t += gap
	}
	return s, nil
}

// ParseSpec builds a Spec from a string like "RN34,RN50/GNMT": compute
// networks before the slash, memory networks after.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return Spec{}, fmt.Errorf("workload: spec %q must be compute1,compute2/mem1,mem2", s)
	}
	split := func(s string) []string {
		var out []string
		for _, f := range strings.Split(s, ",") {
			if f = strings.TrimSpace(f); f != "" {
				out = append(out, f)
			}
		}
		return out
	}
	spec := Spec{
		Name:    s,
		Compute: split(parts[0]),
		Memory:  split(parts[1]),
	}
	if len(spec.Compute) == 0 || len(spec.Memory) == 0 {
		return Spec{}, fmt.Errorf("workload: spec %q has an empty side", s)
	}
	return spec, nil
}
