module aimt

go 1.22
