package aimt

import (
	"testing"
)

// TestSmokeEndToEnd compiles a two-network mix and runs it under every
// scheduler, checking completion and basic sanity. It is the fastest
// whole-stack check; the per-package suites cover details.
func TestSmokeEndToEnd(t *testing.T) {
	cfg := PaperConfig()
	rn50, err := Compile(ResNet50(), cfg, 1)
	if err != nil {
		t.Fatalf("compile ResNet50: %v", err)
	}
	gnmt, err := Compile(GNMT(), cfg, 1)
	if err != nil {
		t.Fatalf("compile GNMT: %v", err)
	}
	nets := []*Compiled{rn50, gnmt}

	scheds := []Scheduler{
		NewFIFO(), NewRR(), NewGreedy(), NewSJF(),
		NewComputeFirst([]bool{false, true}),
		NewAIMT(cfg, PrefetchOnly()),
		NewAIMT(cfg, PrefetchMerge()),
		NewAIMT(cfg, AllMechanisms()),
	}
	var fifoMakespan Cycles
	for _, s := range scheds {
		res, err := Run(cfg, nets, s, RunOptions{CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		t.Logf("%-16s makespan=%-10d memU=%.2f peU=%.2f peak=%d splits=%d",
			s.Name(), res.Makespan, res.MemUtilization(), res.PEUtilization(),
			res.SRAMPeakBytes(), res.Splits)
		if res.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan", s.Name())
		}
		if u := res.MemUtilization(); u < 0 || u > 1 {
			t.Fatalf("%s: memory utilization %f out of range", s.Name(), u)
		}
		if u := res.PEUtilization(); u < 0 || u > 1 {
			t.Fatalf("%s: PE utilization %f out of range", s.Name(), u)
		}
		if s.Name() == "FIFO" {
			fifoMakespan = res.Makespan
		} else if fifoMakespan > 0 && s.Name() == "AI-MT(All)" {
			if res.Makespan > fifoMakespan {
				t.Errorf("AI-MT(All) slower than FIFO: %d > %d", res.Makespan, fifoMakespan)
			}
		}
	}
}
