package aimt

import (
	"testing"

	"aimt/internal/compiler"
	"aimt/internal/core"
	"aimt/internal/sched"
)

// Scenario tests reproducing the paper's illustrative timeline figures
// (Figs 6, 9, 12, 13) with synthetic block patterns: the mechanisms'
// qualitative effects must appear exactly as drawn.

// scenarioConfig is a miniature machine: block = 16 B, 8-block SRAM.
func scenarioConfig(t *testing.T, sramBlocks int) Config {
	t.Helper()
	cfg := Config{
		PEDim:        4,
		NumArrays:    4,
		FreqHz:       1_000_000_000,
		MemBandwidth: 1_000_000_000,
		WeightSRAM:   Bytes(sramBlocks) * 16,
		IOSRAM:       1 << 20,
		WeightBytes:  1,
		FillLatency:  2,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// block builds a single-layer network of identical sub-layers.
func block(name string, cfg Config, mb, cb Cycles, iters, blocks int) *Compiled {
	return &compiler.CompiledNetwork{
		Name: name, Batch: 1,
		Layers: []compiler.CompiledLayer{{
			Name: name, MBCycles: mb, CBCycles: cb, Iters: iters,
			MBBlocks: blocks, MBBytes: cfg.BlockBytes() * Bytes(blocks),
		}},
	}
}

// Fig 6: with three networks of differing resource intensity, FIFO's
// network-serial execution produces long single-resource phases; the
// overall utilizations stay low under every static baseline.
func TestScenarioFig6BaselineIdleness(t *testing.T) {
	cfg := scenarioConfig(t, 8)
	nets := []*Compiled{
		block("comp", cfg, 2, 40, 6, 1), // compute-intensive
		block("mem", cfg, 40, 4, 6, 4),  // memory-intensive
		block("mixed", cfg, 10, 12, 6, 2) /* balanced */}
	for _, s := range []Scheduler{sched.NewFIFO(), sched.NewRR()} {
		res, err := Run(cfg, nets, s, RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PEUtilization() > 0.9 && res.MemUtilization() > 0.9 {
			t.Errorf("%s: both resources near-saturated (%.2f/%.2f) — the scenario should show idleness",
				s.Name(), res.PEUtilization(), res.MemUtilization())
		}
	}
}

// Fig 12a->12b: MB prefetching fills the memory idleness the RR
// baseline leaves (Part-1) and pulls compute blocks earlier (Part-2).
func TestScenarioFig12Prefetching(t *testing.T) {
	cfg := scenarioConfig(t, 8)
	// The paper's Part-1/Part-2 pattern: during the compute net's long
	// CBs the conventional pipeline's double buffering (at most two
	// outstanding fetches) leaves the channel idle, pushing the
	// memory net's work into a serial tail. Prefetching regardless of
	// sub-layer boundaries fills that idle bandwidth.
	nets := []*Compiled{
		block("comp", cfg, 2, 200, 6, 1),
		block("mem", cfg, 30, 5, 24, 1),
	}
	rr, err := Run(cfg, nets, sched.NewRR(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(cfg, nets, core.New(cfg, core.Prefetch()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Makespan >= rr.Makespan {
		t.Errorf("prefetching did not help: %d vs RR %d", pf.Makespan, rr.Makespan)
	}
	if pf.MemUtilization() <= rr.MemUtilization() {
		t.Errorf("memory utilization did not rise: %.2f vs %.2f", pf.MemUtilization(), rr.MemUtilization())
	}
}

// Fig 12b->12c: CB merging keeps the PE complex covered while large
// fetches are in flight; PE utilization must not drop versus
// prefetching alone.
func TestScenarioFig12Merging(t *testing.T) {
	cfg := scenarioConfig(t, 8)
	nets := []*Compiled{
		block("comp", cfg, 2, 40, 8, 1),
		block("mem", cfg, 60, 4, 8, 4),
	}
	pf, err := Run(cfg, nets, core.New(cfg, core.Prefetch()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := Run(cfg, nets, core.New(cfg, core.PrefetchMerge()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(mg.Makespan) > 1.1*float64(pf.Makespan) {
		t.Errorf("merging regressed: %d vs PF %d", mg.Makespan, pf.Makespan)
	}
}

// Fig 9a vs 9b: the compute-first prefetch-everything order achieves
// high overlap with ample SRAM but collapses when the buffer is
// small — the capacity problem AI-MT's eviction solves.
func TestScenarioFig9CapacityCollapse(t *testing.T) {
	small := scenarioConfig(t, 8)
	big := scenarioConfig(t, 4096)
	nets := func(cfg Config) []*Compiled {
		return []*Compiled{
			block("comp", cfg, 2, 60, 10, 1),
			block("mem", cfg, 50, 5, 10, 4),
		}
	}
	memHeavy := []bool{false, true}

	run := func(cfg Config) (fifo, cf Cycles) {
		f, err := Run(cfg, nets(cfg), sched.NewFIFO(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run(cfg, nets(cfg), sched.NewComputeFirst(memHeavy), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return f.Makespan, c.Makespan
	}
	fifoBig, cfBig := run(big)
	fifoSmall, cfSmall := run(small)
	spBig := float64(fifoBig) / float64(cfBig)
	spSmall := float64(fifoSmall) / float64(cfSmall)
	if spBig <= spSmall {
		t.Errorf("compute-first speedup with ample SRAM (%.3f) not above limited SRAM (%.3f)", spBig, spSmall)
	}
	if spBig < 1.15 {
		t.Errorf("compute-first with ample SRAM speedup = %.3f, want clear overlap", spBig)
	}
}

// Fig 13: under SRAM shortage with large compute blocks, the eviction
// mechanisms (priority, smallest-first recovery, split) must recover
// memory throughput versus merge-only scheduling.
func TestScenarioFig13Eviction(t *testing.T) {
	cfg := scenarioConfig(t, 8)
	nets := []*Compiled{
		block("bigcb", cfg, 2, 500, 8, 1), // large CBs fill the timeline
		block("crit", cfg, 60, 8, 24, 4),  // capacity-critical fetches
		block("small", cfg, 2, 30, 16, 1), // small CBs for recovery
	}
	mg, err := Run(cfg, nets, core.New(cfg, core.PrefetchMerge()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(cfg, nets, core.New(cfg, core.All()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Makespan > mg.Makespan {
		t.Errorf("eviction regressed: All %d vs Merge %d", all.Makespan, mg.Makespan)
	}
	if all.MemUtilization() < mg.MemUtilization()-0.01 {
		t.Errorf("eviction lowered memory utilization: %.3f vs %.3f",
			all.MemUtilization(), mg.MemUtilization())
	}
}
