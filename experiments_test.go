package aimt

import (
	"bytes"
	"strings"
	"testing"

	"aimt/internal/arch"
	"aimt/internal/metrics"
	"aimt/internal/power"
)

// These tests assert the qualitative shapes the paper's evaluation
// reports — who wins, by roughly what factor, where crossovers fall —
// on the reproduced experiments. Absolute cycle counts are not
// compared (our substrate is a simulator, not the authors' testbed).

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5Data(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("VGG16 rows = %d, want 16", len(rows))
	}
	// Early conv layers are compute-dominated; the FC tail is
	// memory-dominated (paper §III-A).
	if f := rows[0].ComputeFraction(); f < 0.9 {
		t.Errorf("first conv compute fraction = %.2f, want > 0.9", f)
	}
	for _, r := range rows[13:] {
		if f := r.ComputeFraction(); f > 0.5 {
			t.Errorf("%s compute fraction = %.2f, want < 0.5 (memory-bound FC)", r.Name, f)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7Data(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("mixes = %d, want 8", len(rows))
	}
	for _, r := range rows {
		// The paper's point: RR leaves severe resource idleness.
		if r.PEUtil > 0.95 && r.MemUtil > 0.95 {
			t.Errorf("%s: RR fully utilized (%f/%f) — no idleness to recover", r.Mix, r.PEUtil, r.MemUtil)
		}
		if r.PEUtil <= 0 || r.PEUtil > 1 || r.MemUtil <= 0 || r.MemUtil > 1 {
			t.Errorf("%s: utilization out of range %f/%f", r.Mix, r.PEUtil, r.MemUtil)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8Data(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	bySched := map[string][]float64{}
	for _, r := range rows {
		bySched[r.Scheduler] = append(bySched[r.Scheduler], r.Speedup)
		// No baseline deviates wildly from FIFO (paper Fig 8: all
		// within ~0.9-1.2 of the baseline).
		if r.Speedup < 0.85 || r.Speedup > 1.3 {
			t.Errorf("%s under %s: speedup %.3f outside the baseline band", r.Mix, r.Scheduler, r.Speedup)
		}
	}
	for _, s := range []string{"RR", "Greedy", "SJF"} {
		if len(bySched[s]) != 8 {
			t.Errorf("%s rows = %d, want 8", s, len(bySched[s]))
		}
	}
}

func TestFig10Shape(t *testing.T) {
	data, err := Fig10Data(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("networks = %d, want 5", len(data))
	}
	// §III-C: even single-batch execution can require over 10 MB.
	over := 0
	for name, d := range data {
		max := arch.Bytes(0)
		for _, x := range d {
			if x.Bytes > max {
				max = x.Bytes
			}
		}
		if max > 10*MiB {
			over++
		}
		if max <= 0 {
			t.Errorf("%s: zero prefetch demand", name)
		}
	}
	if over == 0 {
		t.Error("no network exceeds 10 MiB prefetch demand")
	}
}

func TestFig14Shape(t *testing.T) {
	rows, err := Fig14Data(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]map[string]float64{}
	for _, r := range rows {
		if sp[r.Scheduler] == nil {
			sp[r.Scheduler] = map[string]float64{}
		}
		sp[r.Scheduler][r.Mix] = r.Speedup
	}
	geo := func(s string) float64 {
		var vals []float64
		for _, v := range sp[s] {
			vals = append(vals, v)
		}
		return metrics.GeoMean(vals)
	}
	pf, mg, all := geo("AI-MT(PF)"), geo("AI-MT(PF+Merge)"), geo("AI-MT(All)")
	t.Logf("geomeans: PF=%.3f Merge=%.3f All=%.3f", pf, mg, all)

	// Ordering: each mechanism adds (or at worst preserves) speedup.
	if mg < pf-0.02 {
		t.Errorf("merging geomean %.3f below prefetching %.3f", mg, pf)
	}
	if all < mg-0.02 {
		t.Errorf("full design geomean %.3f below merging %.3f", all, mg)
	}
	// Magnitudes: prefetching alone is a modest win (paper: 1.13
	// geomean); the full design's best mix lands in the paper's band
	// (up to 1.57; ours peaks around 1.4).
	if pf < 1.02 {
		t.Errorf("prefetch geomean %.3f, want > 1.02", pf)
	}
	best := 0.0
	for _, v := range sp["AI-MT(All)"] {
		if v > best {
			best = v
		}
	}
	if best < 1.25 || best > 1.7 {
		t.Errorf("best AI-MT speedup %.3f outside the paper's band [1.25, 1.7]", best)
	}
	// GNMT co-locations gain more than VGG16 co-locations (paper
	// §V-B).
	var gnmt, vgg []float64
	for mix, v := range sp["AI-MT(All)"] {
		if strings.Contains(mix, "GNMT") {
			gnmt = append(gnmt, v)
		} else {
			vgg = append(vgg, v)
		}
	}
	if metrics.GeoMean(gnmt) <= metrics.GeoMean(vgg) {
		t.Errorf("GNMT mixes (%.3f) do not outgain VGG16 mixes (%.3f)",
			metrics.GeoMean(gnmt), metrics.GeoMean(vgg))
	}
}

func TestFig15Shape(t *testing.T) {
	pts, err := Fig15Data(PaperConfig(), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Eviction's advantage over merge-only grows with batch size
	// (paper §V-C): at batch >= 4 the full design must lead clearly on
	// the RN34+GNMT and RN50+GNMT mixes.
	gap := map[int][]float64{}
	for _, p := range pts {
		gap[p.Batch] = append(gap[p.Batch], p.AllSpeedup-p.MergeSpeedup)
	}
	mean := func(b int) float64 {
		var s float64
		for _, v := range gap[b] {
			s += v
		}
		return s / float64(len(gap[b]))
	}
	if mean(16) <= mean(1) {
		t.Errorf("eviction gap at batch 16 (%.3f) not above batch 1 (%.3f)", mean(16), mean(1))
	}
	for _, p := range pts {
		if p.AllSpeedup < 0.8 {
			t.Errorf("%s batch %d: AI-MT speedup %.3f collapsed", p.Mix, p.Batch, p.AllSpeedup)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	sizes := []Bytes{512 * KiB, 1 * MiB, 64 * MiB, 1 * GiB}
	pts, err := Fig16Data(PaperConfig(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[Bytes]map[string]float64{}
	for _, p := range pts {
		bySize[p.SRAM] = p.Speedups
	}
	// The headline (§V-D): AI-MT at 1 MB is within a few percent of
	// every policy's best speedup at any capacity, while the naive and
	// greedy prefetchers need orders of magnitude more SRAM.
	aimtAt1MB := bySize[1*MiB]["AI-MT"]
	naiveAt1GB := bySize[1*GiB]["ComputeFirst+PF"]
	if aimtAt1MB < naiveAt1GB*0.93 {
		t.Errorf("AI-MT at 1 MiB (%.3f) far below naive at 1 GiB (%.3f)", aimtAt1MB, naiveAt1GB)
	}
	if naive := bySize[1*MiB]["ComputeFirst+PF"]; naive > aimtAt1MB*0.85 {
		t.Errorf("naive at 1 MiB (%.3f) too close to AI-MT (%.3f) — capacity should bind it", naive, aimtAt1MB)
	}
	// Greedy+PF improves with capacity.
	if bySize[1*GiB]["Greedy+PF"] <= bySize[1*MiB]["Greedy+PF"] {
		t.Error("Greedy+PF does not improve with SRAM capacity")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2Rows()
	want := map[string][2]int{
		"ResNet34":  {1, 36},
		"ResNet50":  {1, 53},
		"VGG16":     {3, 13},
		"MobileNet": {1, 27},
		"GNMT":      {6, 0},
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected row %q", r.Name)
			continue
		}
		if r.FC != w[0] || r.Conv != w[1] {
			t.Errorf("%s: FC=%d CONV=%d, want %d/%d", r.Name, r.FC, r.Conv, w[0], w[1])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3Rows(PaperConfig(), 5)
	if f := power.OverheadFraction(rows); f > 0.005 {
		t.Errorf("AI-MT structure overhead %.4f, want < 0.5%% (paper: negligible)", f)
	}
}

// Every registered experiment runs and produces output.
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration is slow")
	}
	cfg := PaperConfig()
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.ID == "fig15" || e.ID == "fig16" {
			continue // long sweeps covered by their shape tests
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, cfg); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
	for _, id := range []string{"table1", "table2", "table3", "fig5", "fig7", "fig8", "fig10", "fig14", "fig15", "fig16"} {
		if !seen[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}
