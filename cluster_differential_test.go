package aimt

import (
	"reflect"
	"testing"
)

// TestClusterN1BitIdentical is the cluster model's correctness anchor:
// a one-chip cluster, under every routing policy and every standard
// serving scheduler, must produce exactly the schedule of the existing
// single-engine serve path — the same raw simulation result (makespan,
// per-request finish cycles, block counts, busy totals) and the same
// report, bit for bit. Any divergence means the dispatcher perturbed
// the stream it was supposed to pass through untouched.
func TestClusterN1BitIdentical(t *testing.T) {
	cfg := PaperConfig()
	classes := DefaultServingClasses()
	for _, process := range []ServeProcess{ServePoisson, ServeBursty} {
		stream, err := NewServeStream(cfg, classes, ServeStreamOptions{
			Requests: 150,
			Process:  process,
			Seed:     13,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range ServeStandardSchedulers() {
			// The single-engine reference: the exact call serve.Serve
			// makes.
			ref, err := Run(cfg, stream.Nets, spec.New(cfg, stream), RunOptions{Arrivals: stream.Arrivals})
			if err != nil {
				t.Fatalf("%s/%s reference: %v", process, spec.Name, err)
			}
			refRep, err := ServeRun(cfg, stream, spec.New(cfg, stream), RunOptions{})
			if err != nil {
				t.Fatalf("%s/%s reference report: %v", process, spec.Name, err)
			}
			for _, pspec := range ClusterPolicies() {
				cres, err := ClusterServe(cfg, stream, spec, pspec.New(), ClusterOptions{Chips: 1})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", process, spec.Name, pspec.Name, err)
				}
				got := cres.ChipResults[0]
				if got == nil {
					t.Fatalf("%s/%s/%s: one-chip cluster produced no chip result", process, spec.Name, pspec.Name)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s/%s/%s: chip-0 result differs from the single-engine run\n"+
						"makespan %d vs %d, MBs %d vs %d, CBs %d vs %d, splits %d vs %d",
						process, spec.Name, pspec.Name,
						got.Makespan, ref.Makespan, got.MBCount, ref.MBCount,
						got.CBCount, ref.CBCount, got.Splits, ref.Splits)
				}
				// The aggregate report must match the serve-path report
				// too; only the scheduler label may differ (the cluster
				// stamps the spec name, the engine the scheduler's own).
				agg := *cres.Agg
				agg.Scheduler = refRep.Scheduler
				if !reflect.DeepEqual(&agg, refRep) {
					t.Errorf("%s/%s/%s: aggregate report differs from the single-engine report\n"+
						"p50 %d vs %d, p99 %d vs %d, misses %d vs %d, throughput %v vs %v, PE util %v vs %v",
						process, spec.Name, pspec.Name,
						agg.P50, refRep.P50, agg.P99, refRep.P99,
						agg.Misses, refRep.Misses, agg.Throughput, refRep.Throughput,
						agg.PEUtil, refRep.PEUtil)
				}
				if cres.Imbalance != 0 {
					t.Errorf("%s/%s/%s: one-chip imbalance %v, want 0", process, spec.Name, pspec.Name, cres.Imbalance)
				}
			}
		}
	}
}

// TestClusterScaleThroughput pins the scaling claim behind the golden:
// at the clusterscale experiment's fixed offered load, every routing
// policy's aggregate throughput grows substantially from 1 chip to 8,
// and the 8-chip cluster stops missing deadlines that saturate a
// single chip.
func TestClusterScaleThroughput(t *testing.T) {
	pts, err := ClusterScaleData(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]map[int]ClusterScalePoint{}
	for _, p := range pts {
		if byPolicy[p.Policy] == nil {
			byPolicy[p.Policy] = map[int]ClusterScalePoint{}
		}
		byPolicy[p.Policy][p.Chips] = p
	}
	for policy, cells := range byPolicy {
		one, eight := cells[1], cells[8]
		if one.Agg == nil || eight.Agg == nil {
			t.Fatalf("%s: missing 1- or 8-chip cell", policy)
		}
		if eight.Agg.Throughput < 1.5*one.Agg.Throughput {
			t.Errorf("%s: 8-chip throughput %.3f req/Mcyc is not >= 1.5x the 1-chip %.3f",
				policy, eight.Agg.Throughput, one.Agg.Throughput)
		}
		if eight.Agg.MissRate >= one.Agg.MissRate && one.Agg.MissRate > 0 {
			t.Errorf("%s: 8-chip miss rate %.3f did not improve on 1-chip %.3f",
				policy, eight.Agg.MissRate, one.Agg.MissRate)
		}
		if eight.Agg.P99 > one.Agg.P99 {
			t.Errorf("%s: 8-chip p99 %d above 1-chip p99 %d", policy, eight.Agg.P99, one.Agg.P99)
		}
	}
}
