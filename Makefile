# Standard entrypoints. `make check` is the full verification gate:
# vet + build + race-enabled tests (the race run also proves the
# parallel sweep engine's determinism test clean).

GO ?= go

.PHONY: check build test race vet bench golden

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the golden paper-figure outputs under testdata/ after an
# intentional change to an experiment.
golden:
	$(GO) test -run TestGoldenExperiments -update .
