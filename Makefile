# Standard entrypoints. `make check` is the full verification gate:
# vet + build + race-enabled tests (the race run also proves the
# parallel sweep engine's determinism test clean).

GO ?= go

# Throughput-critical benchmarks that gate CI (see cmd/aimt-benchjson
# and testdata/bench_baseline.json). The EngineObs pair measures the
# observability layer: Disabled is the instrumented-but-off path that
# must stay free, Enabled the full emission cost.
BENCH_PATTERN ?= BenchmarkSimulatorThroughput|BenchmarkServeStream|BenchmarkCandidateScan|BenchmarkEngineObs

.PHONY: check build test race vet lint fuzz-short bench benchall benchcheck bench-compare profile golden

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis beyond vet. staticcheck and govulncheck are skipped
# with a hint when not installed, so the target degrades gracefully on
# machines without them; CI installs pinned versions and runs both.
lint: vet
	@gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$' || { echo "gofmt: files above need formatting"; exit 1; }
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Short fuzz smoke: 30s per target over the compiler, stream,
# admission and transformer fuzzers. `go test` accepts one -fuzz pattern per
# invocation, hence one run each.
FUZZTIME ?= 30s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzStream$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzAdmission$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzTransformerCompile$$' -fuzztime $(FUZZTIME) .

# Run the engine-throughput benchmarks and write $(BENCH_OUT)
# (blocks/sec, ns/op, allocs/op per benchmark). Bump BENCH_OUT per PR
# so the BENCH_*.json series accumulates as run history for /runs.
BENCH_OUT ?= BENCH_10.json
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . ./internal/sim | tee bench.txt
	$(GO) run ./cmd/aimt-benchjson -in bench.txt -out $(BENCH_OUT)

# Gate against the checked-in baseline; fails only on gross (2×)
# ns/op or allocs/op regressions so runner-to-runner variance doesn't
# flake CI. The allocs gate is what pins the allocation-free core.
benchcheck: bench
	$(GO) run ./cmd/aimt-benchjson -in bench.txt -compare testdata/bench_baseline.json

# Structured metric-by-metric diff of two recorded runs (BENCH json
# files or runstore directories, dir[#runID]); exits nonzero when any
# metric regressed beyond BENCH_NOISE in its unit's bad direction.
# Defaults diff a fresh bench run against the checked-in baseline.
BENCH_NOISE ?= 1.5
COMPARE_OLD ?= testdata/bench_baseline.json
COMPARE_NEW ?= $(BENCH_OUT)
bench-compare:
	@test -e $(COMPARE_NEW) || $(MAKE) bench BENCH_OUT=$(COMPARE_NEW)
	$(GO) run ./cmd/aimt-benchjson -diff -noise $(BENCH_NOISE) $(COMPARE_OLD) $(COMPARE_NEW)

# Every benchmark in the repo, including the paper-figure sweeps.
benchall:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Profile a production-scale serving sweep; inspect with
#   go tool pprof -top cpu.pprof
profile:
	$(GO) run ./cmd/aimt-serve -requests 20000 -loads 0.9 -sched AI-MT -parallel 1 \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "profiles written: cpu.pprof mem.pprof (go tool pprof -top cpu.pprof)"

# Regenerate the golden paper-figure outputs under testdata/ after an
# intentional change to an experiment.
golden:
	$(GO) test -run TestGoldenExperiments -update .
