package aimt

import (
	"math/rand"
	"reflect"
	"testing"
)

// snapshotSchedulers is the scheduler battery for the snapshot/restore
// property tests: every policy in the repo, including the stateful
// ones (queues, round-robin pointers, token ledgers, the AI-MT
// selected queue and credit state) and the speculative Lookahead
// wrapper, which itself snapshots the engine mid-run.
func snapshotSchedulers(cfg Config) []SchedulerSpec {
	specs := ServeStandardSchedulers()
	for _, extra := range []struct {
		name string
		mk   func() Scheduler
	}{
		{"SerialFIFO", NewSerialFIFO},
		{"RR", NewRR},
		{"Greedy", NewGreedy},
		{"Greedy+PF", NewGreedyPrefetch},
		{"SJF", NewSJF},
		{"AI-MT(PF)", func() Scheduler { return NewAIMT(cfg, PrefetchOnly()) }},
		{"AI-MT(PF+Merge)", func() Scheduler { return NewAIMT(cfg, PrefetchMerge()) }},
		{"Lookahead(AI-MT)", func() Scheduler {
			return NewLookahead(NewAIMT(cfg, AllMechanisms()), 2048)
		}},
		{"Lookahead(FIFO)", func() Scheduler { return NewLookahead(NewFIFO(), 1024) }},
	} {
		mk := extra.mk
		specs = append(specs, SchedulerSpec{
			Name: extra.name,
			New:  func(Config, *ServeStream) Scheduler { return mk() },
		})
	}
	return specs
}

// runToProbe builds a fresh engine, steps it to the probe cycle, and
// returns it. probe < 0 means "do not step at all" (snapshot the
// initial state).
func runToProbe(t *testing.T, cfg Config, stream *ServeStream, sch Scheduler, opts RunOptions, probe Cycles) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg, stream.Nets, sch, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if probe >= 0 {
		if _, err := eng.StepUntil(probe); err != nil {
			t.Fatalf("StepUntil(%d): %v", probe, err)
		}
	}
	return eng
}

// TestSnapshotReplayAllSchedulers is the restore-then-replay property
// battery: for every scheduler, running a serve stream uninterrupted,
// running it with a mid-run Snapshot taken and discarded, and running
// it with Restore rewinding to that snapshot and replaying, must all
// produce bit-identical results — with the machine-model invariant
// checker on, so the replay also revalidates every invariant family.
func TestSnapshotReplayAllSchedulers(t *testing.T) {
	cfg := PaperConfig()
	stream, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: 60,
		Process:  ServePoisson,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{
		Arrivals:        stream.Arrivals,
		ChainAfter:      stream.ChainAfter,
		CheckInvariants: true,
	}
	for _, spec := range snapshotSchedulers(cfg) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ref, err := Run(cfg, stream.Nets, spec.New(cfg, stream), opts)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			// Probe early, mid, late, and before the first event.
			probes := []Cycles{-1, ref.Makespan / 7, ref.Makespan / 2, ref.Makespan * 9 / 10}
			for _, probe := range probes {
				eng := runToProbe(t, cfg, stream, spec.New(cfg, stream), opts, probe)
				snap := eng.Snapshot(nil)

				// Finish the interrupted run: must match the reference.
				resA, err := eng.Run()
				if err != nil {
					t.Fatalf("probe %d: resume run: %v", probe, err)
				}
				if !reflect.DeepEqual(resA, ref) {
					t.Fatalf("probe %d: interrupted run diverged from reference:\n got %+v\nwant %+v", probe, resA, ref)
				}

				// Rewind the finished engine to the probe and replay:
				// must match again, bit for bit.
				if err := eng.Restore(snap); err != nil {
					t.Fatalf("probe %d: Restore: %v", probe, err)
				}
				if got, want := eng.Now(), max(probe, 0); got > want {
					t.Fatalf("probe %d: Now()=%d after restore, want <= %d", probe, got, want)
				}
				resB, err := eng.Run()
				if err != nil {
					t.Fatalf("probe %d: replay run: %v", probe, err)
				}
				if !reflect.DeepEqual(resB, ref) {
					t.Fatalf("probe %d: restored replay diverged from reference:\n got %+v\nwant %+v", probe, resB, ref)
				}
			}
		})
	}
}

// TestSnapshotRandomProbes snapshots at arbitrary, randomly chosen
// event counts — including repeated rewinds of the same snapshot and
// snapshot-storage reuse across probes — and checks every replay is
// bit-identical to the uninterrupted run. It exercises the most
// stateful schedulers, where a single missed field in Save/Restore
// would skew the replay.
func TestSnapshotRandomProbes(t *testing.T) {
	cfg := PaperConfig()
	stream, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: 40,
		Process:  ServeBursty,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{
		Arrivals:        stream.Arrivals,
		ChainAfter:      stream.ChainAfter,
		CheckInvariants: true,
	}
	for _, spec := range []struct {
		name string
		mk   func() Scheduler
	}{
		{"AI-MT", func() Scheduler { return NewAIMT(cfg, AllMechanisms()) }},
		{"PREMA", func() Scheduler { return NewPREMA(nil) }},
		{"Lookahead(AI-MT)", func() Scheduler {
			return NewLookahead(NewAIMT(cfg, AllMechanisms()), 1024)
		}},
	} {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			ref, err := Run(cfg, stream.Nets, spec.mk(), opts)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			rng := rand.New(rand.NewSource(42))
			var snap *EngineSnapshot // reused across probes
			for trial := 0; trial < 6; trial++ {
				probe := Cycles(rng.Int63n(int64(ref.Makespan) + 1))
				eng := runToProbe(t, cfg, stream, spec.mk(), opts, probe)
				snap = eng.Snapshot(snap)
				// Rewind the same snapshot several times; each replay
				// must land on the same result.
				for rewind := 0; rewind < 2; rewind++ {
					res, err := eng.Run()
					if err != nil {
						t.Fatalf("trial %d probe %d rewind %d: %v", trial, probe, rewind, err)
					}
					if !reflect.DeepEqual(res, ref) {
						t.Fatalf("trial %d probe %d rewind %d: replay diverged:\n got %+v\nwant %+v",
							trial, probe, rewind, res, ref)
					}
					if err := eng.Restore(snap); err != nil {
						t.Fatalf("trial %d probe %d rewind %d: Restore: %v", trial, probe, rewind, err)
					}
				}
			}
		})
	}
}

// TestSnapshotStaleRejected checks snapshot hygiene at the public
// API: a snapshot from one engine or one run cannot be restored into
// another. Cross-run restores would silently corrupt state, so they
// must fail loudly instead.
func TestSnapshotStaleRejected(t *testing.T) {
	cfg := PaperConfig()
	stream, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: 8,
		Process:  ServePoisson,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Arrivals: stream.Arrivals, ChainAfter: stream.ChainAfter}

	engA, err := NewEngine(cfg, stream.Nets, NewFIFO(), opts)
	if err != nil {
		t.Fatal(err)
	}
	engB, err := NewEngine(cfg, stream.Nets, NewFIFO(), opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := engA.Snapshot(nil)
	if err := engB.Restore(snap); err == nil {
		t.Fatal("Restore accepted a snapshot from a different engine")
	}
	if err := engB.Restore(nil); err == nil {
		t.Fatal("Restore accepted a nil snapshot")
	}
	if err := engA.Restore(snap); err != nil {
		t.Fatalf("Restore rejected its own snapshot: %v", err)
	}
}
