package aimt

import (
	"reflect"
	"testing"

	"aimt/internal/obs"
)

// lookaheadStream is a contended serving mix: the default classes mix
// compute-heavy CNN requests with memory-intensive RNN requests, so
// both block classes are regularly issuable at once — exactly the
// decisions Lookahead resolves by forward simulation.
func lookaheadStream(t *testing.T, requests int) (*ServeStream, RunOptions) {
	t.Helper()
	cfg := PaperConfig()
	stream, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: requests,
		Process:  ServePoisson,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return stream, RunOptions{
		Arrivals:   stream.Arrivals,
		ChainAfter: stream.ChainAfter,
	}
}

// TestLookaheadDeterministic runs the speculative scheduler twice on
// the same stream and demands bit-identical results: speculation
// (snapshot, fork, restore) must be a pure function of machine state,
// with no hidden run-to-run state.
func TestLookaheadDeterministic(t *testing.T) {
	cfg := PaperConfig()
	stream, opts := lookaheadStream(t, 50)
	opts.CheckInvariants = true
	mk := func() Scheduler { return NewLookahead(NewAIMT(cfg, AllMechanisms()), 2048) }
	a, err := Run(cfg, stream.Nets, mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, stream.Nets, mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lookahead runs diverged:\n got %+v\nwant %+v", b, a)
	}
}

// TestLookaheadSpeculationLeavesNoTrace runs Lookahead with full
// observability attached and checks the speculative branches are
// invisible: every recorded prefetch decision corresponds to a real
// committed fetch (ledger prefetch count == Result.MBCount), and the
// lookahead counter matches the ledger's lookahead entries, each of
// which carries its horizon and a strictly positive predicted delta.
func TestLookaheadSpeculationLeavesNoTrace(t *testing.T) {
	cfg := PaperConfig()
	stream, opts := lookaheadStream(t, 50)
	reg := NewObsRegistry()
	led := NewObsLedger(1 << 20)
	opts.Metrics = reg
	opts.Ledger = led
	const horizon = 2048
	res, err := Run(cfg, stream.Nets, NewLookahead(NewAIMT(cfg, AllMechanisms()), horizon), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := led.CountKind(obs.KindMBPrefetch), int64(res.MBCount); got != want {
		t.Errorf("ledger records %d prefetches, result has %d fetched blocks — speculation leaked", got, want)
	}
	commits := led.CountKind(obs.KindLookahead)
	if commits == 0 {
		t.Fatal("contended mix produced no committed lookahead decisions; the speculation path is dead")
	}
	if got := reg.Counter("aimt_sim_lookahead_total").Value(); got != commits {
		t.Errorf("aimt_sim_lookahead_total=%d, ledger has %d lookahead decisions", got, commits)
	}
	for _, d := range led.Filter(obs.KindLookahead) {
		if d.Horizon != horizon {
			t.Errorf("lookahead decision at cycle %d has horizon %d, want %d", d.Cycle, d.Horizon, horizon)
		}
		if d.Detail <= 0 {
			t.Errorf("lookahead decision at cycle %d has predicted delta %d, want > 0", d.Cycle, d.Detail)
		}
	}
}

// TestLookaheadNeverWorseOnContendedMixes asserts the lookahead
// experiment's headline property over its full grid: on every
// contended mix, batch and horizon, Lookahead(AI-MT)'s makespan is at
// most AI-MT's, and at least one cell is a strict win. The strictly-
// better-else-delegate commit rule is what makes the first half hold;
// the second half proves the speculation actually pays somewhere
// rather than always deferring.
func TestLookaheadNeverWorseOnContendedMixes(t *testing.T) {
	pts, err := LookaheadData(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("lookahead experiment produced no points")
	}
	wins := 0
	for _, p := range pts {
		if p.LookaheadMakespan > p.AIMTMakespan {
			t.Errorf("%s horizon %d: Lookahead makespan %d exceeds AI-MT's %d",
				p.Mix, p.Horizon, p.LookaheadMakespan, p.AIMTMakespan)
		}
		if p.LookaheadMakespan < p.AIMTMakespan {
			wins++
		}
	}
	if wins == 0 {
		t.Error("Lookahead never beat AI-MT on any contended configuration")
	}
}
