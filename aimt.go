// Package aimt is a reproduction of "A Multi-Neural Network
// Acceleration Architecture" (Baek, Kwon, Kim — ISCA 2020): a
// cycle-level simulator of a TPU-like multi-array systolic accelerator
// together with the AI-MT hardware sub-layer scheduler, the paper's
// baseline policies, its workload mixes, and drivers that regenerate
// every table and figure of the evaluation.
//
// The typical flow is: pick a hardware Config (PaperConfig reproduces
// Table I), build or load networks (the Table II zoo is exported
// here), Compile each into a sub-layer scheduling table, and Run a
// co-located set under a Scheduler:
//
//	cfg := aimt.PaperConfig()
//	rn50, _ := aimt.Compile(aimt.ResNet50(), cfg, 1)
//	gnmt, _ := aimt.Compile(aimt.GNMT(), cfg, 1)
//	res, _ := aimt.Run(cfg, []*aimt.Compiled{rn50, gnmt},
//	    aimt.NewAIMT(cfg, aimt.AllMechanisms()), aimt.RunOptions{})
//	fmt.Println(res.Makespan, res.PEUtilization())
//
// The experiment drivers (Fig5Data ... Table3Rows) regenerate the
// paper's evaluation; see EXPERIMENTS.md.
package aimt

import (
	"io"
	"net/http"

	"aimt/internal/arch"
	"aimt/internal/cluster"
	"aimt/internal/compiler"
	"aimt/internal/core"
	"aimt/internal/nn"
	"aimt/internal/obs"
	"aimt/internal/rtrace"
	"aimt/internal/runstore"
	"aimt/internal/sched"
	"aimt/internal/serve"
	"aimt/internal/sim"
	"aimt/internal/sweep"
	"aimt/internal/workload"
)

// Config describes the simulated hardware; see arch.Config.
type Config = arch.Config

// Cycles counts accelerator clock cycles.
type Cycles = arch.Cycles

// Bytes counts storage or traffic.
type Bytes = arch.Bytes

// Byte-quantity constants re-exported for configuration literals.
const (
	KiB = arch.KiB
	MiB = arch.MiB
	GiB = arch.GiB
)

// Network is a shape-level neural network model; see nn.Network.
type Network = nn.Network

// NetworkBuilder constructs custom networks; see nn.Builder.
type NetworkBuilder = nn.Builder

// Compiled is a network lowered to the accelerator's sub-layer
// scheduling table; see compiler.CompiledNetwork.
type Compiled = compiler.CompiledNetwork

// Scheduler decides block issue order; see sim.Scheduler.
type Scheduler = sim.Scheduler

// Result summarizes a simulation run; see sim.Result.
type Result = sim.Result

// RunOptions tunes a simulation run; see sim.Options.
type RunOptions = sim.Options

// Tracer receives occupancy intervals; see sim.Tracer.
type Tracer = sim.Tracer

// Mix is a compiled co-location scenario; see workload.Mix.
type Mix = workload.Mix

// MixSpec names a co-location scenario; see workload.Spec.
type MixSpec = workload.Spec

// PaperConfig returns the Table I hardware configuration.
func PaperConfig() Config {
	cfg := arch.PaperConfig()
	if err := cfg.Validate(); err != nil {
		panic(err) // the built-in preset is always valid
	}
	return cfg
}

// TPUv2Config returns the unscaled two-array 16-bit baseline the
// paper's hardware is derived from (§II-B).
func TPUv2Config() Config {
	cfg := arch.TPUv2Config()
	if err := cfg.Validate(); err != nil {
		panic(err) // the built-in preset is always valid
	}
	return cfg
}

// NewNetwork starts a custom network with the given input shape.
func NewNetwork(name string, inC, inH, inW int) *NetworkBuilder {
	return nn.NewBuilder(name, inC, inH, inW)
}

// Model zoo (Table II).
var (
	// ResNet34 returns the 36-CONV/1-FC residual network.
	ResNet34 = nn.ResNet34
	// ResNet50 returns the 53-CONV/1-FC bottleneck residual network.
	ResNet50 = nn.ResNet50
	// VGG16 returns the 13-CONV/3-FC network with large FC layers.
	VGG16 = nn.VGG16
	// MobileNet returns the 27-CONV/1-FC depthwise-separable network.
	MobileNet = nn.MobileNet
	// GNMT returns the 6-FC recurrent translation model abstraction.
	GNMT = nn.GNMT
	// NetworkByName resolves a zoo network from its short or long name.
	NetworkByName = nn.ByName
)

// TransformerConfig shapes a decoder-style transformer stack; see
// nn.TransformerConfig.
type TransformerConfig = nn.TransformerConfig

// Transformer zoo (extension): attention-based networks whose blocks
// lower to QKV/score/softmax/context/projection/MLP sub-layer chains.
var (
	// Transformer builds a transformer from an explicit config.
	Transformer = nn.Transformer
	// MustTransformer is Transformer, panicking on invalid configs.
	MustTransformer = nn.MustTransformer
	// BERTBase returns the 12-block encoder at the given sequence length.
	BERTBase = nn.BERTBase
	// GPT2Prefill returns the 12-block decoder processing a full prompt.
	GPT2Prefill = nn.GPT2Prefill
	// GPT2Decode returns the single-token autoregressive decode step
	// against a KV cache of the given context length.
	GPT2Decode = nn.GPT2Decode
)

// Compile lowers a network onto the hardware at the given batch size,
// producing its sub-layer scheduling table.
func Compile(net *Network, cfg Config, batch int) (*Compiled, error) {
	return compiler.Compile(net, cfg, batch)
}

// Run simulates the co-located execution of the compiled networks
// under the scheduler; all networks arrive at cycle zero.
func Run(cfg Config, nets []*Compiled, s Scheduler, opts RunOptions) (*Result, error) {
	return sim.Run(cfg, nets, s, opts)
}

// Engine is a simulation in progress that the caller can drive in
// bounded increments (StepUntil), fork with O(state) Snapshot/Restore
// and run to completion — the substrate of speculative lookahead
// scheduling and predictive cluster dispatch; see sim.Engine.
type Engine = sim.Engine

// EngineSnapshot is a point-in-time copy of an Engine's mutable
// machine state; see sim.Snapshot.
type EngineSnapshot = sim.Snapshot

// NewEngine returns an engine primed over the given workload, ready
// to be stepped, snapshotted and run; see sim.NewEngine.
func NewEngine(cfg Config, nets []*Compiled, s Scheduler, opts RunOptions) (*Engine, error) {
	return sim.NewEngine(cfg, nets, s, opts)
}

// ErrInvariant wraps every violation the opt-in machine-model
// invariant checker (RunOptions.CheckInvariants) reports; see
// sim.ErrInvariant.
var ErrInvariant = sim.ErrInvariant

// SweepJob is one simulation of a parallel sweep; see sweep.Job.
type SweepJob = sweep.Job

// SweepOutcome is one sweep job's result; see sweep.Outcome.
type SweepOutcome = sweep.Outcome

// SweepOptions tunes a sweep; see sweep.Options.
type SweepOptions = sweep.Options

// RunSweep fans independent simulations over a worker pool with
// deterministic, job-ordered aggregation; see sweep.Run. The
// experiment drivers (Fig7Data ... ServingData) run on it — see
// SetSweepParallelism for their worker cap.
func RunSweep(jobs []SweepJob, opts SweepOptions) []SweepOutcome { return sweep.Run(jobs, opts) }

// SweepError returns the first failed outcome's error, annotated with
// the job's labels; see sweep.FirstError.
func SweepError(outs []SweepOutcome) error { return sweep.FirstError(outs) }

// Baseline schedulers (§III-B, Fig 6).

// NewFIFO returns the network-serial baseline with double-buffered
// weight prefetching.
func NewFIFO() Scheduler { return sched.NewFIFO() }

// NewSerialFIFO returns the fully serialized FIFO variant (no
// prefetch overlap at all); its makespan is the analytic serialized
// bound the differential tests check against.
func NewSerialFIFO() Scheduler { return sched.NewSerialFIFO() }

// NewRR returns the round-robin baseline.
func NewRR() Scheduler { return sched.NewRR() }

// NewGreedy returns the size-matching greedy baseline.
func NewGreedy() Scheduler { return sched.NewGreedy() }

// NewGreedyPrefetch returns greedy with capacity-bounded (rather than
// double-buffered) prefetching, the Fig 16 variant.
func NewGreedyPrefetch() Scheduler { return sched.NewGreedyPrefetch() }

// NewSJF returns the shortest-job-first baseline.
func NewSJF() Scheduler { return sched.NewSJF() }

// NewComputeFirst returns the Fig 9a static order: compute-intensive
// networks first, capacity-bounded prefetching. memHeavy flags the
// memory-intensive network instances.
func NewComputeFirst(memHeavy []bool) Scheduler { return sched.NewComputeFirst(memHeavy) }

// NewPREMA returns the simplified PREMA reimplementation (Choi & Rhu,
// HPCA 2020) — token-based preemptive time-multiplexing at layer
// granularity, the related work the paper contrasts AI-MT with in
// §VII-C. priority is the per-network token rate (nil = equal).
func NewPREMA(priority []float64) Scheduler { return sched.NewPREMA(priority) }

// Mechanisms selects active AI-MT mechanisms; see core.Mechanisms.
type Mechanisms = core.Mechanisms

// PrefetchOnly enables only MB prefetching (Fig 14 first bar).
func PrefetchOnly() Mechanisms { return core.Prefetch() }

// PrefetchMerge enables MB prefetching and CB merging.
func PrefetchMerge() Mechanisms { return core.PrefetchMerge() }

// AllMechanisms enables prefetching, merging and early MB eviction
// with CB split — the full AI-MT design.
func AllMechanisms() Mechanisms { return core.All() }

// NewAIMT returns the AI-MT scheduler with the given mechanism set.
func NewAIMT(cfg Config, m Mechanisms) *core.AIMT { return core.New(cfg, m) }

// PaperMixes returns the eight co-location scenarios of Figs 7/8/14.
func PaperMixes() []MixSpec { return workload.PaperMixes() }

// BuildMix compiles and load-balances a co-location scenario at the
// given batch size.
func BuildMix(cfg Config, spec MixSpec, batch int) (*Mix, error) {
	return workload.Build(cfg, spec, workload.BuildOptions{Batch: batch})
}

// NewEDF returns the earliest-deadline-first serving scheduler:
// deadline-ordered block issue on both engines layered on
// capacity-bounded MB prefetching. deadlines[i] is network instance
// i's absolute deadline in cycles (nil/short = none).
func NewEDF(deadlines []Cycles) Scheduler { return sched.NewEDF(deadlines) }

// NewLookahead wraps a scheduler with speculative lookahead: at each
// contested memory-block decision (a capacity-critical and a
// compute-heavy candidate both issuable) it snapshots the engine,
// simulates both choices horizon cycles ahead under the inner policy,
// and commits whichever kept the machine busier; everywhere else it
// is exactly the inner scheduler. horizon <= 0 picks the default.
func NewLookahead(inner Scheduler, horizon Cycles) *sched.Lookahead {
	return sched.NewLookahead(inner, horizon)
}

// Serving subsystem (extension): open-loop streams, SLA tracking and
// load sweeps; see the internal/serve package.

// ServeClass is one request population of a serving mix; see
// serve.Class.
type ServeClass = serve.Class

// ServeStream is a generated open-loop request stream; see
// serve.Stream.
type ServeStream = serve.Stream

// ServeStreamOptions tunes stream generation; see serve.StreamOptions.
type ServeStreamOptions = serve.StreamOptions

// ServeReport summarizes one scheduler's run over a stream with
// streaming (bounded-memory) latency quantiles; see serve.Report.
type ServeReport = serve.Report

// ServeClassStats is one class's row in a serving report; see
// serve.ClassStats.
type ServeClassStats = serve.ClassStats

// ServeCurvePoint is one offered-load point of a load sweep; see
// serve.CurvePoint.
type ServeCurvePoint = serve.CurvePoint

// ServeCurveOptions tunes a load sweep; see serve.CurveOptions.
type ServeCurveOptions = serve.CurveOptions

// SchedulerSpec names a serving scheduler and builds fresh instances
// per run; see serve.SchedulerSpec.
type SchedulerSpec = serve.SchedulerSpec

// ServePhase tags a stream entry's request phase; see serve.Phase.
type ServePhase = serve.Phase

// Request phases for multi-phase (transformer) serving streams.
const (
	// ServeSinglePhase marks a classic one-shot request.
	ServeSinglePhase = serve.PhaseSingle
	// ServePrefillPhase marks a transformer request's prompt burst.
	ServePrefillPhase = serve.PhasePrefill
	// ServeDecodePhase marks one autoregressive decode iteration.
	ServeDecodePhase = serve.PhaseDecode
)

// ServePhaseStats is one phase's row in a serving report; see
// serve.PhaseStats.
type ServePhaseStats = serve.PhaseStats

// DefaultServingClasses returns the default mixed CNN/RNN serving mix.
func DefaultServingClasses() []ServeClass { return serve.DefaultClasses() }

// TransformerServingClasses returns the transformer/CNN serving mix:
// a chat class (prefill plus eight per-token-deadlined decode
// iterations) alongside the default CNN class.
func TransformerServingClasses() []ServeClass { return serve.TransformerClasses() }

// TransformerChatServeClass returns a small chat-style transformer
// class with the given decode iteration count and per-request batch
// size (concurrent sequences sharing each decode step's weight fetch).
func TransformerChatServeClass(decode, batch int) ServeClass {
	return serve.TransformerChatClass(decode, batch)
}

// NewServeStream generates a reproducible open-loop request stream
// with weighted class picks, Poisson or bursty arrivals, and
// per-request deadlines.
func NewServeStream(cfg Config, classes []ServeClass, opts ServeStreamOptions) (*ServeStream, error) {
	return serve.NewStream(cfg, classes, opts)
}

// ServeStandardSchedulers returns the serving comparison set: FIFO,
// PREMA, AI-MT and EDF.
func ServeStandardSchedulers() []SchedulerSpec { return serve.StandardSchedulers() }

// ServeRun simulates one stream under one scheduler and reports SLA
// attainment and tail latency.
func ServeRun(cfg Config, s *ServeStream, sch Scheduler, opts RunOptions) (*ServeReport, error) {
	return serve.Serve(cfg, s, sch, opts)
}

// ServeLoadCurve sweeps offered load from light traffic to saturation,
// running every scheduler on identical request sequences, and returns
// a latency-vs-throughput curve per scheduler.
func ServeLoadCurve(cfg Config, classes []ServeClass, schedulers []SchedulerSpec, opts ServeCurveOptions) ([]ServeCurvePoint, error) {
	return serve.LoadCurve(cfg, classes, schedulers, opts)
}

// ServePreemptiveAIMT returns the full AI-MT stack with the stream's
// class priorities driving cross-request preemption: higher-priority
// requests may halt a lower class's executing compute block via the
// CB-split path. With uniform priorities it is bit-identical to the
// plain AI-MT spec.
func ServePreemptiveAIMT() SchedulerSpec { return serve.PreemptiveAIMT() }

// ServeLookaheadAIMT returns the speculative lookahead scheduler over
// the full AI-MT stack as a serving spec; horizon <= 0 uses the
// default. Opt-in (it is not in ServeStandardSchedulers) because each
// contested decision simulates both branches a horizon ahead.
func ServeLookaheadAIMT(horizon Cycles) SchedulerSpec { return serve.LookaheadAIMT(horizon) }

// BuildServeReportShed folds a simulation result into a report where
// admission control shed some requests; see serve.BuildReportShed.
func BuildServeReportShed(s *ServeStream, res *Result, shed []bool) *ServeReport {
	return serve.BuildReportShed(s, res, shed)
}

// ServeProcess selects a stream's arrival process; see serve.Process.
type ServeProcess = serve.Process

// Arrival processes for ServeStreamOptions.Process.
const (
	ServePoisson = serve.Poisson
	ServeBursty  = serve.Bursty
)

// PrintServeCurve renders a load sweep as one table per offered-load
// point.
func PrintServeCurve(w io.Writer, points []ServeCurvePoint) error {
	return serve.PrintCurve(w, points)
}

// Cluster serving (extension): N independent chip engines behind a
// request dispatcher with pluggable routing policies; see the
// internal/cluster package.

// ClusterPolicy routes requests to chips; see cluster.Policy.
type ClusterPolicy = cluster.Policy

// ClusterPolicySpec names a routing policy and builds fresh instances;
// see cluster.Spec.
type ClusterPolicySpec = cluster.Spec

// ClusterOptions tunes one cluster serving run; see cluster.Options.
type ClusterOptions = cluster.Options

// ClusterResult is one policy's cluster serving outcome with per-chip
// and aggregate reports; see cluster.Result.
type ClusterResult = cluster.Result

// ClusterCurveOptions tunes a cluster load sweep; see
// cluster.CurveOptions.
type ClusterCurveOptions = cluster.CurveOptions

// ClusterCurvePoint is one offered-load point of a cluster sweep; see
// cluster.CurvePoint.
type ClusterCurvePoint = cluster.CurvePoint

// ClusterControl configures the cluster's overload control plane:
// SLO-aware admission shedding and elastic autoscaling with
// hysteresis; see cluster.Control. The zero value disables it and the
// serve path is bit-identical to the uncontrolled cluster.
type ClusterControl = cluster.Control

// ClusterPolicies returns every built-in routing policy: round-robin,
// least-work, class-affinity and deadline.
func ClusterPolicies() []ClusterPolicySpec { return cluster.Policies() }

// ClusterPolicyByName resolves a routing policy spec from its name.
func ClusterPolicyByName(name string) (ClusterPolicySpec, error) { return cluster.ByName(name) }

// ClusterDispatch routes every request of a stream to a chip under the
// policy and returns the request-to-chip assignment.
func ClusterDispatch(s *ServeStream, pol ClusterPolicy, chips int) ([]int, error) {
	return cluster.Dispatch(s, pol, chips)
}

// ClusterServe routes a stream across a simulated multi-chip cluster
// and runs every chip's sub-stream on its own engine, reporting
// per-chip and aggregate tail latency, SLA misses and load imbalance.
func ClusterServe(cfg Config, s *ServeStream, spec SchedulerSpec, pol ClusterPolicy, opts ClusterOptions) (*ClusterResult, error) {
	return cluster.Serve(cfg, s, spec, pol, opts)
}

// ClusterLoadCurve sweeps offered load against a cluster, routing the
// identical request sequence under every policy at each point.
func ClusterLoadCurve(cfg Config, classes []ServeClass, spec SchedulerSpec, policies []ClusterPolicySpec, opts ClusterCurveOptions) ([]ClusterCurvePoint, error) {
	return cluster.LoadCurve(cfg, classes, spec, policies, opts)
}

// PrintClusterCurve renders a cluster load sweep as one aggregate
// table per offered-load point.
func PrintClusterCurve(w io.Writer, points []ClusterCurvePoint) error {
	return cluster.PrintCurve(w, points)
}

// PrintClusterChips renders one cluster result's per-chip breakdown.
func PrintClusterChips(w io.Writer, r *ClusterResult) error {
	return cluster.PrintChips(w, r)
}

// Live observability (extension): an opt-in instrumentation registry
// and scheduler decision ledger threaded through the simulator,
// serving and cluster paths; see internal/obs.

// ObsRegistry is a concurrency-safe registry of counters, gauges and
// histograms with Prometheus-text and JSON exposition; see
// obs.Registry.
type ObsRegistry = obs.Registry

// ObsLedger is a bounded ring of scheduler decisions (MB prefetches,
// CB merges, early evictions, CB splits) with cycle, network, SRAM
// occupancy and stall attribution; see obs.Ledger.
type ObsLedger = obs.Ledger

// ObsDecision is one ledger entry; see obs.Decision.
type ObsDecision = obs.Decision

// NewObsRegistry returns an empty observability registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsLedger returns a decision ledger retaining the last cap
// entries (<= 0 means obs.DefaultLedgerCap). Lifetime per-kind and
// per-stall counts survive ring eviction.
func NewObsLedger(cap int) *ObsLedger { return obs.NewLedger(cap) }

// ObsHandler returns the admin HTTP mux serving /metrics (Prometheus
// text), /healthz and /debug/snapshot for the registry and ledger;
// either may be nil.
func ObsHandler(reg *ObsRegistry, led *ObsLedger) *http.ServeMux { return obs.Handler(reg, led) }

// Run-history store (extension): an append-only JSONL store of
// bench/serve/cluster/sweep runs with filterable labels and
// per-metric rows, plus cross-run diffing and the /runs analytics
// dashboard; see internal/runstore and obs.AttachRuns.

// StoredRun is one recorded run: provenance labels plus metric rows;
// see runstore.Run.
type StoredRun = runstore.Run

// RunMetric is one measured value of a run; see runstore.Metric.
type RunMetric = runstore.Metric

// RunStore is an append-only run log under one directory, tolerant of
// torn trailing writes; see runstore.Store.
type RunStore = runstore.Store

// RunQuery filters runs by source and labels; see runstore.Query.
type RunQuery = runstore.Query

// RunDiff is a metric-by-metric comparison of two runs against a
// noise threshold; see runstore.Diff.
type RunDiff = runstore.Diff

// OpenRunStore loads (creating if needed) the run store under dir.
func OpenRunStore(dir string) (*RunStore, error) { return runstore.Open(dir) }

// LoadBenchHistory ingests BENCH_*.json artifacts matching the glob
// as seed run history, ordered by trailing number (BENCH_3 before
// BENCH_8 before BENCH_10).
func LoadBenchHistory(glob string) ([]StoredRun, error) { return runstore.LoadBenchGlob(glob) }

// DiffRuns compares new against old: ratios beyond noise in a
// metric's bad direction count as regressions.
func DiffRuns(old, new StoredRun, noise float64) *RunDiff { return runstore.DiffRuns(old, new, noise) }

// CurrentCommit returns the working tree's short git commit, or "".
func CurrentCommit() string { return runstore.CurrentCommit() }

// ObsAttachRuns registers the /runs HTML dashboard and /runs.json on
// an admin mux; src supplies the run set per request and led (may be
// nil) feeds the decision-timeline chart. Each extra supplies one
// additional HTML section per request (e.g. the request-trace
// exemplar waterfall from RequestTraceStore.WaterfallHTML).
func ObsAttachRuns(mux *http.ServeMux, src func() []StoredRun, led *ObsLedger, extras ...func() string) {
	obs.AttachRuns(mux, src, led, extras...)
}

// Request tracing (extension): per-request span traces with
// cycle-exact latency attribution, tail exemplars and an attribution
// report; see internal/rtrace.

// RequestTraceStore retains bounded request-trace state: worst-N tail
// exemplars per class, a sampled ring of recent spans, and running
// attribution aggregates; see rtrace.Store.
type RequestTraceStore = rtrace.Store

// RequestTraceOptions bounds a RequestTraceStore; see rtrace.Options.
type RequestTraceOptions = rtrace.Options

// RequestSpan is one request's end-to-end attributed trace; its
// segments sum exactly to its latency; see rtrace.RequestSpan.
type RequestSpan = rtrace.RequestSpan

// RequestSegment is one attributed share of a request's latency; see
// rtrace.Segment.
type RequestSegment = rtrace.Segment

// RequestAttribution is one row of the latency-attribution report;
// see rtrace.Attribution.
type RequestAttribution = rtrace.Attribution

// RequestTraceCollector buckets engine occupancy events by network
// instance for span attribution; it implements Tracer, so attach it
// via RunOptions.Tracer; see rtrace.Collector.
type RequestTraceCollector = rtrace.Collector

// RequestSegmentKinds lists the attribution segment labels in
// canonical report order.
var RequestSegmentKinds = rtrace.SegmentKinds

// NewRequestTraceStore returns a bounded request-trace store.
func NewRequestTraceStore(opt RequestTraceOptions) *RequestTraceStore { return rtrace.NewStore(opt) }

// NewRequestTraceCollector sizes a collector for a stream of nets
// instances.
func NewRequestTraceCollector(nets int) *RequestTraceCollector { return rtrace.NewCollector(nets) }

// BuildRequestSpans attributes every request of a finished run: the
// collector must have been the run's Tracer over the stream's nets.
// run labels the spans (e.g. "AI-MT@0.80").
func BuildRequestSpans(s *ServeStream, res *Result, run string, col *RequestTraceCollector) []RequestSpan {
	return rtrace.Build(serve.TraceInput(s, res, run), col)
}

// AttachRequestTraces registers the /requests JSON endpoint (the
// attribution report, tail exemplars and sampled recent spans) on an
// admin mux.
func AttachRequestTraces(mux *http.ServeMux, st *RequestTraceStore) { rtrace.Attach(mux, st) }

// PrintRequestAttribution renders the latency-attribution report as
// text tables.
func PrintRequestAttribution(w io.Writer, rows []RequestAttribution) error {
	return rtrace.PrintAttribution(w, rows)
}

// ClusterTraceRun is the outcome of ClusterTraceRequests: result,
// span store and merged Perfetto tracks; see cluster.TraceRun.
type ClusterTraceRun = cluster.TraceRun

// ClusterTraceRequests runs a fixed-seed serving stream across a
// cluster with request tracing and engine tracing on, and assembles
// the merged Perfetto track set (chip occupancy overlaid with tail
// exemplar request tracks); see cluster.TraceRequests.
func ClusterTraceRequests(cfg Config, classes []ServeClass, spec SchedulerSpec, requests, chips int, load float64, seed int64) (*ClusterTraceRun, error) {
	return cluster.TraceRequests(cfg, classes, spec, requests, chips, load, seed)
}

// RecordServeCurve appends one run per (load point, scheduler) of a
// serving load sweep to the store; see serve.RecordCurve.
func RecordServeCurve(st *RunStore, mix, process, commit string, points []ServeCurvePoint) ([]StoredRun, error) {
	return serve.RecordCurve(st, mix, process, commit, points)
}

// RecordClusterCurve appends one run per (load point, routing policy)
// of a cluster sweep to the store; see cluster.RecordCurve.
func RecordClusterCurve(st *RunStore, mix, process, commit string, points []ClusterCurvePoint) ([]StoredRun, error) {
	return cluster.RecordCurve(st, mix, process, commit, points)
}

// RecordSweepOutcomes appends one run per successful sweep outcome to
// the store; see sweep.RecordOutcomes.
func RecordSweepOutcomes(st *RunStore, commit string, labels map[string]string, outs []SweepOutcome) ([]StoredRun, error) {
	return sweep.RecordOutcomes(st, commit, labels, outs)
}
