package aimt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenSkip lists experiments excluded from golden comparison: the
// two long sensitivity sweeps, whose shapes are asserted in
// experiments_test.go instead.
var goldenSkip = map[string]bool{"fig15": true, "fig16": true}

// TestGoldenExperiments pins every (fast) experiment's rendered output
// byte-for-byte, so the paper-figure tables can never drift silently.
// After an intentional change, regenerate with:
//
//	go test -run TestGoldenExperiments -update
func TestGoldenExperiments(t *testing.T) {
	cfg := PaperConfig()
	for _, e := range Experiments() {
		if goldenSkip[e.ID] {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", e.ID+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from %s (use -update if intentional):\n--- got\n%s--- want\n%s",
					e.ID, path, buf.String(), want)
			}
		})
	}
}

// TestGoldenFilesComplete fails when an experiment is added without a
// golden file (or a stale golden lingers for a removed one).
func TestGoldenFilesComplete(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	want := map[string]bool{}
	for _, e := range Experiments() {
		if !goldenSkip[e.ID] {
			want[e.ID+".golden"] = true
		}
	}
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".golden" {
			got[ent.Name()] = true
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("missing golden file %s (regenerate with -update)", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("stale golden file %s has no experiment", name)
		}
	}
}
