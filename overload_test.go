package aimt

import (
	"reflect"
	"testing"
)

// overloadStream builds the two-band overload mix at the given offered
// load in full-cluster capacities (the overloadcurve pattern), with an
// optional uniform-priority variant for differential runs.
func overloadStream(t *testing.T, cfg Config, classes []ServeClass, requests int, seed int64, load float64, chips int) *ServeStream {
	t.Helper()
	probe, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 1, MeanGap: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gap := Cycles(probe.MeanService / (load * float64(chips)))
	if gap < 1 {
		gap = 1
	}
	s, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: requests, MeanGap: gap, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOverloadDegradation pins the graceful-degradation claim behind
// the overloadcurve golden: as offered load climbs from comfortable to
// 5x saturation, the premium band's SLA miss rate stays flat (it is
// never shed and preempts batch work on chip) while the batch band is
// shed in monotonically growing volume.
func TestOverloadDegradation(t *testing.T) {
	pts, err := OverloadCurveData(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(OverloadLoads) {
		t.Fatalf("got %d points, want %d", len(pts), len(OverloadLoads))
	}
	prevShed := -1
	baseMiss := -1.0
	for _, p := range pts {
		var premium, batch *ServeClassStats
		for i := range p.Res.Agg.PerClass {
			cs := &p.Res.Agg.PerClass[i]
			switch cs.Class {
			case "cnn":
				premium = cs
			case "rnn":
				batch = cs
			}
		}
		if premium == nil || batch == nil {
			t.Fatalf("load %.1f: missing class rows: %+v", p.Load, p.Res.Agg.PerClass)
		}
		if premium.Shed != 0 {
			t.Errorf("load %.1f: premium band shed %d requests; admission must never shed the top band", p.Load, premium.Shed)
		}
		if baseMiss < 0 {
			baseMiss = premium.MissRate
		}
		// Flat through 5x: no worse than the light-load baseline plus a
		// hair of tolerance.
		if premium.MissRate > baseMiss+0.02 {
			t.Errorf("load %.1f: premium miss rate %.3f degraded from baseline %.3f", p.Load, premium.MissRate, baseMiss)
		}
		if batch.Shed < prevShed {
			t.Errorf("load %.1f: batch shed %d fell below the previous load point's %d", p.Load, batch.Shed, prevShed)
		}
		prevShed = batch.Shed
	}
	last := pts[len(pts)-1]
	if last.Res.ShedCount == 0 {
		t.Error("no sheds at 5x saturation — admission control did nothing")
	}
	if last.Res.ScaleUps == 0 {
		t.Error("no scale-ups at 5x saturation — autoscaler did nothing")
	}
}

// TestAdmissionProperties is the admission-control invariant battery:
// for every scheduler x routing policy x priority mix, the controlled
// cluster serve path conserves requests exactly — no admitted request
// is shed after admission, shed requests never appear in any chip's
// completion multiset, and admitted + shed == offered.
func TestAdmissionProperties(t *testing.T) {
	cfg := PaperConfig()
	uniform := DefaultServingClasses()
	tiered := DefaultServingClasses()
	tiered[0].Priority = 1
	mixes := []struct {
		name    string
		classes []ServeClass
	}{
		{"uniform", uniform},
		{"two-tier", tiered},
	}
	schedulers := []SchedulerSpec{ServeStandardSchedulers()[0], ServePreemptiveAIMT()}
	for _, mix := range mixes {
		s := overloadStream(t, cfg, mix.classes, 200, 17, 3.0, 2)
		minPrio := s.ClassPriority[0]
		for _, p := range s.ClassPriority[1:] {
			if p < minPrio {
				minPrio = p
			}
		}
		for _, spec := range schedulers {
			for _, pspec := range ClusterPolicies() {
				res, err := ClusterServe(cfg, s, spec, pspec.New(), ClusterOptions{
					Chips:   2,
					Control: ClusterControl{Admission: true, Autoscale: true},
				})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", mix.name, spec.Name, pspec.Name, err)
				}
				name := mix.name + "/" + spec.Name + "/" + pspec.Name
				offered := len(s.Nets)
				if len(res.Assignment) != offered || len(res.Shed) != offered {
					t.Fatalf("%s: assignment %d / shed %d, want %d", name, len(res.Assignment), len(res.Shed), offered)
				}
				perChip := make([]int, res.Chips)
				shedCount := 0
				for i, c := range res.Assignment {
					if res.Shed[i] != (c == -1) {
						t.Fatalf("%s: request %d shed=%v but chip %d", name, i, res.Shed[i], c)
					}
					if res.Shed[i] {
						shedCount++
						if p := s.ClassPriority[s.ClassOf[i]]; p != minPrio {
							t.Errorf("%s: request %d of priority %d shed; only the lowest band may shed", name, i, p)
						}
						continue
					}
					if c < 0 || c >= res.Chips {
						t.Fatalf("%s: request %d on invalid chip %d", name, i, c)
					}
					perChip[c]++
				}
				if shedCount != res.ShedCount {
					t.Errorf("%s: shed mask counts %d, result says %d", name, shedCount, res.ShedCount)
				}
				// Shed requests never reach a chip's completion multiset:
				// each chip completed exactly the requests routed to it.
				admitted := 0
				for c, cr := range res.ChipResults {
					n := 0
					if cr != nil {
						n = len(cr.NetFinish)
						for li, fin := range cr.NetFinish {
							if fin <= 0 {
								t.Errorf("%s: chip %d local request %d never finished", name, c, li)
							}
						}
					}
					if n != perChip[c] {
						t.Errorf("%s: chip %d completed %d requests, routed %d", name, c, n, perChip[c])
					}
					admitted += n
				}
				if admitted+res.ShedCount != offered {
					t.Errorf("%s: admitted %d + shed %d != offered %d", name, admitted, res.ShedCount, offered)
				}
				if got := int(res.Agg.Latency.Count()) + res.Agg.Shed; got != offered {
					t.Errorf("%s: report served %d + shed %d != offered %d", name, res.Agg.Latency.Count(), res.Agg.Shed, offered)
				}
				var classSum int
				for _, cs := range res.Agg.PerClass {
					classSum += cs.Requests
				}
				if classSum != offered {
					t.Errorf("%s: per-class requests sum to %d, want %d", name, classSum, offered)
				}
			}
		}
	}
}

// TestControlPlaneOffDifferential extends the PR 4 one-chip anchor to
// the control plane: with admission off, priorities uniform, and the
// autoscaler pinned at the full cluster, the controlled serve path
// must be bit-identical to the uncontrolled one — same raw chip
// results, same assignment, same aggregate report.
func TestControlPlaneOffDifferential(t *testing.T) {
	cfg := PaperConfig()
	classes := DefaultServingClasses() // uniform zero priorities
	stream := overloadStream(t, cfg, classes, 150, 13, 2.0, 2)

	// One chip, uniform priorities: the preemptive spec must collapse
	// to plain AI-MT exactly, matching the single-engine serve path
	// like the TestClusterN1BitIdentical anchor.
	ref, err := Run(cfg, stream.Nets, NewAIMT(cfg, AllMechanisms()), RunOptions{Arrivals: stream.Arrivals})
	if err != nil {
		t.Fatal(err)
	}
	for _, pspec := range ClusterPolicies() {
		cres, err := ClusterServe(cfg, stream, ServePreemptiveAIMT(), pspec.New(), ClusterOptions{Chips: 1})
		if err != nil {
			t.Fatalf("%s: %v", pspec.Name, err)
		}
		if !reflect.DeepEqual(cres.ChipResults[0], ref) {
			t.Errorf("%s: uniform-priority preemptive spec diverged from plain AI-MT on one chip", pspec.Name)
		}
	}

	// Full cluster: control plane present but neutralized (admission
	// off, autoscaler pinned at MinChips == Chips) must match the
	// control-plane-off run field for field.
	for _, pspec := range ClusterPolicies() {
		off, err := ClusterServe(cfg, stream, ServePreemptiveAIMT(), pspec.New(), ClusterOptions{Chips: 2})
		if err != nil {
			t.Fatalf("%s off: %v", pspec.Name, err)
		}
		pin, err := ClusterServe(cfg, stream, ServePreemptiveAIMT(), pspec.New(), ClusterOptions{
			Chips:   2,
			Control: ClusterControl{Autoscale: true, MinChips: 2},
		})
		if err != nil {
			t.Fatalf("%s pinned: %v", pspec.Name, err)
		}
		if !reflect.DeepEqual(pin.Assignment, off.Assignment) {
			t.Errorf("%s: pinned control plane routed differently", pspec.Name)
		}
		if !reflect.DeepEqual(pin.ChipResults, off.ChipResults) {
			t.Errorf("%s: pinned control plane changed a chip's schedule", pspec.Name)
		}
		if !reflect.DeepEqual(pin.Agg, off.Agg) {
			t.Errorf("%s: pinned control plane changed the aggregate report", pspec.Name)
		}
		if pin.ShedCount != 0 || pin.ScaleUps != 0 || pin.ScaleDowns != 0 {
			t.Errorf("%s: neutralized control plane acted: %d shed, %d ups, %d downs",
				pspec.Name, pin.ShedCount, pin.ScaleUps, pin.ScaleDowns)
		}
		if pin.ActiveChips != 2 {
			t.Errorf("%s: pinned active chips %d, want 2", pspec.Name, pin.ActiveChips)
		}
	}
}
