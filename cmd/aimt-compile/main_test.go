package main

import (
	"os"
	"path/filepath"
	"testing"

	"aimt/internal/isa"
)

func TestRunTable(t *testing.T) {
	if err := run("GNMT", 1, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAsm(t *testing.T) {
	if err := run("MN", 2, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunBinaryRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rn50.aimt")
	if err := run("RN50", 4, false, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prog, err := isa.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "ResNet50" || prog.Batch != 4 {
		t.Errorf("decoded header = %q/%d", prog.Name, prog.Batch)
	}
	if err := prog.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunRejects(t *testing.T) {
	if err := run("nope", 1, false, ""); err == nil {
		t.Error("unknown network accepted")
	}
	if err := run("RN50", 0, false, ""); err == nil {
		t.Error("zero batch accepted")
	}
	if err := run("RN50", 1, false, "/nonexistent-dir/x.aimt"); err == nil {
		t.Error("unwritable output accepted")
	}
}
