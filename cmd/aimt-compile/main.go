// Command aimt-compile lowers a network onto the accelerator and
// emits its artifacts: the sub-layer scheduling table (the metadata
// the AI-MT hardware scheduler consumes), the TPU-like CISC
// instruction stream, or the binary program file.
//
// Usage:
//
//	aimt-compile -net RN50                  # scheduling table
//	aimt-compile -net VGG16 -batch 8 -asm   # instruction listing
//	aimt-compile -net GNMT -o gnmt.aimt     # binary program
package main

import (
	"flag"
	"fmt"
	"os"

	"aimt"
	"aimt/internal/compiler"
	"aimt/internal/isa"
)

func main() {
	var (
		netName = flag.String("net", "RN50", "zoo network: RN34|RN50|VGG16|MN|GNMT")
		batch   = flag.Int("batch", 1, "batch size")
		asm     = flag.Bool("asm", false, "print the instruction listing instead of the table")
		out     = flag.String("o", "", "write the binary program to this file")
	)
	flag.Parse()

	if err := run(*netName, *batch, *asm, *out); err != nil {
		fmt.Fprintln(os.Stderr, "aimt-compile:", err)
		os.Exit(1)
	}
}

func run(netName string, batch int, asm bool, out string) error {
	cfg := aimt.PaperConfig()
	net, err := aimt.NetworkByName(netName)
	if err != nil {
		return err
	}
	cn, err := aimt.Compile(net, cfg, batch)
	if err != nil {
		return err
	}
	prog := isa.Lower(cn)
	if err := prog.Validate(); err != nil {
		return err
	}

	switch {
	case out != "":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prog.Encode(f); err != nil {
			return err
		}
		s := prog.Stats()
		fmt.Printf("wrote %s: %d instructions, %d weight bytes, est. %d mem / %d PE cycles\n",
			out, len(prog.Instructions), s.WeightBytes, s.MemCycles, s.PECycles)
		return nil
	case asm:
		return prog.Disassemble(os.Stdout)
	default:
		printTable(cn)
		return nil
	}
}

func printTable(cn *compiler.CompiledNetwork) {
	fmt.Printf("sub-layer scheduling table: %s, batch %d\n\n", cn.Name, cn.Batch)
	fmt.Printf("%3s  %-14s %-7s %6s %9s %9s %7s %12s  %s\n",
		"#", "layer", "type", "iters", "MB cyc", "CB cyc", "blocks", "weights", "deps")
	for i, l := range cn.Layers {
		fmt.Printf("%3d  %-14s %-7s %6d %9d %9d %7d %12d  %v\n",
			i, l.Name, l.Type, l.Iters, l.MBCycles, l.CBCycles, l.MBBlocks, l.TotalWeightBytes(), l.Deps)
	}
	s := cn.Stats()
	fmt.Printf("\ntotals: %d sub-layers, %d MB cycles, %d CB cycles, %d weight bytes\n",
		s.SubLayers, s.MBCycles, s.CBCycles, s.WeightBytes)
}
