// Command aimt runs one multi-network co-location scenario on the
// simulated accelerator and reports makespan, utilization and SRAM
// statistics.
//
// Usage:
//
//	aimt -mix "RN34,RN50/GNMT" -sched aimt-all -batch 4
//	aimt -mix "RN50/VGG16" -sched rr -sram 2MiB -v
//
// Scheduler names: fifo, rr, greedy, sjf, compute-first, aimt-pf,
// aimt-merge, aimt-all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aimt"
	"aimt/internal/isa"
	"aimt/internal/workload"
)

func main() {
	var (
		mixSpec  = flag.String("mix", "RN50/GNMT", "co-location spec: compute nets / memory nets, comma-separated zoo names")
		programs = flag.String("programs", "", "comma-separated .aimt binary programs (from aimt-compile) to run instead of -mix")
		sched    = flag.String("sched", "aimt-all", "scheduler: fifo|rr|greedy|sjf|compute-first|aimt-pf|aimt-merge|aimt-all")
		batch    = flag.Int("batch", 1, "batch size")
		iters    = flag.Int("iterations", 1, "mix repetitions (continuous-arrival scenario)")
		sram     = flag.String("sram", "", "weight SRAM size override, e.g. 512KiB, 2MiB")
		verbose  = flag.Bool("v", false, "print per-network completion times")
	)
	flag.Parse()

	if err := run(*mixSpec, *programs, *sched, *batch, *iters, *sram, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "aimt:", err)
		os.Exit(1)
	}
}

func run(mixSpec, programs, sched string, batch, iters int, sram string, verbose bool) error {
	cfg := aimt.PaperConfig()
	if sram != "" {
		sz, err := parseBytes(sram)
		if err != nil {
			return err
		}
		cfg.WeightSRAM = sz
		if err := cfg.Validate(); err != nil {
			return err
		}
	}

	var mix *workload.Mix
	if programs != "" {
		m, err := loadPrograms(cfg, programs)
		if err != nil {
			return err
		}
		mix = m
		batch = 0 // per-program batches apply
	} else {
		spec, err := workload.ParseSpec(mixSpec)
		if err != nil {
			return err
		}
		m, err := workload.Build(cfg, spec, workload.BuildOptions{Batch: batch, Iterations: iters})
		if err != nil {
			return err
		}
		mix = m
	}

	s, err := makeScheduler(sched, cfg, mix)
	if err != nil {
		return err
	}

	res, err := aimt.Run(cfg, mix.Nets, s, aimt.RunOptions{})
	if err != nil {
		return err
	}

	fmt.Printf("config:     %s\n", cfg)
	if batch > 0 {
		fmt.Printf("mix:        %s (%d network instances, batch %d)\n", mix.Name, len(mix.Nets), batch)
	} else {
		fmt.Printf("mix:        %s (%d network instances, per-program batches)\n", mix.Name, len(mix.Nets))
	}
	fmt.Printf("scheduler:  %s\n", res.Scheduler)
	fmt.Printf("makespan:   %d cycles (%.3f ms at %.1f GHz)\n",
		res.Makespan, float64(res.Makespan)/float64(cfg.FreqHz)*1e3, float64(cfg.FreqHz)/1e9)
	fmt.Printf("ideal:      >= %d cycles (%.2fx above bound)\n",
		aimt.IdealBound(mix.Nets), float64(res.Makespan)/float64(aimt.IdealBound(mix.Nets)))
	fmt.Printf("PE util:    %.1f%%   memory BW util: %.1f%%\n", 100*res.PEUtilization(), 100*res.MemUtilization())
	fmt.Printf("SRAM peak:  %d bytes of %d\n", res.SRAMPeakBytes(), cfg.WeightSRAM)
	fmt.Printf("blocks:     %d MBs fetched, %d CBs executed, %d splits\n", res.MBCount, res.CBCount, res.Splits)
	if verbose {
		for i, name := range res.NetNames {
			fmt.Printf("  net %d %-10s finished at %d\n", i, name, res.NetFinish[i])
		}
	}
	return nil
}

func makeScheduler(name string, cfg aimt.Config, mix *workload.Mix) (aimt.Scheduler, error) {
	switch name {
	case "fifo":
		return aimt.NewFIFO(), nil
	case "rr":
		return aimt.NewRR(), nil
	case "greedy":
		return aimt.NewGreedy(), nil
	case "sjf":
		return aimt.NewSJF(), nil
	case "compute-first":
		return aimt.NewComputeFirst(mix.MemHeavy), nil
	case "aimt-pf":
		return aimt.NewAIMT(cfg, aimt.PrefetchOnly()), nil
	case "aimt-merge":
		return aimt.NewAIMT(cfg, aimt.PrefetchMerge()), nil
	case "aimt-all", "aimt":
		return aimt.NewAIMT(cfg, aimt.AllMechanisms()), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

// loadPrograms builds a mix from binary .aimt program files produced
// by aimt-compile. Memory-intensity flags are derived from each
// reconstructed table.
func loadPrograms(cfg aimt.Config, list string) (*workload.Mix, error) {
	mix := &workload.Mix{Name: list, Replication: 1}
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		prog, err := isa.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		cn, err := prog.ToCompiledNetwork(cfg.BlockBytes())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		mix.Nets = append(mix.Nets, cn)
		mix.MemHeavy = append(mix.MemHeavy, cn.MemoryIntensive())
	}
	if len(mix.Nets) == 0 {
		return nil, fmt.Errorf("no programs in %q", list)
	}
	return mix, nil
}

// parseBytes parses sizes like "512KiB", "2MiB", "1GiB", "65536".
func parseBytes(s string) (aimt.Bytes, error) {
	mult := aimt.Bytes(1)
	up := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(up, "GIB"), strings.HasSuffix(up, "GB"):
		mult = aimt.GiB
	case strings.HasSuffix(up, "MIB"), strings.HasSuffix(up, "MB"):
		mult = aimt.MiB
	case strings.HasSuffix(up, "KIB"), strings.HasSuffix(up, "KB"):
		mult = aimt.KiB
	}
	num := strings.TrimRight(up, "GIMKB")
	n, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return aimt.Bytes(n * float64(mult)), nil
}
