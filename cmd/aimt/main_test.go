package main

import (
	"os"
	"strings"

	"testing"

	"aimt"
	"aimt/internal/isa"
	"aimt/internal/workload"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want aimt.Bytes
	}{
		{"512KiB", 512 * aimt.KiB},
		{"512KB", 512 * aimt.KiB},
		{"2MiB", 2 * aimt.MiB},
		{"1GiB", 1 * aimt.GiB},
		{"1.5MiB", aimt.MiB + 512*aimt.KiB},
		{"65536", 65536},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := parseBytes("lots"); err == nil {
		t.Error("parseBytes(lots) succeeded")
	}
}

func TestMakeScheduler(t *testing.T) {
	cfg := aimt.PaperConfig()
	mix := &workload.Mix{MemHeavy: []bool{false, true}}
	for _, name := range []string{"fifo", "rr", "greedy", "sjf", "compute-first", "aimt-pf", "aimt-merge", "aimt-all", "aimt"} {
		s, err := makeScheduler(name, cfg, mix)
		if err != nil {
			t.Errorf("makeScheduler(%q): %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%q produced unnamed scheduler", name)
		}
	}
	if _, err := makeScheduler("bogus", cfg, mix); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

// TestRunEndToEnd drives the CLI's core path on a small scenario.
func TestRunEndToEnd(t *testing.T) {
	if err := run("MN/GNMT", "", "aimt-all", 1, 1, "2MiB", true); err != nil {
		t.Fatal(err)
	}
	if err := run("bad spec", "", "fifo", 1, 1, "", false); err == nil {
		t.Error("bad mix spec accepted")
	}
	if err := run("MN/GNMT", "", "fifo", 1, 1, "nonsense-size", false); err == nil {
		t.Error("bad SRAM size accepted")
	}
}

// TestRunFromPrograms exercises the binary-program path end to end:
// compile two networks to .aimt files, then co-locate them from disk.
func TestRunFromPrograms(t *testing.T) {
	cfg := aimt.PaperConfig()
	dir := t.TempDir()
	var paths []string
	for _, name := range []string{"MN", "GNMT"} {
		net, err := aimt.NetworkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cn, err := aimt.Compile(net, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name + ".aimt"
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := isa.Lower(cn).Encode(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, path)
	}
	if err := run("", strings.Join(paths, ","), "aimt-all", 1, 1, "", true); err != nil {
		t.Fatal(err)
	}
	if err := run("", dir+"/missing.aimt", "fifo", 1, 1, "", false); err == nil {
		t.Error("missing program accepted")
	}
	if err := run("", " , ", "fifo", 1, 1, "", false); err == nil {
		t.Error("empty program list accepted")
	}
}
