// Command aimt-benchjson converts `go test -bench` output into a
// machine-readable JSON report, gates CI on throughput regressions,
// diffs any two recorded runs, and appends bench results to a run
// store.
//
//	go test -run '^$' -bench Throughput -benchmem ./... | aimt-benchjson -out BENCH_9.json
//	aimt-benchjson -in bench.txt -compare testdata/bench_baseline.json -threshold 2
//	aimt-benchjson -diff testdata/bench_baseline.json BENCH_9.json -noise 1.5
//	aimt-benchjson -diff runs/#run-000003 runs/          # store runs (dir[#id], default latest)
//	aimt-benchjson -in bench.txt -runstore runs/         # append to run history
//
// In -compare mode the exit status is non-zero if any baseline
// benchmark is missing from the input or its ns/op (or allocs/op)
// exceeds threshold × baseline — a deliberately generous gate that
// only trips on gross regressions (CI runners vary; small drift is
// expected).
//
// In -diff mode both arguments name a run: a BENCH_*.json report
// file, or a run-store directory with an optional #runID fragment
// (latest run when omitted). Every shared metric is compared in its
// unit's bad direction against the -noise threshold, the table is
// printed, and the exit status is non-zero when anything regressed
// beyond it — `make bench-compare` is this mode against the
// checked-in baseline.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"aimt/internal/runstore"
)

var procSuffix = regexp.MustCompile(`-\d+$`)

// parse converts `go test -bench` text into a report. BlocksPerSec is
// derived from the blocks/op metric the simulator benchmarks report,
// giving the headline engine-throughput number directly.
func parse(r io.Reader) (*runstore.BenchReport, error) {
	rep := &runstore.BenchReport{}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := runstore.BenchBenchmark{
			Pkg:        pkg,
			Name:       procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if blocks, ok := b.Metrics["blocks/op"]; ok && b.NsPerOp > 0 {
			b.BlocksPerSec = blocks / (b.NsPerOp * 1e-9)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// compare is the coarse CI gate (see -compare): missing benchmarks or
// gross ns/op / allocs/op regressions fail.
func compare(cur, base *runstore.BenchReport, threshold float64) error {
	got := map[string]runstore.BenchBenchmark{}
	for _, b := range cur.Benchmarks {
		got[b.Key()] = b
	}
	var failures []string
	for _, want := range base.Benchmarks {
		b, ok := got[want.Key()]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from benchmark run", want.Key()))
			continue
		}
		if want.NsPerOp > 0 && b.NsPerOp > threshold*want.NsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds %.1f× baseline %.0f ns/op",
				want.Key(), b.NsPerOp, threshold, want.NsPerOp))
			continue
		}
		// The allocation gate protects the allocation-free engine core:
		// a change that reintroduces per-event allocations shows up as
		// an order-of-magnitude allocs/op jump, far past the 2× limit.
		if want.AllocsPerOp > 0 && b.AllocsPerOp > threshold*want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds %.1f× baseline %.0f allocs/op",
				want.Key(), b.AllocsPerOp, threshold, want.AllocsPerOp))
			continue
		}
		fmt.Printf("ok  %-50s %12.0f ns/op %8.0f allocs/op (baseline %.0f / %.0f, limit %.1f×)\n",
			want.Key(), b.NsPerOp, b.AllocsPerOp, want.NsPerOp, want.AllocsPerOp, threshold)
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// loadRunArg resolves one -diff argument: a run-store directory
// (optionally "dir#runID", latest run by default) or a BENCH-style
// JSON report file.
func loadRunArg(arg string) (runstore.Run, error) {
	path, id, _ := strings.Cut(arg, "#")
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		st, err := runstore.Open(path)
		if err != nil {
			return runstore.Run{}, err
		}
		if id != "" {
			r, ok := st.Get(id)
			if !ok {
				return runstore.Run{}, fmt.Errorf("%s: no run %q", path, id)
			}
			return r, nil
		}
		runs := st.Runs()
		if len(runs) == 0 {
			return runstore.Run{}, fmt.Errorf("%s: empty run store", path)
		}
		return runs[len(runs)-1], nil
	}
	if id != "" {
		return runstore.Run{}, fmt.Errorf("%s: #runID selection needs a run-store directory", arg)
	}
	rep, err := runstore.LoadBenchReport(path)
	if err != nil {
		return runstore.Run{}, err
	}
	return rep.Run(strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))), nil
}

// diff renders the metric-by-metric comparison and fails on any
// regression beyond the noise threshold.
func diff(oldArg, newArg string, noise float64) error {
	old, err := loadRunArg(oldArg)
	if err != nil {
		return err
	}
	new, err := loadRunArg(newArg)
	if err != nil {
		return err
	}
	d := runstore.DiffRuns(old, new, noise)
	if err := d.WriteText(os.Stdout); err != nil {
		return err
	}
	if d.Regressed() {
		return fmt.Errorf("%d metric(s) regressed beyond %.2fx noise", len(d.Regressions()), noise)
	}
	return nil
}

func main() {
	var (
		in        = flag.String("in", "", "bench output file (empty = stdin)")
		out       = flag.String("out", "", "write parsed JSON report to this file (empty = stdout unless -compare)")
		baseline  = flag.String("compare", "", "baseline JSON report to gate against")
		threshold = flag.Float64("threshold", 2.0, "fail -compare when ns/op exceeds threshold × baseline")
		diffMode  = flag.Bool("diff", false, "diff two runs (args: old new; BENCH json files or storeDir[#runID]) and fail on regressions beyond -noise")
		noise     = flag.Float64("noise", 1.5, "with -diff, multiplicative drift tolerated before a change counts as a regression")
		storeDir  = flag.String("runstore", "", "append the parsed bench report to the run store under this directory")
		runID     = flag.String("id", "", "with -runstore, record under this run ID (empty = assigned)")
	)
	flag.Parse()

	var err error
	if *diffMode {
		if flag.NArg() != 2 {
			err = errors.New("-diff needs exactly two arguments: old new")
		} else {
			err = diff(flag.Arg(0), flag.Arg(1), *noise)
		}
	} else {
		err = run(*in, *out, *baseline, *storeDir, *runID, *threshold)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimt-benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out, baseline, storeDir, runID string, threshold float64) error {
	src := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		return err
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	switch {
	case out != "":
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Benchmarks))
	case baseline == "" && storeDir == "":
		os.Stdout.Write(buf)
	}

	if storeDir != "" {
		st, err := runstore.Open(storeDir)
		if err != nil {
			return err
		}
		r := rep.Run(runID)
		r.Commit = runstore.CurrentCommit()
		stored, err := st.Append(r)
		if err != nil {
			return err
		}
		fmt.Printf("runstore: appended %s (%d metrics) to %s\n", stored.ID, len(stored.Metrics), storeDir)
	}

	if baseline != "" {
		base, err := runstore.LoadBenchReport(baseline)
		if err != nil {
			return err
		}
		return compare(rep, base, threshold)
	}
	return nil
}
