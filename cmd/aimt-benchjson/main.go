// Command aimt-benchjson converts `go test -bench` output into a
// machine-readable JSON report and gates CI on throughput regressions.
//
//	go test -run '^$' -bench Throughput -benchmem ./... | aimt-benchjson -out BENCH_3.json
//	aimt-benchjson -in bench.txt -compare testdata/bench_baseline.json -threshold 2
//
// In -compare mode the exit status is non-zero if any baseline
// benchmark is missing from the input or its ns/op exceeds
// threshold × baseline — a deliberately generous gate that only trips
// on gross regressions (CI runners vary; small drift is expected).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. BlocksPerSec is derived from
// the blocks/op metric the simulator benchmarks report, giving the
// headline engine-throughput number directly.
type Benchmark struct {
	Pkg          string             `json:"pkg"`
	Name         string             `json:"name"`
	Iterations   int64              `json:"iterations"`
	NsPerOp      float64            `json:"ns_per_op"`
	BytesPerOp   float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp  float64            `json:"allocs_per_op,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	BlocksPerSec float64            `json:"blocks_per_sec,omitempty"`
}

// Report is the BENCH_3.json schema (also the baseline schema).
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func (b Benchmark) key() string { return b.Pkg + "." + b.Name }

var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Pkg:        pkg,
			Name:       procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if blocks, ok := b.Metrics["blocks/op"]; ok && b.NsPerOp > 0 {
			b.BlocksPerSec = blocks / (b.NsPerOp * 1e-9)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

func compare(cur, base *Report, threshold float64) error {
	got := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		got[b.key()] = b
	}
	var failures []string
	for _, want := range base.Benchmarks {
		b, ok := got[want.key()]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from benchmark run", want.key()))
			continue
		}
		if want.NsPerOp > 0 && b.NsPerOp > threshold*want.NsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds %.1f× baseline %.0f ns/op",
				want.key(), b.NsPerOp, threshold, want.NsPerOp))
			continue
		}
		// The allocation gate protects the allocation-free engine core:
		// a change that reintroduces per-event allocations shows up as
		// an order-of-magnitude allocs/op jump, far past the 2× limit.
		if want.AllocsPerOp > 0 && b.AllocsPerOp > threshold*want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds %.1f× baseline %.0f allocs/op",
				want.key(), b.AllocsPerOp, threshold, want.AllocsPerOp))
			continue
		}
		fmt.Printf("ok  %-50s %12.0f ns/op %8.0f allocs/op (baseline %.0f / %.0f, limit %.1f×)\n",
			want.key(), b.NsPerOp, b.AllocsPerOp, want.NsPerOp, want.AllocsPerOp, threshold)
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	var (
		in        = flag.String("in", "", "bench output file (empty = stdin)")
		out       = flag.String("out", "", "write parsed JSON report to this file (empty = stdout unless -compare)")
		baseline  = flag.String("compare", "", "baseline JSON report to gate against")
		threshold = flag.Float64("threshold", 2.0, "fail when ns/op exceeds threshold × baseline")
	)
	flag.Parse()

	if err := run(*in, *out, *baseline, *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "aimt-benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out, baseline string, threshold float64) error {
	src := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		return err
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	switch {
	case out != "":
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Benchmarks))
	case baseline == "":
		os.Stdout.Write(buf)
	}

	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("%s: %w", baseline, err)
		}
		return compare(rep, &base, threshold)
	}
	return nil
}
