package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aimt/internal/runstore"
)

const benchText = `goos: linux
goarch: amd64
pkg: aimt
cpu: Test CPU
BenchmarkSimulatorThroughput-8   	      10	 3000000 ns/op	        12 blocks/op	      50 allocs/op
BenchmarkServeStream-8           	       5	28000000 ns/op	      50 allocs/op
`

func writeBench(t *testing.T, dir, name string, nsScale float64) string {
	t.Helper()
	rep, err := parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Benchmarks {
		rep.Benchmarks[i].NsPerOp *= nsScale
	}
	path := filepath.Join(dir, name)
	if err := saveReport(path, rep); err != nil {
		t.Fatal(err)
	}
	return path
}

func saveReport(path string, rep *runstore.BenchReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "SimulatorThroughput" || b.NsPerOp != 3e6 || b.AllocsPerOp != 50 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	if b.BlocksPerSec == 0 {
		t.Error("blocks/op metric did not yield BlocksPerSec")
	}
}

// TestDiffSelfIsClean is the bench-compare contract's zero side: a
// run diffed against itself must exit cleanly.
func TestDiffSelfIsClean(t *testing.T) {
	dir := t.TempDir()
	p := writeBench(t, dir, "a.json", 1)
	if err := diff(p, p, 1.5); err != nil {
		t.Fatalf("self-diff failed: %v", err)
	}
}

// TestDiffFlagsRegression is the nonzero side: a 2× ns/op inflation
// must fail at the default 1.5× noise threshold and pass at 2.5×.
func TestDiffFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.json", 1)
	slow := writeBench(t, dir, "slow.json", 2)
	err := diff(old, slow, 1.5)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("2x regression not flagged: err=%v", err)
	}
	if err := diff(old, slow, 2.5); err != nil {
		t.Fatalf("2x drift failed under 2.5x noise: %v", err)
	}
}

// TestLoadRunArgStore exercises the dir[#runID] form against a real
// store: default = latest run, fragment = that run, bad ID = error.
func TestLoadRunArgStore(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	first, err := st.Append(rep.Run(""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rep.Run("")); err != nil {
		t.Fatal(err)
	}

	latest, err := loadRunArg(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest.ID == first.ID {
		t.Errorf("bare dir resolved to %s, want the later run", latest.ID)
	}
	got, err := loadRunArg(dir + "#" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != first.ID {
		t.Errorf("fragment resolved to %s, want %s", got.ID, first.ID)
	}
	if _, err := loadRunArg(dir + "#run-999999"); err == nil {
		t.Error("missing run ID did not error")
	}
}
