// Command aimt-trace runs one co-location scenario and emits its
// execution timeline: an ASCII Gantt chart on stdout (like the
// paper's Figs 6/12/13) and, optionally, Chrome trace_event JSON for
// chrome://tracing or Perfetto.
//
// Usage:
//
//	aimt-trace -mix "RN50/GNMT" -sched aimt-all
//	aimt-trace -mix "RN34/GNMT" -sched rr -json trace.json -width 120
//
// With -requests N the command switches to request-trace mode: a
// fixed-seed serving stream of N requests runs across a -chips
// cluster at per-chip offered -load, with request tracing and engine
// tracing both on. Stdout gets the per-class latency-attribution
// report and the tail exemplars decomposed into named segments; -json
// writes the merged Perfetto/Chrome export, overlaying one track per
// tail exemplar onto the per-chip engine occupancy tracks, so a slow
// request can be eyeballed against what the chips were doing:
//
//	aimt-trace -requests 400 -chips 2 -load 2 -json merged.json
//	aimt-trace -requests 400 -transformer -seed 11
package main

import (
	"flag"
	"fmt"
	"os"

	"aimt"
	"aimt/internal/trace"
	"aimt/internal/workload"
)

func main() {
	var (
		mixSpec     = flag.String("mix", "RN50/GNMT", "co-location spec: compute nets / memory nets")
		sched       = flag.String("sched", "aimt-all", "scheduler: fifo|rr|greedy|sjf|aimt-pf|aimt-merge|aimt-all")
		batch       = flag.Int("batch", 1, "batch size")
		width       = flag.Int("width", 100, "Gantt chart width in columns")
		jsonOut     = flag.String("json", "", "write Chrome trace_event JSON to this file")
		util        = flag.Int("util", 0, "also print a utilization time series with this many windows")
		requests    = flag.Int("requests", 0, "request-trace mode: serve this many requests with per-request attribution (0 = classic mix trace)")
		chips       = flag.Int("chips", 2, "with -requests, cluster size")
		load        = flag.Float64("load", 2.0, "with -requests, per-chip offered load")
		seed        = flag.Int64("seed", 7, "with -requests, stream seed")
		transformer = flag.Bool("transformer", false, "with -requests, serve the transformer/CNN mix instead of CNN/RNN")
	)
	flag.Parse()

	var err error
	if *requests > 0 {
		err = runRequests(*requests, *chips, *load, *seed, *transformer, *jsonOut)
	} else {
		err = run(*mixSpec, *sched, *batch, *width, *jsonOut, *util)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimt-trace:", err)
		os.Exit(1)
	}
}

// runRequests is request-trace mode: one fixed-seed serving run with
// request + engine tracing on, attribution on stdout, and the merged
// Perfetto export (engine occupancy + tail-exemplar tracks) on -json.
func runRequests(requests, chips int, load float64, seed int64, transformer bool, jsonOut string) error {
	cfg := aimt.PaperConfig()
	classes := aimt.DefaultServingClasses()
	mixName := "CNN/RNN"
	if transformer {
		classes = aimt.TransformerServingClasses()
		mixName = "transformer/CNN"
	}
	var spec aimt.SchedulerSpec
	for _, s := range aimt.ServeStandardSchedulers() {
		if s.Name == "AI-MT" {
			spec = s
		}
	}

	tr, err := aimt.ClusterTraceRequests(cfg, classes, spec, requests, chips, load, seed)
	if err != nil {
		return err
	}

	total, shed, _ := tr.Store.Totals()
	fmt.Printf("request trace: %s mix, %d requests across %d chips at per-chip load %.2f (seed %d)\n",
		mixName, requests, chips, load, seed)
	fmt.Printf("  served %d, shed %d, makespan %d cycles\n\n", total, shed, int64(tr.Result.Agg.Makespan))

	if err := aimt.PrintRequestAttribution(os.Stdout, tr.Store.Attribution()); err != nil {
		return err
	}

	fmt.Println("\ntail exemplars (segments sum exactly to latency):")
	for _, sp := range tr.Store.Exemplars() {
		flags := ""
		if sp.Missed {
			flags = "  MISSED"
		}
		fmt.Printf("  req %-4d %-8s chip %d  latency %d cyc%s\n", sp.Req, sp.Class, sp.Chip, int64(sp.Latency), flags)
		for _, s := range sp.Totals {
			fmt.Printf("    %-14s %12d cyc\n", s.Kind, int64(s.Cycles))
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTracks(f, tr.Tracks); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d merged tracks to %s\n", len(tr.Tracks), jsonOut)
	}
	return nil
}

func run(mixSpec, sched string, batch, width int, jsonOut string, utilWindows int) error {
	cfg := aimt.PaperConfig()
	spec, err := workload.ParseSpec(mixSpec)
	if err != nil {
		return err
	}
	mix, err := workload.Build(cfg, spec, workload.BuildOptions{Batch: batch})
	if err != nil {
		return err
	}

	var s aimt.Scheduler
	switch sched {
	case "fifo":
		s = aimt.NewFIFO()
	case "rr":
		s = aimt.NewRR()
	case "greedy":
		s = aimt.NewGreedy()
	case "sjf":
		s = aimt.NewSJF()
	case "aimt-pf":
		s = aimt.NewAIMT(cfg, aimt.PrefetchOnly())
	case "aimt-merge":
		s = aimt.NewAIMT(cfg, aimt.PrefetchMerge())
	case "aimt-all", "aimt":
		s = aimt.NewAIMT(cfg, aimt.AllMechanisms())
	default:
		return fmt.Errorf("unknown scheduler %q", sched)
	}

	rec := &trace.Recorder{}
	res, err := aimt.Run(cfg, mix.Nets, s, aimt.RunOptions{Tracer: rec})
	if err != nil {
		return err
	}

	fmt.Printf("mix %s under %s: makespan %d cycles, PE %.1f%%, mem %.1f%%\n",
		mix.Name, res.Scheduler, res.Makespan, 100*res.PEUtilization(), 100*res.MemUtilization())
	for i, name := range res.NetNames {
		fmt.Printf("  net %d = %s\n", i, name)
	}
	fmt.Print(rec.Gantt(res.Makespan, width))

	if utilWindows > 0 {
		window := res.Makespan / aimt.Cycles(utilWindows)
		if window < 1 {
			window = 1
		}
		fmt.Println("\nwindow-start  mem-util  pe-util")
		for _, p := range rec.UtilizationSeries(res.Makespan, window) {
			fmt.Printf("%12d  %8.2f  %7.2f\n", p.Start, p.Mem, p.PE)
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", len(rec.Events), jsonOut)
	}
	return nil
}
