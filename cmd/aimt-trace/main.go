// Command aimt-trace runs one co-location scenario and emits its
// execution timeline: an ASCII Gantt chart on stdout (like the
// paper's Figs 6/12/13) and, optionally, Chrome trace_event JSON for
// chrome://tracing or Perfetto.
//
// Usage:
//
//	aimt-trace -mix "RN50/GNMT" -sched aimt-all
//	aimt-trace -mix "RN34/GNMT" -sched rr -json trace.json -width 120
package main

import (
	"flag"
	"fmt"
	"os"

	"aimt"
	"aimt/internal/trace"
	"aimt/internal/workload"
)

func main() {
	var (
		mixSpec = flag.String("mix", "RN50/GNMT", "co-location spec: compute nets / memory nets")
		sched   = flag.String("sched", "aimt-all", "scheduler: fifo|rr|greedy|sjf|aimt-pf|aimt-merge|aimt-all")
		batch   = flag.Int("batch", 1, "batch size")
		width   = flag.Int("width", 100, "Gantt chart width in columns")
		jsonOut = flag.String("json", "", "write Chrome trace_event JSON to this file")
		util    = flag.Int("util", 0, "also print a utilization time series with this many windows")
	)
	flag.Parse()

	if err := run(*mixSpec, *sched, *batch, *width, *jsonOut, *util); err != nil {
		fmt.Fprintln(os.Stderr, "aimt-trace:", err)
		os.Exit(1)
	}
}

func run(mixSpec, sched string, batch, width int, jsonOut string, utilWindows int) error {
	cfg := aimt.PaperConfig()
	spec, err := workload.ParseSpec(mixSpec)
	if err != nil {
		return err
	}
	mix, err := workload.Build(cfg, spec, workload.BuildOptions{Batch: batch})
	if err != nil {
		return err
	}

	var s aimt.Scheduler
	switch sched {
	case "fifo":
		s = aimt.NewFIFO()
	case "rr":
		s = aimt.NewRR()
	case "greedy":
		s = aimt.NewGreedy()
	case "sjf":
		s = aimt.NewSJF()
	case "aimt-pf":
		s = aimt.NewAIMT(cfg, aimt.PrefetchOnly())
	case "aimt-merge":
		s = aimt.NewAIMT(cfg, aimt.PrefetchMerge())
	case "aimt-all", "aimt":
		s = aimt.NewAIMT(cfg, aimt.AllMechanisms())
	default:
		return fmt.Errorf("unknown scheduler %q", sched)
	}

	rec := &trace.Recorder{}
	res, err := aimt.Run(cfg, mix.Nets, s, aimt.RunOptions{Tracer: rec})
	if err != nil {
		return err
	}

	fmt.Printf("mix %s under %s: makespan %d cycles, PE %.1f%%, mem %.1f%%\n",
		mix.Name, res.Scheduler, res.Makespan, 100*res.PEUtilization(), 100*res.MemUtilization())
	for i, name := range res.NetNames {
		fmt.Printf("  net %d = %s\n", i, name)
	}
	fmt.Print(rec.Gantt(res.Makespan, width))

	if utilWindows > 0 {
		window := res.Makespan / aimt.Cycles(utilWindows)
		if window < 1 {
			window = 1
		}
		fmt.Println("\nwindow-start  mem-util  pe-util")
		for _, p := range rec.UtilizationSeries(res.Makespan, window) {
			fmt.Printf("%12d  %8.2f  %7.2f\n", p.Start, p.Mem, p.PE)
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", len(rec.Events), jsonOut)
	}
	return nil
}
