package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunProducesTraceAndJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run("MN/GNMT", "aimt-all", 1, 60, out, 10); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty trace file")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nonsense", "rr", 1, 60, "", 0); err == nil {
		t.Error("bad mix accepted")
	}
	if err := run("MN/GNMT", "warp-drive", 1, 60, "", 0); err == nil {
		t.Error("bad scheduler accepted")
	}
}

func TestAllTraceSchedulers(t *testing.T) {
	for _, s := range []string{"fifo", "rr", "greedy", "sjf", "aimt-pf", "aimt-merge", "aimt"} {
		if err := run("MN/GNMT", s, 1, 40, "", 0); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}
