// Command aimt-serve runs production-scale serving load sweeps: an
// open-loop request stream (Poisson or bursty arrivals over the
// default mixed CNN/RNN mix) walked from light traffic to saturation
// under FIFO, PREMA, AI-MT and deadline-aware EDF, reporting
// p50/p99/p99.9 latency and SLA miss rate at every offered-load point.
//
// Latency distributions stream into bounded-memory histograms, so
// request counts in the hundreds of thousands are routine:
//
//	aimt-serve                         # 10k requests, default loads
//	aimt-serve -requests 100000        # longer stream
//	aimt-serve -loads 0.3,0.9,1.2      # explicit offered loads
//	aimt-serve -process bursty         # bursty arrivals
//	aimt-serve -sched FIFO,EDF         # subset of schedulers
//	aimt-serve -cpuprofile cpu.pprof   # profile the sweep (pprof)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aimt"
	"aimt/internal/profiling"
)

type options struct {
	requests int
	process  string
	loads    string
	scheds   string
	seed     int64
	parallel int
	check    bool
}

func main() {
	var (
		opts       options
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.IntVar(&opts.requests, "requests", 10_000, "requests per load point")
	flag.StringVar(&opts.process, "process", "poisson", "arrival process: poisson or bursty")
	flag.StringVar(&opts.loads, "loads", "", "comma-separated offered loads (empty = default sweep)")
	flag.StringVar(&opts.scheds, "sched", "", "comma-separated scheduler subset (empty = all)")
	flag.Int64Var(&opts.seed, "seed", 7, "stream seed")
	flag.IntVar(&opts.parallel, "parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	flag.BoolVar(&opts.check, "check", false, "run the machine-model invariant checker on every simulation")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", err)
		os.Exit(1)
	}
	runErr := run(opts)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", runErr)
		os.Exit(1)
	}
}

func run(opts options) error {
	cfg := aimt.PaperConfig()
	classes := aimt.DefaultServingClasses()

	sopts := aimt.ServeStreamOptions{Requests: opts.requests, Seed: opts.seed}
	switch strings.ToLower(opts.process) {
	case "", "poisson":
	case "bursty":
		sopts.Process = aimt.ServeBursty
	default:
		return fmt.Errorf("unknown process %q", opts.process)
	}

	schedulers := aimt.ServeStandardSchedulers()
	if opts.scheds != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(opts.scheds, ",") {
			keep[strings.ToUpper(strings.TrimSpace(n))] = true
		}
		var sel []aimt.SchedulerSpec
		for _, s := range schedulers {
			if keep[strings.ToUpper(s.Name)] {
				sel = append(sel, s)
			}
		}
		if len(sel) == 0 {
			return fmt.Errorf("no scheduler matches %q", opts.scheds)
		}
		schedulers = sel
	}

	copts := aimt.ServeCurveOptions{Stream: sopts, Workers: opts.parallel, CheckInvariants: opts.check}
	if opts.loads != "" {
		// Probe the mean service estimate to translate loads to gaps.
		probeOpts := sopts
		probeOpts.Requests = 1
		probeOpts.MeanGap = 1
		probe, err := aimt.NewServeStream(cfg, classes, probeOpts)
		if err != nil {
			return err
		}
		for _, f := range strings.Split(opts.loads, ",") {
			load, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || load <= 0 {
				return errors.New("bad load " + strconv.Quote(f))
			}
			gap := aimt.Cycles(probe.MeanService / load)
			if gap < 1 {
				gap = 1
			}
			copts.Gaps = append(copts.Gaps, gap)
		}
	}

	points, err := aimt.ServeLoadCurve(cfg, classes, schedulers, copts)
	if err != nil {
		return err
	}
	fmt.Printf("Serving load sweep: %d requests per point, %s arrivals\n\n", opts.requests, opts.process)
	return aimt.PrintServeCurve(os.Stdout, points)
}
