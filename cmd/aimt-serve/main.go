// Command aimt-serve runs production-scale serving load sweeps: an
// open-loop request stream (Poisson or bursty arrivals over the
// default mixed CNN/RNN mix) walked from light traffic to saturation
// under FIFO, PREMA, AI-MT and deadline-aware EDF, reporting
// p50/p99/p99.9 latency and SLA miss rate at every offered-load point.
//
// Latency distributions stream into bounded-memory histograms, so
// request counts in the hundreds of thousands are routine:
//
//	aimt-serve                         # 10k requests, default loads
//	aimt-serve -requests 100000        # longer stream
//	aimt-serve -loads 0.3,0.9,1.2      # explicit offered loads
//	aimt-serve -process bursty         # bursty arrivals
//	aimt-serve -sched FIFO,EDF         # subset of schedulers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aimt"
)

func main() {
	var (
		requests = flag.Int("requests", 10_000, "requests per load point")
		process  = flag.String("process", "poisson", "arrival process: poisson or bursty")
		loads    = flag.String("loads", "", "comma-separated offered loads (empty = default sweep)")
		scheds   = flag.String("sched", "", "comma-separated scheduler subset (empty = all)")
		seed     = flag.Int64("seed", 7, "stream seed")
		parallel = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		check    = flag.Bool("check", false, "run the machine-model invariant checker on every simulation")
	)
	flag.Parse()

	cfg := aimt.PaperConfig()
	classes := aimt.DefaultServingClasses()

	sopts := aimt.ServeStreamOptions{Requests: *requests, Seed: *seed}
	switch strings.ToLower(*process) {
	case "", "poisson":
	case "bursty":
		sopts.Process = aimt.ServeBursty
	default:
		fmt.Fprintf(os.Stderr, "aimt-serve: unknown process %q\n", *process)
		os.Exit(1)
	}

	schedulers := aimt.ServeStandardSchedulers()
	if *scheds != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*scheds, ",") {
			keep[strings.ToUpper(strings.TrimSpace(n))] = true
		}
		var sel []aimt.SchedulerSpec
		for _, s := range schedulers {
			if keep[strings.ToUpper(s.Name)] {
				sel = append(sel, s)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "aimt-serve: no scheduler matches %q\n", *scheds)
			os.Exit(1)
		}
		schedulers = sel
	}

	copts := aimt.ServeCurveOptions{Stream: sopts, Workers: *parallel, CheckInvariants: *check}
	if *loads != "" {
		// Probe the mean service estimate to translate loads to gaps.
		probeOpts := sopts
		probeOpts.Requests = 1
		probeOpts.MeanGap = 1
		probe, err := aimt.NewServeStream(cfg, classes, probeOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", err)
			os.Exit(1)
		}
		for _, f := range strings.Split(*loads, ",") {
			load, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || load <= 0 {
				fmt.Fprintf(os.Stderr, "aimt-serve: bad load %q\n", f)
				os.Exit(1)
			}
			gap := aimt.Cycles(probe.MeanService / load)
			if gap < 1 {
				gap = 1
			}
			copts.Gaps = append(copts.Gaps, gap)
		}
	}

	points, err := aimt.ServeLoadCurve(cfg, classes, schedulers, copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Serving load sweep: %d requests per point, %s arrivals\n\n", *requests, *process)
	if err := aimt.PrintServeCurve(os.Stdout, points); err != nil {
		fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", err)
		os.Exit(1)
	}
}
