// Command aimt-serve runs production-scale serving load sweeps: an
// open-loop request stream (Poisson or bursty arrivals over the
// default mixed CNN/RNN mix) walked from light traffic to saturation
// under FIFO, PREMA, AI-MT and deadline-aware EDF, reporting
// p50/p99/p99.9 latency and SLA miss rate at every offered-load point.
//
// Latency distributions stream into bounded-memory histograms, so
// request counts in the hundreds of thousands are routine:
//
//	aimt-serve                         # 10k requests, default loads
//	aimt-serve -requests 100000        # longer stream
//	aimt-serve -loads 0.3,0.9,1.2      # explicit offered loads
//	aimt-serve -process bursty         # bursty arrivals
//	aimt-serve -sched FIFO,EDF         # subset of schedulers
//	aimt-serve -sched lookahead        # opt-in speculative lookahead
//	aimt-serve -cpuprofile cpu.pprof   # profile the sweep (pprof)
//
// With -chips N (or -route) the sweep runs against a simulated
// multi-chip cluster: a dispatcher routes each request to one of N
// independent chip engines, and offered loads are per chip:
//
//	aimt-serve -chips 4 -route least-work   # 4-chip cluster, one policy
//	aimt-serve -chips 8                     # compare all routing policies
//	aimt-serve -chips 4 -perchip            # include per-chip breakdowns
//
// The overload control plane rides on cluster mode (any of these flags
// implies it): -admission sheds lowest-priority requests whose
// predicted completion misses the deadline, -priorities makes the CNN
// class premium (priority 1) and switches the per-chip scheduler to
// preemptive AI-MT so premium compute blocks displace batch work, and
// -autoscale grows the active chip set from 1 toward -chips under
// sustained backlog (shrinking when it drains):
//
//	aimt-serve -chips 2 -admission -priorities -loads 0.8,2,5
//	aimt-serve -chips 4 -admission -autoscale -priorities
//
// With -admin the sweep is observable while it runs: an HTTP server
// exposes live engine counters and gauges in Prometheus text form,
// a JSON snapshot with the scheduler decision ledger tail, and pprof:
//
//	aimt-serve -admin :8080            # /metrics, /healthz, /runs,
//	                                   # /requests, /debug/snapshot,
//	                                   # /debug/pprof/
//	aimt-serve -admin :8080 -hold 1m   # keep serving 1m after the sweep
//	aimt-serve -ledger dec.jsonl       # dump the decision ledger
//
// Request tracing auto-enables with -admin (1-in-16 sampling plus the
// worst tail exemplars per class): /requests serves the sampled spans
// and the cycle-exact latency attribution as JSON, /runs grows a
// tail-exemplar waterfall, and the sweep prints a per-class
// attribution report on exit. -rtrace N forces 1-in-N sampling even
// without -admin; -rtrace 0 turns tracing off:
//
//	aimt-serve -rtrace 1               # trace every request
//	aimt-serve -admin :8080 -rtrace 0  # admin surface, no tracing
//
// With -runstore every report of the sweep is appended to an
// append-only run history (one JSONL line per load point x policy,
// labeled with mix/scheduler/load/commit), and the -admin surface
// grows a /runs dashboard plotting load curves, the decision-ledger
// timeline and cross-run perf trajectories; the checked-in
// BENCH_*.json artifacts (override the glob with -benchseed) are
// ingested as seed history so the trajectory starts at PR 3:
//
//	aimt-serve -runstore runs/                  # record this sweep
//	aimt-serve -runstore runs/ -admin :8080     # ...and browse /runs
//	aimt-benchjson -diff runs/ runs/#run-000001 # diff two runs
//
// With -transformer the stream is the transformer/CNN mix: each chat
// request is one prefill burst plus chained autoregressive decode
// iterations with per-token deadlines, and every report grows
// per-phase latency columns plus the tokens-per-megacycle headline
// (tokens/sec/chip lands in /metrics in cluster mode). -decode
// overrides the chat class's decode length:
//
//	aimt-serve -transformer                  # prefill + 8 decode tokens
//	aimt-serve -transformer -decode 32       # longer generations
//	aimt-serve -transformer -chips 4         # KV-affine cluster routing
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"aimt"
	"aimt/internal/profiling"
)

type options struct {
	requests    int
	process     string
	loads       string
	scheds      string
	seed        int64
	parallel    int
	check       bool
	chips       int
	route       string
	perchip     bool
	admission   bool
	prios       bool
	autoscale   bool
	admin       string
	hold        time.Duration
	ledgerOut   string
	transformer bool
	decode      int
	runstore    string
	benchseed   string
	rtrace      int
}

func main() {
	var (
		opts       options
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.IntVar(&opts.requests, "requests", 10_000, "requests per load point")
	flag.StringVar(&opts.process, "process", "poisson", "arrival process: poisson or bursty")
	flag.StringVar(&opts.loads, "loads", "", "comma-separated offered loads (empty = default sweep)")
	flag.StringVar(&opts.scheds, "sched", "", "comma-separated scheduler subset (empty = all standard; 'lookahead' opts into the speculative scheduler)")
	flag.Int64Var(&opts.seed, "seed", 7, "stream seed")
	flag.IntVar(&opts.parallel, "parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	flag.BoolVar(&opts.check, "check", false, "run the machine-model invariant checker on every simulation")
	flag.IntVar(&opts.chips, "chips", 1, "simulated cluster size; >1 routes the stream across independent chips")
	flag.StringVar(&opts.route, "route", "", "comma-separated routing policy subset for cluster mode (empty = all)")
	flag.BoolVar(&opts.perchip, "perchip", false, "in cluster mode, print per-chip breakdowns for every result")
	flag.BoolVar(&opts.admission, "admission", false, "SLO-aware admission control: shed lowest-priority requests predicted to miss their deadline (implies cluster mode)")
	flag.BoolVar(&opts.prios, "priorities", false, "two-band priority mix (CNN premium) with preemptive AI-MT per chip (implies cluster mode)")
	flag.BoolVar(&opts.autoscale, "autoscale", false, "elastic autoscaling of the active chip set up to -chips (implies cluster mode)")
	flag.StringVar(&opts.admin, "admin", "", "serve /metrics, /healthz, /debug/snapshot and /debug/pprof/ on this address (e.g. :8080)")
	flag.DurationVar(&opts.hold, "hold", 0, "with -admin, keep the admin server up this long after the sweep finishes")
	flag.StringVar(&opts.ledgerOut, "ledger", "", "write the scheduler decision ledger as JSON Lines to this file")
	flag.BoolVar(&opts.transformer, "transformer", false, "serve the transformer/CNN mix: chat requests are one prefill burst plus chained decode iterations with per-token deadlines")
	flag.IntVar(&opts.decode, "decode", -1, "with -transformer, override the chat class's decode iterations per request (-1 = default)")
	flag.StringVar(&opts.runstore, "runstore", "", "append every report of the sweep to the run-history store under this directory")
	flag.StringVar(&opts.benchseed, "benchseed", "BENCH_*.json", "glob of bench JSON artifacts ingested as seed history for the /runs dashboard")
	flag.IntVar(&opts.rtrace, "rtrace", -1, "request tracing: sample 1-in-N requests into the tail-attribution store (0 = off, -1 = auto: on with -admin)")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", err)
		os.Exit(1)
	}
	runErr := run(opts)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "aimt-serve: %v\n", runErr)
		os.Exit(1)
	}
}

// validate rejects bad flag combinations before any simulation work,
// returning the parsed -loads factors and -route policy selection.
func validate(opts options) ([]float64, []aimt.ClusterPolicySpec, error) {
	if opts.requests <= 0 {
		return nil, nil, fmt.Errorf("-requests must be positive, got %d", opts.requests)
	}
	if opts.chips < 1 {
		return nil, nil, fmt.Errorf("-chips must be at least 1, got %d", opts.chips)
	}
	if opts.parallel < 0 {
		return nil, nil, fmt.Errorf("-parallel must be non-negative, got %d", opts.parallel)
	}
	switch strings.ToLower(opts.process) {
	case "", "poisson", "bursty":
	default:
		return nil, nil, fmt.Errorf("unknown -process %q (want poisson or bursty)", opts.process)
	}
	var loads []float64
	if opts.loads != "" {
		for _, f := range strings.Split(opts.loads, ",") {
			load, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || load <= 0 {
				return nil, nil, errors.New("-loads values must be positive numbers, got " + strconv.Quote(f))
			}
			loads = append(loads, load)
		}
	}
	var policies []aimt.ClusterPolicySpec
	if opts.route != "" {
		for _, n := range strings.Split(opts.route, ",") {
			pspec, err := aimt.ClusterPolicyByName(strings.ToLower(strings.TrimSpace(n)))
			if err != nil {
				return nil, nil, fmt.Errorf("-route: %w", err)
			}
			policies = append(policies, pspec)
		}
	}
	if opts.hold < 0 {
		return nil, nil, fmt.Errorf("-hold must be non-negative, got %v", opts.hold)
	}
	if opts.decode < -1 {
		return nil, nil, fmt.Errorf("-decode must be non-negative, got %d", opts.decode)
	}
	if opts.decode >= 0 && !opts.transformer {
		return nil, nil, errors.New("-decode requires -transformer")
	}
	if opts.hold > 0 && opts.admin == "" {
		return nil, nil, errors.New("-hold requires -admin")
	}
	if opts.rtrace < -1 {
		return nil, nil, fmt.Errorf("-rtrace must be -1 (auto), 0 (off) or a positive sampling divisor, got %d", opts.rtrace)
	}
	return loads, policies, nil
}

func run(opts options) error {
	loads, policies, err := validate(opts)
	if err != nil {
		return err
	}

	cfg := aimt.PaperConfig()
	classes := aimt.DefaultServingClasses()
	mixName := "CNN/RNN"
	if opts.transformer {
		classes = aimt.TransformerServingClasses()
		mixName = "transformer/CNN"
		if opts.decode >= 0 {
			classes[0].Decode = opts.decode
		}
	}
	if opts.prios {
		classes[0].Priority = 1
	}

	sopts := aimt.ServeStreamOptions{Requests: opts.requests, Seed: opts.seed}
	if strings.EqualFold(opts.process, "bursty") {
		sopts.Process = aimt.ServeBursty
	}

	schedulers := aimt.ServeStandardSchedulers()
	if opts.scheds != "" {
		// The speculative lookahead scheduler is selectable by name but
		// not part of the default sweep: every contested decision costs
		// two horizon-length forward simulations.
		available := append(schedulers, aimt.ServeLookaheadAIMT(0))
		keep := map[string]bool{}
		for _, n := range strings.Split(opts.scheds, ",") {
			keep[strings.ToUpper(strings.TrimSpace(n))] = true
		}
		var sel []aimt.SchedulerSpec
		for _, s := range available {
			if keep[strings.ToUpper(s.Name)] {
				sel = append(sel, s)
			}
		}
		if len(sel) == 0 {
			return fmt.Errorf("no scheduler matches %q", opts.scheds)
		}
		schedulers = sel
	}

	// Run history: every report of the sweep is appended here, and the
	// admin dashboard reads it back live.
	var store *aimt.RunStore
	if opts.runstore != "" {
		store, err = aimt.OpenRunStore(opts.runstore)
		if err != nil {
			return fmt.Errorf("-runstore: %w", err)
		}
	}

	// Observability: one registry and ledger shared by every run of
	// the sweep, served live when -admin is set.
	var reg *aimt.ObsRegistry
	var led *aimt.ObsLedger
	if opts.admin != "" || opts.ledgerOut != "" {
		reg = aimt.NewObsRegistry()
		led = aimt.NewObsLedger(0)
	}

	// Request tracing: sampled spans plus worst-N tail exemplars,
	// attributed cycle-by-cycle. Auto-enables with -admin so /requests
	// and the /runs waterfall have data; off otherwise unless forced.
	sample := opts.rtrace
	if sample == -1 {
		sample = 0
		if opts.admin != "" {
			sample = 16
		}
	}
	var rstore *aimt.RequestTraceStore
	if sample > 0 {
		rstore = aimt.NewRequestTraceStore(aimt.RequestTraceOptions{SampleEvery: sample})
	}

	if opts.admin != "" {
		mux := aimt.ObsHandler(reg, led)
		profiling.AttachPprof(mux)
		// The /runs dashboard serves the checked-in bench artifacts as
		// seed history ahead of whatever this sweep appends.
		seeds, err := aimt.LoadBenchHistory(opts.benchseed)
		if err != nil {
			return fmt.Errorf("-benchseed: %w", err)
		}
		aimt.ObsAttachRuns(mux, func() []aimt.StoredRun {
			runs := append([]aimt.StoredRun{}, seeds...)
			if store != nil {
				runs = append(runs, store.Runs()...)
			}
			return runs
		}, led, rstore.WaterfallHTML)
		if rstore != nil {
			aimt.AttachRequestTraces(mux, rstore)
		}
		// Bind synchronously so the endpoints answer for the whole
		// sweep, not only once it finishes.
		ln, err := net.Listen("tcp", opts.admin)
		if err != nil {
			return fmt.Errorf("-admin: %w", err)
		}
		defer ln.Close()
		go func() { _ = (&http.Server{Handler: mux}).Serve(ln) }()
		fmt.Printf("admin: serving /metrics, /healthz, /runs, /debug/snapshot, /debug/pprof/ on %s\n", ln.Addr())
	}

	// Translate explicit offered loads into mean arrival gaps. In
	// cluster mode the loads are per chip: N chips at load L absorb an
	// aggregate arrival rate N*L, so the stream gap shrinks by N.
	var gaps []aimt.Cycles
	if len(loads) > 0 {
		probeOpts := sopts
		probeOpts.Requests = 1
		probeOpts.MeanGap = 1
		probe, err := aimt.NewServeStream(cfg, classes, probeOpts)
		if err != nil {
			return err
		}
		for _, load := range loads {
			gap := aimt.Cycles(probe.MeanService / (load * float64(opts.chips)))
			if gap < 1 {
				gap = 1
			}
			gaps = append(gaps, gap)
		}
	}

	clusterMode := opts.chips > 1 || opts.route != "" ||
		opts.admission || opts.prios || opts.autoscale
	if clusterMode {
		// Cluster mode compares routing policies under one per-chip
		// scheduler: the first -sched selection, or AI-MT by default
		// (preemptive AI-MT when -priorities is on, so the premium
		// band can displace executing batch work).
		spec := schedulers[0]
		if opts.scheds == "" {
			for _, s := range schedulers {
				if s.Name == "AI-MT" {
					spec = s
				}
			}
			if opts.prios {
				spec = aimt.ServePreemptiveAIMT()
			}
		}
		err = runCluster(cfg, classes, spec, policies, gaps, sopts, reg, led, store, rstore, mixName, opts)
	} else {
		copts := aimt.ServeCurveOptions{
			Stream: sopts, Gaps: gaps, Workers: opts.parallel,
			CheckInvariants: opts.check, Metrics: reg, Ledger: led,
			Trace: rstore,
		}
		var points []aimt.ServeCurvePoint
		points, err = aimt.ServeLoadCurve(cfg, classes, schedulers, copts)
		if err == nil {
			fmt.Printf("Serving load sweep: %s mix, %d requests per point, %s arrivals\n\n", mixName, opts.requests, opts.process)
			err = aimt.PrintServeCurve(os.Stdout, points)
		}
		if err == nil && store != nil {
			stored, rerr := aimt.RecordServeCurve(store, mixName, strings.ToLower(opts.process), aimt.CurrentCommit(), points)
			if rerr != nil {
				return rerr
			}
			fmt.Printf("runstore: appended %d runs to %s\n", len(stored), opts.runstore)
		}
	}
	if err != nil {
		return err
	}

	if rstore != nil {
		rows := rstore.Attribution()
		if len(rows) > 0 {
			total, shedCount, sampled := rstore.Totals()
			fmt.Printf("\nRequest-latency attribution (%d requests, %d shed, %d sampled 1-in-%d):\n",
				total, shedCount, sampled, rstore.SampleEvery())
			if err := aimt.PrintRequestAttribution(os.Stdout, rows); err != nil {
				return err
			}
		}
	}

	if opts.ledgerOut != "" {
		f, err := os.Create(opts.ledgerOut)
		if err != nil {
			return err
		}
		if err := led.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("ledger: wrote %d of %d decisions to %s\n", led.Len(), led.Total(), opts.ledgerOut)
	}
	if opts.admin != "" && opts.hold > 0 {
		fmt.Printf("admin: holding for %v (ctrl-c to stop)\n", opts.hold)
		time.Sleep(opts.hold)
	}
	return nil
}

// runCluster sweeps offered load against a simulated multi-chip
// cluster. Every chip runs the given scheduler (the first of the
// -sched selection, AI-MT by default); -route narrows the routing
// policies under comparison.
func runCluster(cfg aimt.Config, classes []aimt.ServeClass, spec aimt.SchedulerSpec, policies []aimt.ClusterPolicySpec, gaps []aimt.Cycles, sopts aimt.ServeStreamOptions, reg *aimt.ObsRegistry, led *aimt.ObsLedger, store *aimt.RunStore, rstore *aimt.RequestTraceStore, mixName string, opts options) error {
	if len(policies) == 0 {
		policies = aimt.ClusterPolicies()
	}
	points, err := aimt.ClusterLoadCurve(cfg, classes, spec, policies, aimt.ClusterCurveOptions{
		Stream:          sopts,
		Gaps:            gaps,
		Chips:           opts.chips,
		Workers:         opts.parallel,
		CheckInvariants: opts.check,
		Metrics:         reg,
		Ledger:          led,
		Trace:           rstore,
		Control: aimt.ClusterControl{
			Admission: opts.admission,
			Autoscale: opts.autoscale,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("Cluster load sweep: %s mix, %d chips x %s per chip, %d requests per point, %s arrivals\n\n",
		mixName, opts.chips, spec.Name, opts.requests, opts.process)
	if err := aimt.PrintClusterCurve(os.Stdout, points); err != nil {
		return err
	}
	if store != nil {
		stored, err := aimt.RecordClusterCurve(store, mixName, strings.ToLower(opts.process), aimt.CurrentCommit(), points)
		if err != nil {
			return err
		}
		fmt.Printf("runstore: appended %d runs to %s\n", len(stored), opts.runstore)
	}
	if opts.perchip {
		for _, pt := range points {
			for _, r := range pt.Results {
				fmt.Printf("\nper-chip, %s at per-chip load %.2f:\n", r.Policy, pt.ChipLoad)
				if err := aimt.PrintClusterChips(os.Stdout, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
