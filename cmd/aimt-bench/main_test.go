package main

import (
	"os/exec"
	"testing"
)

// The bench CLI is a thin dispatcher over aimt.Experiments(); exercise
// the binary end-to-end for the fast experiments.
func TestBenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the built binary")
	}
	bin := t.TempDir() + "/aimt-bench"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	for _, args := range [][]string{
		{"-list"},
		{"-exp", "table1"},
		{"-exp", "table3"},
		{"-exp", "fig5"},
		{"-exp", "spatial"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Errorf("%v: %v\n%s", args, err, out)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%v produced no output", args)
		}
	}
	if err := exec.Command(bin, "-exp", "bogus").Run(); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
