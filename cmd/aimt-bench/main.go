// Command aimt-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	aimt-bench              # regenerate everything, in paper order
//	aimt-bench -exp fig14   # one experiment
//	aimt-bench -list        # list experiment ids
//	aimt-bench -parallel 8  # cap the simulation worker pool at 8
//
// The experiments fan their simulations over a worker pool sized to
// GOMAXPROCS by default; -parallel caps it (1 forces serial). Output
// is identical at every setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"aimt"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (empty = all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	aimt.SetSweepParallelism(*parallel)

	exps := aimt.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := aimt.PaperConfig()
	ran := false
	for _, e := range exps {
		if *exp != "" && e.ID != *exp {
			continue
		}
		ran = true
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "aimt-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "aimt-bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(1)
	}
}
