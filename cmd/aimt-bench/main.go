// Command aimt-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	aimt-bench              # regenerate everything, in paper order
//	aimt-bench -exp fig14   # one experiment
//	aimt-bench -list        # list experiment ids
//	aimt-bench -parallel 8  # cap the simulation worker pool at 8
//
// The experiments fan their simulations over a worker pool sized to
// GOMAXPROCS by default; -parallel caps it (1 forces serial). Output
// is identical at every setting. -cpuprofile/-memprofile capture pprof
// profiles of a sweep (use -parallel 1 for readable CPU profiles).
package main

import (
	"flag"
	"fmt"
	"os"

	"aimt"
	"aimt/internal/profiling"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (empty = all)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		parallel   = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	aimt.SetSweepParallelism(*parallel)

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimt-bench: %v\n", err)
		os.Exit(1)
	}
	runErr := run(*exp, *list)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "aimt-bench: %v\n", runErr)
		os.Exit(1)
	}
}

func run(exp string, list bool) error {
	exps := aimt.Experiments()
	if list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := aimt.PaperConfig()
	ran := false
	for _, e := range exps {
		if exp != "" && e.ID != exp {
			continue
		}
		ran = true
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (use -list)", exp)
	}
	return nil
}
