package aimt

import (
	"testing"
)

// Edge-case sweep: every scheduling policy is driven through the
// degenerate workload shapes a serving frontend can hand the
// simulator, with the machine-model invariant checker on. Policies
// must either finish cleanly or return an error — never panic, never
// violate an invariant, never strand a network.

type edgeCase struct {
	name string
	// sram is the weight-SRAM capacity in blocks.
	sram int
	// build returns the mix and per-instance arrivals (nil = cycle 0).
	build func(cfg Config) ([]*Compiled, []Cycles)
	// wantErr marks cases sim.Run must reject.
	wantErr bool
}

func edgeCases() []edgeCase {
	return []edgeCase{
		{
			name: "empty-mix",
			sram: 8,
			build: func(cfg Config) ([]*Compiled, []Cycles) {
				return nil, nil
			},
			wantErr: true,
		},
		{
			name: "single-network",
			sram: 8,
			build: func(cfg Config) ([]*Compiled, []Cycles) {
				return []*Compiled{block("solo", cfg, 6, 9, 4, 2)}, nil
			},
		},
		{
			name: "all-arrivals-identical",
			sram: 8,
			build: func(cfg Config) ([]*Compiled, []Cycles) {
				nets := []*Compiled{
					block("a", cfg, 4, 10, 3, 1),
					block("b", cfg, 10, 4, 3, 2),
					block("c", cfg, 6, 6, 3, 1),
				}
				return nets, []Cycles{777, 777, 777}
			},
		},
		{
			// One SRAM block: prefetch depth is forced to zero, every
			// policy (including the double-buffering baselines) must
			// degrade to fetch-compute-fetch serialization.
			name: "depth-0-prefetch",
			sram: 1,
			build: func(cfg Config) ([]*Compiled, []Cycles) {
				nets := []*Compiled{
					block("a", cfg, 5, 7, 4, 1),
					block("b", cfg, 7, 5, 4, 1),
				}
				return nets, nil
			},
		},
		{
			// The last network arrives long after the others finished:
			// the engine must idle forward to the arrival and the
			// policies must not starve it.
			name: "arrival-after-all-finish",
			sram: 8,
			build: func(cfg Config) ([]*Compiled, []Cycles) {
				nets := []*Compiled{
					block("early1", cfg, 4, 6, 2, 1),
					block("early2", cfg, 6, 4, 2, 1),
					block("late", cfg, 5, 5, 2, 1),
				}
				return nets, []Cycles{0, 0, 1_000_000}
			},
		},
	}
}

func TestEdgeCasesAllSchedulers(t *testing.T) {
	for _, ec := range edgeCases() {
		ec := ec
		t.Run(ec.name, func(t *testing.T) {
			cfg := scenarioConfig(t, ec.sram)
			nets, arrivals := ec.build(cfg)
			for _, p := range allPolicies(cfg, len(nets)) {
				res, err := Run(cfg, nets, p.mk(), RunOptions{
					CheckInvariants: true,
					Arrivals:        arrivals,
				})
				if ec.wantErr {
					if err == nil {
						t.Errorf("%s: no error on %s", p.name, ec.name)
					}
					continue
				}
				if err != nil {
					t.Errorf("%s: %v", p.name, err)
					continue
				}
				for i, fin := range res.NetFinish {
					arr := Cycles(0)
					if i < len(arrivals) {
						arr = arrivals[i]
					}
					if fin <= arr {
						t.Errorf("%s: net %d finished at %d, not after its arrival %d",
							p.name, i, fin, arr)
					}
				}
				if ideal := IdealBound(nets); res.Makespan < ideal {
					t.Errorf("%s: makespan %d below ideal bound %d", p.name, res.Makespan, ideal)
				}
			}
		})
	}
}

// TestEdgeCaseLateArrivalIdles pins the arrival-after-all-finish
// timing: the makespan must extend past the straggler's arrival and
// the early networks must not be delayed by its existence.
func TestEdgeCaseLateArrivalIdles(t *testing.T) {
	cfg := scenarioConfig(t, 8)
	early := []*Compiled{
		block("early1", cfg, 4, 6, 2, 1),
		block("early2", cfg, 6, 4, 2, 1),
	}
	withLate := append(append([]*Compiled(nil), early...), block("late", cfg, 5, 5, 2, 1))

	base, err := Run(cfg, early, NewFIFO(), RunOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, withLate, NewFIFO(), RunOptions{
		CheckInvariants: true,
		Arrivals:        []Cycles{0, 0, 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 1_000_000 {
		t.Errorf("makespan %d does not extend past the straggler's arrival", res.Makespan)
	}
	for i := range early {
		if res.NetFinish[i] != base.NetFinish[i] {
			t.Errorf("early net %d finish moved from %d to %d because of an unarrived network",
				i, base.NetFinish[i], res.NetFinish[i])
		}
	}
}
