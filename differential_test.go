package aimt

import (
	"testing"

	"aimt/internal/analysis"
)

// Differential tests: the simulator against closed-form timing. With
// feature transfers instant (HostBandwidth = 0) a single network under
// the fully serialized FIFO alternates fetch and compute with no
// overlap, so its makespan must equal the analytic serialized bound —
// the sum of every layer's memory and compute latency, exactly the
// quantities analysis.LatencyRatios reports for Fig 5.
func TestDifferentialSerializedBound(t *testing.T) {
	cfg := PaperConfig()
	cfg.HostBandwidth = 0 // instant feature transfers: pure weight/compute timeline
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"VGG16", "RN50", "MN", "GNMT"} {
		net, err := NetworkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cn, err := Compile(net, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		var serialized Cycles
		for _, r := range analysis.LatencyRatios(cn) {
			serialized += r.ComputeCycles + r.MemoryCycles
		}

		res, err := Run(cfg, []*Compiled{cn}, NewSerialFIFO(), RunOptions{CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan != serialized {
			t.Errorf("%s: SerialFIFO makespan %d != analytic serialized bound %d (drift %+d)",
				name, res.Makespan, serialized, res.Makespan-serialized)
		}
		if res.Splits != 0 {
			t.Errorf("%s: serialized run split %d compute blocks", name, res.Splits)
		}

		// The double-buffered FIFO overlaps fetch with compute: its
		// makespan lands between the ideal overlap bound and the
		// serialized schedule.
		overlapped, err := Run(cfg, []*Compiled{cn}, NewFIFO(), RunOptions{CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s under FIFO: %v", name, err)
		}
		if ideal := IdealBound([]*Compiled{cn}); overlapped.Makespan < ideal {
			t.Errorf("%s: FIFO makespan %d below the ideal bound %d", name, overlapped.Makespan, ideal)
		}
		if overlapped.Makespan > serialized {
			t.Errorf("%s: FIFO makespan %d above the serialized schedule %d — prefetch made it slower",
				name, overlapped.Makespan, serialized)
		}
	}
}

// TestFrontierDifferentialServeStream runs a random open-loop serving
// stream under every scheduler with the machine-model invariant
// checker enabled. Since PR 3 the checker's sixth invariant family
// recomputes the candidate sets by brute force after every engine
// event and compares them against the engine's incrementally
// maintained frontiers, so a pass here proves frontier-based
// MBCandidates/ReadyCBs/SelectableCBs/AvailableCBCycles equal the
// full scans on every event of the stream, for every policy.
func TestFrontierDifferentialServeStream(t *testing.T) {
	cfg := PaperConfig()
	classes := DefaultServingClasses()
	for _, process := range []ServeProcess{ServePoisson, ServeBursty} {
		stream, err := NewServeStream(cfg, classes, ServeStreamOptions{
			Requests: 100,
			Process:  process,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		schedulers := ServeStandardSchedulers()
		for _, extra := range []struct {
			name string
			mk   func() Scheduler
		}{
			{"SerialFIFO", NewSerialFIFO},
			{"RR", NewRR},
			{"Greedy", NewGreedy},
			{"Greedy+PF", NewGreedyPrefetch},
			{"SJF", NewSJF},
			{"AI-MT(PF)", func() Scheduler { return NewAIMT(cfg, PrefetchOnly()) }},
			{"AI-MT(PF+Merge)", func() Scheduler { return NewAIMT(cfg, PrefetchMerge()) }},
		} {
			mk := extra.mk
			schedulers = append(schedulers, SchedulerSpec{
				Name: extra.name,
				New:  func(Config, *ServeStream) Scheduler { return mk() },
			})
		}
		for _, spec := range schedulers {
			rep, err := ServeRun(cfg, stream, spec.New(cfg, stream), RunOptions{CheckInvariants: true})
			if err != nil {
				t.Errorf("%s/%s: %v", process, spec.Name, err)
				continue
			}
			if rep.Requests != len(stream.Nets) {
				t.Errorf("%s/%s: report covers %d of %d requests", process, spec.Name, rep.Requests, len(stream.Nets))
			}
		}
	}
}
