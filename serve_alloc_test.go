package aimt

import "testing"

// TestServeStreamAllocsFlatAt8x pins the allocation-free engine core
// on the serving path: growing a serve stream's request count 8x must
// not grow the per-run allocation count with it. The arena-backed
// state, pooled engine and scratch-reusing schedulers make the
// steady-state per-request cost zero allocations; only fixed per-run
// setup (scheduler construction, the cloned result's slice headers)
// and one-time arena growth at the larger size may allocate.
func TestServeStreamAllocsFlatAt8x(t *testing.T) {
	cfg := PaperConfig()
	classes := DefaultServingClasses()
	build := func(requests int) *ServeStream {
		s, err := NewServeStream(cfg, classes, ServeStreamOptions{
			Requests: requests,
			Process:  ServePoisson,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := func(s *ServeStream) float64 {
		opts := RunOptions{Arrivals: s.Arrivals, ChainAfter: s.ChainAfter}
		once := func() {
			if _, err := Run(cfg, s.Nets, NewAIMT(cfg, AllMechanisms()), opts); err != nil {
				t.Fatal(err)
			}
		}
		once() // warm the pooled engine's arena to this stream's size
		return testing.AllocsPerRun(10, once)
	}
	small := run(build(50))
	large := run(build(400))
	// 350 extra requests; any per-request or per-event allocation
	// would add hundreds. Fixed setup differences stay far below this.
	if delta := large - small; delta > 64 {
		t.Errorf("8x the requests grew allocations by %.0f (%.0f -> %.0f); serve path is not allocation-free",
			delta, small, large)
	}
}

// TestServeStreamTracingDisabledAllocFree pins that the request-trace
// plumbing costs nothing when disabled: an explicit nil tracer must
// allocate exactly as much as leaving the field unset, so the hot
// path never pays for hooks it isn't using.
func TestServeStreamTracingDisabledAllocFree(t *testing.T) {
	cfg := PaperConfig()
	s, err := NewServeStream(cfg, DefaultServingClasses(), ServeStreamOptions{
		Requests: 200,
		Process:  ServePoisson,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(opts RunOptions) float64 {
		once := func() {
			if _, err := Run(cfg, s.Nets, NewAIMT(cfg, AllMechanisms()), opts); err != nil {
				t.Fatal(err)
			}
		}
		once() // warm the pooled engine's arena
		return testing.AllocsPerRun(10, once)
	}
	base := measure(RunOptions{Arrivals: s.Arrivals, ChainAfter: s.ChainAfter})
	off := measure(RunOptions{Arrivals: s.Arrivals, ChainAfter: s.ChainAfter, Tracer: nil})
	if off != base {
		t.Errorf("nil tracer changed allocations: %.0f with tracing disabled, %.0f baseline", off, base)
	}
}
