package aimt

import (
	"fmt"
	"reflect"
	"testing"
)

// Transformer serving battery: multi-phase conservation across every
// scheduler x routing policy, the zero-decode differential against the
// single-phase path, and the decode-batching curve shape.

// transformerClusterStream builds a mixed transformer/CNN stream whose
// offered load is `load` single-chip capacities.
func transformerClusterStream(t *testing.T, requests int, load float64) *ServeStream {
	t.Helper()
	cfg := PaperConfig()
	classes := TransformerServingClasses()
	probe, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: 1, MeanGap: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gap := Cycles(probe.MeanService / load)
	if gap < 1 {
		gap = 1
	}
	s, err := NewServeStream(cfg, classes, ServeStreamOptions{Requests: requests, MeanGap: gap, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkPhaseConservation asserts, for one cluster run, that every
// admitted request completed exactly one prefill plus its class's
// decode iteration count, that all of a request's entries share one
// chip (or are shed together), that no decode phase starts before its
// predecessor finishes, and that each chip executed exactly the block
// multiset of the networks routed to it.
func checkPhaseConservation(t *testing.T, label string, s *ServeStream, classes []ServeClass, res *ClusterResult) {
	t.Helper()
	shed := func(i int) bool { return res.Shed != nil && res.Shed[i] }

	// Per-request phase accounting and chip affinity.
	type reqAcct struct {
		prefill, decode int
		chip            int
		shed            bool
		seen            bool
	}
	acct := map[int]*reqAcct{}
	for i := range s.Nets {
		a := acct[s.ReqOf[i]]
		if a == nil {
			a = &reqAcct{chip: res.Assignment[i], shed: shed(i)}
			acct[s.ReqOf[i]] = a
		}
		if shed(i) != a.shed || (!shed(i) && res.Assignment[i] != a.chip) {
			t.Errorf("%s: entry %d (request %d) split from its request: chip %d shed %v, head chip %d shed %v",
				label, i, s.ReqOf[i], res.Assignment[i], shed(i), a.chip, a.shed)
		}
		switch s.PhaseOf[i] {
		case ServePrefillPhase, ServeSinglePhase:
			a.prefill++
		case ServeDecodePhase:
			a.decode++
		}
	}
	for req, a := range acct {
		if a.shed {
			continue
		}
		head := -1
		for i := range s.Nets {
			if s.ReqOf[i] == req {
				head = i
				break
			}
		}
		wantDecode := 0
		if c := classes[s.ClassOf[head]]; c.DecodeNet != nil {
			wantDecode = c.Decode
		}
		if a.prefill != 1 || a.decode != wantDecode {
			t.Errorf("%s: request %d completed %d prefill + %d decode phases, want 1 + %d",
				label, req, a.prefill, a.decode, wantDecode)
		}
	}

	// Per-chip block-multiset and decode-ordering checks against the
	// chip's local simulation result. Local indices on a chip are its
	// global entries in ascending order — the sub-stream order.
	for c := 0; c < res.Chips; c++ {
		local := map[int]int{}
		var blocks int
		for i := range s.Nets {
			if shed(i) || res.Assignment[i] != c {
				continue
			}
			local[i] = len(local)
			blocks += s.Nets[i].Stats().SubLayers
		}
		cr := res.ChipResults[c]
		if cr == nil {
			if len(local) != 0 {
				t.Errorf("%s: chip %d has %d entries but no result", label, c, len(local))
			}
			continue
		}
		if cr.MBCount != blocks || cr.CBCount != blocks {
			t.Errorf("%s: chip %d executed %d MBs / %d CBs, want %d each",
				label, c, cr.MBCount, cr.CBCount, blocks)
		}
		for i, li := range local {
			if s.PhaseOf[i] != ServeDecodePhase {
				continue
			}
			p := s.ChainAfter[i]
			lp, ok := local[p]
			if !ok {
				t.Errorf("%s: chip %d: decode entry %d routed without its predecessor %d", label, c, i, p)
				continue
			}
			if cr.NetArrive[li] < cr.NetFinish[lp] {
				t.Errorf("%s: chip %d: decode entry %d started at %d before predecessor %d finished at %d",
					label, c, i, cr.NetArrive[li], p, cr.NetFinish[lp])
			}
		}
	}
}

// TestTransformerPhaseConservation runs a transformer/CNN stream
// through every serving scheduler x routing policy combination, with
// and without the overload control plane, asserting the multi-phase
// conservation properties under the machine-model invariant checker.
func TestTransformerPhaseConservation(t *testing.T) {
	cfg := PaperConfig()
	const chips = 2
	classes := TransformerServingClasses()
	s := transformerClusterStream(t, 40, 2.5) // 1.25x the 2-chip cluster
	for _, spec := range ServeStandardSchedulers() {
		for _, pol := range ClusterPolicies() {
			for _, ctl := range []ClusterControl{
				{},
				{Admission: true, Autoscale: true, MinChips: 1},
			} {
				label := fmt.Sprintf("%s/%s/admission=%v", spec.Name, pol.Name, ctl.Admission)
				res, err := ClusterServe(cfg, s, spec, pol.New(), ClusterOptions{
					Chips:           chips,
					CheckInvariants: true,
					Control:         ctl,
				})
				if err != nil {
					t.Errorf("%s: %v", label, err)
					continue
				}
				checkPhaseConservation(t, label, s, classes, res)
			}
		}
	}
}

// TestZeroDecodeDifferential pins the degenerate transformer: a class
// with a decode network but zero decode iterations must produce a
// stream and simulation results bit-identical to the same class served
// through the untouched single-phase path.
func TestZeroDecodeDifferential(t *testing.T) {
	cfg := PaperConfig()
	phased := TransformerChatServeClass(0, 1)
	plain := TransformerChatServeClass(0, 1)
	plain.DecodeNet = nil

	opts := ServeStreamOptions{Requests: 24, MeanGap: 150_000, Seed: 9}
	sp, err := NewServeStream(cfg, []ServeClass{phased}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewServeStream(cfg, []ServeClass{plain}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ss.PhaseOf != nil || ss.ChainAfter != nil {
		t.Fatalf("single-phase stream grew phase metadata: %v / %v", ss.PhaseOf, ss.ChainAfter)
	}
	if len(sp.Nets) != len(ss.Nets) {
		t.Fatalf("entry counts differ: %d vs %d", len(sp.Nets), len(ss.Nets))
	}
	if !reflect.DeepEqual(sp.Arrivals, ss.Arrivals) || !reflect.DeepEqual(sp.Deadlines, ss.Deadlines) {
		t.Fatalf("arrivals/deadlines differ between phased and single-phase streams")
	}
	for _, spec := range ServeStandardSchedulers() {
		rp, err := Run(cfg, sp.Nets, spec.New(cfg, sp), RunOptions{
			Arrivals: sp.Arrivals, ChainAfter: sp.ChainAfter, CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("%s phased: %v", spec.Name, err)
		}
		rs, err := Run(cfg, ss.Nets, spec.New(cfg, ss), RunOptions{
			Arrivals: ss.Arrivals, CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("%s single: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(rp, rs) {
			t.Errorf("%s: zero-decode run diverged from single-phase run:\nphased: %+v\nsingle: %+v", spec.Name, rp, rs)
		}
	}

	// The phased report still carries phase rows (all-prefill), but its
	// headline statistics must match the single-phase report exactly.
	pr, err := ServeRun(cfg, sp, NewAIMT(cfg, AllMechanisms()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := ServeRun(cfg, ss, NewAIMT(cfg, AllMechanisms()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.PerPhase != nil {
		t.Errorf("single-phase report grew phase rows: %+v", sr.PerPhase)
	}
	if pr.P50 != sr.P50 || pr.P99 != sr.P99 || pr.Makespan != sr.Makespan ||
		pr.Misses != sr.Misses || pr.Requests != sr.Requests {
		t.Errorf("zero-decode report diverged: phased %+v vs single %+v", pr, sr)
	}
	if pr.Tokens != 0 {
		t.Errorf("zero-decode stream produced %d tokens, want 0", pr.Tokens)
	}
}

// TestDecodeBatchingCurve checks the decodebatch experiment's shape:
// batching decode steps amortizes weight and KV-cache traffic, so
// tokens per megacycle must strictly improve from batch 1 to batch 16.
// The exact table is pinned by the decodebatch golden.
func TestDecodeBatchingCurve(t *testing.T) {
	pts, err := DecodeBatchCurveData(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(DecodeBatchSizes) {
		t.Fatalf("points = %d, want %d", len(pts), len(DecodeBatchSizes))
	}
	for i, p := range pts {
		if p.Batch != DecodeBatchSizes[i] {
			t.Errorf("point %d batch = %d, want %d", i, p.Batch, DecodeBatchSizes[i])
		}
		if len(p.Rep.PerPhase) != 2 {
			t.Fatalf("batch %d: %d phase rows, want 2", p.Batch, len(p.Rep.PerPhase))
		}
		if p.Rep.TokensPerMcycle <= 0 {
			t.Errorf("batch %d: tokens/Mcycle = %v, want positive", p.Batch, p.Rep.TokensPerMcycle)
		}
		if dec := p.Rep.PerPhase[1]; dec.Entries <= 0 || dec.P99 <= 0 {
			t.Errorf("batch %d: empty decode row %+v", p.Batch, dec)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Rep.TokensPerMcycle <= first.Rep.TokensPerMcycle {
		t.Errorf("decode batching did not pay: batch %d at %.3f tok/Mcyc <= batch %d at %.3f",
			last.Batch, last.Rep.TokensPerMcycle, first.Batch, first.Rep.TokensPerMcycle)
	}
}
